//! Golden-model differential oracle.
//!
//! The timing core never computes architectural values — it replays
//! the functional trace — so a *correct* pipeline commits exactly the
//! µop sequence the functional machine executed: every sequence
//! number once, in order, with results that re-execute cleanly from
//! the initial architectural state. [`CommitOracle`] checks that in
//! lockstep: it holds its own architectural state (registers, flags,
//! PC, sparse memory), re-executes every committed µop through the
//! `tvp-isa` functional semantics ([`exec_alu`]/[`branch_taken`]) and
//! compares against the trace annotations. Any recovery bug that
//! skips, duplicates or reorders committed work — e.g. a squash that
//! forgets to roll the trace cursor back — surfaces as the first
//! [`Divergence`], with enough context to replay the campaign.

use std::fmt;

use tvp_isa::exec::{branch_taken, exec_alu, Operands};
use tvp_isa::flags::Nzcv;
use tvp_isa::inst::{AddrMode, Src2};
use tvp_isa::op::Op;
use tvp_isa::reg::{Reg, NUM_FP_REGS, NUM_INT_REGS, ZERO_REG_INDEX};
use tvp_workloads::machine::{ArchSnapshot, SparseMem};
use tvp_workloads::program::INST_BYTES;
use tvp_workloads::trace::{BranchOutcome, TraceUop};

/// What diverged between the pipeline's commit stream and the golden
/// model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The committed sequence number is not the next expected one:
    /// a µop was skipped, duplicated or reordered.
    Order {
        /// The sequence number the golden model expected to commit.
        expected_seq: u64,
    },
    /// An architectural instruction committed at the wrong PC.
    Pc {
        /// The PC the golden model expected.
        expected_pc: u64,
    },
    /// A re-executed value (result, address, flags, link) disagrees
    /// with the trace annotation.
    Mismatch {
        /// Which quantity diverged.
        what: &'static str,
        /// Golden-model value.
        expected: u64,
        /// Trace-annotated value (`u64::MAX` when the annotation is
        /// absent).
        got: u64,
    },
    /// A branch resolved differently than the trace recorded.
    Branch {
        /// Golden-model branch resolution.
        expected: BranchOutcome,
        /// Trace-annotated resolution, if any.
        got: Option<BranchOutcome>,
    },
    /// A µop is structurally malformed (missing operand/addressing);
    /// committed state can no longer be interpreted.
    Malformed {
        /// What was missing.
        what: &'static str,
    },
    /// Post-run architectural state differs from the functional
    /// machine's final state.
    FinalState {
        /// Which piece of state (register name, "flags", "pc",
        /// "memory digest").
        what: String,
        /// Golden final value.
        expected: u64,
        /// Oracle's reconstructed value.
        got: u64,
    },
}

/// The first point where the pipeline's committed state departed from
/// the golden model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Sequence number of the diverging committed µop (or of the last
    /// µop before a final-state mismatch).
    pub seq: u64,
    /// PC of the diverging µop.
    pub pc: u64,
    /// What went wrong.
    pub kind: DivergenceKind,
    /// Seed of the chaos campaign that provoked the divergence, when
    /// one was active; rerunning with this seed reproduces the fault
    /// sequence exactly.
    pub chaos_seed: Option<u64>,
    /// The pipeline's last-N-cycle event history (oldest first), when
    /// event tracing was enabled — the flight recorder's contents at
    /// the moment of divergence. Empty when tracing was off.
    pub history: Vec<tvp_obs::event::TraceEvent>,
}

impl Divergence {
    /// Attaches the replaying chaos seed.
    #[must_use]
    pub fn with_seed(mut self, seed: Option<u64>) -> Self {
        self.chaos_seed = seed;
        self
    }

    /// Attaches the event-trace flight-recorder snapshot.
    #[must_use]
    pub fn with_history(mut self, history: Vec<tvp_obs::event::TraceEvent>) -> Self {
        self.history = history;
        self
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "commit-oracle divergence at seq {} (pc {:#x}): ", self.seq, self.pc)?;
        match &self.kind {
            DivergenceKind::Order { expected_seq } => {
                write!(f, "expected seq {expected_seq} to commit next")?;
            }
            DivergenceKind::Pc { expected_pc } => {
                write!(f, "expected instruction at pc {expected_pc:#x}")?;
            }
            DivergenceKind::Mismatch { what, expected, got } => {
                write!(f, "{what}: expected {expected:#x}, got {got:#x}")?;
            }
            DivergenceKind::Branch { expected, got } => {
                write!(f, "branch outcome: expected {expected:?}, got {got:?}")?;
            }
            DivergenceKind::Malformed { what } => write!(f, "malformed µop: {what}")?,
            DivergenceKind::FinalState { what, expected, got } => {
                write!(f, "final {what}: expected {expected:#x}, got {got:#x}")?;
            }
        }
        if let Some(seed) = self.chaos_seed {
            write!(f, " [replay with chaos seed {seed:#x}]")?;
        }
        if !self.history.is_empty() {
            write!(f, " [{} trace events captured]", self.history.len())?;
        }
        Ok(())
    }
}

/// Lockstep golden model fed by the pipeline's commit stage.
#[derive(Clone, Debug)]
pub struct CommitOracle {
    int: [u64; NUM_INT_REGS as usize],
    fp: [u64; NUM_FP_REGS as usize],
    flags: Nzcv,
    mem: SparseMem,
    /// Next expected global sequence number.
    next_seq: u64,
    /// Expected PC of the next architectural instruction.
    next_pc: u64,
    /// PC of the architectural instruction currently committing.
    cur_pc: u64,
    /// Next-instruction PC as resolved so far by the current
    /// instruction's µops (fall-through until a taken branch).
    pending_next_pc: u64,
    commits: u64,
    poisoned: bool,
}

impl CommitOracle {
    /// Creates an oracle from the pre-run architectural state (the
    /// same snapshot the functional machine started the trace from).
    #[must_use]
    pub fn new(init: &ArchSnapshot) -> Self {
        CommitOracle {
            int: init.int,
            fp: init.fp,
            flags: init.flags,
            mem: init.mem.clone(),
            next_seq: 0,
            next_pc: init.pc,
            cur_pc: init.pc,
            pending_next_pc: init.pc,
            commits: 0,
            poisoned: false,
        }
    }

    /// Number of µops validated so far.
    #[must_use]
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// The oracle's current architectural state.
    #[must_use]
    pub fn snapshot(&self) -> ArchSnapshot {
        ArchSnapshot {
            int: self.int,
            fp: self.fp,
            flags: self.flags,
            pc: self.next_pc,
            mem: self.mem.clone(),
        }
    }

    fn reg(&self, r: Reg) -> u64 {
        match r {
            Reg::Int(ZERO_REG_INDEX) => 0,
            Reg::Int(i) => self.int[usize::from(i)],
            Reg::Fp(i) => self.fp[usize::from(i)],
            Reg::Nzcv => u64::from(self.flags.pack()),
        }
    }

    fn set_reg(&mut self, r: Reg, value: u64) {
        match r {
            Reg::Int(ZERO_REG_INDEX) => {}
            Reg::Int(i) => self.int[usize::from(i)] = value,
            Reg::Fp(i) => self.fp[usize::from(i)] = value,
            Reg::Nzcv => self.flags = Nzcv::unpack(value as u8),
        }
    }

    fn src2_value(&self, s: Src2) -> u64 {
        match s {
            Src2::None => 0,
            Src2::Reg(r) => self.reg(r),
            Src2::Imm(i) => i as u64,
        }
    }

    fn effective_addr(&self, addr: AddrMode) -> Option<u64> {
        match addr {
            AddrMode::BaseDisp { base, disp } => Some(self.reg(base).wrapping_add(disp as u64)),
            AddrMode::BaseIndex { base, index, shift } => {
                Some(self.reg(base).wrapping_add(self.reg(index) << shift))
            }
            // Writeback addressing is removed by µop expansion; seeing
            // it at commit means the stream is corrupt.
            AddrMode::PreIndex { .. } | AddrMode::PostIndex { .. } => None,
        }
    }

    /// Validates one committed µop against the golden model, updating
    /// the model's architectural state.
    ///
    /// After the first divergence the oracle is *poisoned*: further
    /// calls are no-ops returning `Ok`, so the caller keeps only the
    /// first (root-cause) report.
    ///
    /// # Errors
    ///
    /// Returns the [`Divergence`] when the committed µop departs from
    /// the golden model.
    pub fn on_commit(&mut self, u: &TraceUop) -> Result<(), Divergence> {
        if self.poisoned {
            return Ok(());
        }
        match self.check(u) {
            Ok(()) => {
                self.commits += 1;
                Ok(())
            }
            Err(kind) => {
                self.poisoned = true;
                Err(Divergence {
                    seq: u.seq,
                    pc: u.pc,
                    kind,
                    chaos_seed: None,
                    // audited(no-alloc-in-hot-path): divergence construction — error path, runs at most once
                    history: Vec::new(),
                })
            }
        }
    }

    /// Compares the oracle's post-run state against the functional
    /// machine's final snapshot. Returns the first mismatch, if any.
    #[must_use]
    pub fn final_check(&self, golden: &ArchSnapshot) -> Option<Divergence> {
        if self.poisoned {
            // A lockstep divergence was already reported; final state
            // is not meaningful past that point.
            return None;
        }
        let wrap = |what: String, expected: u64, got: u64| Divergence {
            // audited(no-alloc-in-hot-path): divergence construction — error path, runs at most once
            history: Vec::new(),
            seq: self.next_seq.saturating_sub(1),
            pc: self.cur_pc,
            kind: DivergenceKind::FinalState { what, expected, got },
            chaos_seed: None,
        };
        for i in 0..self.int.len() {
            if self.int[i] != golden.int[i] {
                return Some(wrap(format!("x{i}"), golden.int[i], self.int[i])); // audited(no-alloc-in-hot-path): mismatch report, fires at most once per run
            }
        }
        for i in 0..self.fp.len() {
            if self.fp[i] != golden.fp[i] {
                return Some(wrap(format!("v{i}"), golden.fp[i], self.fp[i])); // audited(no-alloc-in-hot-path): mismatch report, fires at most once per run
            }
        }
        if self.flags.pack() != golden.flags.pack() {
            return Some(wrap(
                "flags".to_owned(), // audited(no-alloc-in-hot-path): mismatch report, fires at most once per run
                u64::from(golden.flags.pack()),
                u64::from(self.flags.pack()),
            ));
        }
        if self.next_pc != golden.pc {
            return Some(wrap("pc".to_owned(), golden.pc, self.next_pc)); // audited(no-alloc-in-hot-path): mismatch report, fires at most once per run
        }
        let (want, got) = (golden.mem.digest(), self.mem.digest());
        if want != got {
            return Some(wrap("memory digest".to_owned(), want, got)); // audited(no-alloc-in-hot-path): mismatch report, fires at most once per run
        }
        None
    }

    fn check(&mut self, u: &TraceUop) -> Result<(), DivergenceKind> {
        if u.seq != self.next_seq {
            return Err(DivergenceKind::Order { expected_seq: self.next_seq });
        }
        self.next_seq += 1;
        if u.first_uop {
            if u.pc != self.next_pc {
                return Err(DivergenceKind::Pc { expected_pc: self.next_pc });
            }
            self.cur_pc = u.pc;
            self.pending_next_pc = u.pc + INST_BYTES;
        } else if u.pc != self.cur_pc {
            return Err(DivergenceKind::Mismatch {
                what: "intra-instruction pc",
                expected: self.cur_pc,
                got: u.pc,
            });
        }
        self.execute(u)?;
        self.next_pc = self.pending_next_pc;
        Ok(())
    }

    fn execute(&mut self, u: &TraceUop) -> Result<(), DivergenceKind> {
        let absent = u64::MAX;
        match u.uop.op {
            Op::Load { size, signed } => {
                let Some(am) = u.uop.addr else {
                    return Err(DivergenceKind::Malformed { what: "load without addressing" });
                };
                let Some(addr) = self.effective_addr(am) else {
                    return Err(DivergenceKind::Malformed { what: "writeback load at commit" });
                };
                if u.mem_addr != Some(addr) {
                    return Err(DivergenceKind::Mismatch {
                        what: "load address",
                        expected: addr,
                        got: u.mem_addr.unwrap_or(absent),
                    });
                }
                let raw = self.mem.read(addr, size);
                let value = if signed && size < 8 {
                    let shift = 64 - u32::from(size) * 8;
                    (((raw << shift) as i64) >> shift) as u64
                } else {
                    raw
                };
                if u.result != Some(value) {
                    return Err(DivergenceKind::Mismatch {
                        what: "load value",
                        expected: value,
                        got: u.result.unwrap_or(absent),
                    });
                }
                let Some(dst) = u.uop.dst else {
                    return Err(DivergenceKind::Malformed { what: "load without destination" });
                };
                self.set_reg(dst, value);
            }
            Op::Store { size } => {
                let Some(am) = u.uop.addr else {
                    return Err(DivergenceKind::Malformed { what: "store without addressing" });
                };
                let Some(addr) = self.effective_addr(am) else {
                    return Err(DivergenceKind::Malformed { what: "writeback store at commit" });
                };
                if u.mem_addr != Some(addr) {
                    return Err(DivergenceKind::Mismatch {
                        what: "store address",
                        expected: addr,
                        got: u.mem_addr.unwrap_or(absent),
                    });
                }
                let Some(src) = u.uop.src1 else {
                    return Err(DivergenceKind::Malformed { what: "store without data register" });
                };
                let data = self.reg(src);
                self.mem.write(addr, size, data);
            }
            op if op.is_branch() => {
                let src = u.uop.src1.map_or(0, |r| self.reg(r));
                let taken = branch_taken(op, u.uop.width, src, self.flags);
                let target = match op {
                    Op::Br | Op::Blr | Op::Ret => src,
                    _ => match u.uop.target {
                        Some(t) => t,
                        None => {
                            return Err(DivergenceKind::Malformed {
                                what: "direct branch without target",
                            });
                        }
                    },
                };
                if matches!(op, Op::Bl | Op::Blr) {
                    let link = u.pc + INST_BYTES;
                    self.set_reg(Reg::Int(30), link);
                    if u.result != Some(link) {
                        return Err(DivergenceKind::Mismatch {
                            what: "link value",
                            expected: link,
                            got: u.result.unwrap_or(absent),
                        });
                    }
                }
                if taken {
                    self.pending_next_pc = target;
                }
                let expected =
                    BranchOutcome { taken, target: if taken { target } else { u.pc + INST_BYTES } };
                if u.branch != Some(expected) {
                    return Err(DivergenceKind::Branch { expected, got: u.branch });
                }
            }
            op => {
                let ops = Operands {
                    a: u.uop.src1.map_or(0, |r| self.reg(r)),
                    b: self.src2_value(u.uop.src2),
                    c: u.uop.src3.map_or(0, |r| self.reg(r)),
                    flags: self.flags,
                };
                let r = exec_alu(op, u.uop.width, u.uop.sets_flags, ops);
                if let Some(dst) = u.uop.dst {
                    if u.result != Some(r.value) {
                        return Err(DivergenceKind::Mismatch {
                            what: "result value",
                            expected: r.value,
                            got: u.result.unwrap_or(absent),
                        });
                    }
                    self.set_reg(dst, r.value);
                }
                if let Some(f) = r.flags {
                    if u.flags_out != Some(f) {
                        return Err(DivergenceKind::Mismatch {
                            what: "flags",
                            expected: u64::from(f.pack()),
                            got: u.flags_out.map_or(absent, |g| u64::from(g.pack())),
                        });
                    }
                    self.flags = f;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle_for(name: &str, insts: u64) -> (CommitOracle, tvp_workloads::Trace, ArchSnapshot) {
        let w = tvp_workloads::suite::by_name(name).expect("workload exists");
        let mut m = w.machine();
        let init = m.arch_snapshot();
        let trace = m.run(insts);
        let golden = m.arch_snapshot();
        (CommitOracle::new(&init), trace, golden)
    }

    #[test]
    fn clean_commit_stream_matches_golden_model() {
        for name in ["string_match", "pointer_chase", "stream_triad", "minimax"] {
            let (mut oracle, trace, golden) = oracle_for(name, 3_000);
            for u in &trace.uops {
                oracle.on_commit(u).expect("functional trace replays cleanly");
            }
            assert_eq!(oracle.commits(), trace.uops.len() as u64);
            assert_eq!(oracle.final_check(&golden), None, "{name}");
            assert_eq!(oracle.snapshot().digest(), golden.digest(), "{name}");
        }
    }

    #[test]
    fn skipped_uop_is_caught_as_order_divergence() {
        let (mut oracle, trace, _) = oracle_for("string_match", 500);
        oracle.on_commit(&trace.uops[0]).expect("first µop is clean");
        let d = oracle.on_commit(&trace.uops[2]).expect_err("gap must be flagged");
        assert_eq!(d.kind, DivergenceKind::Order { expected_seq: 1 });
        assert_eq!(d.seq, 2);
        // Poisoned: subsequent commits are ignored, first report wins.
        assert_eq!(oracle.on_commit(&trace.uops[3]), Ok(()));
    }

    #[test]
    fn duplicated_uop_is_caught() {
        let (mut oracle, trace, _) = oracle_for("string_match", 500);
        oracle.on_commit(&trace.uops[0]).expect("first µop is clean");
        let d = oracle.on_commit(&trace.uops[0]).expect_err("replayed seq 0");
        assert!(matches!(d.kind, DivergenceKind::Order { expected_seq: 1 }));
    }

    #[test]
    fn corrupted_result_is_caught() {
        let (mut oracle, trace, _) = oracle_for("expr_tree", 500);
        let mut bad = None;
        for (i, u) in trace.uops.iter().enumerate() {
            if u.result.is_some() && !u.uop.op.is_branch() && u.mem_addr.is_none() {
                bad = Some(i);
                break;
            }
        }
        let bad = bad.expect("an ALU-producing µop exists");
        for u in &trace.uops[..bad] {
            oracle.on_commit(u).expect("prefix is clean");
        }
        let mut forged = trace.uops[bad].clone();
        forged.result = forged.result.map(|v| v ^ 0x8000_0001);
        let d = oracle.on_commit(&forged).expect_err("wrong value must diverge");
        assert!(matches!(d.kind, DivergenceKind::Mismatch { what: "result value", .. }), "{d}");
    }

    #[test]
    fn divergence_renders_with_replay_seed() {
        let d = Divergence {
            seq: 17,
            pc: 0x1_0040,
            kind: DivergenceKind::Order { expected_seq: 9 },
            chaos_seed: None,
            history: Vec::new(),
        }
        .with_seed(Some(0xBEEF));
        let text = d.to_string();
        assert!(text.contains("seq 17"), "{text}");
        assert!(text.contains("0xbeef"), "{text}");
    }

    #[test]
    fn final_state_mismatch_is_reported() {
        let (mut oracle, trace, golden) = oracle_for("pixel_encode", 300);
        for u in &trace.uops {
            oracle.on_commit(u).expect("trace replays cleanly");
        }
        let mut tampered = golden.clone();
        tampered.int[5] = tampered.int[5].wrapping_add(1);
        let d = oracle.final_check(&tampered).expect("tampered x5 must mismatch");
        assert!(matches!(d.kind, DivergenceKind::FinalState { .. }), "{d}");
    }
}
