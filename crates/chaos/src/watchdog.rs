//! No-progress watchdog and structured deadlock diagnostics.
//!
//! The timing core used to `assert!` after a megacycle without a
//! retirement — a hang would kill the process with a one-line message.
//! The watchdog replaces that: the run loop feeds it `(cycle,
//! retired)` each cycle, and when no µop retires for the configured
//! number of cycles the core stops and fills a
//! [`DeadlockDiagnostic`] describing *why* nothing is moving — ROB
//! head state, queue occupancies, pending flushes/replays, the oldest
//! outstanding MSHR — instead of hanging or dying silently.

use std::fmt;

/// Detects commit starvation: no retirement progress for `threshold`
/// consecutive cycles.
#[derive(Clone, Debug)]
pub struct Watchdog {
    threshold: u64,
    last_progress_cycle: u64,
    last_retired: u64,
}

impl Watchdog {
    /// Creates a watchdog that trips after `threshold` cycles without
    /// progress. A zero threshold disables the watchdog.
    #[must_use]
    pub fn new(threshold: u64) -> Self {
        Watchdog { threshold, last_progress_cycle: 0, last_retired: 0 }
    }

    /// Feeds one cycle's progress; returns `true` when the watchdog
    /// trips.
    pub fn observe(&mut self, cycle: u64, retired: u64) -> bool {
        if retired != self.last_retired {
            self.last_retired = retired;
            self.last_progress_cycle = cycle;
            return false;
        }
        self.threshold > 0 && cycle.saturating_sub(self.last_progress_cycle) >= self.threshold
    }

    /// Cycles elapsed since the last observed retirement.
    #[must_use]
    pub fn stalled_for(&self, cycle: u64) -> u64 {
        cycle.saturating_sub(self.last_progress_cycle)
    }
}

/// State of the ROB head at the moment the watchdog tripped.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RobHeadInfo {
    /// Global sequence number of the head µop.
    pub seq: u64,
    /// PC of the head µop.
    pub pc: u64,
    /// Whether the head has issued.
    pub issued: bool,
    /// Whether the head was eliminated at rename (never issues).
    pub eliminated: bool,
    /// Whether the head still waits in the issue queue.
    pub in_iq: bool,
    /// Cycle its result becomes available (`u64::MAX` = unknown).
    pub done_cycle: u64,
}

/// The oldest outstanding miss-status-holding register.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MshrInfo {
    /// Cache level holding the MSHR ("l1d", "l1i", "l2", "l3").
    pub level: &'static str,
    /// Line address of the outstanding miss.
    pub line_addr: u64,
    /// Cycle the fill completes.
    pub done_cycle: u64,
}

/// Structured dump of the stalled pipeline, produced instead of a
/// hang when the watchdog trips.
#[derive(Clone, Debug, Default)]
pub struct DeadlockDiagnostic {
    /// Cycle at which the watchdog tripped.
    pub cycle: u64,
    /// µops retired before the stall.
    pub uops_retired: u64,
    /// Length of the no-progress window.
    pub stalled_cycles: u64,
    /// ROB occupancy.
    pub rob_occupancy: usize,
    /// ROB head state, if the ROB is non-empty.
    pub rob_head: Option<RobHeadInfo>,
    /// Issue-queue occupancy.
    pub iq_occupancy: usize,
    /// Load-queue occupancy.
    pub lq_occupancy: usize,
    /// Store-queue occupancy.
    pub sq_occupancy: usize,
    /// Fetch-queue occupancy.
    pub fetch_queue: usize,
    /// Trace-replay cursor (next µop index to fetch).
    pub trace_cursor: usize,
    /// Cycle the front end resumes fetching after a redirect.
    pub fetch_resume: u64,
    /// Sequence number of the unresolved branch fetch waits on.
    pub fetch_wait_branch: Option<u64>,
    /// Pending (not yet applied) pipeline flushes.
    pub pending_flushes: usize,
    /// Pending (not yet applied) VP replays.
    pub pending_replays: usize,
    /// Cycle until which value-prediction lookups are silenced.
    pub silence_until: u64,
    /// Oldest outstanding cache miss, if any.
    pub oldest_mshr: Option<MshrInfo>,
}

impl fmt::Display for DeadlockDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline made no commit progress for {} cycles (cycle {}, {} µops retired)",
            self.stalled_cycles, self.cycle, self.uops_retired
        )?;
        match self.rob_head {
            Some(h) => writeln!(
                f,
                "  rob: {} entries; head seq {} pc {:#x} issued={} eliminated={} in_iq={} \
                 done_cycle={}",
                self.rob_occupancy, h.seq, h.pc, h.issued, h.eliminated, h.in_iq, h.done_cycle
            )?,
            None => writeln!(f, "  rob: empty")?,
        }
        writeln!(
            f,
            "  queues: iq={} lq={} sq={} fetch={} (cursor {}, resume @{}, wait_branch {:?})",
            self.iq_occupancy,
            self.lq_occupancy,
            self.sq_occupancy,
            self.fetch_queue,
            self.trace_cursor,
            self.fetch_resume,
            self.fetch_wait_branch
        )?;
        writeln!(
            f,
            "  recovery: {} pending flushes, {} pending replays, vp silenced until cycle {}",
            self.pending_flushes, self.pending_replays, self.silence_until
        )?;
        match self.oldest_mshr {
            Some(m) => write!(
                f,
                "  memory: oldest MSHR {} line {:#x} fills at cycle {}",
                m.level, m.line_addr, m.done_cycle
            ),
            None => write!(f, "  memory: no outstanding MSHRs"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_only_after_threshold_without_progress() {
        let mut wd = Watchdog::new(10);
        for cycle in 0..10 {
            assert!(!wd.observe(cycle, 5), "progress at cycle 0 resets the window");
        }
        assert!(wd.observe(10, 5));
        assert_eq!(wd.stalled_for(10), 10);
    }

    #[test]
    fn progress_resets_the_window() {
        let mut wd = Watchdog::new(10);
        assert!(!wd.observe(0, 0));
        assert!(!wd.observe(9, 1), "retired count moved");
        assert!(!wd.observe(18, 1));
        assert!(wd.observe(19, 1));
    }

    #[test]
    fn zero_threshold_disables() {
        let mut wd = Watchdog::new(0);
        for cycle in 0..100_000 {
            assert!(!wd.observe(cycle, 0));
        }
    }

    #[test]
    fn diagnostic_renders_key_fields() {
        let d = DeadlockDiagnostic {
            cycle: 1234,
            uops_retired: 55,
            stalled_cycles: 1000,
            rob_occupancy: 3,
            rob_head: Some(RobHeadInfo {
                seq: 55,
                pc: 0x1_0040,
                issued: false,
                eliminated: false,
                in_iq: true,
                done_cycle: u64::MAX,
            }),
            oldest_mshr: Some(MshrInfo { level: "l1d", line_addr: 0x4_0000, done_cycle: 2000 }),
            ..DeadlockDiagnostic::default()
        };
        let text = d.to_string();
        assert!(text.contains("no commit progress for 1000 cycles"), "{text}");
        assert!(text.contains("head seq 55"), "{text}");
        assert!(text.contains("oldest MSHR l1d"), "{text}");
    }
}
