//! Fault taxonomy and campaign configuration.
//!
//! Every fault the engine can inject is a [`FaultKind`]; a campaign is
//! a [`ChaosConfig`]: one seed plus one per-mille rate per fault site.
//! Rates are integers (0–1000) so campaign descriptions stay exact and
//! platform-independent — no floating point anywhere in the decision
//! path.

/// One injectable fault site, as wired into the timing pipeline.
///
/// All faults perturb *micro-architectural* state only (predictions,
/// predictor tables, latencies). Architectural values always come from
/// the functional trace, so a correct recovery path must absorb any
/// campaign without changing committed state — that is exactly what
/// the commit oracle checks.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// Replace a confident, admissible value prediction with a wrong
    /// value at rename, forcing the validate-and-recover path.
    VpForceMispredict,
    /// Corrupt a valid VTAGE entry: flip the low value bit and saturate
    /// its FPC confidence so the poisoned value gets used.
    VtageCorrupt,
    /// Corrupt a TAGE entry: invert a tagged counter and a bimodal
    /// counter.
    TageCorrupt,
    /// Invalidate a valid BTB entry (models a dropped target).
    BtbCorrupt,
    /// Scribble over an SSIT/LFST entry in the store-set predictor.
    StoreSetCorrupt,
    /// Invert the front-end's branch-misprediction verdict.
    BranchInvert,
    /// Add extra cycles to a data-cache access latency.
    CacheDelay,
    /// Suppress all prefetch issue (demand misses only) for one cycle.
    PrefetchDrop,
}

/// Deliberate recovery-path breakage, for proving the oracle catches
/// real bugs. Never enabled outside broken-fixture tests.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Sabotage {
    /// On a value-misprediction flush, squash the ROB but *skip* the
    /// trace-cursor rollback, so the squashed µops are never refetched
    /// and the commit stream has a sequence gap.
    SkipCursorRollback,
}

/// A fault campaign: seed plus per-site rates.
///
/// Rates are per-mille (0–1000) of the site's trigger opportunity:
/// per used prediction for [`FaultKind::VpForceMispredict`], per
/// predicted branch for [`FaultKind::BranchInvert`], per data access
/// for [`FaultKind::CacheDelay`], and per cycle for the table
/// corruption and prefetch-drop sites.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ChaosConfig {
    /// PRNG seed. The same seed and rates reproduce the exact fault
    /// sequence, cycle for cycle.
    pub seed: u64,
    /// Forced VP mispredictions, per-mille of used predictions.
    pub vp_force_mispredict_permille: u32,
    /// VTAGE entry corruption, per-mille per cycle.
    pub vtage_corrupt_permille: u32,
    /// TAGE entry corruption, per-mille per cycle.
    pub tage_corrupt_permille: u32,
    /// BTB entry invalidation, per-mille per cycle.
    pub btb_corrupt_permille: u32,
    /// Store-set SSIT/LFST corruption, per-mille per cycle.
    pub storeset_corrupt_permille: u32,
    /// Branch-verdict inversion, per-mille of predicted branches.
    pub branch_invert_permille: u32,
    /// Cache latency perturbation, per-mille of data accesses.
    pub cache_delay_permille: u32,
    /// Maximum extra cycles added when a cache delay fires (uniform in
    /// `1..=max`).
    pub cache_delay_max_cycles: u64,
    /// Prefetch suppression, per-mille of cycles.
    pub prefetch_drop_permille: u32,
    /// Optional deliberate recovery breakage (broken-fixture tests
    /// only).
    pub sabotage: Option<Sabotage>,
}

impl ChaosConfig {
    /// A quiet campaign: chaos plumbing active, all rates zero.
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            vp_force_mispredict_permille: 0,
            vtage_corrupt_permille: 0,
            tage_corrupt_permille: 0,
            btb_corrupt_permille: 0,
            storeset_corrupt_permille: 0,
            branch_invert_permille: 0,
            cache_delay_permille: 0,
            cache_delay_max_cycles: 16,
            prefetch_drop_permille: 0,
            sabotage: None,
        }
    }

    /// The standard smoke campaign used by CI: 2% forced VP
    /// mispredictions plus corruption on every predictor table, branch
    /// inversion, latency noise and prefetch drops.
    #[must_use]
    pub fn campaign(seed: u64) -> Self {
        ChaosConfig {
            seed,
            vp_force_mispredict_permille: 20,
            vtage_corrupt_permille: 10,
            tage_corrupt_permille: 10,
            btb_corrupt_permille: 10,
            storeset_corrupt_permille: 5,
            branch_invert_permille: 5,
            cache_delay_permille: 10,
            cache_delay_max_cycles: 32,
            prefetch_drop_permille: 50,
            sabotage: None,
        }
    }

    /// The same campaign with recovery deliberately broken — the
    /// oracle must flag it.
    #[must_use]
    pub fn sabotaged_campaign(seed: u64) -> Self {
        ChaosConfig { sabotage: Some(Sabotage::SkipCursorRollback), ..Self::campaign(seed) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_campaign_has_no_rates() {
        let c = ChaosConfig::quiet(1);
        assert_eq!(c.vp_force_mispredict_permille, 0);
        assert_eq!(c.sabotage, None);
    }

    #[test]
    fn smoke_campaign_forces_at_least_one_percent_vp_mispredicts() {
        // Acceptance criterion: the CI campaign forces ≥ 1% of used
        // predictions wrong.
        assert!(ChaosConfig::campaign(1).vp_force_mispredict_permille >= 10);
        assert_eq!(ChaosConfig::sabotaged_campaign(1).sabotage, Some(Sabotage::SkipCursorRollback));
    }
}
