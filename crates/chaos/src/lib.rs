//! # tvp-chaos — deterministic fault injection and differential checking
//!
//! The paper's mechanisms (TVP value prediction, SpSR strength
//! reduction) are *speculative*: they are only safe because the
//! pipeline's recovery path restores correct architectural state after
//! every misprediction. This crate actively attacks that path and
//! checks the wreckage:
//!
//! * [`ChaosEngine`] — a seeded, clock-free fault injector
//!   ([`ChaosConfig`] + xorshift PRNG). Each fault site is a typed
//!   [`FaultKind`]: forced VP mispredictions, VTAGE/TAGE/BTB/store-set
//!   table corruption, branch-verdict inversion, cache latency noise
//!   and prefetch drops. A campaign replays exactly from its seed.
//! * [`CommitOracle`] — a golden model running the `tvp-isa`
//!   functional semantics in lockstep with the pipeline's commit
//!   stream. Under *any* fault campaign the committed state must match
//!   the functional machine; the first [`Divergence`] is reported with
//!   (seq, what, expected, got) and the replaying seed.
//! * [`Watchdog`] — detects no-commit-progress and yields a structured
//!   [`DeadlockDiagnostic`] instead of a hang.
//! * [`Sabotage`] — deliberate recovery breakage for broken-fixture
//!   tests proving the oracle actually catches bugs.
//!
//! The crate deliberately depends only on `tvp-isa` (semantics) and
//! `tvp-workloads` (traces, architectural snapshots); the timing core
//! hosts the engine and feeds the oracle, and predictor/memory
//! structures expose tiny `inject_fault` hooks that consume the
//! engine's entropy. See DESIGN.md §9.

pub mod engine;
pub mod fault;
pub mod oracle;
pub mod rng;
pub mod watchdog;

pub use engine::ChaosEngine;
pub use fault::{ChaosConfig, FaultKind, Sabotage};
pub use oracle::{CommitOracle, Divergence, DivergenceKind};
pub use rng::ChaosRng;
pub use watchdog::{DeadlockDiagnostic, MshrInfo, RobHeadInfo, Watchdog};
