//! Deterministic pseudo-random source for fault injection.
//!
//! Same xorshift64* construction the predictors use for probabilistic
//! counter updates: fast, seedable, no global state, no clock. Every
//! fault decision made by the chaos engine flows through one instance
//! of this generator, so a campaign is fully reproduced by its seed.

/// A seeded xorshift64* generator.
#[derive(Clone, Debug)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// Creates a generator from a seed. A zero seed (invalid for
    /// xorshift) is remapped to a fixed non-zero constant.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ChaosRng { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)` via multiply-shift; the tiny
    /// modulo bias is irrelevant for fault sampling.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = ChaosRng::new(42);
        let mut b = ChaosRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = ChaosRng::new(0);
        assert_ne!(r.next_u64(), 0, "xorshift with zero state would stick at zero");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = ChaosRng::new(7);
        for _ in 0..1_000 {
            assert!(r.below(1000) < 1000);
        }
        assert_eq!(r.below(0), 0);
    }
}
