//! The fault-injection engine.
//!
//! One [`ChaosEngine`] lives inside the timing core. At each fault
//! site the pipeline asks [`ChaosEngine::fire`] whether this
//! opportunity faults; corrupt-table sites additionally draw raw
//! entropy ([`ChaosEngine::entropy`]) that the target structure uses
//! to pick which entry to damage. All draws come from one seeded
//! xorshift stream, so a campaign is replayed exactly by its seed.

use crate::fault::{ChaosConfig, FaultKind, Sabotage};
use crate::rng::ChaosRng;

/// Deterministic, seeded fault injector.
#[derive(Clone, Debug)]
pub struct ChaosEngine {
    cfg: ChaosConfig,
    rng: ChaosRng,
}

impl ChaosEngine {
    /// Creates an engine for a campaign.
    #[must_use]
    pub fn new(cfg: ChaosConfig) -> Self {
        ChaosEngine { rng: ChaosRng::new(cfg.seed), cfg }
    }

    /// The campaign this engine is running.
    #[must_use]
    pub fn cfg(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// The replay seed of this campaign.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    /// The configured sabotage, if any.
    #[must_use]
    pub fn sabotage(&self) -> Option<Sabotage> {
        self.cfg.sabotage
    }

    /// Rolls one fault opportunity for `kind`. Returns `true` when the
    /// fault fires. Sites with a zero rate consume no entropy, so
    /// enabling one fault site does not shift another site's sequence
    /// of decisions relative to an otherwise-identical campaign.
    pub fn fire(&mut self, kind: FaultKind) -> bool {
        let permille = match kind {
            FaultKind::VpForceMispredict => self.cfg.vp_force_mispredict_permille,
            FaultKind::VtageCorrupt => self.cfg.vtage_corrupt_permille,
            FaultKind::TageCorrupt => self.cfg.tage_corrupt_permille,
            FaultKind::BtbCorrupt => self.cfg.btb_corrupt_permille,
            FaultKind::StoreSetCorrupt => self.cfg.storeset_corrupt_permille,
            FaultKind::BranchInvert => self.cfg.branch_invert_permille,
            FaultKind::CacheDelay => self.cfg.cache_delay_permille,
            FaultKind::PrefetchDrop => self.cfg.prefetch_drop_permille,
        };
        if permille == 0 {
            return false;
        }
        self.rng.below(1000) < u64::from(permille.min(1000))
    }

    /// Raw entropy for a structure-side `inject_fault` hook (picks the
    /// table/set/way to corrupt).
    pub fn entropy(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Extra latency for a fired [`FaultKind::CacheDelay`], uniform in
    /// `1..=cache_delay_max_cycles`.
    pub fn extra_delay(&mut self) -> u64 {
        1 + self.rng.below(self.cfg.cache_delay_max_cycles.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires_and_consumes_no_entropy() {
        let mut e = ChaosEngine::new(ChaosConfig::quiet(123));
        let before = e.clone().entropy();
        for _ in 0..100 {
            assert!(!e.fire(FaultKind::VpForceMispredict));
        }
        assert_eq!(e.entropy(), before, "quiet sites must not advance the stream");
    }

    #[test]
    fn full_rate_always_fires() {
        let mut cfg = ChaosConfig::quiet(5);
        cfg.branch_invert_permille = 1000;
        let mut e = ChaosEngine::new(cfg);
        for _ in 0..100 {
            assert!(e.fire(FaultKind::BranchInvert));
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let cfg = ChaosConfig::campaign(0xDEAD);
        let mut a = ChaosEngine::new(cfg);
        let mut b = ChaosEngine::new(cfg);
        for _ in 0..1_000 {
            assert_eq!(a.fire(FaultKind::CacheDelay), b.fire(FaultKind::CacheDelay));
            assert_eq!(a.extra_delay(), b.extra_delay());
        }
    }

    #[test]
    fn extra_delay_is_bounded_and_nonzero() {
        let mut cfg = ChaosConfig::quiet(9);
        cfg.cache_delay_max_cycles = 8;
        let mut e = ChaosEngine::new(cfg);
        for _ in 0..200 {
            let d = e.extra_delay();
            assert!((1..=8).contains(&d));
        }
    }

    #[test]
    fn approximate_rate_is_honored() {
        let mut cfg = ChaosConfig::quiet(77);
        cfg.cache_delay_permille = 100; // 10%
        let mut e = ChaosEngine::new(cfg);
        let fired = (0..10_000).filter(|_| e.fire(FaultKind::CacheDelay)).count();
        assert!((700..=1_300).contains(&fired), "10% of 10k draws, got {fired}");
    }
}
