//! # tvp-harness — examples and integration tests
//!
//! This crate carries no library code of its own: it anchors the
//! workspace-level `examples/` binaries and `tests/` integration suites
//! that span every crate (ISA → predictors/memory → workloads → core).
//!
//! Run the examples with:
//!
//! ```text
//! cargo run --release -p tvp-harness --example quickstart
//! cargo run --release -p tvp-harness --example pointer_chase
//! cargo run --release -p tvp-harness --example strength_reduction
//! cargo run --release -p tvp-harness --example custom_workload
//! ```
//!
//! and the integration tests with `cargo test -p tvp-harness`.

/// Workspace version, re-exported for examples that print banners.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
