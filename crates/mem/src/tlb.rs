//! Translation lookaside buffers.
//!
//! Table 2: 256-entry direct-mapped L1 I/D TLBs whose latency is folded
//! into the L1 load-to-use time (0 extra cycles), backed by a 3072-entry
//! 12-way L2 TLB at 4 cycles. An L2 TLB miss triggers a fixed-cost page
//! walk. The simulator uses a flat virtual address space, so the TLB
//! only contributes *latency* (and statistics), not translation.

use tvp_obs::counters::sat_inc;

/// One TLB level.
#[derive(Debug)]
pub struct Tlb {
    entries: Vec<Vec<(bool, u64, u64)>>, // (valid, vpn, lru)
    set_mask: u64,
    clock: u64,
    hits: u64,
    misses: u64,
    overflow_events: u64,
}

impl Tlb {
    /// Page size in bytes (4 KiB).
    pub const PAGE_SHIFT: u32 = 12;

    /// Creates a TLB with `entries` total entries and `ways`
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two.
    #[must_use]
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(ways > 0 && entries.is_multiple_of(ways));
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "TLB set count must be a power of two");
        Tlb {
            entries: vec![vec![(false, 0, 0); ways]; sets], // audited(no-alloc-in-hot-path): constructor
            set_mask: sets as u64 - 1,
            clock: 0,
            hits: 0,
            misses: 0,
            overflow_events: 0,
        }
    }

    /// Looks up the page of `vaddr`, filling on miss. Returns `true` on
    /// a hit.
    pub fn access(&mut self, vaddr: u64) -> bool {
        self.clock += 1;
        let vpn = vaddr >> Self::PAGE_SHIFT;
        let set = (vpn & self.set_mask) as usize;
        let clock = self.clock;
        for e in &mut self.entries[set] {
            if e.0 && e.1 == vpn {
                e.2 = clock;
                sat_inc(&mut self.hits, &mut self.overflow_events);
                return true;
            }
        }
        sat_inc(&mut self.misses, &mut self.overflow_events);
        let victim = self.entries[set]
            .iter_mut()
            .min_by_key(|e| if e.0 { e.2 } else { 0 })
            .expect("ways > 0");
        *victim = (true, vpn, clock);
        false
    }

    /// (hits, misses).
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Counter increments lost to saturation (should stay 0).
    #[must_use]
    pub fn overflow_events(&self) -> u64 {
        self.overflow_events
    }
}

/// Two-level TLB hierarchy returning access latency.
#[derive(Debug)]
pub struct TlbHierarchy {
    l1: Tlb,
    l2: Tlb,
    l2_latency: u64,
    walk_latency: u64,
}

impl TlbHierarchy {
    /// Builds the Table 2 TLB hierarchy: 256-entry L1 (0 cycles),
    /// 3072-entry 12-way L2 (4 cycles), fixed-cost page walk.
    #[must_use]
    pub fn table2() -> Self {
        TlbHierarchy {
            l1: Tlb::new(256, 1),
            l2: Tlb::new(3072, 12),
            l2_latency: 4,
            walk_latency: 50,
        }
    }

    /// Translates `vaddr`, returning the added latency in cycles
    /// (0 on an L1 hit).
    pub fn translate(&mut self, vaddr: u64) -> u64 {
        if self.l1.access(vaddr) {
            0
        } else if self.l2.access(vaddr) {
            self.l2_latency
        } else {
            self.l2_latency + self.walk_latency
        }
    }

    /// ((l1 hits, l1 misses), (l2 hits, l2 misses)).
    #[must_use]
    pub fn stats(&self) -> ((u64, u64), (u64, u64)) {
        (self.l1.stats(), self.l2.stats())
    }

    /// Counter increments lost to saturation across both levels.
    #[must_use]
    pub fn overflow_events(&self) -> u64 {
        self.l1.overflow_events().saturating_add(self.l2.overflow_events())
    }
}

impl tvp_verif::StorageBudget for Tlb {
    fn storage_name(&self) -> &'static str {
        "tlb"
    }

    fn storage_bits(&self) -> u64 {
        // Per entry: valid + VPN tag (36-bit VPN minus set bits) +
        // log2(ways) replacement state.
        let sets = self.entries.len() as u64;
        let ways = self.entries.first().map_or(0, Vec::len) as u64;
        let set_bits = u64::from(self.set_mask.count_ones());
        let lru_bits = u64::from(ways.next_power_of_two().trailing_zeros());
        sets * ways * (1 + (36 - set_bits) + lru_bits)
    }
}

impl tvp_verif::StorageBudget for TlbHierarchy {
    fn storage_name(&self) -> &'static str {
        "tlb-hierarchy"
    }

    fn storage_bits(&self) -> u64 {
        self.l1.storage_bits() + self.l2.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_then_hits() {
        let mut t = TlbHierarchy::table2();
        let lat = t.translate(0x1000_0000);
        assert_eq!(lat, 54, "cold miss pays L2 + walk");
        assert_eq!(t.translate(0x1000_0000), 0);
        assert_eq!(t.translate(0x1000_0FFF), 0, "same page");
        assert!(t.translate(0x1000_1000) > 0, "next page misses");
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut t = TlbHierarchy::table2();
        // Touch enough pages to wrap the 256-entry direct-mapped L1 but
        // stay within the 3072-entry L2.
        for i in 0..512u64 {
            let _ = t.translate(i << Tlb::PAGE_SHIFT);
        }
        // Page 0 was evicted from L1 (aliases with page 256) but should
        // hit in L2.
        let lat = t.translate(0);
        assert_eq!(lat, 4);
    }

    #[test]
    fn direct_mapped_aliasing() {
        let mut t = Tlb::new(4, 1);
        assert!(!t.access(0 << 12));
        assert!(!t.access(4 << 12)); // same set, evicts page 0
        assert!(!t.access(0 << 12));
        let (h, m) = t.stats();
        assert_eq!(h, 0);
        assert_eq!(m, 3);
    }
}
