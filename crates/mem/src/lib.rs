//! # tvp-mem — memory hierarchy for the TVP/SpSR simulator
//!
//! Implements the paper's Table 2 memory system:
//!
//! * [`cache`] — set-associative caches with LRU replacement and
//!   MSHR-based miss tracking (merge + stall-on-full semantics);
//! * [`tlb`] — 256-entry L1 I/D TLBs backed by a 3072-entry 12-way L2
//!   TLB and a fixed-cost page walk;
//! * [`prefetch`] — the degree-4, unthrottled L1D stride prefetcher and
//!   the L2 AMPM prefetcher;
//! * [`hierarchy`] — the composed 128KB L1I/L1D + 1MB L2 + 8MB L3 +
//!   DRAM system, exposing completion-cycle semantics to the core.
//!
//! The hierarchy is latency-based: an access at cycle `C` returns the
//! cycle at which its value becomes available, with cache/MSHR state
//! updated at access time. This keeps the out-of-order core's scheduler
//! authoritative for all timing decisions while preserving the
//! first-order behaviours the paper's experiments depend on (miss
//! levels, MSHR merging, prefetcher interference).
//!
//! # Examples
//!
//! ```
//! use tvp_mem::hierarchy::{Hierarchy, HierarchyConfig};
//!
//! let mut mem = Hierarchy::new(HierarchyConfig::default());
//! let cold = mem.data_access(0x1000, 0xA000_0000, false, 0);
//! let warm = mem.data_access(0x1000, 0xA000_0000, false, cold);
//! assert!(warm - cold == 4, "L1D load-to-use is 4 cycles");
//! ```

pub mod cache;
pub mod hierarchy;
pub mod prefetch;
pub mod tlb;

pub use cache::{Cache, CacheConfig, CacheStats, Probe};
pub use hierarchy::{Hierarchy, HierarchyConfig, HierarchyStats};
pub use prefetch::{AmpmPrefetcher, StridePrefetcher};
pub use tlb::{Tlb, TlbHierarchy};
