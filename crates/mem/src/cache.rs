//! Set-associative cache with LRU replacement and MSHR-based miss
//! tracking.
//!
//! The hierarchy is latency-based rather than event-driven: an access at
//! cycle `C` returns the cycle at which its data is available. Misses
//! allocate an MSHR; a second access to an in-flight line *merges* into
//! the existing MSHR (returning its completion time), and when all MSHRs
//! are busy the access stalls until the earliest one frees — the same
//! first-order behaviour a full event-driven model produces.

use tvp_obs::counters::sat_inc;

/// Configuration of one cache level.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Human-readable name (`"l1d"`, `"l2"`, …).
    pub name: &'static str,
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_size: usize,
    /// Hit latency (load-to-use, cycles).
    pub latency: u64,
    /// Number of miss status holding registers.
    pub mshrs: usize,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two sets,
    /// zero ways, capacity not divisible by `ways × line_size`).
    #[must_use]
    pub fn num_sets(&self) -> usize {
        assert!(self.ways > 0 && self.line_size > 0);
        let sets = self.size_bytes / (self.ways * self.line_size);
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "{}: set count {sets} must be a power of two",
            self.name
        );
        sets
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    valid: bool,
    tag: u64,
    dirty: bool,
    lru: u64,
    prefetched: bool,
}

/// Hit/miss statistics for one cache.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Prefetch fills inserted.
    pub prefetch_fills: u64,
    /// Demand hits on lines brought in by a prefetch (first touch).
    pub prefetch_useful: u64,
    /// Lines evicted.
    pub evictions: u64,
    /// Counter increments lost to saturation (should stay 0).
    pub overflow_events: u64,
}

/// One cache level.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    set_shift: u32,
    set_mask: u64,
    mshrs: Vec<(u64, u64)>, // (line address, completion cycle)
    clock: u64,
    stats: CacheStats,
}

/// Result of probing a cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Probe {
    /// The line is resident.
    Hit,
    /// The line is not resident.
    Miss,
}

impl Cache {
    /// Builds a cache level from its configuration.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.num_sets();
        Cache {
            set_shift: cfg.line_size.trailing_zeros(),
            set_mask: sets as u64 - 1,
            sets: vec![vec![Line::default(); cfg.ways]; sets], // audited(no-alloc-in-hot-path): constructor
            mshrs: Vec::with_capacity(cfg.mshrs), // audited(no-alloc-in-hot-path): constructor
            clock: 0,
            stats: CacheStats::default(),
            cfg,
        }
    }

    /// The configuration of this level.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Line-aligned address.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.set_shift
    }

    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    fn tag_of(&self, line: u64) -> u64 {
        line >> self.set_mask.count_ones()
    }

    /// Probes for `addr` without modifying replacement state.
    #[must_use]
    pub fn peek(&self, addr: u64) -> Probe {
        let line = self.line_addr(addr);
        let (set, tag) = (self.set_of(line), self.tag_of(line));
        if self.sets[set].iter().any(|l| l.valid && l.tag == tag) {
            Probe::Hit
        } else {
            Probe::Miss
        }
    }

    /// Demand access: updates LRU, dirty state and statistics.
    pub fn access(&mut self, addr: u64, write: bool) -> Probe {
        self.clock += 1;
        let line = self.line_addr(addr);
        let (set, tag) = (self.set_of(line), self.tag_of(line));
        let clock = self.clock;
        for l in &mut self.sets[set] {
            if l.valid && l.tag == tag {
                l.lru = clock;
                l.dirty |= write;
                if l.prefetched {
                    l.prefetched = false;
                    sat_inc(&mut self.stats.prefetch_useful, &mut self.stats.overflow_events);
                }
                sat_inc(&mut self.stats.hits, &mut self.stats.overflow_events);
                return Probe::Hit;
            }
        }
        sat_inc(&mut self.stats.misses, &mut self.stats.overflow_events);
        Probe::Miss
    }

    /// Fills `addr` into the cache (after a miss returns, or on a
    /// prefetch). Returns the evicted line address if a dirty line was
    /// displaced.
    pub fn fill(&mut self, addr: u64, prefetch: bool) -> Option<u64> {
        self.clock += 1;
        let line = self.line_addr(addr);
        let (set, tag) = (self.set_of(line), self.tag_of(line));
        let clock = self.clock;
        let set_bits = self.set_mask.count_ones();
        if prefetch {
            sat_inc(&mut self.stats.prefetch_fills, &mut self.stats.overflow_events);
        }
        let ways = &mut self.sets[set];
        if let Some(l) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.lru = clock;
            return None; // already resident (e.g. MSHR merge)
        }
        let victim =
            ways.iter_mut().min_by_key(|l| if l.valid { l.lru } else { 0 }).expect("ways > 0");
        let evicted = (victim.valid && victim.dirty)
            .then(|| ((victim.tag << set_bits) | set as u64) << self.set_shift);
        if victim.valid {
            sat_inc(&mut self.stats.evictions, &mut self.stats.overflow_events);
        }
        *victim = Line { valid: true, tag, dirty: false, lru: clock, prefetched: prefetch };
        evicted
    }

    /// Looks up or allocates an MSHR for a missing line.
    ///
    /// Returns `(completion_cycle, newly_allocated)`. `miss_latency` is
    /// the time the fill will take if a new MSHR is allocated. When all
    /// MSHRs are busy the allocation queues behind the earliest
    /// completion.
    pub fn mshr_allocate(&mut self, addr: u64, cycle: u64, miss_latency: u64) -> (u64, bool) {
        let line = self.line_addr(addr);
        self.mshrs.retain(|&(_, done)| done > cycle);
        if let Some(&(_, done)) = self.mshrs.iter().find(|&&(l, _)| l == line) {
            return (done, false); // merge into in-flight miss
        }
        let start = if self.mshrs.len() >= self.cfg.mshrs {
            // Stall until the earliest MSHR frees.
            self.mshrs.iter().map(|&(_, d)| d).min().unwrap_or(cycle)
        } else {
            cycle
        };
        let done = start + miss_latency;
        self.mshrs.push((line, done));
        (done, true)
    }

    /// If the line containing `addr` has an in-flight miss, returns
    /// its completion cycle. Lets hit paths honour fills that are
    /// architecturally present but physically still in flight
    /// (prefetched lines).
    #[must_use]
    pub fn mshr_pending(&self, addr: u64, cycle: u64) -> Option<u64> {
        let line = self.line_addr(addr);
        self.mshrs.iter().find(|&&(l, done)| l == line && done > cycle).map(|&(_, done)| done)
    }

    /// The outstanding miss with the earliest fill completion still in
    /// the future at `cycle`: `(line address, fill cycle)`. Feeds the
    /// deadlock watchdog's diagnostic dump.
    #[must_use]
    pub fn oldest_mshr(&self, cycle: u64) -> Option<(u64, u64)> {
        self.mshrs.iter().filter(|&&(_, done)| done > cycle).min_by_key(|&&(_, done)| done).copied()
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

impl tvp_verif::StorageBudget for Cache {
    fn storage_name(&self) -> &'static str {
        self.cfg.name
    }

    fn storage_bits(&self) -> u64 {
        // Per line: data + tag (48-bit VA minus set/offset bits) +
        // valid/dirty/prefetched + log2(ways) replacement state.
        let sets = self.sets.len() as u64;
        let ways = self.cfg.ways as u64;
        let set_bits = u64::from(self.set_mask.count_ones());
        let tag_bits = 48 - set_bits - u64::from(self.set_shift);
        let lru_bits = u64::from(ways.next_power_of_two().trailing_zeros());
        let per_line = self.cfg.line_size as u64 * 8 + tag_bits + 3 + lru_bits;
        sets * ways * per_line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            name: "test",
            size_bytes: 4 * 64 * 2, // 4 sets × 2 ways × 64B
            ways: 2,
            line_size: 64,
            latency: 4,
            mshrs: 2,
        })
    }

    #[test]
    fn miss_fill_hit() {
        let mut c = tiny();
        assert_eq!(c.access(0x1000, false), Probe::Miss);
        c.fill(0x1000, false);
        assert_eq!(c.access(0x1000, false), Probe::Hit);
        assert_eq!(c.access(0x1004, false), Probe::Hit, "same line");
        assert_eq!(c.access(0x1040, false), Probe::Miss, "next line");
    }

    #[test]
    fn lru_within_set() {
        let mut c = tiny();
        // Three lines mapping to set 0 (stride = sets × line = 256B).
        c.fill(0x0000, false);
        c.fill(0x0100, false);
        let _ = c.access(0x0000, false); // touch to make 0x0100 the LRU victim
        c.fill(0x0200, false);
        assert_eq!(c.access(0x0000, false), Probe::Hit);
        assert_eq!(c.access(0x0100, false), Probe::Miss);
        assert_eq!(c.access(0x0200, false), Probe::Hit);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(0x0000, false);
        let _ = c.access(0x0000, true); // dirty it
        c.fill(0x0100, false);
        let evicted = c.fill(0x0200, false); // victim should be 0x0000 (LRU) — dirty
        assert_eq!(evicted, Some(0x0000));
    }

    #[test]
    fn mshr_merges_same_line() {
        let mut c = tiny();
        let (done1, new1) = c.mshr_allocate(0x1000, 100, 50);
        assert!(new1);
        assert_eq!(done1, 150);
        let (done2, new2) = c.mshr_allocate(0x1020, 110, 50); // same line
        assert!(!new2);
        assert_eq!(done2, 150, "merged access completes with the first");
    }

    #[test]
    fn mshr_exhaustion_queues() {
        let mut c = tiny();
        let (d1, _) = c.mshr_allocate(0x1000, 0, 100);
        let (_d2, _) = c.mshr_allocate(0x2000, 0, 100);
        // Third distinct line: both MSHRs busy until cycle 100.
        let (d3, new3) = c.mshr_allocate(0x3000, 1, 100);
        assert!(new3);
        assert_eq!(d3, d1 + 100, "queued behind earliest completion");
    }

    #[test]
    fn mshr_frees_after_completion() {
        let mut c = tiny();
        let _ = c.mshr_allocate(0x1000, 0, 10);
        let (done, new) = c.mshr_allocate(0x4000, 50, 10);
        assert!(new);
        assert_eq!(done, 60, "old MSHR expired, no queueing");
    }

    #[test]
    fn prefetch_usefulness_tracked() {
        let mut c = tiny();
        c.fill(0x1000, true);
        assert_eq!(c.stats().prefetch_fills, 1);
        let _ = c.access(0x1000, false);
        assert_eq!(c.stats().prefetch_useful, 1);
        let _ = c.access(0x1000, false);
        assert_eq!(c.stats().prefetch_useful, 1, "only first touch counts");
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = tiny();
        let _ = c.access(0x5000, false);
        c.fill(0x5000, false);
        let _ = c.access(0x5000, false);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }
}
