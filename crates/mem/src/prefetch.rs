//! Hardware prefetchers: per-PC stride at L1D, AMPM at L2 (Table 2).
//!
//! The stride prefetcher is intentionally *unthrottled* with a fixed
//! degree of 4, matching the gem5 implementation the paper calls out in
//! §3.4.1: it "does not currently throttle the Stride prefetcher if it
//! does not perform well", which is the root cause of the `roms`/TVP
//! performance anomaly the paper reports.

use tvp_obs::counters::sat_add;

/// A per-PC stride prefetcher [Fu, Patel & Janssens 1992].
#[derive(Debug)]
pub struct StridePrefetcher {
    table: Vec<StrideEntry>,
    degree: u32,
    issued: u64,
    overflow_events: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct StrideEntry {
    valid: bool,
    tag: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8, // 2-bit
}

impl StridePrefetcher {
    /// Creates a stride prefetcher with `entries` table entries and the
    /// given prefetch degree.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `degree` is zero.
    #[must_use]
    pub fn new(entries: usize, degree: u32) -> Self {
        assert!(entries.is_power_of_two(), "stride table must be a power of two");
        assert!(degree > 0);
        StridePrefetcher {
            table: vec![StrideEntry::default(); entries], // audited(no-alloc-in-hot-path): constructor
            degree,
            issued: 0,
            overflow_events: 0,
        }
    }

    /// Observes a demand load and appends the addresses to prefetch
    /// (possibly none) to `out`, a caller-owned scratch buffer — the
    /// per-access path must not allocate.
    pub fn observe_into(&mut self, pc: u64, addr: u64, out: &mut Vec<u64>) {
        let idx = ((pc >> 2) as usize) & (self.table.len() - 1);
        let tag = pc >> 2;
        let e = &mut self.table[idx];
        if !e.valid || e.tag != tag {
            *e = StrideEntry { valid: true, tag, last_addr: addr, stride: 0, confidence: 0 };
            return;
        }
        let stride = addr.wrapping_sub(e.last_addr) as i64;
        if stride == e.stride && stride != 0 {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.confidence = e.confidence.saturating_sub(1);
            if e.confidence == 0 {
                e.stride = stride;
            }
        }
        e.last_addr = addr;
        if e.confidence >= 2 && e.stride != 0 {
            let stride = e.stride;
            for i in 1..=i64::from(self.degree) {
                out.push(addr.wrapping_add((stride * i) as u64));
            }
            sat_add(&mut self.issued, u64::from(self.degree), &mut self.overflow_events);
        }
    }

    /// Number of prefetch requests issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

/// Access Map Pattern Matching prefetcher [Ishii, Inaba & Hiraki 2009],
/// simplified: per-zone bitmaps of demand-accessed lines; for every
/// candidate stride `k`, if lines `n−k` and `n−2k` were accessed, line
/// `n+k` is prefetched.
#[derive(Debug)]
pub struct AmpmPrefetcher {
    zones: Vec<AmpmZone>,
    zone_shift: u32,
    line_shift: u32,
    max_strides: i64,
    issued: u64,
    overflow_events: u64,
}

#[derive(Clone, Debug, Default)]
struct AmpmZone {
    valid: bool,
    zone: u64,
    map: u64, // one bit per line in the zone (64 lines × 64B = 4KB zone)
    lru: u64,
}

impl AmpmPrefetcher {
    /// Creates an AMPM prefetcher tracking `zones` 4KB zones and
    /// considering strides up to `max_strides` lines.
    ///
    /// # Panics
    ///
    /// Panics if `zones` is zero.
    #[must_use]
    pub fn new(zones: usize, max_strides: i64) -> Self {
        assert!(zones > 0);
        AmpmPrefetcher {
            zones: vec![AmpmZone::default(); zones], // audited(no-alloc-in-hot-path): constructor
            zone_shift: 12,                          // 4KB zones
            line_shift: 6,                           // 64B lines
            max_strides,
            issued: 0,
            overflow_events: 0,
        }
    }

    /// Observes a demand access at the L2 and appends prefetch
    /// candidates to `out`, a caller-owned scratch buffer — the
    /// per-access path must not allocate.
    pub fn observe_into(&mut self, addr: u64, clock: u64, out: &mut Vec<u64>) {
        let zone = addr >> self.zone_shift;
        let line_in_zone =
            ((addr >> self.line_shift) & ((1 << (self.zone_shift - self.line_shift)) - 1)) as i64;
        // Find or allocate the zone's access map.
        let idx = match self.zones.iter().position(|z| z.valid && z.zone == zone) {
            Some(i) => i,
            None => {
                let i = self
                    .zones
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, z)| if z.valid { z.lru } else { 0 })
                    .map(|(i, _)| i)
                    .expect("zones > 0");
                self.zones[i] = AmpmZone { valid: true, zone, map: 0, lru: clock };
                i
            }
        };
        let z = &mut self.zones[idx];
        z.lru = clock;
        z.map |= 1 << line_in_zone;
        let map = z.map;
        let lines_per_zone = 1i64 << (self.zone_shift - self.line_shift);
        let before = out.len();
        for k in 1..=self.max_strides {
            let (p1, p2, target) = (line_in_zone - k, line_in_zone - 2 * k, line_in_zone + k);
            if p1 >= 0
                && p2 >= 0
                && target < lines_per_zone
                && map & (1 << p1) != 0
                && map & (1 << p2) != 0
                && map & (1 << target) == 0
            {
                out.push((zone << self.zone_shift) + ((target as u64) << self.line_shift));
            }
            // Negative direction.
            let (n1, n2, ntarget) = (line_in_zone + k, line_in_zone + 2 * k, line_in_zone - k);
            if ntarget >= 0
                && n2 < lines_per_zone
                && map & (1 << n1) != 0
                && map & (1 << n2) != 0
                && map & (1 << ntarget) == 0
            {
                out.push((zone << self.zone_shift) + ((ntarget as u64) << self.line_shift));
            }
        }
        sat_add(&mut self.issued, (out.len() - before) as u64, &mut self.overflow_events);
    }

    /// Number of prefetch requests issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

impl tvp_verif::StorageBudget for StridePrefetcher {
    fn storage_name(&self) -> &'static str {
        "stride"
    }

    fn storage_bits(&self) -> u64 {
        // Per entry: valid + 16-bit partial tag + 48-bit last address +
        // 16-bit stride + 2-bit confidence.
        self.table.len() as u64 * (1 + 16 + 48 + 16 + 2)
    }
}

impl tvp_verif::StorageBudget for AmpmPrefetcher {
    fn storage_name(&self) -> &'static str {
        "ampm"
    }

    fn storage_bits(&self) -> u64 {
        // Per zone: valid + 36-bit zone tag + 64-bit access map +
        // 16-bit LRU stamp.
        self.zones.len() as u64 * (1 + 36 + 64 + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test convenience: the allocating shape of [`StridePrefetcher::observe_into`].
    fn observe_stride(p: &mut StridePrefetcher, pc: u64, addr: u64) -> Vec<u64> {
        let mut out = Vec::new();
        p.observe_into(pc, addr, &mut out);
        out
    }

    /// Test convenience: the allocating shape of [`AmpmPrefetcher::observe_into`].
    fn observe_ampm(p: &mut AmpmPrefetcher, addr: u64, clock: u64) -> Vec<u64> {
        let mut out = Vec::new();
        p.observe_into(addr, clock, &mut out);
        out
    }

    #[test]
    fn stride_detects_constant_stride() {
        let mut p = StridePrefetcher::new(64, 4);
        let pc = 0x4000;
        assert!(observe_stride(&mut p, pc, 0x1000).is_empty());
        assert!(observe_stride(&mut p, pc, 0x1040).is_empty()); // learns stride 0x40
        assert!(observe_stride(&mut p, pc, 0x1080).is_empty()); // conf 1
        let pf = observe_stride(&mut p, pc, 0x10C0); // conf 2 → fire
        assert_eq!(pf, vec![0x1100, 0x1140, 0x1180, 0x11C0]);
    }

    #[test]
    fn stride_degree_is_fixed_and_unthrottled() {
        let mut p = StridePrefetcher::new(64, 4);
        let pc = 0x4000;
        for i in 0..100u64 {
            let _ = observe_stride(&mut p, pc, 0x1000 + i * 8);
        }
        // Once confident it fires on *every* access — no throttling.
        let pf = observe_stride(&mut p, pc, 0x1000 + 100 * 8);
        assert_eq!(pf.len(), 4);
        assert!(p.issued() > 300);
    }

    #[test]
    fn stride_irregular_stream_stays_quiet() {
        let mut p = StridePrefetcher::new(64, 4);
        let pc = 0x4000;
        let mut lcg = 99u64;
        let mut fired = 0;
        for _ in 0..200 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            fired += usize::from(!observe_stride(&mut p, pc, lcg & 0xFFFF_FFC0).is_empty());
        }
        assert!(fired < 10, "random stream fired {fired} times");
    }

    #[test]
    fn stride_negative_direction() {
        let mut p = StridePrefetcher::new(64, 2);
        let pc = 0x8000;
        let _ = observe_stride(&mut p, pc, 0x2000);
        let _ = observe_stride(&mut p, pc, 0x1FC0);
        let _ = observe_stride(&mut p, pc, 0x1F80);
        let pf = observe_stride(&mut p, pc, 0x1F40);
        assert_eq!(pf, vec![0x1F00, 0x1EC0]);
    }

    #[test]
    fn distinct_pcs_use_distinct_entries() {
        let mut p = StridePrefetcher::new(64, 1);
        for i in 0..4u64 {
            let _ = observe_stride(&mut p, 0x4000, 0x1000 + i * 64);
            let _ = observe_stride(&mut p, 0x4004, 0x9000 + i * 128);
        }
        let a = observe_stride(&mut p, 0x4000, 0x1000 + 4 * 64);
        let b = observe_stride(&mut p, 0x4004, 0x9000 + 4 * 128);
        assert_eq!(a, vec![0x1000 + 5 * 64]);
        assert_eq!(b, vec![0x9000 + 5 * 128]);
    }

    #[test]
    fn ampm_detects_pattern_within_zone() {
        let mut p = AmpmPrefetcher::new(16, 4);
        // Touch lines 0, 1, 2 → expect line 3 prefetched (stride 1).
        assert!(observe_ampm(&mut p, 0x1000_0000, 1).is_empty());
        let _ = observe_ampm(&mut p, 0x1000_0040, 2);
        let pf = observe_ampm(&mut p, 0x1000_0080, 3);
        assert!(pf.contains(&0x1000_00C0), "pf = {pf:#x?}");
    }

    #[test]
    fn ampm_detects_strided_pattern() {
        let mut p = AmpmPrefetcher::new(16, 4);
        let _ = observe_ampm(&mut p, 0x2000_0000, 1); // line 0
        let _ = observe_ampm(&mut p, 0x2000_0080, 2); // line 2
        let pf = observe_ampm(&mut p, 0x2000_0100, 3); // line 4; stride 2 established
        assert!(pf.contains(&0x2000_0180), "pf = {pf:#x?}");
    }

    #[test]
    fn ampm_zone_isolation() {
        let mut p = AmpmPrefetcher::new(16, 4);
        let _ = observe_ampm(&mut p, 0x1000, 1);
        let _ = observe_ampm(&mut p, 0x1040, 2);
        // Access in a *different* zone must not inherit the map.
        let pf = observe_ampm(&mut p, 0x9080, 3);
        assert!(pf.is_empty());
    }

    #[test]
    fn ampm_does_not_refetch_accessed_lines() {
        let mut p = AmpmPrefetcher::new(16, 1);
        let _ = observe_ampm(&mut p, 0x3000_0000, 1);
        let _ = observe_ampm(&mut p, 0x3000_0040, 2);
        let _ = observe_ampm(&mut p, 0x3000_0080, 3); // would prefetch line 3
        let pf = observe_ampm(&mut p, 0x3000_00C0, 4); // line 3 now accessed; next is 4
        assert!(!pf.contains(&0x3000_00C0));
    }
}
