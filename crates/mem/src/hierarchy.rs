//! The full memory hierarchy of Table 2: split 128KB L1s, 1MB L2, 8MB
//! L3, two-level TLBs, an L1D stride prefetcher (degree 4) and an L2
//! AMPM prefetcher, over a fixed-latency DRAM backend.

use crate::cache::{Cache, CacheConfig, CacheStats, Probe};
use crate::prefetch::{AmpmPrefetcher, StridePrefetcher};
use crate::tlb::TlbHierarchy;
use tvp_obs::counters::sat_inc;
use tvp_obs::registry::Registry;

/// Tunable hierarchy parameters (defaults are Table 2).
#[derive(Clone, Debug)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Unified L3.
    pub l3: CacheConfig,
    /// DRAM access latency (cycles beyond L3).
    pub dram_latency: u64,
    /// Enable the L1D stride prefetcher.
    pub stride_prefetcher: bool,
    /// Stride prefetcher degree.
    pub stride_degree: u32,
    /// Enable the L2 AMPM prefetcher.
    pub ampm_prefetcher: bool,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1d: CacheConfig {
                name: "l1d",
                size_bytes: 128 * 1024,
                ways: 8,
                line_size: 64,
                latency: 4,
                mshrs: 56,
            },
            l1i: CacheConfig {
                name: "l1i",
                size_bytes: 128 * 1024,
                ways: 8,
                line_size: 64,
                latency: 1,
                mshrs: 8,
            },
            l2: CacheConfig {
                name: "l2",
                size_bytes: 1024 * 1024,
                ways: 8,
                line_size: 64,
                latency: 12,
                mshrs: 64,
            },
            l3: CacheConfig {
                name: "l3",
                size_bytes: 8 * 1024 * 1024,
                ways: 16,
                line_size: 64,
                latency: 37,
                mshrs: 64,
            },
            dram_latency: 170,
            stride_prefetcher: true,
            stride_degree: 4,
            ampm_prefetcher: true,
        }
    }
}

/// Aggregate statistics for all levels plus prefetchers.
#[derive(Clone, Copy, Debug, Default)]
pub struct HierarchyStats {
    /// L1D stats.
    pub l1d: CacheStats,
    /// L1I stats.
    pub l1i: CacheStats,
    /// L2 stats.
    pub l2: CacheStats,
    /// L3 stats.
    pub l3: CacheStats,
    /// Stride prefetches issued.
    pub stride_issued: u64,
    /// AMPM prefetches issued.
    pub ampm_issued: u64,
    /// Prefetch opportunities suppressed by fault injection.
    pub dropped_prefetches: u64,
}

/// The memory hierarchy.
#[derive(Debug)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1d: Cache,
    l1i: Cache,
    l2: Cache,
    l3: Cache,
    dtlb: TlbHierarchy,
    itlb: TlbHierarchy,
    stride: StridePrefetcher,
    ampm: AmpmPrefetcher,
    /// While set, all prefetch issue (stride, AMPM, next-line I-fetch)
    /// is suppressed — the chaos engine's prefetch-drop fault.
    prefetch_suppressed: bool,
    dropped_prefetches: u64,
    overflow_events: u64,
    // Reusable prefetch-candidate scratch — cleared per use, never
    // reallocated on the per-access path.
    pf_scratch: Vec<u64>,
}

impl Hierarchy {
    /// Builds a hierarchy.
    #[must_use]
    pub fn new(cfg: HierarchyConfig) -> Self {
        Hierarchy {
            l1d: Cache::new(cfg.l1d.clone()),
            l1i: Cache::new(cfg.l1i.clone()),
            l2: Cache::new(cfg.l2.clone()),
            l3: Cache::new(cfg.l3.clone()),
            dtlb: TlbHierarchy::table2(),
            itlb: TlbHierarchy::table2(),
            stride: StridePrefetcher::new(256, cfg.stride_degree),
            ampm: AmpmPrefetcher::new(64, 8),
            prefetch_suppressed: false,
            dropped_prefetches: 0,
            overflow_events: 0,
            // audited(no-alloc-in-hot-path): constructor — runs once per simulated hierarchy
            pf_scratch: Vec::new(),
            cfg,
        }
    }

    /// Suppresses (or re-enables) all prefetch issue. The chaos engine
    /// toggles this per cycle to model dropped prefetches; demand
    /// accesses are unaffected, so the perturbation is timing-only.
    pub fn set_prefetch_suppressed(&mut self, suppressed: bool) {
        self.prefetch_suppressed = suppressed;
    }

    /// The oldest outstanding miss (earliest fill completion) across
    /// all cache levels at `cycle`: `(level, line address, fill
    /// cycle)`. Feeds the watchdog's deadlock diagnostic.
    #[must_use]
    pub fn oldest_mshr(&self, cycle: u64) -> Option<(&'static str, u64, u64)> {
        let mut best: Option<(&'static str, u64, u64)> = None;
        for (name, cache) in
            [("l1d", &self.l1d), ("l1i", &self.l1i), ("l2", &self.l2), ("l3", &self.l3)]
        {
            if let Some((line, done)) = cache.oldest_mshr(cycle) {
                if best.is_none_or(|(_, _, d)| done < d) {
                    best = Some((name, line, done));
                }
            }
        }
        best
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Latency (beyond the L1 miss) to obtain a line that missed L1,
    /// accessing and filling the lower levels. `from_l1d` selects
    /// whether the L2's AMPM prefetcher observes the access.
    fn below_l1(&mut self, addr: u64, write: bool, cycle: u64, from_l1d: bool) -> u64 {
        let l2_hit = self.l2.access(addr, write) == Probe::Hit;
        if from_l1d && self.cfg.ampm_prefetcher && !self.prefetch_suppressed {
            let mut pfs = std::mem::take(&mut self.pf_scratch);
            pfs.clear();
            self.ampm.observe_into(addr, cycle, &mut pfs);
            for &pf in &pfs {
                if self.l2.peek(pf) == Probe::Miss {
                    let _ = self.l3.access(pf, false);
                    self.l3.fill(pf, true);
                    self.l2.fill(pf, true);
                }
            }
            self.pf_scratch = pfs;
        }
        if l2_hit {
            return self.cfg.l2.latency;
        }
        let l3_hit = self.l3.access(addr, write) == Probe::Hit;
        let lat = if l3_hit {
            self.cfg.l3.latency
        } else {
            self.l3.fill(addr, false);
            self.cfg.l3.latency + self.cfg.dram_latency
        };
        self.l2.fill(addr, false);
        lat
    }

    /// A demand data access (load or store) issued at `cycle` by the
    /// instruction at `pc`. Returns the completion cycle.
    pub fn data_access(&mut self, pc: u64, vaddr: u64, write: bool, cycle: u64) -> u64 {
        let tlb_lat = self.dtlb.translate(vaddr);
        let base = cycle + tlb_lat;
        let completion = if self.l1d.access(vaddr, write) == Probe::Hit {
            // A prefetched line may still be in flight: the hit cannot
            // complete before its fill does.
            let fill = self.l1d.mshr_pending(vaddr, base).unwrap_or(0);
            (base + self.cfg.l1d.latency).max(fill)
        } else {
            let below = self.below_l1(vaddr, write, base, true);
            let (done, _) = self.l1d.mshr_allocate(vaddr, base, self.cfg.l1d.latency + below);
            self.l1d.fill(vaddr, false);
            done
        };
        // The stride prefetcher observes demand loads.
        if !write && self.cfg.stride_prefetcher {
            let mut pfs = std::mem::take(&mut self.pf_scratch);
            pfs.clear();
            self.stride.observe_into(pc, vaddr, &mut pfs);
            for &pf in &pfs {
                self.prefetch_into_l1d(pf, cycle);
            }
            self.pf_scratch = pfs;
        }
        completion
    }

    fn prefetch_into_l1d(&mut self, addr: u64, cycle: u64) {
        if self.prefetch_suppressed {
            sat_inc(&mut self.dropped_prefetches, &mut self.overflow_events);
            return;
        }
        if self.l1d.peek(addr) == Probe::Miss {
            let below = self.below_l1(addr, false, cycle, false);
            let _ = self.l1d.mshr_allocate(addr, cycle, self.cfg.l1d.latency + below);
            self.l1d.fill(addr, true);
        }
    }

    /// Prefetches the line containing `pc` into the L1I (the
    /// sequential next-line instruction prefetch every decoupled
    /// front-end performs). Records the in-flight fill in the MSHRs so
    /// a demand fetch arriving early waits for the real completion.
    pub fn inst_prefetch(&mut self, pc: u64, cycle: u64) {
        if self.prefetch_suppressed {
            sat_inc(&mut self.dropped_prefetches, &mut self.overflow_events);
            return;
        }
        if self.l1i.peek(pc) == Probe::Miss {
            let below = self.below_l1(pc, false, cycle, false);
            let _ = self.l1i.mshr_allocate(pc, cycle, self.cfg.l1i.latency + below);
            self.l1i.fill(pc, true);
        }
    }

    /// An instruction fetch of the line containing `pc` at `cycle`.
    /// Returns the completion cycle.
    pub fn inst_access(&mut self, pc: u64, cycle: u64) -> u64 {
        let tlb_lat = self.itlb.translate(pc);
        let base = cycle + tlb_lat;
        if self.l1i.access(pc, false) == Probe::Hit {
            let fill = self.l1i.mshr_pending(pc, base).unwrap_or(0);
            (base + self.cfg.l1i.latency).max(fill)
        } else {
            let below = self.below_l1(pc, false, base, false);
            let (done, _) = self.l1i.mshr_allocate(pc, base, self.cfg.l1i.latency + below);
            self.l1i.fill(pc, false);
            done
        }
    }

    /// Aggregated statistics.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1d: self.l1d.stats(),
            l1i: self.l1i.stats(),
            l2: self.l2.stats(),
            l3: self.l3.stats(),
            stride_issued: self.stride.issued(),
            ampm_issued: self.ampm.issued(),
            dropped_prefetches: self.dropped_prefetches,
        }
    }

    /// Walks every per-structure counter in the hierarchy into `reg`
    /// under the `mem.` scope — the memory-side half of the exporter's
    /// counter registry (the core half lives in `Core::export_registry`).
    pub fn fill_registry(&self, reg: &mut Registry) {
        for (name, cache) in
            [("l1d", &self.l1d), ("l1i", &self.l1i), ("l2", &self.l2), ("l3", &self.l3)]
        {
            let s = cache.stats();
            for (field, value) in [
                ("hits", s.hits),
                ("misses", s.misses),
                ("prefetch_fills", s.prefetch_fills),
                ("prefetch_useful", s.prefetch_useful),
                ("evictions", s.evictions),
                ("overflow_events", s.overflow_events),
            ] {
                // audited(no-alloc-in-hot-path): exporter path, runs once per simulation
                reg.counter_scoped(&format!("mem.{name}"), field, value);
            }
        }
        reg.counter("mem.stride_issued", self.stride.issued());
        reg.counter("mem.ampm_issued", self.ampm.issued());
        reg.counter("mem.dropped_prefetches", self.dropped_prefetches);
        for (name, tlb) in [("dtlb", &self.dtlb), ("itlb", &self.itlb)] {
            let ((l1h, l1m), (l2h, l2m)) = tlb.stats();
            for (field, value) in [
                ("l1_hits", l1h),
                ("l1_misses", l1m),
                ("l2_hits", l2h),
                ("l2_misses", l2m),
                ("overflow_events", tlb.overflow_events()),
            ] {
                // audited(no-alloc-in-hot-path): exporter path, runs once per simulation
                reg.counter_scoped(&format!("mem.{name}"), field, value);
            }
        }
        reg.counter("mem.overflow_events", self.overflow_events);
    }
}

impl tvp_verif::StorageBudget for Hierarchy {
    fn storage_name(&self) -> &'static str {
        "mem-hierarchy"
    }

    fn storage_bits(&self) -> u64 {
        self.storage_report().iter().map(|(_, bits)| bits).sum()
    }
}

impl Hierarchy {
    /// Per-structure storage report with hierarchy-level names (the two
    /// TLB instances are distinguished by their role here, which the
    /// structures themselves cannot know).
    #[must_use]
    pub fn storage_report(&self) -> Vec<(String, u64)> {
        use tvp_verif::StorageBudget;
        // audited(no-alloc-in-hot-path): storage report, runs once per config
        vec![
            (self.l1d.storage_name().to_owned(), self.l1d.storage_bits()), // audited(no-alloc-in-hot-path): storage report, runs once per config
            (self.l1i.storage_name().to_owned(), self.l1i.storage_bits()), // audited(no-alloc-in-hot-path): storage report, runs once per config
            (self.l2.storage_name().to_owned(), self.l2.storage_bits()), // audited(no-alloc-in-hot-path): storage report, runs once per config
            (self.l3.storage_name().to_owned(), self.l3.storage_bits()), // audited(no-alloc-in-hot-path): storage report, runs once per config
            ("dtlb".to_owned(), self.dtlb.storage_bits()), // audited(no-alloc-in-hot-path): storage report, runs once per config
            ("itlb".to_owned(), self.itlb.storage_bits()), // audited(no-alloc-in-hot-path): storage report, runs once per config
            (self.stride.storage_name().to_owned(), self.stride.storage_bits()), // audited(no-alloc-in-hot-path): storage report, runs once per config
            (self.ampm.storage_name().to_owned(), self.ampm.storage_bits()), // audited(no-alloc-in-hot-path): storage report, runs once per config
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_prefetch() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            stride_prefetcher: false,
            ampm_prefetcher: false,
            ..HierarchyConfig::default()
        })
    }

    #[test]
    fn cold_miss_pays_full_path_then_hits() {
        let mut h = no_prefetch();
        let addr = 0x4000_0000;
        let t0 = h.data_access(0x1000, addr, false, 1000);
        // TLB walk + L1 + L2 + L3 + DRAM.
        assert!(t0 > 1000 + 4 + 12 + 37 + 170, "cold latency = {}", t0 - 1000);
        let t1 = h.data_access(0x1000, addr, false, 2000);
        assert_eq!(t1, 2000 + 4, "warm L1 hit");
    }

    #[test]
    fn l2_hit_after_l1_eviction_pressure() {
        let mut h = no_prefetch();
        let target = 0x5000_0000u64;
        let _ = h.data_access(0x1000, target, false, 0);
        // Evict from the 128KB 8-way L1 by touching 9+ lines in the
        // same set (set stride = 256 sets × 64B = 16KB).
        for i in 1..=12u64 {
            let _ = h.data_access(0x1000, target + i * 16 * 1024, false, i * 1000);
        }
        let t = h.data_access(0x1000, target, false, 1_000_000);
        assert_eq!(t, 1_000_000 + 4 + 12, "should hit in L2");
    }

    #[test]
    fn stride_prefetcher_hides_latency() {
        let mut base_cycles = 0u64;
        let mut pf_cycles = 0u64;
        for enable in [false, true] {
            let mut h = Hierarchy::new(HierarchyConfig {
                stride_prefetcher: enable,
                ampm_prefetcher: false,
                ..HierarchyConfig::default()
            });
            let mut cycle = 0;
            for i in 0..200u64 {
                let done = h.data_access(0x2000, 0x6000_0000 + i * 64, false, cycle);
                cycle = done;
            }
            if enable {
                pf_cycles = cycle;
            } else {
                base_cycles = cycle;
            }
        }
        assert!(
            pf_cycles < base_cycles / 2,
            "prefetching should cut streaming time: {pf_cycles} vs {base_cycles}"
        );
    }

    #[test]
    fn prefetches_do_not_count_as_demand_misses() {
        let mut h = Hierarchy::new(HierarchyConfig {
            stride_prefetcher: true,
            ampm_prefetcher: false,
            ..HierarchyConfig::default()
        });
        let mut cycle = 0;
        for i in 0..100u64 {
            cycle = h.data_access(0x2000, 0x6000_0000 + i * 64, false, cycle);
        }
        let s = h.stats();
        assert!(s.stride_issued > 0);
        assert!(s.l1d.prefetch_fills > 0);
        assert!(s.l1d.hits + s.l1d.misses == 100, "demand counters see only demand accesses");
    }

    #[test]
    fn instruction_fetch_path() {
        let mut h = no_prefetch();
        let t0 = h.inst_access(0x1000, 0);
        assert!(t0 > 100, "cold I-fetch misses to DRAM");
        let t1 = h.inst_access(0x1000, 500);
        assert_eq!(t1, 501, "1-cycle L1I hit");
        let t2 = h.inst_access(0x1020, 600);
        assert_eq!(t2, 601, "same line");
    }

    #[test]
    fn stores_allocate_lines() {
        let mut h = no_prefetch();
        let _ = h.data_access(0x1000, 0x7000_0000, true, 0);
        let t = h.data_access(0x1000, 0x7000_0000, false, 1000);
        assert_eq!(t, 1004, "write-allocate makes the load hit");
    }

    #[test]
    fn prefetch_suppression_drops_and_counts() {
        let mut h = Hierarchy::new(HierarchyConfig {
            stride_prefetcher: true,
            ampm_prefetcher: false,
            ..HierarchyConfig::default()
        });
        h.set_prefetch_suppressed(true);
        let mut cycle = 0;
        for i in 0..100u64 {
            cycle = h.data_access(0x2000, 0x6000_0000 + i * 64, false, cycle);
        }
        let s = h.stats();
        assert!(s.dropped_prefetches > 0, "suppressed prefetches must be counted");
        assert_eq!(s.l1d.prefetch_fills, 0, "no prefetch reaches the L1D while suppressed");
        h.set_prefetch_suppressed(false);
        for i in 100..200u64 {
            cycle = h.data_access(0x2000, 0x6000_0000 + i * 64, false, cycle);
        }
        assert!(h.stats().l1d.prefetch_fills > 0, "prefetching resumes when re-enabled");
    }

    #[test]
    fn oldest_mshr_reports_the_earliest_outstanding_fill() {
        let mut h = no_prefetch();
        assert_eq!(h.oldest_mshr(0), None);
        let done = h.data_access(0x1000, 0x9000_0000, false, 0);
        let m = h.oldest_mshr(1).expect("a miss is outstanding");
        assert_eq!(m.0, "l1d");
        assert_eq!(m.2, done);
        assert_eq!(h.oldest_mshr(done + 1), None, "fill completed");
    }

    #[test]
    fn mshr_merge_for_same_line() {
        let mut h = no_prefetch();
        let a = h.data_access(0x1000, 0x8000_0000, false, 0);
        let b = h.data_access(0x1004, 0x8000_0020, false, 1);
        // Second access to the same line merges into the first miss
        // (no double DRAM trip). It cannot complete much later.
        assert!(b <= a + 2, "merge expected: {a} vs {b}");
    }
}
