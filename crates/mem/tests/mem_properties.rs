//! Property-based tests of the memory hierarchy.

use proptest::prelude::*;
use tvp_mem::cache::{Cache, CacheConfig, Probe};
use tvp_mem::hierarchy::{Hierarchy, HierarchyConfig};

fn small_cache() -> Cache {
    Cache::new(CacheConfig {
        name: "prop",
        size_bytes: 8 * 1024,
        ways: 4,
        line_size: 64,
        latency: 4,
        mshrs: 8,
    })
}

proptest! {
    #[test]
    fn fill_then_access_always_hits(addr: u64) {
        let mut c = small_cache();
        c.fill(addr, false);
        prop_assert_eq!(c.access(addr, false), Probe::Hit);
        // Same line, different byte.
        prop_assert_eq!(c.access(addr ^ 1, false), Probe::Hit);
    }

    #[test]
    fn working_set_within_one_set_never_thrashes(
        base in 0u64..0x1_0000,
        accesses in proptest::collection::vec(0u64..4, 20..100),
    ) {
        // 4 distinct lines mapping to the same set fit a 4-way cache:
        // after a cold pass, everything hits forever.
        let mut c = small_cache();
        let set_stride = 8 * 1024 / 4; // sets × line = 2KB
        let line = |i: u64| (base & !0x3F) + i * set_stride as u64;
        for i in 0..4 {
            c.fill(line(i), false);
        }
        for i in accesses {
            prop_assert_eq!(c.access(line(i), false), Probe::Hit);
        }
    }

    #[test]
    fn completion_times_are_causal(
        addrs in proptest::collection::vec(0u64..0x10_0000, 1..60),
    ) {
        // An access can never complete before it starts, and repeated
        // access to the same address at a later time never completes
        // earlier than the first access did.
        let mut h = Hierarchy::new(HierarchyConfig {
            stride_prefetcher: false,
            ampm_prefetcher: false,
            ..HierarchyConfig::default()
        });
        let mut cycle = 0u64;
        for a in addrs {
            let aligned = a & !0x7;
            let done = h.data_access(0x1000, aligned, false, cycle);
            prop_assert!(done > cycle, "completion {done} before issue {cycle}");
            let again = h.data_access(0x1000, aligned, false, done);
            prop_assert!(again - done <= done - cycle + 1, "warm access slower than cold");
            cycle = done + 1;
        }
    }

    #[test]
    fn mshr_merge_never_completes_later_than_a_fresh_miss(
        base in 0u64..0x100_0000,
        delta in 1u64..63,
    ) {
        let mut h = Hierarchy::new(HierarchyConfig {
            stride_prefetcher: false,
            ampm_prefetcher: false,
            ..HierarchyConfig::default()
        });
        let line = base & !0x3F;
        let first = h.data_access(0x1000, line, false, 0);
        // Second access to the same line one cycle later merges.
        let merged = h.data_access(0x1000, line + delta, false, 1);
        prop_assert!(merged <= first + 1, "merge {merged} vs first {first}");
    }
}

#[test]
fn lru_keeps_the_hottest_lines() {
    let mut c = small_cache();
    let set_stride = 2 * 1024u64;
    // Five lines for four ways; keep line 0 hot.
    for round in 0..20 {
        for i in 0..5u64 {
            let addr = i * set_stride;
            if c.access(addr, false) == Probe::Miss {
                c.fill(addr, false);
            }
            let _ = c.access(0, false); // keep line 0 hot
        }
        let _ = round;
    }
    assert_eq!(c.access(0, false), Probe::Hit, "hot line must survive");
}
