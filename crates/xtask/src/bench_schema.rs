//! Schema validation for `cargo xtask perf` output
//! (`BENCH_scheduler.json`).
//!
//! Reuses [`trace_schema`]'s dependency-free JSON parser and gates the
//! CI perf-smoke step on the structural promises DESIGN.md §12 makes:
//!
//! * the document is one well-formed JSON object with a numeric
//!   `schema` version, `insts`, `reps` and a boolean `smoke` marker;
//! * `points` is a non-empty array whose entries each carry the
//!   workload/config identity, the simulated `cycles`, the
//!   `best_wall_seconds` timer and the derived `cycles_per_sec`;
//! * the headline `geomean_cycles_per_sec` is a positive number;
//! * baseline comparison fields, when present, are numeric and come as
//!   a pair (`baseline_cycles_per_sec` with `speedup` per point;
//!   `baseline_geomean_cycles_per_sec` with `speedup` at the root).

use crate::trace_schema::{parse, SchemaError, Value};
use std::collections::BTreeMap;

fn err<T>(msg: impl Into<String>) -> Result<T, SchemaError> {
    Err(SchemaError::new(msg))
}

fn get<'v>(obj: &'v BTreeMap<String, Value>, key: &str) -> Result<&'v Value, SchemaError> {
    match obj.get(key) {
        Some(v) => Ok(v),
        None => err(format!("missing required member `{key}`")),
    }
}

fn as_object<'v>(v: &'v Value, what: &str) -> Result<&'v BTreeMap<String, Value>, SchemaError> {
    match v {
        Value::Object(m) => Ok(m),
        other => err(format!("{what} must be an object, found {}", other.type_name())),
    }
}

fn as_number(v: &Value, what: &str) -> Result<f64, SchemaError> {
    match v {
        Value::Number(n) => Ok(*n),
        other => err(format!("{what} must be a number, found {}", other.type_name())),
    }
}

fn as_string<'v>(v: &'v Value, what: &str) -> Result<&'v str, SchemaError> {
    match v {
        Value::String(s) => Ok(s),
        other => err(format!("{what} must be a string, found {}", other.type_name())),
    }
}

/// Validates a scheduler-benchmark record. Returns a one-line summary
/// (point count, geomean, speedup when present) on success.
pub fn validate(src: &str) -> Result<String, SchemaError> {
    let doc = parse(src)?;
    let root = as_object(&doc, "document root")?;
    let schema = as_number(get(root, "schema")?, "`schema`")?;
    as_number(get(root, "insts")?, "`insts`")?;
    as_number(get(root, "reps")?, "`reps`")?;
    if !matches!(get(root, "smoke")?, Value::Bool(_)) {
        return err("`smoke` must be a bool");
    }
    let points = match get(root, "points")? {
        Value::Array(points) => points,
        other => return err(format!("`points` must be an array, found {}", other.type_name())),
    };
    if points.is_empty() {
        return err("`points` must not be empty");
    }
    let mut compared = 0usize;
    for (i, point) in points.iter().enumerate() {
        let p = as_object(point, &format!("points[{i}]"))?;
        as_string(get(p, "workload")?, &format!("points[{i}].workload"))?;
        as_string(get(p, "config")?, &format!("points[{i}].config"))?;
        for key in ["cycles", "best_wall_seconds", "cycles_per_sec"] {
            let n = as_number(get(p, key)?, &format!("points[{i}].{key}"))?;
            if n <= 0.0 {
                return err(format!("points[{i}].{key} must be positive, found {n}"));
            }
        }
        match (p.get("baseline_cycles_per_sec"), p.get("speedup")) {
            (Some(b), Some(s)) => {
                as_number(b, &format!("points[{i}].baseline_cycles_per_sec"))?;
                as_number(s, &format!("points[{i}].speedup"))?;
                compared += 1;
            }
            (None, None) => {}
            _ => {
                return err(format!(
                    "points[{i}] must carry `baseline_cycles_per_sec` and `speedup` together"
                ));
            }
        }
    }
    let geomean = as_number(get(root, "geomean_cycles_per_sec")?, "`geomean_cycles_per_sec`")?;
    if geomean <= 0.0 {
        return err(format!("`geomean_cycles_per_sec` must be positive, found {geomean}"));
    }
    let speedup = match (root.get("baseline_geomean_cycles_per_sec"), root.get("speedup")) {
        (Some(b), Some(s)) => {
            as_number(b, "`baseline_geomean_cycles_per_sec`")?;
            Some(as_number(s, "`speedup`")?)
        }
        (None, None) => None,
        _ => {
            return err("`baseline_geomean_cycles_per_sec` and `speedup` must be present together");
        }
    };
    let mut summary = format!(
        "{} point(s) ({compared} with baseline), schema {schema}, geomean {:.2}M cyc/s",
        points.len(),
        geomean / 1e6
    );
    if let Some(s) = speedup {
        summary.push_str(&format!(", speedup {s:.2}x"));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(extra: &str) -> String {
        format!(
            "{{\"workload\":\"w\",\"config\":\"base\",\"cycles\":100,\
             \"best_wall_seconds\":0.5,\"cycles_per_sec\":200.0{extra}}}"
        )
    }

    fn record(points: &[String], extra: &str) -> String {
        format!(
            "{{\"schema\":1,\"insts\":300000,\"reps\":3,\"smoke\":false,\
             \"points\":[{}],\"geomean_cycles_per_sec\":200.0{extra}}}",
            points.join(",")
        )
    }

    #[test]
    fn plain_record_validates() {
        let r = record(&[point("")], "");
        let summary = validate(&r).expect("valid");
        assert!(summary.contains("1 point(s)"), "{summary}");
        assert!(!summary.contains("speedup"), "{summary}");
    }

    #[test]
    fn baseline_record_reports_speedup() {
        let p = point(",\"baseline_cycles_per_sec\":100.0,\"speedup\":2.0");
        let r = record(&[p], ",\"baseline_geomean_cycles_per_sec\":100.0,\"speedup\":2.0");
        let summary = validate(&r).expect("valid");
        assert!(summary.contains("(1 with baseline)"), "{summary}");
        assert!(summary.contains("speedup 2.00x"), "{summary}");
    }

    #[test]
    fn missing_members_are_rejected() {
        for key in ["schema", "insts", "reps", "smoke", "points", "geomean_cycles_per_sec"] {
            let r = record(&[point("")], "");
            let broken = r.replacen(&format!("\"{key}\""), &format!("\"_{key}\""), 1);
            let e = validate(&broken).expect_err(key).to_string();
            assert!(e.contains(key), "{key}: {e}");
        }
    }

    #[test]
    fn empty_points_are_rejected() {
        let e = validate(&record(&[], "")).expect_err("empty").to_string();
        assert!(e.contains("empty"), "{e}");
    }

    #[test]
    fn non_positive_metrics_are_rejected() {
        let r = record(&[point("")], "").replace("\"cycles\":100", "\"cycles\":0");
        let e = validate(&r).expect_err("zero cycles").to_string();
        assert!(e.contains("positive"), "{e}");
    }

    #[test]
    fn unpaired_baseline_fields_are_rejected() {
        let p = point(",\"baseline_cycles_per_sec\":100.0");
        let e = validate(&record(&[p], "")).expect_err("unpaired").to_string();
        assert!(e.contains("together"), "{e}");

        let r = record(&[point("")], ",\"speedup\":2.0");
        let e = validate(&r).expect_err("unpaired root").to_string();
        assert!(e.contains("together"), "{e}");
    }
}
