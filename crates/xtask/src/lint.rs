//! The simulator-specific lint rules.
//!
//! Four rules, each a property a cycle-level simulator must keep but no
//! off-the-shelf linter checks:
//!
//! 1. **no-default-hashmap** — simulator-state code must not use
//!    `HashMap`/`HashSet` with the default `RandomState`: iteration
//!    order would leak into simulated behaviour and break run-to-run
//!    determinism. Use `BTreeMap`/`BTreeSet` (or an explicit seeded
//!    hasher).
//! 2. **no-panic-in-hot-path** — per-cycle pipeline modules must not
//!    reach `panic!`/`unreachable!`/`.unwrap()`; the simulator should
//!    stall or saturate instead. `.expect("non-empty invariant text")`
//!    is the sanctioned form for genuinely unreachable states — the
//!    message *is* the audit; an empty message is a violation.
//! 3. **no-float-in-arch-state** — modules that update architectural
//!    state (register files, rename maps, memory, predictor tables)
//!    must stay in integer arithmetic; floats belong in reporting code
//!    and the FP datapath only.
//! 4. **storage-budget-coverage** — every public struct modelling a
//!    hardware table in `crates/predictors` and `crates/mem` must
//!    implement `tvp_verif::StorageBudget`, so the Table 2 budget
//!    assertion sees the whole machine.
//! 5. **no-alloc-in-hot-path** — per-cycle pipeline modules must not
//!    heap-allocate (`Vec::new`/`vec!`/`.collect()`/`Box::new`/
//!    `format!`/…) on the simulation path; per-µop structures have
//!    architecturally bounded cardinality and belong in inline arrays
//!    ([`tvp_core::inline_vec`]) or reusable scratch buffers owned by
//!    the component. One-time construction, reset and diagnostic paths
//!    are fine — waive them with `// audited: <reason>`.
//! 6. **no-println-in-sim-crates** — the simulation crates (`core`,
//!    `mem`, `predictors`, `obs`) must not write to stdout/stderr with
//!    `println!`/`eprintln!`/`print!`/`eprint!`: ad-hoc prints desync
//!    parallel bench output and bypass the structured observability
//!    layer (event trace, CPI stack, counter registry). Reporting
//!    belongs in the bench/harness crates; genuinely diagnostic prints
//!    need an `// audited: <reason>` waiver.
//!
//! A finding on any line is waived when that line (or the line directly
//! above it) carries an `// audited: <reason>` comment.

use std::fmt;
use std::path::{Path, PathBuf};

/// The waiver token: a line (or its predecessor) containing this marker
/// suppresses findings on it.
const WAIVER: &str = "audited:";

/// Crates whose source the scanner walks. The proptest shim is
/// vendored third-party-shaped code; xtask itself is host tooling.
const SCANNED_CRATES: &[&str] =
    &["bench", "chaos", "core", "harness", "isa", "mem", "obs", "predictors", "verif", "workloads"];

/// Crates that must stay print-free (rule 6): everything on the
/// simulation side of the bench/harness boundary.
const SILENT_CRATES: &[&str] = &["core", "mem", "obs", "predictors"];

/// Per-cycle hot-path modules (rule 2).
const HOT_PATH_FILES: &[&str] = &[
    "crates/chaos/src/engine.rs",
    "crates/chaos/src/oracle.rs",
    "crates/chaos/src/rng.rs",
    "crates/chaos/src/watchdog.rs",
    "crates/core/src/inline_vec.rs",
    "crates/core/src/physreg.rs",
    "crates/core/src/pipeline.rs",
    "crates/core/src/rename.rs",
    "crates/core/src/scheduler.rs",
    "crates/core/src/storesets.rs",
    "crates/mem/src/cache.rs",
    "crates/mem/src/hierarchy.rs",
    "crates/mem/src/prefetch.rs",
    "crates/mem/src/tlb.rs",
    "crates/obs/src/counters.rs",
    "crates/obs/src/cpi.rs",
    "crates/obs/src/event.rs",
    "crates/predictors/src/btb.rs",
    "crates/predictors/src/history.rs",
    "crates/predictors/src/indirect.rs",
    "crates/predictors/src/ras.rs",
    "crates/predictors/src/tage.rs",
    "crates/predictors/src/vtage.rs",
];

/// Architectural-state modules (rule 3). The FP datapath
/// (`crates/isa/src/exec.rs`) is deliberately absent: it *computes* FP
/// instruction results; it does not keep state in floats.
const ARCH_STATE_FILES: &[&str] = &[
    "crates/chaos/src/oracle.rs",
    "crates/core/src/physreg.rs",
    "crates/core/src/rename.rs",
    "crates/core/src/spsr.rs",
    "crates/core/src/storesets.rs",
    "crates/mem/src/cache.rs",
    "crates/mem/src/prefetch.rs",
    "crates/mem/src/tlb.rs",
    "crates/workloads/src/machine.rs",
];

/// Crates whose public structs must implement `StorageBudget` (rule 4).
const BUDGET_CRATES: &[&str] = &["predictors", "mem"];

/// Struct-name suffixes exempt from rule 4: configuration,
/// statistics and plain-data result types model no hardware storage.
const BUDGET_EXEMPT_SUFFIXES: &[&str] =
    &["Config", "Stats", "Token", "Pred", "Hit", "Item", "Report", "Spec"];

/// Named rule-4 exemptions: helper types that are not hardware tables.
const BUDGET_EXEMPT_NAMES: &[&str] = &["XorShift64"];

/// One lint violation.
#[derive(Debug)]
pub struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// A source line that survived test-module stripping: its 1-based
/// number, the raw text (for waiver detection) and the text with
/// comments removed (for pattern matching).
struct CodeLine {
    line_no: usize,
    raw: String,
    code: String,
}

/// Removes `//`-comments, respecting string and char literals well
/// enough for lint purposes.
fn strip_comment(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_string => i += 1, // skip the escaped byte
            b'"' => in_string = !in_string,
            b'/' if !in_string && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return line[..i].to_owned();
            }
            _ => {}
        }
        i += 1;
    }
    line.to_owned()
}

fn brace_delta(code: &str) -> i64 {
    let mut delta = 0i64;
    let mut in_string = false;
    let mut prev = ' ';
    for c in code.chars() {
        match c {
            '"' if prev != '\\' => in_string = !in_string,
            '{' if !in_string => delta += 1,
            '}' if !in_string => delta -= 1,
            _ => {}
        }
        prev = if prev == '\\' && c == '\\' { ' ' } else { c };
    }
    delta
}

/// The lines of `src` outside `#[cfg(test)]` modules. Test code is free
/// to unwrap, hash and float; the rules only bind simulation code.
fn code_lines(src: &str) -> Vec<CodeLine> {
    let mut out = Vec::new();
    let mut pending_test_attr = false;
    // While skipping a test module: (brace depth, whether its `{` has
    // been seen yet).
    let mut skipping: Option<(i64, bool)> = None;
    for (idx, raw) in src.lines().enumerate() {
        let code = strip_comment(raw);
        if let Some((depth, entered)) = skipping.as_mut() {
            *depth += brace_delta(&code);
            if code.contains('{') {
                *entered = true;
            }
            if *entered && *depth <= 0 {
                skipping = None;
            }
            continue;
        }
        let trimmed = code.trim_start();
        if trimmed.starts_with("#[cfg(") && trimmed.contains("test") {
            pending_test_attr = true;
            continue;
        }
        if pending_test_attr {
            if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                let delta = brace_delta(&code);
                let entered = code.contains('{');
                if !(entered && delta <= 0) {
                    skipping = Some((delta, entered));
                }
                pending_test_attr = false;
                continue;
            }
            if trimmed.starts_with("#[") || trimmed.is_empty() {
                continue; // stacked attributes on the test module
            }
            // `#[cfg(test)]` on a non-module item: skip just that line.
            pending_test_attr = false;
            continue;
        }
        out.push(CodeLine { line_no: idx + 1, raw: raw.to_owned(), code });
    }
    out
}

/// Is the finding on `lines[i]` waived by an `audited:` comment on the
/// same or preceding line?
fn waived(lines: &[CodeLine], i: usize) -> bool {
    lines[i].raw.contains(WAIVER)
        || (i > 0
            && lines[i].line_no == lines[i - 1].line_no + 1
            && lines[i - 1].raw.contains(WAIVER))
}

/// Whole-word occurrence check: `needle` in `hay` not glued to an
/// identifier character on either side.
fn has_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Rule 1: default-hashed collections in simulator-state code.
fn check_default_hashmap(file: &str, lines: &[CodeLine], out: &mut Vec<Finding>) {
    for (i, l) in lines.iter().enumerate() {
        let uses_hash = has_word(&l.code, "HashMap") || has_word(&l.code, "HashSet");
        if !uses_hash || waived(lines, i) {
            continue;
        }
        // An explicit hasher is fine; the rule targets RandomState.
        if l.code.contains("BuildHasher") || l.code.contains("with_hasher") {
            continue;
        }
        out.push(Finding {
            file: file.to_owned(),
            line: l.line_no,
            rule: "no-default-hashmap",
            msg: "HashMap/HashSet iteration order is randomized and breaks simulator \
                  determinism; use BTreeMap/BTreeSet or a seeded hasher"
                .to_owned(),
        });
    }
}

/// Rule 2: panics in per-cycle hot-path modules.
fn check_hot_path_panics(file: &str, lines: &[CodeLine], out: &mut Vec<Finding>) {
    const BANNED: &[&str] = &[".unwrap()", "panic!(", "unreachable!(", "todo!(", "unimplemented!("];
    for (i, l) in lines.iter().enumerate() {
        if waived(lines, i) {
            continue;
        }
        for pat in BANNED {
            if l.code.contains(pat) {
                out.push(Finding {
                    file: file.to_owned(),
                    line: l.line_no,
                    rule: "no-panic-in-hot-path",
                    msg: format!(
                        "`{}` in a per-cycle module: stall or saturate instead, or \
                         document the invariant with `.expect(\"...\")` / `// audited:`",
                        pat.trim_start_matches('.')
                    ),
                });
            }
        }
        if l.code.contains(".expect(\"\")") || l.code.contains(".expect()") {
            out.push(Finding {
                file: file.to_owned(),
                line: l.line_no,
                rule: "no-panic-in-hot-path",
                msg: "`.expect` without an invariant message; state why this cannot fire"
                    .to_owned(),
            });
        }
    }
}

/// Rule 5: heap allocation in per-cycle hot-path modules.
fn check_hot_path_allocs(file: &str, lines: &[CodeLine], out: &mut Vec<Finding>) {
    const BANNED: &[&str] = &[
        "Vec::new()",
        "Vec::with_capacity(",
        "vec![",
        ".collect()",
        ".to_vec()",
        "Box::new(",
        "String::new()",
        "String::from(",
        "format!(",
        ".to_owned()",
        ".to_string()",
    ];
    for (i, l) in lines.iter().enumerate() {
        if waived(lines, i) {
            continue;
        }
        for pat in BANNED {
            // `InlineVec::new()` is not `Vec::new()` — see hit_unglued.
            if hit_unglued(&l.code, pat) {
                out.push(Finding {
                    file: file.to_owned(),
                    line: l.line_no,
                    rule: "no-alloc-in-hot-path",
                    msg: format!(
                        "`{}` in a per-cycle module: per-µop state is architecturally \
                         bounded — use an inline array or a reusable scratch buffer, or \
                         waive construction/diagnostic paths with `// audited:`",
                        pat.trim_start_matches('.')
                    ),
                });
            }
        }
    }
}

/// Rule 6: stdout/stderr writes in simulation crates.
fn check_sim_crate_prints(file: &str, lines: &[CodeLine], out: &mut Vec<Finding>) {
    const BANNED: &[&str] = &["println!(", "eprintln!(", "print!(", "eprint!("];
    for (i, l) in lines.iter().enumerate() {
        if waived(lines, i) {
            continue;
        }
        for pat in BANNED {
            if hit_unglued(&l.code, pat) {
                out.push(Finding {
                    file: file.to_owned(),
                    line: l.line_no,
                    rule: "no-println-in-sim-crates",
                    msg: format!(
                        "`{}` in a simulation crate: route output through the \
                         observability layer (event trace / counter registry) or the \
                         bench reporting code, or waive with `// audited:`",
                        pat.trim_end_matches('(')
                    ),
                });
            }
        }
    }
}

/// Occurrence check where a pattern starting with an identifier
/// character must not be glued to a preceding identifier character
/// (`my_println!(` is not `println!(`).
fn hit_unglued(code: &str, pat: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(pat) {
        let at = start + pos;
        let head_is_ident = pat.starts_with(|c: char| c.is_alphanumeric());
        let glued = head_is_ident
            && code[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !glued {
            return true;
        }
        start = at + pat.len();
    }
    false
}

/// Rule 3: floating point in architectural-state updates.
fn check_arch_state_floats(file: &str, lines: &[CodeLine], out: &mut Vec<Finding>) {
    for (i, l) in lines.iter().enumerate() {
        if waived(lines, i) {
            continue;
        }
        for ty in ["f64", "f32"] {
            if has_word(&l.code, ty) {
                out.push(Finding {
                    file: file.to_owned(),
                    line: l.line_no,
                    rule: "no-float-in-arch-state",
                    msg: format!(
                        "`{ty}` in an architectural-state module: architectural updates \
                         must be bit-exact integer operations"
                    ),
                });
            }
        }
    }
}

/// Rule 4: every public struct in the hardware-table crates implements
/// `StorageBudget` (or is an exempted plain-data type).
fn check_budget_coverage(files: &[(String, Vec<CodeLine>)], out: &mut Vec<Finding>) {
    let mut structs: Vec<(String, usize, String)> = Vec::new(); // (file, line, name)
    let mut implemented: Vec<String> = Vec::new();
    let ident = |s: &str| -> String {
        s.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect()
    };
    for (file, lines) in files {
        for l in lines {
            let t = l.code.trim_start();
            if let Some(rest) = t.strip_prefix("pub struct ") {
                let name = ident(rest);
                if !name.is_empty() {
                    structs.push((file.clone(), l.line_no, name));
                }
            }
            if let Some(pos) = l.code.find("StorageBudget for ") {
                let name = ident(&l.code[pos + "StorageBudget for ".len()..]);
                if !name.is_empty() {
                    implemented.push(name);
                }
            }
        }
    }
    for (file, line, name) in structs {
        let exempt = BUDGET_EXEMPT_NAMES.contains(&name.as_str())
            || BUDGET_EXEMPT_SUFFIXES.iter().any(|s| name.ends_with(s));
        if exempt || implemented.contains(&name) {
            continue;
        }
        out.push(Finding {
            file,
            line,
            rule: "storage-budget-coverage",
            msg: format!(
                "pub struct `{name}` implements no `StorageBudget`: hardware tables \
                 must report their bits for the Table 2 budget assertion \
                 (or add an exemption if it models no storage)"
            ),
        });
    }
}

/// The workspace root, derived from this crate's manifest directory.
#[must_use]
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).expect("crates/xtask sits two levels down").to_owned()
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
}

/// Runs every rule over the workspace at `root`, returning all
/// findings (empty = clean tree).
#[must_use]
pub fn run(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut budget_files: Vec<(String, Vec<CodeLine>)> = Vec::new();
    for krate in SCANNED_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        let mut sources = Vec::new();
        rust_sources(&src_dir, &mut sources);
        for path in sources {
            let Ok(src) = std::fs::read_to_string(&path) else { continue };
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            let lines = code_lines(&src);
            check_default_hashmap(&rel, &lines, &mut findings);
            if HOT_PATH_FILES.contains(&rel.as_str()) {
                check_hot_path_panics(&rel, &lines, &mut findings);
                check_hot_path_allocs(&rel, &lines, &mut findings);
            }
            if ARCH_STATE_FILES.contains(&rel.as_str()) {
                check_arch_state_floats(&rel, &lines, &mut findings);
            }
            if SILENT_CRATES.contains(krate) {
                check_sim_crate_prints(&rel, &lines, &mut findings);
            }
            if BUDGET_CRATES.contains(krate) {
                budget_files.push((rel, lines));
            }
        }
    }
    check_budget_coverage(&budget_files, &mut findings);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(src: &str) -> Vec<CodeLine> {
        code_lines(src)
    }

    #[test]
    fn comments_are_stripped_but_strings_survive() {
        assert_eq!(strip_comment("let x = 1; // HashMap"), "let x = 1; ");
        assert_eq!(strip_comment(r#"let s = "no // comment";"#), r#"let s = "no // comment";"#);
        assert_eq!(strip_comment("// all comment"), "");
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn also_hot() {}\n";
        let ls = lines(src);
        let kept: Vec<&str> = ls.iter().map(|l| l.raw.as_str()).collect();
        assert_eq!(kept, ["fn hot() {}", "fn also_hot() {}"]);
    }

    #[test]
    fn seeded_hashmap_violation_is_flagged() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u64, u64> }\n";
        let mut out = Vec::new();
        check_default_hashmap("x.rs", &lines(src), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].rule, "no-default-hashmap");
    }

    #[test]
    fn hashmap_in_test_module_is_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let mut out = Vec::new();
        check_default_hashmap("x.rs", &lines(src), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn hashmap_waiver_is_honored() {
        let src = "// audited: seeded hasher wrapper\nuse std::collections::HashMap;\n";
        let mut out = Vec::new();
        check_default_hashmap("x.rs", &lines(src), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn identifier_containing_hashmap_is_not_a_word_match() {
        assert!(!has_word("let my_hashmap_like = 1;", "HashMap"));
        assert!(has_word("let m: HashMap<u8, u8>;", "HashMap"));
    }

    #[test]
    fn seeded_unwrap_violation_is_flagged() {
        let src = "fn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
        let mut out = Vec::new();
        check_hot_path_panics("x.rs", &lines(src), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "no-panic-in-hot-path");
    }

    #[test]
    fn documented_expect_is_allowed_but_empty_message_is_not() {
        let ok = "let x = v.expect(\"ROB head exists: checked above\");\n";
        let bad = "let x = v.expect(\"\");\n";
        let mut out = Vec::new();
        check_hot_path_panics("x.rs", &lines(ok), &mut out);
        assert!(out.is_empty(), "{out:?}");
        check_hot_path_panics("x.rs", &lines(bad), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn audited_unreachable_is_waived() {
        let src = "match op {\n    A => 1,\n    // audited: decoder emits only A here\n    _ => unreachable!(),\n}\n";
        let mut out = Vec::new();
        check_hot_path_panics("x.rs", &lines(src), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unwrap_in_comment_is_not_flagged() {
        let src = "let x = 1; // previously v.unwrap()\n";
        let mut out = Vec::new();
        check_hot_path_panics("x.rs", &lines(src), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn seeded_alloc_violation_is_flagged() {
        let src = "fn rename(&mut self) { let deps: Vec<Dep> = uop.srcs().iter().collect(); }\n";
        let mut out = Vec::new();
        check_hot_path_allocs("x.rs", &lines(src), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "no-alloc-in-hot-path");
    }

    #[test]
    fn inline_vec_new_is_not_vec_new() {
        let src = "let names: InlineVec<PhysName, 2> = InlineVec::new();\n";
        let mut out = Vec::new();
        check_hot_path_allocs("x.rs", &lines(src), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn audited_alloc_is_waived_and_tests_are_exempt() {
        let src = "// audited: constructor, runs once per simulation\n\
                   fn new() -> Self { Self { rob: Vec::new() } }\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn t() { let v = vec![1]; }\n}\n";
        let mut out = Vec::new();
        check_hot_path_allocs("x.rs", &lines(src), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn seeded_float_violation_is_flagged() {
        let src = "fn update(&mut self) { self.value += 0.5_f64 as f64 as u64 as f64; }\n";
        let mut out = Vec::new();
        check_arch_state_floats("x.rs", &lines(src), &mut out);
        assert!(!out.is_empty());
        assert_eq!(out[0].rule, "no-float-in-arch-state");
    }

    #[test]
    fn budget_coverage_flags_uncovered_tables_only() {
        let src = "pub struct MyTable { bits: u64 }\n\
                   pub struct MyTableConfig { n: usize }\n\
                   pub struct Covered;\n\
                   impl tvp_verif::StorageBudget for Covered {\n}\n";
        let files = vec![("t.rs".to_owned(), code_lines(src))];
        let mut out = Vec::new();
        check_budget_coverage(&files, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("MyTable"));
        assert_eq!(out[0].rule, "storage-budget-coverage");
    }

    #[test]
    fn seeded_println_violation_is_flagged() {
        let src = "fn step(&mut self) { println!(\"cycle {}\", self.cycle); }\n";
        let mut out = Vec::new();
        check_sim_crate_prints("x.rs", &lines(src), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "no-println-in-sim-crates");
    }

    #[test]
    fn audited_eprintln_is_waived_and_tests_are_exempt() {
        let src = "// audited: one-shot divergence diagnostic\n\
                   fn dump(&self) { eprintln!(\"{}\", self.report()); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn t() { println!(\"debugging\"); }\n}\n";
        let mut out = Vec::new();
        check_sim_crate_prints("x.rs", &lines(src), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn custom_macro_ending_in_println_is_not_flagged() {
        let src = "fn f() { my_println!(\"into a buffer\"); }\n";
        let mut out = Vec::new();
        check_sim_crate_prints("x.rs", &lines(src), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn shipped_tree_is_clean() {
        let findings = run(&workspace_root());
        let rendered: Vec<String> = findings.iter().map(ToString::to_string).collect();
        assert!(findings.is_empty(), "{}", rendered.join("\n"));
    }
}
