//! The `tvp-analyzer` static-analysis engine behind `cargo xtask lint`.
//!
//! A token-level analysis pass (see [`crate::lex`] and [`crate::items`])
//! over the workspace, replacing the original regex line scanner: rules
//! operate on a spanned token stream with `#[cfg(test)]` /
//! `#[cfg(feature = "verif")]` region tracking, so string literals, doc
//! comments and test code can never produce false positives, and
//! cross-file facts (trait coverage, export reachability) are first
//! class.
//!
//! Ten rules, each a property a cycle-level simulator must keep but no
//! off-the-shelf linter checks:
//!
//! 1. **no-default-hashmap** — simulator-state code must not use
//!    `HashMap`/`HashSet` with the default `RandomState`: iteration
//!    order would leak into simulated behaviour and break run-to-run
//!    determinism. Use `BTreeMap`/`BTreeSet` (or an explicit seeded
//!    hasher).
//! 2. **no-panic-in-hot-path** — per-cycle pipeline modules must not
//!    reach `panic!`/`unreachable!`/`.unwrap()`; the simulator should
//!    stall or saturate instead. `.expect("non-empty invariant text")`
//!    is the sanctioned form for genuinely unreachable states — the
//!    message *is* the audit; an empty message is a violation.
//! 3. **no-float-in-arch-state** — modules that update architectural
//!    state (register files, rename maps, memory, predictor tables)
//!    must stay in integer arithmetic; floats belong in reporting code
//!    and the FP datapath only. Float *literal suffixes* (`2.5_f64`)
//!    count too.
//! 4. **storage-budget-coverage** — every public struct modelling a
//!    hardware table in `crates/predictors` and `crates/mem` must
//!    implement `tvp_verif::StorageBudget`, so the Table 2 budget
//!    assertion sees the whole machine.
//! 5. **no-alloc-in-hot-path** — per-cycle pipeline modules must not
//!    heap-allocate (`Vec::new`/`vec!`/`.collect()`/`Box::new`/
//!    `format!`/…) on the simulation path; per-µop structures have
//!    architecturally bounded cardinality and belong in inline arrays
//!    ([`tvp_core::inline_vec`]) or reusable scratch buffers owned by
//!    the component. One-time construction, reset and diagnostic paths
//!    are fine — waive them.
//! 6. **no-println-in-sim-crates** — the simulation crates (`core`,
//!    `mem`, `predictors`, `obs`) must not write to stdout/stderr with
//!    `println!`/`eprintln!`/`print!`/`eprint!`: ad-hoc prints desync
//!    parallel bench output and bypass the structured observability
//!    layer. Reporting belongs in the bench/harness crates.
//! 7. **determinism-audit** — the simulation crates (`core`, `mem`,
//!    `predictors`, `isa`, `obs`) must not observe anything outside the
//!    simulated machine: no wall-clock time (`Instant`/`SystemTime`),
//!    no environment reads (`std::env::var` & friends), no randomized
//!    hashing (`RandomState`/`DefaultHasher`), no pointer-value
//!    observation (`.as_ptr() as usize`, `.addr()`, `expose_addr`).
//!    Any of these makes serial≡parallel and golden-fingerprint
//!    equivalence silently false. `#[cfg(feature = "verif")]`
//!    diagnostic regions are exempt. The durable result store under
//!    `crates/bench/src/store/` opts in file-by-file
//!    ([`DETERMINISM_FILES`]) even though the rest of `tvp-bench` is
//!    exempt: its blob bytes and journal records feed the cold ≡ warm
//!    ≡ kill-resume byte-identity guarantee.
//! 8. **counter-export-coverage** — every public counter field on a
//!    `*Stats` struct in the simulation crates must be reachable from
//!    the registry exporters (`Core::export_registry` /
//!    `Hierarchy::fill_registry`), directly or through helper methods;
//!    an unexported counter silently vanishes from every report (the
//!    static form of the `spsr_squashed` clobber bug).
//! 9. **saturating-counter** — statistics counters never wrap: raw
//!    `+=`/`-=` or `wrapping_add`/`wrapping_sub` on a `*Stats` field is
//!    a violation; use `sat_inc`/`sat_add` from `tvp_obs::counters`.
//! 10. **stale-waiver** — every waiver comment must name the rule it
//!     suppresses (`// audited(<rule>): <reason>`) and must actually
//!     suppress a finding on its own line or the next; a ruleless,
//!     unknown-rule or no-op waiver is itself an error, so waivers can
//!     never silently outlive the code they excused. Stale-waiver
//!     findings cannot themselves be waived.
//!
//! ## Waiver contract
//!
//! A finding on line *N* is suppressed exactly when line *N* or line
//! *N − 1* carries a line comment `// audited(<rule>): <reason>` naming
//! that finding's rule. Doc comments are never waivers. Rule 10 audits
//! every waiver in the tree.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

use crate::items::{self, FileItems};
use crate::lex::{lex, Tok, TokKind};

/// Every rule name the engine knows; a waiver must name one of these.
pub const RULES: &[&str] = &[
    "no-default-hashmap",
    "no-panic-in-hot-path",
    "no-float-in-arch-state",
    "storage-budget-coverage",
    "no-alloc-in-hot-path",
    "no-println-in-sim-crates",
    "determinism-audit",
    "counter-export-coverage",
    "saturating-counter",
    "stale-waiver",
];

/// Crates whose source the analyzer walks. The proptest shim is
/// vendored third-party-shaped code; xtask itself is host tooling.
const SCANNED_CRATES: &[&str] =
    &["bench", "chaos", "core", "harness", "isa", "mem", "obs", "predictors", "verif", "workloads"];

/// Crates that must stay print-free (rule 6): everything on the
/// simulation side of the bench/harness boundary.
const SILENT_CRATES: &[&str] = &["core", "mem", "obs", "predictors"];

/// Crates bound by the determinism audit (rule 7): everything that can
/// influence or observe simulated state.
const DETERMINISM_CRATES: &[&str] = &["core", "isa", "mem", "obs", "predictors"];

/// Individual files bound by the determinism audit in crates that are
/// otherwise exempt. `tvp-bench` legitimately reads wall clocks and
/// the environment (telemetry, CLI resolution), but its durable result
/// store must stay a pure function of its inputs — blob bytes and
/// journal records feed the byte-identity guarantee — so the store
/// module opts in file-by-file instead of waiving rule-by-rule.
const DETERMINISM_FILES: &[&str] = &[
    "crates/bench/src/distributed.rs",
    "crates/bench/src/store/blob.rs",
    "crates/bench/src/store/checkpoint.rs",
    "crates/bench/src/store/fsck.rs",
    "crates/bench/src/store/lease.rs",
    "crates/bench/src/store/manifest.rs",
    "crates/bench/src/store/mod.rs",
    "crates/bench/src/sampling.rs",
];

/// Crates whose `*Stats` structs must be export-reachable (rule 8).
const EXPORT_CRATES: &[&str] = &["core", "mem", "obs", "predictors"];

/// Crates bound by the saturating-counter rule (rule 9).
const SATURATING_CRATES: &[&str] = &["chaos", "core", "mem", "obs", "predictors"];

/// Per-cycle hot-path modules (rules 2 and 5).
const HOT_PATH_FILES: &[&str] = &[
    "crates/chaos/src/engine.rs",
    "crates/chaos/src/oracle.rs",
    "crates/chaos/src/rng.rs",
    "crates/chaos/src/watchdog.rs",
    "crates/core/src/inline_vec.rs",
    "crates/core/src/physreg.rs",
    "crates/core/src/pipeline.rs",
    "crates/core/src/rename.rs",
    "crates/core/src/scheduler.rs",
    "crates/core/src/storesets.rs",
    "crates/mem/src/cache.rs",
    "crates/mem/src/hierarchy.rs",
    "crates/mem/src/prefetch.rs",
    "crates/mem/src/tlb.rs",
    "crates/obs/src/counters.rs",
    "crates/obs/src/cpi.rs",
    "crates/obs/src/event.rs",
    "crates/predictors/src/btb.rs",
    "crates/predictors/src/history.rs",
    "crates/predictors/src/indirect.rs",
    "crates/predictors/src/ras.rs",
    "crates/predictors/src/tage.rs",
    "crates/predictors/src/vtage.rs",
];

/// Architectural-state modules (rule 3). The FP datapath
/// (`crates/isa/src/exec.rs`) is deliberately absent: it *computes* FP
/// instruction results; it does not keep state in floats.
const ARCH_STATE_FILES: &[&str] = &[
    "crates/chaos/src/oracle.rs",
    "crates/core/src/physreg.rs",
    "crates/core/src/rename.rs",
    "crates/core/src/spsr.rs",
    "crates/core/src/storesets.rs",
    "crates/mem/src/cache.rs",
    "crates/mem/src/prefetch.rs",
    "crates/mem/src/tlb.rs",
    "crates/workloads/src/machine.rs",
];

/// Crates whose public structs must implement `StorageBudget` (rule 4).
const BUDGET_CRATES: &[&str] = &["predictors", "mem"];

/// Struct-name suffixes exempt from rule 4: configuration,
/// statistics and plain-data result types model no hardware storage.
const BUDGET_EXEMPT_SUFFIXES: &[&str] =
    &["Config", "Stats", "Token", "Pred", "Hit", "Item", "Report", "Spec"];

/// Named rule-4 exemptions: helper types that are not hardware tables.
const BUDGET_EXEMPT_NAMES: &[&str] = &["XorShift64"];

/// The registry exporter functions whose bodies root the rule-8
/// reachability closure.
const EXPORT_ROOTS: &[&str] = &["export_registry", "fill_registry"];

/// One lint violation.
#[derive(Debug)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// One source file handed to [`analyze`]: workspace-relative path
/// (which selects the rules that apply) and contents.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated
    /// (`crates/core/src/pipeline.rs`).
    pub rel: String,
    /// File contents.
    pub src: String,
}

/// A lexed and item-parsed file plus the cursor helpers rules use.
struct Fa {
    rel: String,
    krate: String,
    src: String,
    toks: Vec<Tok>,
    items: FileItems,
}

impl Fa {
    fn new(f: SourceFile) -> Fa {
        let toks = lex(&f.src);
        let items = items::parse(&f.src, &toks);
        let krate = f
            .rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_owned();
        Fa { rel: f.rel, krate, src: f.src, toks, items }
    }

    fn text(&self, ti: usize) -> &str {
        &self.src[self.toks[ti].lo..self.toks[ti].hi]
    }

    /// Text of code token `ci` (empty past end — safe lookahead).
    fn ct(&self, ci: usize) -> &str {
        match self.items.code.get(ci) {
            Some(&ti) => self.text(ti),
            None => "",
        }
    }

    fn ckind(&self, ci: usize) -> Option<TokKind> {
        self.items.code.get(ci).map(|&ti| self.toks[ti].kind)
    }

    fn cline(&self, ci: usize) -> usize {
        self.items.code.get(ci).map_or(0, |&ti| self.toks[ti].line)
    }

    /// Outside `#[cfg(test)]` regions.
    fn live(&self, ci: usize) -> bool {
        self.items.code.get(ci).is_some_and(|&ti| !self.items.flags[ti].in_test)
    }

    /// Outside both test and `verif` diagnostic regions.
    fn live_strict(&self, ci: usize) -> bool {
        self.items
            .code
            .get(ci)
            .is_some_and(|&ti| !self.items.flags[ti].in_test && !self.items.flags[ti].in_verif)
    }

    fn finding(&self, out: &mut Vec<Finding>, ci: usize, rule: &'static str, msg: String) {
        out.push(Finding { file: self.rel.clone(), line: self.cline(ci), rule, msg });
    }
}

/// Rule 1: default-hashed collections in simulator-state code.
fn rule_default_hashmap(fa: &Fa, out: &mut Vec<Finding>) {
    let n = fa.items.code.len();
    for ci in 0..n {
        if !fa.live(ci) || fa.ckind(ci) != Some(TokKind::Ident) {
            continue;
        }
        let t = fa.ct(ci);
        if t != "HashMap" && t != "HashSet" {
            continue;
        }
        // An explicit hasher is fine; the rule targets RandomState.
        // "Explicit" = the same source line names one.
        let line = fa.cline(ci);
        let mut j = ci;
        while j > 0 && fa.cline(j - 1) == line {
            j -= 1;
        }
        let mut excused = false;
        while j < n && fa.cline(j) == line {
            if fa.ct(j).starts_with("BuildHasher") || fa.ct(j) == "with_hasher" {
                excused = true;
            }
            j += 1;
        }
        if !excused {
            fa.finding(
                out,
                ci,
                "no-default-hashmap",
                "HashMap/HashSet iteration order is randomized and breaks simulator \
                 determinism; use BTreeMap/BTreeSet or a seeded hasher"
                    .to_owned(),
            );
        }
    }
}

/// Rule 2: panics in per-cycle hot-path modules.
fn rule_hot_path_panics(fa: &Fa, out: &mut Vec<Finding>) {
    for ci in 0..fa.items.code.len() {
        if !fa.live(ci) || fa.ckind(ci) != Some(TokKind::Ident) {
            continue;
        }
        let t = fa.ct(ci);
        let dotted = ci > 0 && fa.ct(ci - 1) == ".";
        match t {
            "panic" | "unreachable" | "todo" | "unimplemented" if fa.ct(ci + 1) == "!" => {
                fa.finding(
                    out,
                    ci,
                    "no-panic-in-hot-path",
                    format!(
                        "`{t}!(` in a per-cycle module: stall or saturate instead, or \
                         document the invariant with `.expect(\"...\")` / \
                         `// audited(no-panic-in-hot-path):`"
                    ),
                );
            }
            "unwrap" if dotted && fa.ct(ci + 1) == "(" && fa.ct(ci + 2) == ")" => {
                fa.finding(
                    out,
                    ci,
                    "no-panic-in-hot-path",
                    "`unwrap()` in a per-cycle module: stall or saturate instead, or \
                     document the invariant with `.expect(\"...\")` / \
                     `// audited(no-panic-in-hot-path):`"
                        .to_owned(),
                );
            }
            "expect"
                if dotted
                    && fa.ct(ci + 1) == "("
                    && (fa.ct(ci + 2) == ")" || fa.ct(ci + 2) == "\"\"") =>
            {
                fa.finding(
                    out,
                    ci,
                    "no-panic-in-hot-path",
                    "`.expect` without an invariant message; state why this cannot fire".to_owned(),
                );
            }
            _ => {}
        }
    }
}

/// Rule 5: heap allocation in per-cycle hot-path modules.
fn rule_hot_path_allocs(fa: &Fa, out: &mut Vec<Finding>) {
    let msg = |what: &str| {
        format!(
            "`{what}` in a per-cycle module: per-µop state is architecturally \
             bounded — use an inline array or a reusable scratch buffer, or \
             waive construction/diagnostic paths with `// audited(no-alloc-in-hot-path):`"
        )
    };
    for ci in 0..fa.items.code.len() {
        if !fa.live(ci) || fa.ckind(ci) != Some(TokKind::Ident) {
            continue;
        }
        let t = fa.ct(ci);
        let dotted = ci > 0 && fa.ct(ci - 1) == ".";
        match t {
            "vec" | "format" if fa.ct(ci + 1) == "!" => {
                fa.finding(out, ci, "no-alloc-in-hot-path", msg(&format!("{t}!(")));
            }
            "Vec" | "Box" | "String" if fa.ct(ci + 1) == "::" => {
                let m = fa.ct(ci + 2);
                let banned = matches!(
                    (t, m),
                    ("Vec", "new")
                        | ("Vec", "with_capacity")
                        | ("Box", "new")
                        | ("String", "new")
                        | ("String", "from")
                );
                if banned {
                    fa.finding(out, ci, "no-alloc-in-hot-path", msg(&format!("{t}::{m}(")));
                }
            }
            "collect" | "to_vec" | "to_owned" | "to_string"
                if dotted && (fa.ct(ci + 1) == "(" || fa.ct(ci + 1) == "::") =>
            {
                fa.finding(out, ci, "no-alloc-in-hot-path", msg(&format!("{t}()")));
            }
            _ => {}
        }
    }
}

/// Rule 6: stdout/stderr writes in simulation crates.
fn rule_sim_crate_prints(fa: &Fa, out: &mut Vec<Finding>) {
    for ci in 0..fa.items.code.len() {
        if !fa.live(ci) || fa.ckind(ci) != Some(TokKind::Ident) {
            continue;
        }
        let t = fa.ct(ci);
        if matches!(t, "println" | "eprintln" | "print" | "eprint") && fa.ct(ci + 1) == "!" {
            fa.finding(
                out,
                ci,
                "no-println-in-sim-crates",
                format!(
                    "`{t}!` in a simulation crate: route output through the \
                     observability layer (event trace / counter registry) or the \
                     bench reporting code, or waive with \
                     `// audited(no-println-in-sim-crates):`"
                ),
            );
        }
    }
}

/// Rule 3: floating point in architectural-state updates.
fn rule_arch_state_floats(fa: &Fa, out: &mut Vec<Finding>) {
    for ci in 0..fa.items.code.len() {
        if !fa.live(ci) {
            continue;
        }
        let t = fa.ct(ci);
        let hit = match fa.ckind(ci) {
            Some(TokKind::Ident) => t == "f64" || t == "f32",
            // A float-suffixed literal (`2.5_f64`) is just as much a
            // float; hex literals like `0x1f64` are digits, not a
            // suffix.
            Some(TokKind::Num) => {
                (t.ends_with("f64") || t.ends_with("f32"))
                    && !t.starts_with("0x")
                    && !t.starts_with("0X")
            }
            _ => false,
        };
        if hit {
            fa.finding(
                out,
                ci,
                "no-float-in-arch-state",
                format!(
                    "`{t}` in an architectural-state module: architectural updates \
                     must be bit-exact integer operations"
                ),
            );
        }
    }
}

/// Rule 4: every public struct in the hardware-table crates implements
/// `StorageBudget` (or is an exempted plain-data type).
fn rule_budget_coverage(fas: &[Fa], out: &mut Vec<Finding>) {
    let mut implemented: BTreeSet<&str> = BTreeSet::new();
    for fa in fas.iter().filter(|fa| BUDGET_CRATES.contains(&fa.krate.as_str())) {
        for imp in &fa.items.impls {
            if imp.trait_name.as_deref() == Some("StorageBudget") {
                implemented.insert(imp.self_ty.as_str());
            }
        }
    }
    for fa in fas.iter().filter(|fa| BUDGET_CRATES.contains(&fa.krate.as_str())) {
        for s in &fa.items.structs {
            let exempt = !s.is_pub
                || s.in_test
                || BUDGET_EXEMPT_NAMES.contains(&s.name.as_str())
                || BUDGET_EXEMPT_SUFFIXES.iter().any(|suf| s.name.ends_with(suf));
            if exempt || implemented.contains(s.name.as_str()) {
                continue;
            }
            out.push(Finding {
                file: fa.rel.clone(),
                line: s.line,
                rule: "storage-budget-coverage",
                msg: format!(
                    "pub struct `{}` implements no `StorageBudget`: hardware tables \
                     must report their bits for the Table 2 budget assertion \
                     (or add an exemption if it models no storage)",
                    s.name
                ),
            });
        }
    }
}

/// Integer type names a pointer may be cast to (rule 7).
fn is_int_ty(t: &str) -> bool {
    matches!(
        t,
        "usize"
            | "u8"
            | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "isize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
    )
}

/// Rule 7: nondeterminism sources in simulation crates.
fn rule_determinism(fa: &Fa, out: &mut Vec<Finding>) {
    for ci in 0..fa.items.code.len() {
        if !fa.live_strict(ci) || fa.ckind(ci) != Some(TokKind::Ident) {
            continue;
        }
        let t = fa.ct(ci);
        let dotted = ci > 0 && fa.ct(ci - 1) == ".";
        match t {
            "Instant" | "SystemTime" => {
                fa.finding(
                    out,
                    ci,
                    "determinism-audit",
                    format!(
                        "wall-clock time source `{t}` in a simulation crate: simulated \
                         time is `cycles`; host time breaks run-to-run equivalence"
                    ),
                );
            }
            "RandomState" | "DefaultHasher" => {
                fa.finding(
                    out,
                    ci,
                    "determinism-audit",
                    format!(
                        "randomized hasher `{t}` in a simulation crate: per-process \
                         hash seeds leak into iteration order and hash values"
                    ),
                );
            }
            "env"
                if fa.ct(ci + 1) == "::"
                    && matches!(
                        fa.ct(ci + 2),
                        "var" | "var_os" | "vars" | "vars_os" | "args" | "args_os"
                    ) =>
            {
                fa.finding(
                    out,
                    ci,
                    "determinism-audit",
                    format!(
                        "`std::env::{}` read in a simulation crate: behaviour must be a \
                         function of the config and trace only — plumb it through \
                         `Config` instead",
                        fa.ct(ci + 2)
                    ),
                );
            }
            "as_ptr" | "as_mut_ptr"
                if dotted
                    && fa.ct(ci + 1) == "("
                    && fa.ct(ci + 2) == ")"
                    && fa.ct(ci + 3) == "as"
                    && is_int_ty(fa.ct(ci + 4)) =>
            {
                fa.finding(
                    out,
                    ci,
                    "determinism-audit",
                    "pointer-value observation (`.as_ptr() as <int>`): allocator \
                     addresses differ run to run and must never feed simulated state"
                        .to_owned(),
                );
            }
            "addr" if dotted && fa.ct(ci + 1) == "(" && fa.ct(ci + 2) == ")" => {
                fa.finding(
                    out,
                    ci,
                    "determinism-audit",
                    "pointer-value observation (`.addr()`): allocator addresses differ \
                     run to run and must never feed simulated state"
                        .to_owned(),
                );
            }
            "expose_addr" | "expose_provenance" => {
                fa.finding(
                    out,
                    ci,
                    "determinism-audit",
                    format!(
                        "pointer-value observation (`{t}`): allocator addresses differ \
                         run to run and must never feed simulated state"
                    ),
                );
            }
            _ => {}
        }
    }
}

/// Rule 8: every public counter on a `*Stats` struct in the simulation
/// crates is reachable from the registry exporters.
///
/// Reachability is a fixpoint over function names: start from the
/// bodies of [`EXPORT_ROOTS`]; any function whose name is mentioned in
/// a reachable body contributes its own body. A counter is covered when
/// its field name is mentioned anywhere in that closure — deliberately
/// name-coarse (no type resolution), which errs toward fewer false
/// positives.
fn rule_export_coverage(fas: &[Fa], out: &mut Vec<Finding>) {
    let scope: Vec<&Fa> =
        fas.iter().filter(|fa| EXPORT_CRATES.contains(&fa.krate.as_str())).collect();
    // (name, body ident set) for every fn in scope.
    let mut fns: Vec<(&str, BTreeSet<&str>)> = Vec::new();
    for fa in &scope {
        for f in &fa.items.fns {
            let mut idents = BTreeSet::new();
            for ci in f.body.0..f.body.1 {
                if fa.ckind(ci) == Some(TokKind::Ident) {
                    idents.insert(fa.ct(ci));
                }
            }
            fns.push((f.name.as_str(), idents));
        }
    }
    if !fns.iter().any(|(name, _)| EXPORT_ROOTS.contains(name)) {
        // No exporter in the analyzed set: reachability is undefined,
        // so stay silent rather than flagging every counter.
        return;
    }
    let mut mentioned: BTreeSet<&str> = EXPORT_ROOTS.iter().copied().collect();
    let mut expanded = vec![false; fns.len()];
    loop {
        let mut changed = false;
        for (i, (name, idents)) in fns.iter().enumerate() {
            if !expanded[i] && mentioned.contains(name) {
                expanded[i] = true;
                mentioned.extend(idents.iter().copied());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for fa in &scope {
        for s in &fa.items.structs {
            if !s.is_pub || s.in_test || !s.name.ends_with("Stats") {
                continue;
            }
            for f in s.fields.iter().filter(|f| f.is_pub) {
                if !mentioned.contains(f.name.as_str()) {
                    out.push(Finding {
                        file: fa.rel.clone(),
                        line: f.line,
                        rule: "counter-export-coverage",
                        msg: format!(
                            "counter `{}.{}` is unreachable from the registry exporters \
                             ({}): it will silently vanish from every report — export \
                             it or waive with `// audited(counter-export-coverage):`",
                            s.name,
                            f.name,
                            EXPORT_ROOTS.join("/"),
                        ),
                    });
                }
            }
        }
    }
}

/// Rule 9: raw arithmetic on statistics counters.
fn rule_saturating_counters(fas: &[Fa], out: &mut Vec<Finding>) {
    // All `*Stats` field names, workspace-wide.
    let mut fields: BTreeSet<&str> = BTreeSet::new();
    for fa in fas {
        for s in &fa.items.structs {
            if s.name.ends_with("Stats") && !s.in_test {
                fields.extend(s.fields.iter().map(|f| f.name.as_str()));
            }
        }
    }
    for fa in fas.iter().filter(|fa| SATURATING_CRATES.contains(&fa.krate.as_str())) {
        for ci in 0..fa.items.code.len() {
            if !fa.live(ci) || fa.ct(ci) != "." {
                continue;
            }
            let f = fa.ct(ci + 1);
            if fa.ckind(ci + 1) != Some(TokKind::Ident) || !fields.contains(f) {
                continue;
            }
            match fa.ct(ci + 2) {
                op @ ("+=" | "-=") => {
                    fa.finding(
                        out,
                        ci + 1,
                        "saturating-counter",
                        format!(
                            "raw `{op}` on stats counter `{f}`: counters must saturate, \
                             not wrap — use `sat_inc`/`sat_add` from `tvp_obs::counters`"
                        ),
                    );
                }
                "=" => {
                    // `.f = <expr involving wrapping arithmetic>;`
                    let mut j = ci + 3;
                    while !fa.ct(j).is_empty() && fa.ct(j) != ";" {
                        if matches!(fa.ct(j), "wrapping_add" | "wrapping_sub") {
                            fa.finding(
                                out,
                                ci + 1,
                                "saturating-counter",
                                format!(
                                    "wrapping arithmetic assigned to stats counter `{f}`: \
                                     counters must saturate — use `sat_inc`/`sat_add`"
                                ),
                            );
                            break;
                        }
                        j += 1;
                    }
                }
                _ => {}
            }
        }
    }
}

/// A waiver comment: `// audited(<rule>): <reason>` (or the legacy
/// ruleless `// audited: <reason>`, which rule 10 rejects).
struct Waiver {
    line: usize,
    rule: Option<String>,
}

/// Extracts waiver comments from a file. Doc comments are
/// documentation, not waivers — prose *about* the waiver syntax never
/// counts.
fn collect_waivers(fa: &Fa) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (ti, tok) in fa.toks.iter().enumerate() {
        if tok.kind != TokKind::LineComment {
            continue;
        }
        let text = fa.text(ti);
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        let Some(pos) = text.find("audited") else { continue };
        let rest = &text[pos + "audited".len()..];
        let (rule, after) = match rest.strip_prefix('(') {
            Some(r) => match r.split_once(')') {
                Some((name, tail)) => (Some(name.trim().to_owned()), tail),
                None => (None, rest),
            },
            None => (None, rest),
        };
        // The marker must be followed by `:` — otherwise this is prose
        // mentioning the word, not a waiver.
        if !after.trim_start().starts_with(':') {
            continue;
        }
        out.push(Waiver { line: tok.line, rule });
    }
    out
}

/// Applies the waiver contract to the raw findings and appends rule-10
/// stale-waiver findings for every waiver that is ruleless, names an
/// unknown rule, or suppressed nothing.
fn apply_waivers(raw: Vec<Finding>, fas: &[Fa]) -> Vec<Finding> {
    let mut waivers: BTreeMap<&str, Vec<Waiver>> = BTreeMap::new();
    for fa in fas {
        waivers.insert(fa.rel.as_str(), collect_waivers(fa));
    }
    let mut used: BTreeSet<(String, usize)> = BTreeSet::new();
    let mut kept = Vec::new();
    for f in raw {
        let ws = waivers.get(f.file.as_str()).map_or(&[][..], Vec::as_slice);
        let mut suppressed = false;
        for (i, w) in ws.iter().enumerate() {
            let anchored = w.line == f.line || w.line + 1 == f.line;
            if anchored && w.rule.as_deref() == Some(f.rule) {
                used.insert((f.file.clone(), i));
                suppressed = true;
            }
        }
        if !suppressed {
            kept.push(f);
        }
    }
    for (file, ws) in &waivers {
        for (i, w) in ws.iter().enumerate() {
            let msg = match &w.rule {
                None => "waiver names no rule: write `// audited(<rule>): <reason>` so the \
                         audit knows what it excuses"
                    .to_owned(),
                Some(r) if !RULES.contains(&r.as_str()) => {
                    format!("waiver names unknown rule `{r}`")
                }
                Some(r) => {
                    if used.contains(&((*file).to_owned(), i)) {
                        continue;
                    }
                    format!(
                        "stale waiver: no `{r}` finding on this line or the next — the \
                         code it excused is gone; remove or re-anchor it"
                    )
                }
            };
            kept.push(Finding {
                file: (*file).to_owned(),
                line: w.line,
                rule: "stale-waiver",
                msg,
            });
        }
    }
    kept.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    kept
}

/// Runs every rule over an explicit file set (the unit-test entry
/// point; [`run`] feeds it the workspace).
#[must_use]
pub fn analyze(files: Vec<SourceFile>) -> Vec<Finding> {
    let fas: Vec<Fa> = files.into_iter().map(Fa::new).collect();
    let mut raw = Vec::new();
    for fa in &fas {
        rule_default_hashmap(fa, &mut raw);
        if HOT_PATH_FILES.contains(&fa.rel.as_str()) {
            rule_hot_path_panics(fa, &mut raw);
            rule_hot_path_allocs(fa, &mut raw);
        }
        if ARCH_STATE_FILES.contains(&fa.rel.as_str()) {
            rule_arch_state_floats(fa, &mut raw);
        }
        if SILENT_CRATES.contains(&fa.krate.as_str()) {
            rule_sim_crate_prints(fa, &mut raw);
        }
        if DETERMINISM_CRATES.contains(&fa.krate.as_str())
            || DETERMINISM_FILES.contains(&fa.rel.as_str())
        {
            rule_determinism(fa, &mut raw);
        }
    }
    rule_budget_coverage(&fas, &mut raw);
    rule_export_coverage(&fas, &mut raw);
    rule_saturating_counters(&fas, &mut raw);
    apply_waivers(raw, &fas)
}

/// The workspace root, derived from this crate's manifest directory.
#[must_use]
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).expect("crates/xtask sits two levels down").to_owned()
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
}

/// Runs every rule over the workspace at `root`, returning all
/// findings (empty = clean tree).
#[must_use]
pub fn run(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    for krate in SCANNED_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        let mut sources = Vec::new();
        rust_sources(&src_dir, &mut sources);
        for path in sources {
            let Ok(src) = std::fs::read_to_string(&path) else { continue };
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            files.push(SourceFile { rel, src });
        }
    }
    analyze(files)
}

/// JSON string escaping for [`to_json`].
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as the machine-readable document behind
/// `cargo xtask lint --json` (parseable by [`crate::trace_schema`]'s
/// JSON parser — CI validates this round trip).
#[must_use]
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n");
    out.push_str(&format!("  \"count\": {},\n  \"findings\": [", findings.len()));
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"msg\": \"{}\"}}",
            esc(&f.file),
            f.line,
            esc(f.rule),
            esc(&f.msg)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders one finding as a GitHub Actions workflow annotation
/// (`::error file=…`), so findings surface inline on the PR diff.
#[must_use]
pub fn github_annotation(f: &Finding) -> String {
    // Property values escape `%`, CR, LF, `:` and `,`; message data
    // escapes `%`, CR and LF.
    let prop = |s: &str| {
        s.replace('%', "%25")
            .replace('\r', "%0D")
            .replace('\n', "%0A")
            .replace(':', "%3A")
            .replace(',', "%2C")
    };
    let data = |s: &str| s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A");
    format!(
        "::error file={},line={},title={}::{}",
        prop(&f.file),
        f.line,
        prop(&format!("xtask lint [{}]", f.rule)),
        data(&f.msg)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Analyzes one fixture file at the given workspace-relative path
    /// (the path selects which rules apply).
    fn check(rel: &str, src: &str) -> Vec<Finding> {
        analyze(vec![SourceFile { rel: rel.to_owned(), src: src.to_owned() }])
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    // ---- rule 1: no-default-hashmap --------------------------------

    #[test]
    fn hashmap_violation_is_flagged() {
        let out = check(
            "crates/core/src/x.rs",
            "use std::collections::HashMap;\npub struct S { m: HashMap<u64, u64> }\n",
        );
        assert_eq!(rules_of(&out), ["no-default-hashmap", "no-default-hashmap"]);
        assert_eq!(out[0].line, 1);
        assert_eq!(out[1].line, 2);
    }

    #[test]
    fn hashmap_in_test_module_is_ignored() {
        let out = check(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn hashmap_in_string_or_comment_is_ignored() {
        // The regex engine's blind spot: these are not code.
        let out = check(
            "crates/core/src/x.rs",
            "// a HashMap would be wrong here\nfn f() -> &'static str { \"HashMap\" }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn hashmap_waiver_is_honored() {
        let out = check(
            "crates/core/src/x.rs",
            "// audited(no-default-hashmap): seeded hasher wrapper\nuse std::collections::HashMap;\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn explicit_hasher_is_allowed() {
        let out = check(
            "crates/core/src/x.rs",
            "pub struct S { m: HashMap<u64, u64, BuildHasherDefault<Fnv>> }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn identifier_containing_hashmap_is_not_a_match() {
        let out = check("crates/core/src/x.rs", "fn f() { let my_hashmap_like = 1; }\n");
        assert!(out.is_empty(), "{out:?}");
    }

    // ---- rule 2: no-panic-in-hot-path ------------------------------

    #[test]
    fn unwrap_violation_is_flagged() {
        let out =
            check("crates/core/src/scheduler.rs", "fn f(v: Option<u8>) -> u8 { v.unwrap() }\n");
        assert_eq!(rules_of(&out), ["no-panic-in-hot-path"]);
    }

    #[test]
    fn documented_expect_is_allowed_but_empty_message_is_not() {
        let ok = check(
            "crates/core/src/scheduler.rs",
            "fn f() { let x = v.expect(\"ROB head exists: checked above\"); }\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
        let bad = check("crates/core/src/scheduler.rs", "fn f() { let x = v.expect(\"\"); }\n");
        assert_eq!(rules_of(&bad), ["no-panic-in-hot-path"]);
    }

    #[test]
    fn audited_unreachable_is_waived() {
        let out = check(
            "crates/core/src/scheduler.rs",
            "fn f() { match op {\n    A => 1,\n    // audited(no-panic-in-hot-path): decoder emits only A here\n    _ => unreachable!(),\n} }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unwrap_in_comment_or_string_is_not_flagged() {
        let out = check(
            "crates/core/src/scheduler.rs",
            "fn f() { let x = 1; } // previously v.unwrap()\nfn g() -> &'static str { \".unwrap()\" }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn panic_outside_hot_path_files_is_allowed() {
        let out = check("crates/core/src/config.rs", "fn f() { panic!(\"bad config\"); }\n");
        assert!(out.is_empty(), "{out:?}");
    }

    // ---- rule 5: no-alloc-in-hot-path ------------------------------

    #[test]
    fn alloc_violation_is_flagged() {
        let out = check(
            "crates/core/src/rename.rs",
            "fn rename(&mut self) { let deps: Vec<Dep> = uop.srcs().iter().collect(); }\n",
        );
        assert_eq!(rules_of(&out), ["no-alloc-in-hot-path"]);
    }

    #[test]
    fn turbofish_collect_is_flagged_too() {
        // `.collect::<Vec<_>>()` — invisible to the old `.collect()`
        // substring match.
        let out =
            check("crates/core/src/rename.rs", "fn f() { let v = it.collect::<Vec<_>>(); }\n");
        assert_eq!(rules_of(&out), ["no-alloc-in-hot-path"]);
    }

    #[test]
    fn inline_vec_new_is_not_vec_new() {
        let out = check(
            "crates/core/src/rename.rs",
            "fn f() { let names: InlineVec<PhysName, 2> = InlineVec::new(); }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn audited_alloc_is_waived_and_tests_are_exempt() {
        let out = check(
            "crates/core/src/rename.rs",
            "// audited(no-alloc-in-hot-path): constructor, runs once per simulation\n\
             fn new() -> Self { Self { rob: Vec::new() } }\n\
             #[cfg(test)]\n\
             mod tests {\n    fn t() { let v = vec![1]; }\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    // ---- rule 3: no-float-in-arch-state ----------------------------

    #[test]
    fn float_violation_is_flagged() {
        let out =
            check("crates/core/src/rename.rs", "fn update(&mut self) { let x: f64 = 0.0; }\n");
        assert_eq!(rules_of(&out), ["no-float-in-arch-state"]);
    }

    #[test]
    fn float_literal_suffix_is_flagged_but_hex_is_not() {
        let out = check("crates/core/src/rename.rs", "fn f() { let x = 2.5_f64; }\n");
        assert_eq!(rules_of(&out), ["no-float-in-arch-state"]);
        let hex = check("crates/core/src/rename.rs", "fn f() { let x = 0x1f64; }\n");
        assert!(hex.is_empty(), "{hex:?}");
    }

    // ---- rule 4: storage-budget-coverage ---------------------------

    #[test]
    fn budget_coverage_flags_uncovered_tables_only() {
        let out = check(
            "crates/predictors/src/t.rs",
            "pub struct MyTable { bits: u64 }\n\
             pub struct MyTableConfig { n: usize }\n\
             pub struct Covered;\n\
             impl tvp_verif::StorageBudget for Covered {\n}\n",
        );
        assert_eq!(rules_of(&out), ["storage-budget-coverage"]);
        assert!(out[0].msg.contains("MyTable"));
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn budget_coverage_sees_impls_across_files() {
        let out = analyze(vec![
            SourceFile {
                rel: "crates/mem/src/table.rs".to_owned(),
                src: "pub struct Far { bits: u64 }\n".to_owned(),
            },
            SourceFile {
                rel: "crates/mem/src/budget.rs".to_owned(),
                src: "impl tvp_verif::StorageBudget for Far {}\n".to_owned(),
            },
        ]);
        assert!(out.is_empty(), "{out:?}");
    }

    // ---- rule 6: no-println-in-sim-crates --------------------------

    #[test]
    fn println_violation_is_flagged() {
        let out = check(
            "crates/mem/src/x.rs",
            "fn step(&mut self) { println!(\"cycle {}\", self.cycle); }\n",
        );
        assert_eq!(rules_of(&out), ["no-println-in-sim-crates"]);
    }

    #[test]
    fn custom_macro_ending_in_println_is_not_flagged() {
        let out = check("crates/mem/src/x.rs", "fn f() { my_println!(\"into a buffer\"); }\n");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn println_in_harness_crate_is_allowed() {
        let out = check("crates/harness/src/x.rs", "fn f() { println!(\"report\"); }\n");
        assert!(out.is_empty(), "{out:?}");
    }

    // ---- rule 7: determinism-audit ---------------------------------

    #[test]
    fn wall_clock_in_sim_crate_is_flagged() {
        let out = check("crates/core/src/x.rs", "fn f() { let t = std::time::Instant::now(); }\n");
        assert_eq!(rules_of(&out), ["determinism-audit"]);
        assert!(out[0].msg.contains("Instant"));
    }

    #[test]
    fn env_read_in_sim_crate_is_flagged() {
        let out =
            check("crates/core/src/x.rs", "fn f() -> bool { std::env::var(\"TVP_X\").is_ok() }\n");
        assert_eq!(rules_of(&out), ["determinism-audit"]);
        assert!(out[0].msg.contains("env::var"));
    }

    #[test]
    fn randomized_hasher_is_flagged() {
        let out =
            check("crates/predictors/src/x.rs", "use std::collections::hash_map::RandomState;\n");
        assert_eq!(rules_of(&out), ["determinism-audit"]);
    }

    #[test]
    fn pointer_value_observation_is_flagged() {
        let out = check("crates/mem/src/x.rs", "fn f(v: &[u8]) -> usize { v.as_ptr() as usize }\n");
        assert_eq!(rules_of(&out), ["determinism-audit"]);
        // A plain `.as_ptr()` handed to a slice op is fine.
        let ok = check("crates/mem/src/x.rs", "fn f(v: &[u8]) { g(v.as_ptr()); }\n");
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn verif_regions_are_exempt_from_determinism() {
        let out = check(
            "crates/core/src/x.rs",
            "#[cfg(feature = \"verif\")]\nfn snapshot_age() { let t = Instant::now(); }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn determinism_does_not_bind_harness() {
        let out = check("crates/harness/src/x.rs", "fn f() { let t = Instant::now(); }\n");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn determinism_binds_the_store_files_but_not_the_rest_of_bench() {
        // The bench crate is exempt as a whole (telemetry reads wall
        // clocks, option parsing reads the environment)...
        let engine =
            check("crates/bench/src/engine.rs", "fn f() { let t = std::time::Instant::now(); }\n");
        assert!(engine.is_empty(), "{engine:?}");
        // ...but every durable-store file is individually bound: blob
        // bytes and journal records must be pure functions of their
        // inputs.
        for rel in super::DETERMINISM_FILES {
            let clock = check(rel, "fn f() { let t = std::time::Instant::now(); }\n");
            assert_eq!(rules_of(&clock), ["determinism-audit"], "{rel} must reject wall clocks");
            let env = check(rel, "fn f() -> bool { std::env::var(\"TVP_X\").is_ok() }\n");
            assert_eq!(rules_of(&env), ["determinism-audit"], "{rel} must reject env reads");
        }
    }

    // ---- rule 8: counter-export-coverage ---------------------------

    #[test]
    fn unexported_counter_is_flagged() {
        let out = check(
            "crates/core/src/x.rs",
            "pub struct FooStats { pub hits: u64, pub misses: u64 }\n\
             impl Core { fn export_registry(&self) { reg(\"hits\", self.stats.hits); } }\n",
        );
        assert_eq!(rules_of(&out), ["counter-export-coverage"]);
        assert!(out[0].msg.contains("FooStats.misses"));
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn counter_reached_through_helper_fn_is_covered() {
        // `total()` mentions the fields; `export_registry` mentions
        // `total` — the closure connects them.
        let out = check(
            "crates/core/src/x.rs",
            "pub struct FooStats { pub a: u64, pub b: u64 }\n\
             impl FooStats { fn total(&self) -> u64 { self.a + self.b } }\n\
             impl Core { fn export_registry(&self) { reg(self.stats.total()); } }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn private_fields_and_non_stats_structs_are_ignored() {
        let out = check(
            "crates/core/src/x.rs",
            "pub struct FooStats { secret: u64 }\npub struct Plain { pub x: u64 }\n\
             fn export_registry() {}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn no_exporter_in_scope_means_silence() {
        // A fixture set with no exporter at all cannot assess
        // reachability and must not drown everything in findings.
        let out = check("crates/core/src/x.rs", "pub struct FooStats { pub hits: u64 }\n");
        assert!(out.is_empty(), "{out:?}");
    }

    // ---- rule 9: saturating-counter --------------------------------

    #[test]
    fn raw_increment_on_stats_field_is_flagged() {
        let out = check(
            "crates/predictors/src/x.rs",
            "pub struct BtbStats { pub hits: u64 }\n\
             impl Btb { fn lookup(&mut self) { self.stats.hits += 1; } }\n\
             fn export_registry() { stats hits }\n",
        );
        assert_eq!(rules_of(&out), ["saturating-counter"]);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn wrapping_add_assignment_is_flagged() {
        let out = check(
            "crates/core/src/x.rs",
            "pub struct FooStats { pub hits: u64 }\n\
             fn f(s: &mut FooStats) { s.hits = s.hits.wrapping_add(1); }\n\
             fn export_registry() { hits }\n",
        );
        assert_eq!(rules_of(&out), ["saturating-counter"]);
    }

    #[test]
    fn sat_inc_and_unrelated_fields_are_fine() {
        let out = check(
            "crates/core/src/x.rs",
            "pub struct FooStats { pub hits: u64 }\n\
             fn f(s: &mut FooStats, c: &mut Clock) { sat_inc(&mut s.hits); c.now += 1; }\n\
             fn export_registry() { hits }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    // ---- rule 10: stale-waiver -------------------------------------

    #[test]
    fn ruleless_waiver_is_flagged() {
        let out = check("crates/core/src/x.rs", "// audited: some old reason\nfn f() {}\n");
        assert_eq!(rules_of(&out), ["stale-waiver"]);
        assert!(out[0].msg.contains("names no rule"));
    }

    #[test]
    fn unknown_rule_waiver_is_flagged() {
        let out = check("crates/core/src/x.rs", "// audited(no-such-rule): reason\nfn f() {}\n");
        assert_eq!(rules_of(&out), ["stale-waiver"]);
        assert!(out[0].msg.contains("no-such-rule"));
    }

    #[test]
    fn unused_waiver_is_flagged() {
        let out = check(
            "crates/core/src/x.rs",
            "// audited(no-default-hashmap): long-gone map\nfn f() { let x = 1; }\n",
        );
        assert_eq!(rules_of(&out), ["stale-waiver"]);
        assert!(out[0].msg.contains("stale waiver"));
    }

    #[test]
    fn used_waiver_is_not_stale_and_doc_comments_never_are() {
        let out = check(
            "crates/core/src/x.rs",
            "/// Use `// audited(<rule>): reason` to waive findings.\n\
             // audited(no-default-hashmap): interned, iteration-order-free\n\
             use std::collections::HashMap;\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn waiver_only_suppresses_its_named_rule() {
        // The waiver names the wrong rule: the finding survives AND the
        // waiver is stale.
        let out = check(
            "crates/core/src/x.rs",
            "// audited(no-alloc-in-hot-path): wrong rule\nuse std::collections::HashMap;\n",
        );
        assert_eq!(rules_of(&out), ["stale-waiver", "no-default-hashmap"]);
    }

    // ---- output formats --------------------------------------------

    #[test]
    fn json_output_parses_with_the_trace_schema_parser() {
        let findings = vec![
            Finding {
                file: "crates/core/src/x.rs".to_owned(),
                line: 3,
                rule: "no-default-hashmap",
                msg: "quote \" and backslash \\ survive".to_owned(),
            },
            Finding {
                file: "crates/mem/src/y.rs".to_owned(),
                line: 9,
                rule: "stale-waiver",
                msg: "second".to_owned(),
            },
        ];
        use crate::trace_schema::Value;
        let doc = to_json(&findings);
        let v = crate::trace_schema::parse(&doc).expect("lint JSON must be valid JSON");
        let Value::Object(obj) = v else { panic!("top-level object") };
        assert_eq!(obj.get("count"), Some(&Value::Number(2.0)));
        let Some(Value::Array(arr)) = obj.get("findings") else { panic!("findings array") };
        assert_eq!(arr.len(), 2);
        let Value::Object(first) = &arr[0] else { panic!("finding object") };
        assert_eq!(first.get("rule"), Some(&Value::String("no-default-hashmap".to_owned())));
        assert_eq!(
            first.get("msg"),
            Some(&Value::String("quote \" and backslash \\ survive".to_owned()))
        );
        // Empty findings are valid too.
        assert!(crate::trace_schema::parse(&to_json(&[])).is_ok());
    }

    #[test]
    fn github_annotations_are_single_line_and_escaped() {
        let f = Finding {
            file: "crates/core/src/x.rs".to_owned(),
            line: 7,
            rule: "determinism-audit",
            msg: "bad\nmultiline: msg".to_owned(),
        };
        let a = github_annotation(&f);
        assert!(a.starts_with("::error file=crates/core/src/x.rs,line=7,"), "{a}");
        assert!(!a.contains('\n'), "{a}");
        assert!(a.contains("%0A"), "{a}");
    }

    // ---- the shipped tree ------------------------------------------

    #[test]
    fn shipped_tree_is_clean() {
        let findings = run(&workspace_root());
        let rendered: Vec<String> = findings.iter().map(ToString::to_string).collect();
        assert!(findings.is_empty(), "{}", rendered.join("\n"));
    }
}
