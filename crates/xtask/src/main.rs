//! Workspace task runner.
//!
//! `cargo xtask lint` runs the simulator-specific static-analysis pass
//! that rustc and clippy cannot express — the rules live in [`lint`].
//! The pass is offline and dependency-free: a hand-rolled lexical
//! scanner over `crates/*/src`, not a `syn` AST walk, which keeps the
//! workspace free of external build dependencies.
//!
//! `cargo xtask validate-trace <file>` checks that a Chrome
//! `trace_event` JSON document written by `simulate --trace` is
//! well-formed and carries the fields the schema promises — the CI
//! trace-smoke step gates on it. The checks live in [`trace_schema`].
//!
//! `cargo xtask perf [...]` runs the scheduler hot-loop
//! micro-benchmark (the `perf_scheduler` bin in `tvp-bench`, release
//! profile) and `cargo xtask validate-bench <file>` checks the
//! `BENCH_scheduler.json` record it writes — the CI perf-smoke step
//! gates on both. The checks live in [`bench_schema`].

mod bench_schema;
mod lint;
mod trace_schema;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = lint::workspace_root();
            let findings = lint::run(&root);
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                println!("xtask lint: {} violation(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Some("validate-trace") => {
            let Some(path) = args.next() else {
                eprintln!("usage: cargo xtask validate-trace <trace.json>");
                return ExitCode::from(2);
            };
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("xtask validate-trace: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match trace_schema::validate(&src) {
                Ok(summary) => {
                    println!("xtask validate-trace: {path} ok ({summary})");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("xtask validate-trace: {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("perf") => {
            // Delegate to the benchmark binary under the release
            // profile (debug timings would be meaningless); remaining
            // arguments pass through (`--smoke`, `--baseline`, ...).
            let status = std::process::Command::new(env!("CARGO"))
                .args(["run", "--release", "-p", "tvp-bench", "--bin", "perf_scheduler", "--"])
                .args(args)
                .status();
            match status {
                Ok(s) if s.success() => ExitCode::SUCCESS,
                Ok(_) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("xtask perf: cannot run cargo: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("validate-bench") => {
            let Some(path) = args.next() else {
                eprintln!("usage: cargo xtask validate-bench <BENCH_scheduler.json>");
                return ExitCode::from(2);
            };
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("xtask validate-bench: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match bench_schema::validate(&src) {
                Ok(summary) => {
                    println!("xtask validate-bench: {path} ok ({summary})");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("xtask validate-bench: {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: cargo xtask <lint | validate-trace FILE | perf [ARGS] | validate-bench FILE>");
            ExitCode::from(2)
        }
    }
}
