//! Workspace task runner.
//!
//! `cargo xtask lint` runs the `tvp-analyzer` static-analysis pass —
//! the simulator-specific rules rustc and clippy cannot express. The
//! engine is offline and dependency-free: a hand-rolled Rust lexer
//! ([`lex`]) feeds an item layer ([`items`]) that tracks `#[cfg(test)]`
//! / `#[cfg(feature = "verif")]` regions, struct fields and impl
//! blocks; the rules in [`lint`] run over that token stream — not a
//! `syn` AST walk, which keeps the workspace free of external build
//! dependencies. The ten rules:
//!
//! - `no-default-hashmap` — no `RandomState`-hashed collections in
//!   simulator state;
//! - `no-panic-in-hot-path` — no `unwrap`/`panic!` in per-cycle
//!   modules (`.expect("invariant")` is the sanctioned form);
//! - `no-float-in-arch-state` — architectural updates stay integer;
//! - `storage-budget-coverage` — every hardware table implements
//!   `tvp_verif::StorageBudget`;
//! - `no-alloc-in-hot-path` — no heap allocation per cycle;
//! - `no-println-in-sim-crates` — simulation crates stay silent;
//! - `determinism-audit` — no wall clocks, env reads, randomized
//!   hashers or pointer-value observation in simulation crates;
//! - `counter-export-coverage` — every public `*Stats` counter is
//!   reachable from the registry exporters;
//! - `saturating-counter` — stats counters use `sat_inc`/`sat_add`,
//!   never raw `+=`/`wrapping_add`;
//! - `stale-waiver` — every `// audited(<rule>): <reason>` waiver
//!   names a real rule and still suppresses a finding.
//!
//! Flags: `--json <FILE|->` writes machine-readable findings,
//! `--github` emits `::error file=…` workflow annotations for CI.
//!
//! `cargo xtask validate-trace <file>` checks that a Chrome
//! `trace_event` JSON document written by `simulate --trace` is
//! well-formed and carries the fields the schema promises — the CI
//! trace-smoke step gates on it. The checks live in [`trace_schema`].
//!
//! `cargo xtask perf [...]` runs the scheduler hot-loop
//! micro-benchmark (the `perf_scheduler` bin in `tvp-bench`, release
//! profile) and `cargo xtask validate-bench <file>` checks the
//! `BENCH_scheduler.json` record it writes — the CI perf-smoke step
//! gates on both. The checks live in [`bench_schema`].
//!
//! `cargo xtask validate-trace-file <file>` validates a streamed
//! `DynInst` trace file end to end (the `validate_trace_file` bin in
//! `tvp-bench`): header, chunk checksums, record decode, monotonic
//! sequence numbers and terminator totals; `--encode <workload>
//! <insts> <file>` writes one first. The CI sampling-smoke job gates
//! on it.
//!
//! `cargo xtask fsck-store <dir> [--json FILE]` validates a durable
//! result store (the `fsck_store` bin in `tvp-bench`): every blob's
//! magic/schema/length/checksum/content-address, the campaign
//! journal, and the cross-check between them (orphans, missing blobs,
//! quarantines). The CI resume-smoke job gates on it.

mod bench_schema;
mod items;
mod lex;
mod lint;
mod trace_schema;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let mut json_out: Option<String> = None;
            let mut github = false;
            let rest: Vec<String> = args.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--github" => github = true,
                    "--json" => {
                        // `--json` alone (or followed by another flag)
                        // means stdout.
                        match rest.get(i + 1).map(String::as_str) {
                            Some(next) if !next.starts_with("--") => {
                                json_out = Some(next.to_owned());
                                i += 1;
                            }
                            _ => json_out = Some("-".to_owned()),
                        }
                    }
                    other => {
                        eprintln!("xtask lint: unknown flag `{other}`");
                        eprintln!("usage: cargo xtask lint [--json <FILE|->] [--github]");
                        return ExitCode::from(2);
                    }
                }
                i += 1;
            }
            let root = lint::workspace_root();
            let findings = lint::run(&root);
            for f in &findings {
                println!("{f}");
            }
            if github {
                for f in &findings {
                    println!("{}", lint::github_annotation(f));
                }
            }
            if let Some(dest) = json_out {
                let doc = lint::to_json(&findings);
                if dest == "-" {
                    print!("{doc}");
                } else if let Err(e) = std::fs::write(&dest, &doc) {
                    eprintln!("xtask lint: cannot write {dest}: {e}");
                    return ExitCode::from(2);
                }
            }
            if findings.is_empty() {
                println!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                println!("xtask lint: {} violation(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Some("validate-trace") => {
            let Some(path) = args.next() else {
                eprintln!("usage: cargo xtask validate-trace <trace.json>");
                return ExitCode::from(2);
            };
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("xtask validate-trace: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match trace_schema::validate(&src) {
                Ok(summary) => {
                    println!("xtask validate-trace: {path} ok ({summary})");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("xtask validate-trace: {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("perf") => {
            // Delegate to the benchmark binary under the release
            // profile (debug timings would be meaningless); remaining
            // arguments pass through (`--smoke`, `--baseline`, ...).
            let status = std::process::Command::new(env!("CARGO"))
                .args(["run", "--release", "-p", "tvp-bench", "--bin", "perf_scheduler", "--"])
                .args(args)
                .status();
            match status {
                Ok(s) if s.success() => ExitCode::SUCCESS,
                Ok(_) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("xtask perf: cannot run cargo: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("fsck-store") => {
            // Delegate to the store checker binary (release: the walk
            // re-checksums every blob); remaining arguments pass
            // through (`<STORE_DIR> [--json FILE]`).
            let status = std::process::Command::new(env!("CARGO"))
                .args(["run", "--release", "-p", "tvp-bench", "--bin", "fsck_store", "--"])
                .args(args)
                .status();
            match status {
                Ok(s) if s.success() => ExitCode::SUCCESS,
                Ok(s) => ExitCode::from(u8::try_from(s.code().unwrap_or(1)).unwrap_or(1)),
                Err(e) => {
                    eprintln!("xtask fsck-store: cannot run cargo: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("validate-trace-file") => {
            // Delegate to the trace-file checker binary (release: the
            // walk re-checksums every chunk); remaining arguments pass
            // through (`<FILE>` or `--encode <WORKLOAD> <INSTS> <FILE>`).
            let status = std::process::Command::new(env!("CARGO"))
                .args(["run", "--release", "-p", "tvp-bench", "--bin", "validate_trace_file", "--"])
                .args(args)
                .status();
            match status {
                Ok(s) if s.success() => ExitCode::SUCCESS,
                Ok(s) => ExitCode::from(u8::try_from(s.code().unwrap_or(1)).unwrap_or(1)),
                Err(e) => {
                    eprintln!("xtask validate-trace-file: cannot run cargo: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("validate-bench") => {
            let Some(path) = args.next() else {
                eprintln!("usage: cargo xtask validate-bench <BENCH_scheduler.json>");
                return ExitCode::from(2);
            };
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("xtask validate-bench: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match bench_schema::validate(&src) {
                Ok(summary) => {
                    println!("xtask validate-bench: {path} ok ({summary})");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("xtask validate-bench: {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!(
                "usage: cargo xtask <lint [--json FILE|-] [--github] | validate-trace FILE | \
                 perf [ARGS] | validate-bench FILE | fsck-store DIR [--json FILE] | \
                 validate-trace-file FILE>"
            );
            ExitCode::from(2)
        }
    }
}
