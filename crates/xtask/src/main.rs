//! Workspace task runner.
//!
//! `cargo xtask lint` runs the simulator-specific static-analysis pass
//! that rustc and clippy cannot express — the rules live in [`lint`].
//! The pass is offline and dependency-free: a hand-rolled lexical
//! scanner over `crates/*/src`, not a `syn` AST walk, which keeps the
//! workspace free of external build dependencies.

mod lint;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = lint::workspace_root();
            let findings = lint::run(&root);
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                println!("xtask lint: {} violation(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
    }
}
