//! A hand-rolled, dependency-free Rust lexer for the `tvp-analyzer`
//! static-analysis engine (`cargo xtask lint`).
//!
//! Produces a flat, line-spanned token stream good enough for lint
//! analysis: identifiers, lifetimes, literals and punctuation are
//! distinguished from string/char literal *content* and from comments,
//! which is exactly what the old regex line scanner could not do. The
//! tricky lexical corners are handled faithfully:
//!
//! - raw strings `r"…"` / `r#"…"#` (any hash depth) and their byte
//!   variants `br#"…"#`;
//! - nested block comments `/* /* */ */`;
//! - `'a` lifetimes vs `'a'` char literals (including escapes);
//! - doc comments (`///`, `//!`, `/** */`) — lexed as comments, so a
//!   stray quote inside one never opens a phantom string.
//!
//! Comments are kept in the stream (the waiver scanner reads them);
//! rules iterate over the code-token subsequence.

/// The lexical class of a token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `fn`, `f64`, …).
    Ident,
    /// A lifetime (`'a`, `'static`), quote included in the text.
    Lifetime,
    /// A char or byte-char literal (`'a'`, `b'\n'`), quotes included.
    Char,
    /// A string literal of any flavour (`"…"`, `r#"…"#`, `b"…"`),
    /// delimiters included in the text.
    Str,
    /// A numeric literal, suffix included (`0xFF`, `2.5_f64`).
    Num,
    /// Punctuation; multi-char operators (`::`, `+=`, `..=`) are one
    /// token.
    Punct,
    /// A `//` comment (doc or not), newline excluded.
    LineComment,
    /// A `/* … */` comment, nesting handled, delimiters included.
    BlockComment,
}

/// One token: kind, 1-based line of its first character, and its byte
/// span in the source (`text = &src[lo..hi]`).
#[derive(Clone, Copy, Debug)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// Byte offset of the first character.
    pub lo: usize,
    /// Byte offset one past the last character.
    pub hi: usize,
}

impl Tok {
    /// Is this token a comment (line or block)?
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Multi-char operators, longest first so the greedy match is correct.
const COMPOUND: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Character-level cursor with line tracking.
struct Cursor<'s> {
    chars: Vec<(usize, char)>,
    src: &'s str,
    i: usize,
    line: usize,
}

impl<'s> Cursor<'s> {
    fn new(src: &'s str) -> Self {
        Cursor { chars: src.char_indices().collect(), src, i: 0, line: 1 }
    }

    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).map(|&(_, c)| c)
    }

    fn pos(&self) -> usize {
        self.chars.get(self.i).map_or(self.src.len(), |&(p, _)| p)
    }

    fn bump(&mut self) -> Option<char> {
        let &(_, c) = self.chars.get(self.i)?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes `[A-Za-z0-9_]`* (plus non-ASCII identifier chars).
    fn eat_ident_tail(&mut self) {
        while self.peek(0).is_some_and(|c| c.is_alphanumeric() || c == '_') {
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Lexes `src` into a token stream. Unterminated literals and comments
/// run to end-of-file rather than erroring: a lint pass must stay total
/// on any input.
#[must_use]
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (lo, line) = (cur.pos(), cur.line);
        let kind = match c {
            c if c.is_whitespace() => {
                cur.bump();
                continue;
            }
            '/' if cur.peek(1) == Some('/') => {
                while cur.peek(0).is_some_and(|c| c != '\n') {
                    cur.bump();
                }
                TokKind::LineComment
            }
            '/' if cur.peek(1) == Some('*') => {
                cur.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some('/'), Some('*')) => {
                            cur.bump_n(2);
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            cur.bump_n(2);
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                TokKind::BlockComment
            }
            '"' => {
                lex_string_body(&mut cur);
                TokKind::Str
            }
            '\'' => lex_quote(&mut cur),
            c if c.is_ascii_digit() => {
                lex_number(&mut cur);
                TokKind::Num
            }
            c if is_ident_start(c) => {
                cur.bump();
                cur.eat_ident_tail();
                let text = &src[lo..cur.pos()];
                match raw_string_follows(&mut cur, text) {
                    RawPrefix::Str => TokKind::Str,
                    RawPrefix::Char => TokKind::Char,
                    RawPrefix::No => TokKind::Ident,
                }
            }
            _ => {
                let rest = &src[cur.pos()..];
                let op = COMPOUND.iter().find(|op| rest.starts_with(**op));
                match op {
                    Some(op) => cur.bump_n(op.chars().count()),
                    None => {
                        cur.bump();
                    }
                }
                TokKind::Punct
            }
        };
        out.push(Tok { kind, line, lo, hi: cur.pos() });
    }
    out
}

/// What a just-lexed identifier turned out to prefix.
enum RawPrefix {
    /// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` — a string literal.
    Str,
    /// `b'x'` — a byte-char literal.
    Char,
    /// A plain identifier.
    No,
}

/// If `ident` is a string/char literal prefix and the cursor stands on
/// the literal's opening delimiter, consumes the literal body.
fn raw_string_follows(cur: &mut Cursor<'_>, ident: &str) -> RawPrefix {
    let raw = matches!(ident, "r" | "br");
    let bytes = matches!(ident, "b" | "br");
    if raw {
        // Count `#`s, then require `"`.
        let mut hashes = 0;
        while cur.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if cur.peek(hashes) == Some('"') {
            cur.bump_n(hashes + 1);
            // Raw body: no escapes; closes on `"` + same hash count.
            'body: while let Some(c) = cur.bump() {
                if c == '"' {
                    for k in 0..hashes {
                        if cur.peek(k) != Some('#') {
                            continue 'body;
                        }
                    }
                    cur.bump_n(hashes);
                    break;
                }
            }
            return RawPrefix::Str;
        }
    }
    if bytes {
        if cur.peek(0) == Some('"') {
            cur.bump();
            lex_string_body(cur);
            return RawPrefix::Str;
        }
        if cur.peek(0) == Some('\'') {
            cur.bump();
            lex_char_body(cur);
            return RawPrefix::Char;
        }
    }
    RawPrefix::No
}

/// Consumes a non-raw string body, opening `"` included (the cursor may
/// stand on it or just past it — both call sites differ), through the
/// closing quote, honouring `\"` and `\\` escapes.
fn lex_string_body(cur: &mut Cursor<'_>) {
    if cur.peek(0) == Some('"') {
        cur.bump();
    }
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a char-literal body after the opening `'`, through the
/// closing quote, honouring escapes (`'\''`, `'\u{1F980}'`).
fn lex_char_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => break,
            _ => {}
        }
    }
}

/// Disambiguates `'` between a char literal and a lifetime. Called with
/// the cursor on the quote.
fn lex_quote(cur: &mut Cursor<'_>) -> TokKind {
    cur.bump(); // the quote
    match (cur.peek(0), cur.peek(1)) {
        // `'\n'`, `'\''` — an escape is always a char literal.
        (Some('\\'), _) => {
            lex_char_body(cur);
            TokKind::Char
        }
        // `'x'` for any single char (identifier-ish or not): closing
        // quote right after one char means char literal.
        (Some(_), Some('\'')) => {
            cur.bump_n(2);
            TokKind::Char
        }
        // `'a`, `'static`, `'_` — a lifetime: identifier with no
        // closing quote after its first char.
        (Some(c), _) if is_ident_start(c) => {
            cur.bump();
            cur.eat_ident_tail();
            TokKind::Lifetime
        }
        // Degenerate (`'🦀x` is not valid Rust); consume the next char
        // as a best-effort char literal so the lexer stays total.
        _ => {
            cur.bump();
            TokKind::Char
        }
    }
}

/// Consumes a numeric literal: integer/float bodies, `_` separators,
/// radix prefixes and type suffixes (`0xFF`, `1_000u64`, `2.5_f64`).
/// `1..n` stops before the range operator; `x.0` field access never
/// reaches here (the `.` lexes as punctuation first).
fn lex_number(cur: &mut Cursor<'_>) {
    cur.bump();
    cur.eat_ident_tail(); // digits, hex letters, `_`, suffix letters
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump(); // the decimal point
        cur.eat_ident_tail(); // fraction digits + suffix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds_and_texts(src: &str) -> Vec<(TokKind, String)> {
        lex(src).iter().map(|t| (t.kind, src[t.lo..t.hi].to_owned())).collect()
    }

    fn code_texts(src: &str) -> Vec<String> {
        lex(src).iter().filter(|t| !t.is_comment()).map(|t| src[t.lo..t.hi].to_owned()).collect()
    }

    #[test]
    fn idents_strings_and_comments_are_distinct() {
        let src = "let s = \"HashMap inside\"; // HashMap in comment\nHashMap";
        let toks = kinds_and_texts(src);
        let idents: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokKind::Ident).map(|(_, t)| t.as_str()).collect();
        assert_eq!(idents, ["let", "s", "HashMap"]);
        assert_eq!(lex(src).last().unwrap().line, 2, "line numbers advance");
    }

    #[test]
    fn raw_strings_swallow_their_content() {
        let src = r####"let x = r#"quote " and // slash"# ; panic"####;
        let texts = code_texts(src);
        assert_eq!(texts, ["let", "x", "=", r###"r#"quote " and // slash"#"###, ";", "panic"]);
        let kinds: Vec<TokKind> = lex(src).iter().map(|t| t.kind).collect();
        assert_eq!(kinds[3], TokKind::Str);
    }

    #[test]
    fn raw_string_hash_depth_must_match() {
        // `"#` inside an `r##"…"##` literal does not close it.
        let src = r#####"r##"inner "# still inside"## after"#####;
        let texts = code_texts(src);
        assert_eq!(texts.len(), 2, "{texts:?}");
        assert_eq!(texts[1], "after");
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = r##"b"bytes" b'x' br#"raw bytes"# plain"##;
        let toks = kinds_and_texts(src);
        assert_eq!(
            toks.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            [TokKind::Str, TokKind::Char, TokKind::Str, TokKind::Ident]
        );
    }

    #[test]
    fn nested_block_comments() {
        let src = "before /* outer /* inner */ still outer */ after";
        let texts = code_texts(src);
        assert_eq!(texts, ["before", "after"]);
        let all = kinds_and_texts(src);
        assert_eq!(all[1].0, TokKind::BlockComment);
        assert!(all[1].1.contains("inner"));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let src = "fn f<'a>(x: &'a u8) { let c = 'a'; let n = '\\n'; let s: &'static str; }";
        let toks = kinds_and_texts(src);
        let lifetimes: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).map(|(_, t)| t.as_str()).collect();
        let chars: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokKind::Char).map(|(_, t)| t.as_str()).collect();
        assert_eq!(lifetimes, ["'a", "'a", "'static"]);
        assert_eq!(chars, ["'a'", "'\\n'"]);
    }

    #[test]
    fn doc_comments_do_not_open_strings() {
        let src = "/// has a stray \" quote\nfn ok() {}\n//! inner \" doc\nmore";
        let texts = code_texts(src);
        assert_eq!(texts, ["fn", "ok", "(", ")", "{", "}", "more"]);
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let src = "0xFF 1_000u64 2.5_f64 1..n 3..=4";
        let texts = code_texts(src);
        assert_eq!(texts, ["0xFF", "1_000u64", "2.5_f64", "1", "..", "n", "3", "..=", "4"]);
        assert_eq!(lex("2.5_f64")[0].kind, TokKind::Num);
    }

    #[test]
    fn compound_operators_are_single_tokens() {
        let src = "a += 1; b :: c; d ..= e; f <<= 2";
        let texts = code_texts(src);
        assert!(texts.contains(&"+=".to_owned()));
        assert!(texts.contains(&"::".to_owned()));
        assert!(texts.contains(&"..=".to_owned()));
        assert!(texts.contains(&"<<=".to_owned()));
    }

    #[test]
    fn escaped_quote_in_string_does_not_close_it() {
        let src = r#"let s = "with \" escaped"; next"#;
        let texts = code_texts(src);
        assert_eq!(texts.last().unwrap(), "next");
        assert_eq!(texts.len(), 6);
    }

    #[test]
    fn unterminated_literals_stay_total() {
        // Lexing must terminate and keep line counts sane even on
        // pathological input.
        for src in ["\"never closed", "/* never closed", "r#\"never closed", "'"] {
            let toks = lex(src);
            assert!(!toks.is_empty());
        }
    }
}
