//! Schema validation for `simulate --trace` output.
//!
//! A minimal recursive-descent JSON parser (no dependencies, matching
//! the workspace's offline-build policy) plus the structural checks the
//! CI trace-smoke step gates on:
//!
//! * the document is one well-formed JSON object;
//! * it carries a numeric `schema` version and a `traceEvents` array;
//! * every trace event is an object with `name`, `ph`, `pid` and `tid`
//!   members, and every non-metadata event (`"ph" != "M"`) also has a
//!   numeric `ts` timestamp;
//! * the embedded `metrics` object is itself schema-versioned and has a
//!   `counters` object.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. `Object` keeps insertion-agnostic sorted keys —
/// ordering does not matter for validation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as f64 (validation only needs magnitude).
    Number(f64),
    /// A string literal.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub(crate) fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A parse or validation failure, with enough context to locate it.
#[derive(Debug)]
pub struct SchemaError(String);

impl SchemaError {
    /// Wraps a message (shared with the other schema validators).
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        SchemaError(msg.into())
    }
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, SchemaError> {
    Err(SchemaError(msg.into()))
}

// --------------------------------------------------------------------
// parser
// --------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { bytes: src.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), SchemaError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected `{}` at byte {}, found {:?}",
                c as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, SchemaError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => err(format!("unexpected {:?} at byte {}", other.map(|b| b as char), self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, SchemaError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            err(format!("malformed literal at byte {} (expected `{lit}`)", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, SchemaError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| SchemaError("non-UTF8 number".to_owned()))?;
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::Number(n)),
            Err(_) => err(format!("malformed number `{text}` at byte {start}")),
        }
    }

    fn string(&mut self) -> Result<String, SchemaError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return err(format!("malformed \\u escape at byte {}", self.pos));
                            };
                            // Surrogate pairs are not produced by our
                            // emitter; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return err(format!("bad escape {:?}", other.map(|b| b as char)));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 scalar. Decode from a
                    // bounded 4-byte window, never the whole remaining
                    // input — revalidating the tail per character would
                    // make parsing quadratic in document size.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(window) {
                        Ok(s) => s.chars().next(),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                        }
                        Err(_) => None,
                    };
                    let Some(c) = c else {
                        return err(format!("non-UTF8 string at byte {}", self.pos));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, SchemaError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                other => {
                    return err(format!(
                        "expected `,` or `]`, found {:?}",
                        other.map(|b| b as char)
                    ));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, SchemaError> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                other => {
                    return err(format!(
                        "expected `,` or `}}`, found {:?}",
                        other.map(|b| b as char)
                    ));
                }
            }
        }
    }
}

/// Parses `src` as one JSON document (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<Value, SchemaError> {
    let mut p = Parser::new(src);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

// --------------------------------------------------------------------
// validation
// --------------------------------------------------------------------

fn get<'v>(obj: &'v BTreeMap<String, Value>, key: &str) -> Result<&'v Value, SchemaError> {
    match obj.get(key) {
        Some(v) => Ok(v),
        None => err(format!("missing required member `{key}`")),
    }
}

fn as_object<'v>(v: &'v Value, what: &str) -> Result<&'v BTreeMap<String, Value>, SchemaError> {
    match v {
        Value::Object(m) => Ok(m),
        other => err(format!("{what} must be an object, found {}", other.type_name())),
    }
}

fn as_number(v: &Value, what: &str) -> Result<f64, SchemaError> {
    match v {
        Value::Number(n) => Ok(*n),
        other => err(format!("{what} must be a number, found {}", other.type_name())),
    }
}

/// Validates a `simulate --trace` document. Returns a one-line summary
/// (event count, schema versions) on success.
pub fn validate(src: &str) -> Result<String, SchemaError> {
    let doc = parse(src)?;
    let root = as_object(&doc, "document root")?;
    let schema = as_number(get(root, "schema")?, "`schema`")?;
    let events = match get(root, "traceEvents")? {
        Value::Array(events) => events,
        other => {
            return err(format!("`traceEvents` must be an array, found {}", other.type_name()));
        }
    };
    let mut instants = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ev = as_object(ev, &format!("traceEvents[{i}]"))?;
        for key in ["name", "ph", "pid", "tid"] {
            if ev.get(key).is_none() {
                return err(format!("traceEvents[{i}] is missing `{key}`"));
            }
        }
        let is_meta = matches!(ev.get("ph"), Some(Value::String(ph)) if ph == "M");
        if !is_meta {
            as_number(get(ev, "ts")?, &format!("traceEvents[{i}].ts"))?;
            instants += 1;
        }
    }
    let metrics = as_object(get(root, "metrics")?, "`metrics`")?;
    let metrics_schema = as_number(get(metrics, "schema")?, "`metrics.schema`")?;
    as_object(get(metrics, "counters")?, "`metrics.counters`")?;
    Ok(format!(
        "{instants} event(s), {} record(s) total, schema {schema}, metrics schema {metrics_schema}",
        events.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{"schema":1,"displayTimeUnit":"ns","traceEvents":[
        {"name":"thread_name","ph":"M","pid":0,"tid":1,"args":{"name":"commit"}},
        {"name":"commit","cat":"pipeline","ph":"i","s":"t","ts":42,"pid":0,"tid":1,
         "args":{"seq":7,"pc":"0x400","arg":0}}
    ],"otherData":{"event_count":1,"dropped_events":0},
      "metrics":{"schema":1,"counters":{"core.cycles":100},"gauges":{"core.ipc":1.5}}}"#;

    #[test]
    fn good_document_validates_with_summary() {
        let summary = validate(GOOD).expect("valid");
        assert!(summary.contains("1 event(s)"), "{summary}");
        assert!(summary.contains("schema 1"), "{summary}");
    }

    #[test]
    fn parser_handles_scalars_arrays_and_escapes() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Value::Number(-250.0));
        assert_eq!(parse(r#""a\n\"bA""#).unwrap(), Value::String("a\n\"bA".to_owned()));
        // Multi-byte scalars survive the bounded-window decode,
        // including one sitting flush against the closing quote.
        assert_eq!(parse("\"µop → 紀\"").unwrap(), Value::String("µop → 紀".to_owned()));
        assert_eq!(
            parse("[1, [2], {}]").unwrap(),
            Value::Array(vec![
                Value::Number(1.0),
                Value::Array(vec![Value::Number(2.0)]),
                Value::Object(BTreeMap::new()),
            ])
        );
    }

    #[test]
    fn malformed_json_is_rejected() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "{\"a\":1}x", "\"open"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn missing_members_fail_with_names() {
        let no_events = r#"{"schema":1,"metrics":{"schema":1,"counters":{}}}"#;
        let e = validate(no_events).unwrap_err().to_string();
        assert!(e.contains("traceEvents"), "{e}");

        let no_ts = r#"{"schema":1,"traceEvents":[{"name":"x","ph":"i","pid":0,"tid":1}],
                        "metrics":{"schema":1,"counters":{}}}"#;
        let e = validate(no_ts).unwrap_err().to_string();
        assert!(e.contains("ts"), "{e}");

        let no_metrics_schema = r#"{"schema":1,"traceEvents":[],"metrics":{"counters":{}}}"#;
        let e = validate(no_metrics_schema).unwrap_err().to_string();
        assert!(e.contains("schema"), "{e}");
    }

    #[test]
    fn metadata_records_need_no_timestamp() {
        let meta_only = r#"{"schema":1,
            "traceEvents":[{"name":"thread_name","ph":"M","pid":0,"tid":3,"args":{"name":"flush"}}],
            "metrics":{"schema":1,"counters":{}}}"#;
        let summary = validate(meta_only).expect("metadata-only trace is valid");
        assert!(summary.contains("0 event(s)"), "{summary}");
    }

    #[test]
    fn real_exporter_output_validates() {
        // Mirror the emitter's shape end-to-end without depending on
        // tvp-obs from host tooling: this literal tracks
        // `tvp_obs::export::chrome_trace` and the exporter's own unit
        // tests keep the real emitter aligned with it.
        let doc = concat!(
            "{\"schema\":1,\"displayTimeUnit\":\"ns\",\"traceEvents\":[",
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"rename\"}},",
            "{\"name\":\"rename\",\"cat\":\"pipeline\",\"ph\":\"i\",\"s\":\"t\",\"ts\":5,\"pid\":0,",
            "\"tid\":0,\"args\":{\"seq\":1,\"pc\":\"0x400\",\"arg\":0}}",
            "],\"otherData\":{\"event_count\":1,\"dropped_events\":0},",
            "\"metrics\":{\"schema\":1,\"counters\":{\"core.cycles\":13},\"gauges\":{}}}"
        );
        validate(doc).expect("exporter-shaped document validates");
    }
}
