//! The item layer of the `tvp-analyzer` engine: a lightweight,
//! tolerant structural pass over the [`crate::lex`] token stream.
//!
//! It is deliberately not a full parser — it recovers exactly the
//! facts the lint rules need and nothing more:
//!
//! - which tokens sit inside `#[cfg(test)]` items (rules skip test
//!   code) and inside `#[cfg(feature = "verif")]` items (diagnostic
//!   code some rules relax);
//! - every `struct` definition with its named fields (visibility,
//!   line) — the counter-export-coverage and storage-budget rules
//!   consume these;
//! - every `impl` block's self type and trait name (`StorageBudget`
//!   coverage);
//! - every `fn` with its name and body token range — the
//!   export-reachability closure walks these.
//!
//! The pass is total: unknown constructs are skipped token-by-token,
//! so a file the layer half-understands still lints (conservatively)
//! rather than erroring.

use crate::lex::{Tok, TokKind};

/// Per-token region flags.
#[derive(Clone, Copy, Debug, Default)]
pub struct Flags {
    /// Inside an item gated on `#[cfg(test)]` (or any `cfg` mentioning
    /// `test`).
    pub in_test: bool,
    /// Inside an item gated on `#[cfg(feature = "verif")]`.
    pub in_verif: bool,
}

/// A named struct field.
#[derive(Debug)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// 1-based line of the field name.
    pub line: usize,
    /// Declared `pub` (any visibility qualifier counts).
    pub is_pub: bool,
}

/// A struct definition.
#[derive(Debug)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// Declared `pub`.
    pub is_pub: bool,
    /// Defined inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Named fields (empty for tuple/unit structs).
    pub fields: Vec<FieldDef>,
}

/// An impl block header.
#[derive(Debug)]
pub struct ImplDef {
    /// The self type's head identifier (`Foo` in `impl Tr for Foo<T>`).
    pub self_ty: String,
    /// The implemented trait's last path segment, if a trait impl.
    pub trait_name: Option<String>,
}

/// A function definition.
#[derive(Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Body as a half-open range of *code-token* indices (into
    /// [`FileItems::code`]); `(0, 0)` for bodyless declarations.
    pub body: (usize, usize),
}

/// Everything the item layer recovered from one file.
#[derive(Debug)]
pub struct FileItems {
    /// Indices of non-comment tokens, in order — the "code stream"
    /// rules iterate over.
    pub code: Vec<usize>,
    /// Region flags, indexed by *token* index (comments stay default).
    pub flags: Vec<Flags>,
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Impl blocks.
    pub impls: Vec<ImplDef>,
    /// Function definitions.
    pub fns: Vec<FnDef>,
}

/// Region context threaded through the recursive descent.
#[derive(Clone, Copy, Default)]
struct Ctx {
    test: bool,
    verif: bool,
}

impl Ctx {
    fn or(self, p: Pending) -> Ctx {
        Ctx { test: self.test || p.test, verif: self.verif || p.verif }
    }
}

/// Accumulated `#[cfg(...)]` facts for the next item.
#[derive(Clone, Copy, Default)]
struct Pending {
    test: bool,
    verif: bool,
}

struct Parser<'s> {
    src: &'s str,
    toks: &'s [Tok],
    code: Vec<usize>,
    flags: Vec<Flags>,
    i: usize, // index into `code`
    structs: Vec<StructDef>,
    impls: Vec<ImplDef>,
    fns: Vec<FnDef>,
}

/// Parses the token stream of one file into its item map.
#[must_use]
pub fn parse(src: &str, toks: &[Tok]) -> FileItems {
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let mut p = Parser {
        src,
        toks,
        code,
        flags: vec![Flags::default(); toks.len()],
        i: 0,
        structs: Vec::new(),
        impls: Vec::new(),
        fns: Vec::new(),
    };
    p.items(Ctx::default());
    FileItems { code: p.code, flags: p.flags, structs: p.structs, impls: p.impls, fns: p.fns }
}

impl Parser<'_> {
    fn t(&self, ci: usize) -> &str {
        match self.code.get(ci) {
            Some(&ti) => &self.src[self.toks[ti].lo..self.toks[ti].hi],
            None => "",
        }
    }

    fn kind(&self, ci: usize) -> Option<TokKind> {
        self.code.get(ci).map(|&ti| self.toks[ti].kind)
    }

    fn cur(&self) -> &str {
        self.t(self.i)
    }

    fn at(&self, s: &str) -> bool {
        self.cur() == s
    }

    fn eof(&self) -> bool {
        self.i >= self.code.len()
    }

    fn line(&self, ci: usize) -> usize {
        self.code.get(ci).map_or(0, |&ti| self.toks[ti].line)
    }

    fn bump(&mut self, ctx: Ctx) {
        if let Some(&ti) = self.code.get(self.i) {
            self.flags[ti].in_test |= ctx.test;
            self.flags[ti].in_verif |= ctx.verif;
        }
        self.i += 1;
    }

    /// Consumes a balanced `{}`/`()`/`[]` group, cursor on the opener.
    fn skip_group(&mut self, ctx: Ctx) {
        let (open, close) = match self.cur() {
            "{" => ("{", "}"),
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            _ => {
                self.bump(ctx);
                return;
            }
        };
        let mut depth = 0usize;
        while !self.eof() {
            if self.at(open) {
                depth += 1;
            } else if self.at(close) {
                depth -= 1;
                if depth == 0 {
                    self.bump(ctx);
                    return;
                }
            }
            self.bump(ctx);
        }
    }

    /// Consumes a balanced generic-argument group, cursor on the `<`.
    /// `>>`/`<<` count double (the lexer folds shifts into one token).
    fn skip_angles(&mut self, ctx: Ctx) {
        let mut depth = 0i64;
        while !self.eof() {
            match self.cur() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                // Tolerate a header we misread rather than swallowing
                // the whole file.
                "{" | ";" => return,
                _ => {}
            }
            self.bump(ctx);
            if depth <= 0 {
                return;
            }
        }
    }

    /// Consumes up to and including the next `;` at group depth 0
    /// (balanced through `{}`/`()`/`[]`, e.g. const initializers).
    fn skip_to_semi(&mut self, ctx: Ctx) {
        while !self.eof() {
            match self.cur() {
                ";" => {
                    self.bump(ctx);
                    return;
                }
                "{" | "(" | "[" => self.skip_group(ctx),
                _ => self.bump(ctx),
            }
        }
    }

    /// Parses one `#[...]` / `#![...]` attribute (cursor on the `#`)
    /// and folds any `cfg` facts into `pending`.
    fn attr(&mut self, ctx: Ctx, pending: &mut Pending) {
        self.bump(ctx); // '#'
        if self.at("!") {
            self.bump(ctx);
        }
        if !self.at("[") {
            return;
        }
        let start = self.i;
        self.skip_group(ctx); // the [...] group
        let end = self.i;
        // `#[cfg(...)]` (incl. `all`/`any` nests): an ident `test`
        // anywhere marks a test region; `feature = "verif"` marks a
        // verif region. `cfg_attr` is a different ident and is ignored.
        let has_cfg = (start..end).any(|ci| self.t(ci) == "cfg");
        if !has_cfg {
            return;
        }
        for ci in start..end {
            if self.t(ci) == "test" && self.kind(ci) == Some(TokKind::Ident) {
                pending.test = true;
            }
            if self.t(ci) == "feature" && self.t(ci + 1) == "=" && self.t(ci + 2) == "\"verif\"" {
                pending.verif = true;
            }
        }
    }

    /// Parses a brace-delimited item sequence. The cursor stands after
    /// the opening `{` (or at file start); returns with the cursor on
    /// the matching `}` (or EOF).
    fn items(&mut self, ctx: Ctx) {
        while !self.eof() && !self.at("}") {
            let mut pending = Pending::default();
            while self.at("#") {
                self.attr(ctx, &mut pending);
            }
            let ictx = ctx.or(pending);
            // Visibility.
            if self.at("pub") {
                self.bump(ictx);
                if self.at("(") {
                    self.skip_group(ictx);
                }
            }
            // Fn qualifiers.
            while matches!(self.cur(), "unsafe" | "async" | "default") {
                self.bump(ictx);
            }
            if self.at("extern") {
                self.bump(ictx);
                if self.kind(self.i) == Some(TokKind::Str) {
                    self.bump(ictx);
                }
                if self.at("{") {
                    // Foreign module: skip wholesale.
                    self.skip_group(ictx);
                    continue;
                }
            }
            if self.at("const") && self.t(self.i + 1) == "fn" {
                self.bump(ictx);
            }
            match self.cur() {
                "mod" => {
                    self.bump(ictx);
                    self.bump(ictx); // name
                    if self.at("{") {
                        self.bump(ictx);
                        self.items(ictx);
                        self.bump(ictx); // '}'
                    } else {
                        self.skip_to_semi(ictx);
                    }
                }
                "struct" => self.parse_struct(ictx),
                "enum" | "union" | "trait" => {
                    let is_trait = self.at("trait");
                    self.bump(ictx);
                    self.bump(ictx); // name
                    while !self.eof() && !self.at("{") && !self.at(";") {
                        if self.at("<") {
                            self.skip_angles(ictx);
                        } else {
                            self.bump(ictx);
                        }
                    }
                    if self.at("{") {
                        if is_trait {
                            self.bump(ictx);
                            self.items(ictx);
                            self.bump(ictx);
                        } else {
                            self.skip_group(ictx);
                        }
                    } else {
                        self.bump(ictx);
                    }
                }
                "impl" => self.parse_impl(ictx),
                "fn" => self.parse_fn(ictx),
                "type" | "use" | "static" | "const" => self.skip_to_semi(ictx),
                "macro_rules" => {
                    self.bump(ictx); // macro_rules
                    self.bump(ictx); // '!'
                    self.bump(ictx); // name
                    self.skip_group(ictx);
                }
                "{" => self.skip_group(ictx),
                _ => self.bump(ictx),
            }
        }
    }

    fn parse_struct(&mut self, ctx: Ctx) {
        let kw_line = self.line(self.i);
        self.bump(ctx); // struct
        let name = self.cur().to_owned();
        self.bump(ctx);
        if self.at("<") {
            self.skip_angles(ctx);
        }
        // Where clause / nothing, up to the body form.
        while !self.eof() && !self.at("{") && !self.at("(") && !self.at(";") {
            self.bump(ctx);
        }
        let mut fields = Vec::new();
        match self.cur() {
            "(" => {
                self.skip_group(ctx); // tuple struct
                if self.at(";") {
                    self.bump(ctx);
                }
            }
            ";" => self.bump(ctx), // unit struct
            "{" => {
                self.bump(ctx);
                self.parse_fields(ctx, &mut fields);
                self.bump(ctx); // '}'
            }
            _ => {}
        }
        // `is_pub` is re-derived by the caller side: the `pub` token
        // was consumed before dispatch, so thread it via a lookback.
        let is_pub = self.lookback_pub(kw_line);
        self.structs.push(StructDef { name, line: kw_line, is_pub, in_test: ctx.test, fields });
    }

    /// Was the item whose keyword sits on `kw_line` declared `pub`?
    /// The visibility token was consumed generically before dispatch,
    /// so look back over recent tokens on the same or previous line.
    fn lookback_pub(&self, kw_line: usize) -> bool {
        (0..self.i)
            .rev()
            .take_while(|&ci| self.line(ci) + 1 >= kw_line)
            .any(|ci| self.t(ci) == "pub" && self.line(ci) == kw_line)
    }

    fn parse_fields(&mut self, ctx: Ctx, out: &mut Vec<FieldDef>) {
        while !self.eof() && !self.at("}") {
            let mut pending = Pending::default();
            while self.at("#") {
                self.attr(ctx, &mut pending);
            }
            let mut is_pub = false;
            if self.at("pub") {
                is_pub = true;
                self.bump(ctx);
                if self.at("(") {
                    self.skip_group(ctx);
                }
            }
            if self.kind(self.i) == Some(TokKind::Ident) && self.t(self.i + 1) == ":" {
                let name = self.cur().to_owned();
                let line = self.line(self.i);
                if !(pending.test || ctx.test) {
                    out.push(FieldDef { name, line, is_pub });
                }
                self.bump(ctx); // name
                self.bump(ctx); // ':'
                                // Type: up to the comma at depth 0.
                let mut angle = 0i64;
                while !self.eof() {
                    match self.cur() {
                        "," if angle <= 0 => {
                            self.bump(ctx);
                            break;
                        }
                        "}" if angle <= 0 => break,
                        "<" => angle += 1,
                        "<<" => angle += 2,
                        ">" => angle -= 1,
                        ">>" => angle -= 2,
                        "(" | "[" | "{" => {
                            self.skip_group(ctx);
                            continue;
                        }
                        _ => {}
                    }
                    self.bump(ctx);
                }
            } else {
                self.bump(ctx);
            }
        }
    }

    fn parse_impl(&mut self, ctx: Ctx) {
        self.bump(ctx); // impl
        if self.at("<") {
            self.skip_angles(ctx);
        }
        // Header: everything up to the body brace; split on `for`.
        let start = self.i;
        let mut angle = 0i64;
        let mut for_at = None;
        let mut where_at = None;
        while !self.eof() && !self.at("{") && !self.at(";") {
            match self.cur() {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "for" if angle <= 0 && for_at.is_none() => for_at = Some(self.i),
                "where" if angle <= 0 && where_at.is_none() => where_at = Some(self.i),
                _ => {}
            }
            self.bump(ctx);
        }
        let end = where_at.unwrap_or(self.i);
        let (trait_name, ty_start) = match for_at {
            Some(f) => (self.last_head_ident(start, f), f + 1),
            None => (None, start),
        };
        let self_ty = self.last_head_ident(ty_start, end).unwrap_or_default();
        if self.at("{") {
            self.bump(ctx);
            self.items(ctx);
            self.bump(ctx); // '}'
        } else {
            self.bump(ctx);
        }
        self.impls.push(ImplDef { self_ty, trait_name });
    }

    /// The head identifier of a type/trait path in `[start, end)`: the
    /// last ident at angle depth 0 (`Foo` in `a::b::Foo<T>`; `Vec` in
    /// `Vec<Foo>`; skips `&`, `mut`, lifetimes, `dyn`).
    fn last_head_ident(&self, start: usize, end: usize) -> Option<String> {
        let mut angle = 0i64;
        let mut last = None;
        for ci in start..end {
            match self.t(ci) {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "mut" | "dyn" | "ref" => {}
                t if angle <= 0
                    && self.kind(ci) == Some(TokKind::Ident)
                    && t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') =>
                {
                    last = Some(t.to_owned());
                }
                _ => {}
            }
        }
        last
    }

    fn parse_fn(&mut self, ctx: Ctx) {
        self.bump(ctx); // fn
        let name = self.cur().to_owned();
        self.bump(ctx);
        if self.at("<") {
            self.skip_angles(ctx);
        }
        if self.at("(") {
            self.skip_group(ctx); // params
        }
        // Return type / where clause, up to the body or `;`.
        while !self.eof() && !self.at("{") && !self.at(";") {
            if self.at("<") {
                self.skip_angles(ctx);
            } else {
                self.bump(ctx);
            }
        }
        let mut body = (0, 0);
        if self.at("{") {
            let bstart = self.i + 1;
            self.skip_group(ctx);
            body = (bstart, self.i.saturating_sub(1));
        } else {
            self.bump(ctx); // ';'
        }
        self.fns.push(FnDef { name, body });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn parse_src(src: &str) -> FileItems {
        parse(src, Box::leak(lex(src).into_boxed_slice()))
    }

    /// Code-token texts inside/outside test regions.
    fn split_test_regions(src: &str) -> (Vec<String>, Vec<String>) {
        let toks = lex(src);
        let items = parse(src, &toks);
        let mut test = Vec::new();
        let mut live = Vec::new();
        for &ti in &items.code {
            let text = src[toks[ti].lo..toks[ti].hi].to_owned();
            if items.flags[ti].in_test {
                test.push(text);
            } else {
                live.push(text);
            }
        }
        (test, live)
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src =
            "fn hot() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn also() {}";
        let (test, live) = split_test_regions(src);
        assert!(test.iter().any(|t| t == "unwrap"));
        assert!(!live.iter().any(|t| t == "unwrap"));
        assert!(live.iter().any(|t| t == "also"));
    }

    #[test]
    fn cfg_test_single_item_is_marked_whole() {
        // The old line scanner skipped only the attribute line of a
        // `#[cfg(test)]` fn; the item layer covers the entire item.
        let src = "#[cfg(test)]\nfn helper() {\n  let v = vec![1];\n}\nfn live() { real(); }";
        let (test, live) = split_test_regions(src);
        assert!(test.iter().any(|t| t == "vec"));
        assert!(!live.iter().any(|t| t == "vec"));
        assert!(live.iter().any(|t| t == "real"));
    }

    #[test]
    fn cfg_verif_regions_are_tracked() {
        let src = "#[cfg(feature = \"verif\")]\nimpl Core {\n  fn snapshot(&self) { x.collect(); }\n}\nfn live() {}";
        let toks = lex(src);
        let items = parse(src, &toks);
        let verif: Vec<&str> = items
            .code
            .iter()
            .filter(|&&ti| items.flags[ti].in_verif)
            .map(|&ti| &src[toks[ti].lo..toks[ti].hi])
            .collect();
        assert!(verif.contains(&"collect"));
        assert!(!verif.contains(&"live"));
    }

    #[test]
    fn struct_fields_are_recovered() {
        let src = "pub struct FooStats {\n  /// doc\n  pub hits: u64,\n  pub map: BTreeMap<u64, u64>,\n  internal: bool,\n}";
        let items = parse_src(src);
        assert_eq!(items.structs.len(), 1);
        let s = &items.structs[0];
        assert_eq!(s.name, "FooStats");
        assert!(s.is_pub);
        let names: Vec<(&str, bool)> =
            s.fields.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(names, [("hits", true), ("map", true), ("internal", false)]);
        assert_eq!(s.fields[1].line, 4, "generic comma does not split the field");
    }

    #[test]
    fn tuple_and_unit_structs_have_no_fields() {
        let items = parse_src("pub struct A(u64, u64);\nstruct B;\npub struct C { pub x: u8 }");
        assert_eq!(items.structs.len(), 3);
        assert!(items.structs[0].fields.is_empty());
        assert!(items.structs[1].fields.is_empty());
        assert!(!items.structs[1].is_pub);
        assert_eq!(items.structs[2].fields.len(), 1);
    }

    #[test]
    fn impl_blocks_resolve_trait_and_self_type() {
        let src = "impl tvp_verif::StorageBudget for Hierarchy {\n fn storage_bits(&self) -> u64 { 0 }\n}\nimpl Btb { fn lookup(&self) {} }\nimpl<T> Display for Wrapper<T> where T: X {}";
        let items = parse_src(src);
        assert_eq!(items.impls.len(), 3);
        assert_eq!(items.impls[0].trait_name.as_deref(), Some("StorageBudget"));
        assert_eq!(items.impls[0].self_ty, "Hierarchy");
        assert_eq!(items.impls[1].trait_name, None);
        assert_eq!(items.impls[1].self_ty, "Btb");
        assert_eq!(items.impls[2].trait_name.as_deref(), Some("Display"));
        assert_eq!(items.impls[2].self_ty, "Wrapper");
    }

    #[test]
    fn fn_bodies_are_recorded() {
        let src = "impl Core {\n pub fn export_registry(&self) { reg.counter(self.stats.cycles); }\n}\nfn free() { helper(); }";
        let items = parse_src(src);
        assert_eq!(items.fns.len(), 2);
        let export = &items.fns[0];
        assert_eq!(export.name, "export_registry");
        let body: Vec<&str> = (export.body.0..export.body.1)
            .map(|ci| {
                let ti = items.code[ci];
                let t = crate::lex::lex(src);
                Box::leak(src[t[ti].lo..t[ti].hi].to_owned().into_boxed_str()) as &str
            })
            .collect();
        assert!(body.contains(&"cycles"));
        assert!(!body.contains(&"helper"), "body range stops at the closing brace");
    }

    #[test]
    fn generics_with_shift_tokens_do_not_derail() {
        let src = "pub struct M { pub m: Vec<Vec<u64>>, pub n: u8 }\nfn after() {}";
        let items = parse_src(src);
        assert_eq!(items.structs[0].fields.len(), 2);
        assert_eq!(items.fns.len(), 1, "parser recovers after `>>` in a field type");
    }

    #[test]
    fn const_items_with_braced_initializers_are_skipped() {
        let src = "const X: [u8; 2] = [1, 2];\npub const Y: u64 = { 3 + 4 };\nfn live() {}";
        let items = parse_src(src);
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].name, "live");
    }
}
