//! Property-based tests of the functional machine and sparse memory.

use proptest::prelude::*;
use tvp_isa::inst::build::*;
use tvp_isa::inst::AddrMode;
use tvp_isa::reg::x;
use tvp_workloads::machine::SparseMem;
use tvp_workloads::program::Asm;
use tvp_workloads::Machine;

proptest! {
    #[test]
    fn sparse_memory_read_after_write(
        writes in proptest::collection::vec((0u64..0x10_0000, 0u8..4, any::<u64>()), 1..50),
    ) {
        let mut mem = SparseMem::default();
        let mut reference = std::collections::HashMap::new();
        for (addr, size_sel, value) in writes {
            let size = [1u8, 2, 4, 8][size_sel as usize];
            mem.write(addr, size, value);
            for i in 0..u64::from(size) {
                reference.insert(addr + i, (value >> (8 * i)) as u8);
            }
        }
        for (&addr, &byte) in &reference {
            prop_assert_eq!(mem.read(addr, 1) as u8, byte);
        }
    }

    #[test]
    fn machine_alu_matches_native_arithmetic(a: u32, b: u32) {
        // A tiny program computing (a + b) * 2 - a, checked against
        // native arithmetic.
        let mut asm = Asm::new();
        asm.i(add(x(2), x(0), x(1)));
        asm.i(add(x(2), x(2), x(2)));
        asm.i(sub(x(2), x(2), x(0)));
        let mut m = Machine::new(asm.assemble().unwrap());
        m.set_reg(x(0), u64::from(a));
        m.set_reg(x(1), u64::from(b));
        let _ = m.run(10);
        let expected = (u64::from(a) + u64::from(b)) * 2 - u64::from(a);
        prop_assert_eq!(m.reg(x(2)), expected);
    }

    #[test]
    fn store_load_roundtrip_through_machine(value: u64, disp in 0i64..512) {
        let mut asm = Asm::new();
        asm.i(str(x(0), AddrMode::BaseDisp { base: x(20), disp }));
        asm.i(ldr(x(1), AddrMode::BaseDisp { base: x(20), disp }));
        let mut m = Machine::new(asm.assemble().unwrap());
        m.set_reg(x(0), value);
        m.set_reg(x(20), 0x9000);
        let trace = m.run(10);
        prop_assert_eq!(m.reg(x(1)), value);
        // The trace records both effective addresses identically.
        prop_assert_eq!(trace.uops[0].mem_addr, trace.uops[1].mem_addr);
        prop_assert_eq!(trace.uops[1].result, Some(value));
    }

    #[test]
    fn loop_trip_counts_are_exact(n in 1i64..200) {
        let mut asm = Asm::new();
        asm.i(movz(x(0), n));
        asm.label("loop");
        asm.i(add(x(1), x(1), 1i64));
        asm.i(subs(x(0), x(0), 1i64));
        asm.b_cond(tvp_isa::flags::Cond::Ne, "loop");
        let mut m = Machine::new(asm.assemble().unwrap());
        let trace = m.run(100_000);
        prop_assert_eq!(m.reg(x(1)), n as u64);
        prop_assert_eq!(trace.arch_insts, 1 + 3 * n as u64);
        // Exactly one not-taken branch (the exit).
        let not_taken = trace
            .uops
            .iter()
            .filter(|u| u.branch.is_some_and(|b| !b.taken))
            .count();
        prop_assert_eq!(not_taken, 1);
    }
}
