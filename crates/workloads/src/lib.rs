//! # tvp-workloads — synthetic SPEC2017-like workloads and traces
//!
//! The paper evaluates on SPEC CPU2017 speed SimPoints; this crate
//! provides the synthetic stand-ins (see DESIGN.md §3 for the
//! substitution table) and the machinery to run them:
//!
//! * [`program`] — label-based assembler DSL producing [`program::Program`]s;
//! * [`machine`] — the functional machine (registers, flags, sparse
//!   memory) that executes programs and emits traces;
//! * [`trace`] — the µop-level dynamic trace the timing core replays;
//! * [`suite()`][crate::suite::suite] — the workload suite (17 kernels, 25 rows with variants);
//! * [`kernels`] — the kernel implementations;
//! * [`value_dist`] — dynamic value distribution analysis (Fig. 1).
//!
//! # Examples
//!
//! ```
//! let workload = tvp_workloads::suite::by_name("pointer_chase").unwrap();
//! let trace = workload.trace(1_000);
//! assert_eq!(trace.arch_insts, 1_000);
//! assert!(trace.expansion_ratio() >= 1.0);
//! ```

pub mod kernels;
pub mod machine;
pub mod program;
pub mod stream;
pub mod suite;
pub mod trace;
pub mod value_dist;

pub use machine::{ArchSnapshot, Machine};
pub use program::{Asm, Program};
pub use stream::{FileSource, MachineSource, TraceFileReader, TraceFileWriter, TraceSource};
pub use suite::{suite, Workload};
pub use trace::{BranchOutcome, Trace, TraceUop};
pub use value_dist::ValueDistribution;
