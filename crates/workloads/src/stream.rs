//! Streaming trace sources — the record layer of the `DynInst` trace
//! format plus the [`TraceSource`] abstraction the sampling driver
//! consumes.
//!
//! `tvp_isa::stream` owns the byte-level primitives (varints, the
//! `Inst` codec, chunk framing and checksums); this module maps one
//! executed [`TraceUop`] — result, flags, memory address, branch
//! outcome — onto those primitives with delta encoding:
//!
//! * `seq` is stored as a varint delta against the previous record
//!   (the chunk header carries `first_seq`, so every in-chunk delta is
//!   ≥ 1 and monotonicity is checked *by construction* on decode);
//! * `pc` and `mem_addr` are zigzag deltas against their previous
//!   values (loops and streaming accesses encode in 1–2 bytes);
//! * branch targets are zigzag deltas against the record's own `pc`.
//!
//! Delta state resets at every chunk boundary, so each chunk decodes
//! independently of the ones before it — a corrupt chunk quarantines
//! one chunk, not the rest of the file.
//!
//! Everything is streaming: [`TraceFileWriter`] holds one chunk of
//! payload in memory, [`TraceFileReader`] one chunk of input, and the
//! [`TraceSource`] implementations hand out architectural instructions
//! in bounded batches — memory stays flat no matter how many billions
//! of instructions a trace holds.

use std::io::{self, Read, Write};
use std::path::Path;

use tvp_isa::flags::Nzcv;
use tvp_isa::stream::{
    chunk_header_bytes, decode_inst, encode_inst, end_frame, file_header_bytes, parse_chunk_header,
    parse_end_payload, parse_file_header, verify_chunk, write_varint, zigzag, ByteReader,
    ChunkHeader, ChunkKind, StreamError, CHUNK_HEADER_LEN, FILE_HEADER_LEN,
};

use crate::machine::Machine;
use crate::trace::{BranchOutcome, Trace, TraceUop};

/// Records per chunk. Chosen so a chunk's payload stays comfortably
/// under a megabyte while keeping header overhead negligible.
pub const CHUNK_RECORDS: u32 = 4096;

/// Why reading a trace file failed: the transport broke, or the bytes
/// themselves are wrong.
#[derive(Debug)]
pub enum TraceFileError {
    /// The underlying reader/writer failed.
    Io(io::Error),
    /// The bytes are not a valid trace (torn, corrupt, version skew).
    Corrupt(StreamError),
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file i/o error: {e}"),
            TraceFileError::Corrupt(e) => write!(f, "trace file corrupt: {e}"),
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

impl From<StreamError> for TraceFileError {
    fn from(e: StreamError) -> Self {
        TraceFileError::Corrupt(e)
    }
}

// --------------------------------------------------------------------
// record codec
// --------------------------------------------------------------------

const R_FIRST_UOP: u8 = 1 << 0;
const R_RESULT: u8 = 1 << 1;
const R_FLAGS_OUT: u8 = 1 << 2;
const R_MEM_ADDR: u8 = 1 << 3;
const R_BRANCH: u8 = 1 << 4;
const R_BRANCH_TAKEN: u8 = 1 << 5;

/// Per-chunk delta-coding state. Reset at every chunk boundary so
/// chunks decode independently.
#[derive(Copy, Clone, Debug)]
struct DeltaState {
    prev_seq: u64,
    prev_pc: u64,
    prev_mem: u64,
}

impl DeltaState {
    /// State for a chunk whose first record has sequence `first_seq`:
    /// the first in-chunk seq delta is exactly 1.
    fn at(first_seq: u64) -> Self {
        DeltaState { prev_seq: first_seq.wrapping_sub(1), prev_pc: 0, prev_mem: 0 }
    }
}

fn encode_record(st: &mut DeltaState, u: &TraceUop, out: &mut Vec<u8>) {
    debug_assert!(u.seq.wrapping_sub(st.prev_seq) >= 1, "writer fed non-monotonic seqs");
    let mut flags = 0u8;
    if u.first_uop {
        flags |= R_FIRST_UOP;
    }
    if u.result.is_some() {
        flags |= R_RESULT;
    }
    if u.flags_out.is_some() {
        flags |= R_FLAGS_OUT;
    }
    if u.mem_addr.is_some() {
        flags |= R_MEM_ADDR;
    }
    if let Some(b) = u.branch {
        flags |= R_BRANCH;
        if b.taken {
            flags |= R_BRANCH_TAKEN;
        }
    }
    out.push(flags);
    write_varint(out, u.seq.wrapping_sub(st.prev_seq));
    write_varint(out, zigzag(u.pc.wrapping_sub(st.prev_pc) as i64));
    if let Some(r) = u.result {
        write_varint(out, r);
    }
    if let Some(f) = u.flags_out {
        out.push(f.pack());
    }
    if let Some(a) = u.mem_addr {
        write_varint(out, zigzag(a.wrapping_sub(st.prev_mem) as i64));
        st.prev_mem = a;
    }
    if let Some(b) = u.branch {
        write_varint(out, zigzag(b.target.wrapping_sub(u.pc) as i64));
    }
    encode_inst(&u.uop, out);
    st.prev_seq = u.seq;
    st.prev_pc = u.pc;
}

fn decode_record(st: &mut DeltaState, r: &mut ByteReader<'_>) -> Result<TraceUop, StreamError> {
    let flags = r.u8()?;
    let delta = r.varint()?;
    if delta == 0 {
        return Err(StreamError::NonMonotonicSeq { seq: st.prev_seq, prev: st.prev_seq });
    }
    let seq = st.prev_seq.wrapping_add(delta);
    let pc = st.prev_pc.wrapping_add(r.svarint()? as u64);
    let result = if flags & R_RESULT != 0 { Some(r.varint()?) } else { None };
    let flags_out = if flags & R_FLAGS_OUT != 0 { Some(Nzcv::unpack(r.u8()?)) } else { None };
    let mem_addr = if flags & R_MEM_ADDR != 0 {
        let a = st.prev_mem.wrapping_add(r.svarint()? as u64);
        st.prev_mem = a;
        Some(a)
    } else {
        None
    };
    let branch = if flags & R_BRANCH != 0 {
        let target = pc.wrapping_add(r.svarint()? as u64);
        Some(BranchOutcome { taken: flags & R_BRANCH_TAKEN != 0, target })
    } else {
        None
    };
    let uop = decode_inst(r)?;
    st.prev_seq = seq;
    st.prev_pc = pc;
    Ok(TraceUop {
        seq,
        pc,
        uop,
        first_uop: flags & R_FIRST_UOP != 0,
        result,
        flags_out,
        mem_addr,
        branch,
    })
}

// --------------------------------------------------------------------
// file writer
// --------------------------------------------------------------------

/// Totals reported when a trace file is sealed.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StreamTotals {
    /// µop records written.
    pub records: u64,
    /// Architectural instructions written.
    pub arch_insts: u64,
    /// Chunks written (excluding the terminator).
    pub chunks: u64,
}

/// Streams µop records into the chunked trace container. Holds at
/// most one chunk of encoded payload in memory.
#[derive(Debug)]
pub struct TraceFileWriter<W: Write> {
    w: W,
    buf: Vec<u8>,
    records_in_chunk: u32,
    first_seq: u64,
    delta: DeltaState,
    totals: StreamTotals,
}

impl<W: Write> TraceFileWriter<W> {
    /// Starts a new trace file (writes the header immediately).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn create(mut w: W) -> io::Result<Self> {
        w.write_all(&file_header_bytes())?;
        Ok(TraceFileWriter {
            w,
            buf: Vec::with_capacity(64 * 1024),
            records_in_chunk: 0,
            first_seq: 0,
            delta: DeltaState::at(0),
            totals: StreamTotals::default(),
        })
    }

    /// Appends one µop record. Sequence numbers must be strictly
    /// increasing across the whole file.
    ///
    /// # Errors
    ///
    /// Propagates write failures when a full chunk is flushed.
    pub fn push(&mut self, u: &TraceUop) -> io::Result<()> {
        if self.records_in_chunk == 0 {
            self.first_seq = u.seq;
            self.delta = DeltaState::at(u.seq);
        }
        encode_record(&mut self.delta, u, &mut self.buf);
        self.records_in_chunk += 1;
        self.totals.records += 1;
        if u.first_uop {
            self.totals.arch_insts += 1;
        }
        if self.records_in_chunk >= CHUNK_RECORDS {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.records_in_chunk == 0 {
            return Ok(());
        }
        let header = chunk_header_bytes(
            ChunkKind::Records,
            self.records_in_chunk,
            self.first_seq,
            &self.buf,
        );
        self.w.write_all(&header)?;
        self.w.write_all(&self.buf)?;
        self.buf.clear();
        self.records_in_chunk = 0;
        self.totals.chunks += 1;
        Ok(())
    }

    /// Flushes the final partial chunk, writes the terminator frame
    /// and returns the totals.
    ///
    /// # Errors
    ///
    /// Propagates write/flush failures.
    pub fn finish(mut self) -> io::Result<StreamTotals> {
        self.flush_chunk()?;
        self.w.write_all(&end_frame(self.totals.records, self.totals.arch_insts))?;
        self.w.flush()?;
        Ok(self.totals)
    }
}

/// Functionally executes `arch_insts` instructions on `machine`,
/// streaming the resulting trace into `w` with flat memory use (one
/// architectural instruction is materialized at a time). Returns the
/// sealed totals; stops early if the machine halts.
///
/// # Errors
///
/// Propagates write failures.
pub fn stream_machine_trace<W: Write>(
    machine: &mut Machine,
    arch_insts: u64,
    w: W,
) -> io::Result<StreamTotals> {
    let mut writer = TraceFileWriter::create(w)?;
    let mut scratch = Trace::default();
    for _ in 0..arch_insts {
        if !machine.step_into(&mut scratch) {
            break;
        }
        for u in &scratch.uops {
            writer.push(u)?;
        }
        scratch.uops.clear();
    }
    writer.finish()
}

// --------------------------------------------------------------------
// file reader
// --------------------------------------------------------------------

/// Streaming decoder for the chunked trace container. Holds one
/// chunk's payload in memory; every frame is checksum-verified before
/// any record in it is decoded.
#[derive(Debug)]
pub struct TraceFileReader<R: Read> {
    r: R,
    chunk: Vec<u8>,
    pos: usize,
    records_left: u32,
    delta: DeltaState,
    last_seq: u64,
    any_records: bool,
    finished: bool,
    totals: StreamTotals,
}

impl<R: Read> TraceFileReader<R> {
    /// Opens a trace stream (reads and validates the file header).
    ///
    /// # Errors
    ///
    /// I/O failures, or corruption ([`StreamError::BadMagic`],
    /// [`StreamError::SchemaMismatch`], torn header).
    pub fn open(mut r: R) -> Result<Self, TraceFileError> {
        let mut header = [0u8; FILE_HEADER_LEN];
        read_exact_or_torn(&mut r, &mut header, FILE_HEADER_LEN)?;
        parse_file_header(&header)?;
        Ok(TraceFileReader {
            r,
            chunk: Vec::new(),
            pos: 0,
            records_left: 0,
            delta: DeltaState::at(0),
            last_seq: 0,
            any_records: false,
            finished: false,
            totals: StreamTotals::default(),
        })
    }

    /// Decodes the next µop record, or `None` after the terminator
    /// frame has been reached and verified.
    ///
    /// # Errors
    ///
    /// I/O failures or any [`StreamError`] corruption class — torn
    /// chunks, checksum mismatches, non-monotonic sequence numbers,
    /// a missing terminator, terminator totals that disagree with the
    /// records actually present.
    pub fn next_uop(&mut self) -> Result<Option<TraceUop>, TraceFileError> {
        loop {
            if self.finished {
                return Ok(None);
            }
            if self.records_left > 0 {
                let mut br = ByteReader::new(&self.chunk[self.pos..]);
                let u = decode_record(&mut self.delta, &mut br)?;
                self.pos += br.pos();
                self.records_left -= 1;
                if self.records_left == 0 && self.pos != self.chunk.len() {
                    return Err(StreamError::MalformedRecord.into());
                }
                if self.any_records && u.seq <= self.last_seq {
                    return Err(
                        StreamError::NonMonotonicSeq { seq: u.seq, prev: self.last_seq }.into()
                    );
                }
                self.any_records = true;
                self.last_seq = u.seq;
                self.totals.records += 1;
                if u.first_uop {
                    self.totals.arch_insts += 1;
                }
                return Ok(Some(u));
            }
            self.load_chunk()?;
        }
    }

    fn load_chunk(&mut self) -> Result<(), TraceFileError> {
        let mut header = [0u8; CHUNK_HEADER_LEN];
        match self.r.read(&mut header[..1])? {
            0 => return Err(StreamError::MissingTerminator.into()),
            _ => read_exact_or_torn(&mut self.r, &mut header[1..], CHUNK_HEADER_LEN)?,
        }
        let hdr: ChunkHeader = parse_chunk_header(&header)?;
        self.chunk.resize(hdr.payload_len as usize, 0);
        read_exact_or_torn(&mut self.r, &mut self.chunk, hdr.payload_len as usize)?;
        verify_chunk(&hdr, &self.chunk)?;
        match hdr.kind {
            ChunkKind::Records => {
                if hdr.records == 0 {
                    return Err(StreamError::MalformedRecord.into());
                }
                if self.any_records && hdr.first_seq <= self.last_seq {
                    return Err(StreamError::NonMonotonicSeq {
                        seq: hdr.first_seq,
                        prev: self.last_seq,
                    }
                    .into());
                }
                self.records_left = hdr.records;
                self.pos = 0;
                self.delta = DeltaState::at(hdr.first_seq);
                self.totals.chunks += 1;
            }
            ChunkKind::End => {
                let (records, arch_insts) = parse_end_payload(&self.chunk)?;
                if records != self.totals.records || arch_insts != self.totals.arch_insts {
                    return Err(StreamError::TrailerMismatch {
                        declared: records,
                        actual: self.totals.records,
                    }
                    .into());
                }
                self.finished = true;
            }
        }
        Ok(())
    }

    /// Totals decoded so far (final once `next_uop` returns `None`).
    #[must_use]
    pub fn totals(&self) -> StreamTotals {
        self.totals
    }

    /// True once the terminator frame has been consumed and verified.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Consumes the reader, returning the underlying byte source.
    pub fn into_inner(self) -> R {
        self.r
    }
}

fn read_exact_or_torn<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    needed: usize,
) -> Result<(), TraceFileError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceFileError::Corrupt(StreamError::TooShort { needed, have: 0 })
        } else {
            TraceFileError::Io(e)
        }
    })
}

// --------------------------------------------------------------------
// trace sources
// --------------------------------------------------------------------

/// A producer of dynamic µop traces that hands out *whole
/// architectural instructions* in bounded batches. The sampling
/// driver drives one of these: `skip` for functional fast-forward,
/// `fill` to materialize a warmup or measured interval.
pub trait TraceSource {
    /// Appends up to `arch_insts` whole architectural instructions to
    /// `out` (µops and `arch_insts` both updated). Returns how many
    /// were appended — fewer only when the source is exhausted.
    ///
    /// # Errors
    ///
    /// File-backed sources surface I/O or corruption errors.
    fn fill(&mut self, arch_insts: u64, out: &mut Trace) -> Result<u64, TraceFileError>;

    /// Skips up to `arch_insts` architectural instructions without
    /// materializing them. Returns how many were skipped.
    ///
    /// # Errors
    ///
    /// File-backed sources surface I/O or corruption errors.
    fn skip(&mut self, arch_insts: u64) -> Result<u64, TraceFileError>;
}

/// [`TraceSource`] that executes the functional machine on demand:
/// `skip` fast-forwards architecturally, `fill` emits annotated µops.
#[derive(Debug)]
pub struct MachineSource {
    m: Machine,
}

impl MachineSource {
    /// Wraps a machine as a streaming trace source.
    #[must_use]
    pub fn new(m: Machine) -> Self {
        MachineSource { m }
    }

    /// The wrapped machine (checkpointing reads its state here).
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.m
    }
}

impl TraceSource for MachineSource {
    fn fill(&mut self, arch_insts: u64, out: &mut Trace) -> Result<u64, TraceFileError> {
        let mut done = 0;
        while done < arch_insts && self.m.step_into(out) {
            done += 1;
        }
        Ok(done)
    }

    fn skip(&mut self, arch_insts: u64) -> Result<u64, TraceFileError> {
        Ok(self.m.fast_forward(arch_insts))
    }
}

/// [`TraceSource`] that decodes a streamed trace file on the fly.
/// Holds one chunk plus at most one look-ahead record in memory.
#[derive(Debug)]
pub struct FileSource<R: Read> {
    reader: TraceFileReader<R>,
    pending: Option<TraceUop>,
}

impl<R: Read> FileSource<R> {
    /// Opens a byte stream as a trace source.
    ///
    /// # Errors
    ///
    /// Propagates [`TraceFileReader::open`] failures.
    pub fn open(r: R) -> Result<Self, TraceFileError> {
        Ok(FileSource { reader: TraceFileReader::open(r)?, pending: None })
    }

    fn next_record(&mut self) -> Result<Option<TraceUop>, TraceFileError> {
        if let Some(u) = self.pending.take() {
            return Ok(Some(u));
        }
        self.reader.next_uop()
    }

    fn advance(
        &mut self,
        arch_insts: u64,
        mut sink: impl FnMut(TraceUop),
    ) -> Result<u64, TraceFileError> {
        let mut done = 0;
        loop {
            let Some(u) = self.next_record()? else {
                return Ok(done);
            };
            if u.first_uop {
                if done == arch_insts {
                    self.pending = Some(u);
                    return Ok(done);
                }
                done += 1;
            }
            sink(u);
        }
    }
}

impl<R: Read> TraceSource for FileSource<R> {
    fn fill(&mut self, arch_insts: u64, out: &mut Trace) -> Result<u64, TraceFileError> {
        let done = self.advance(arch_insts, |u| out.uops.push(u))?;
        out.arch_insts += done;
        Ok(done)
    }

    fn skip(&mut self, arch_insts: u64) -> Result<u64, TraceFileError> {
        self.advance(arch_insts, |_| ())
    }
}

// --------------------------------------------------------------------
// offline validation
// --------------------------------------------------------------------

/// Walks an entire trace file, verifying header, chunk checksums,
/// record decode, monotonic sequence numbers and the terminator
/// totals. Rejects trailing bytes after the terminator.
///
/// # Errors
///
/// The first I/O or corruption error encountered.
pub fn validate_file(path: &Path) -> Result<StreamTotals, TraceFileError> {
    let file = std::fs::File::open(path)?;
    let mut reader = TraceFileReader::open(io::BufReader::new(file))?;
    while reader.next_uop()?.is_some() {}
    let totals = reader.totals();
    let mut trailing = [0u8; 1];
    if reader.into_inner().read(&mut trailing)? != 0 {
        return Err(StreamError::MalformedRecord.into());
    }
    Ok(totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::by_name;

    fn sample_trace(insts: u64) -> Trace {
        by_name("pointer_chase").expect("workload exists").trace(insts)
    }

    fn encode(trace: &Trace) -> Vec<u8> {
        let mut bytes = Vec::new();
        let mut w = TraceFileWriter::create(&mut bytes).expect("header writes");
        for u in &trace.uops {
            w.push(u).expect("record writes");
        }
        w.finish().expect("seals");
        bytes
    }

    #[test]
    fn file_roundtrip_preserves_every_record() {
        let trace = sample_trace(9_000); // > 2 chunks of µops
        let bytes = encode(&trace);
        let mut r = TraceFileReader::open(&bytes[..]).expect("opens");
        let mut got = Vec::new();
        while let Some(u) = r.next_uop().expect("decodes") {
            got.push(u);
        }
        assert_eq!(got.len(), trace.uops.len());
        for (a, b) in trace.uops.iter().zip(&got) {
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.pc, b.pc);
            assert_eq!(a.uop, b.uop);
            assert_eq!(a.first_uop, b.first_uop);
            assert_eq!(a.result, b.result);
            assert_eq!(a.flags_out, b.flags_out);
            assert_eq!(a.mem_addr, b.mem_addr);
            assert_eq!(
                a.branch.map(|x| (x.taken, x.target)),
                b.branch.map(|x| (x.taken, x.target))
            );
        }
        let totals = r.totals();
        assert_eq!(totals.records, trace.uops.len() as u64);
        assert_eq!(totals.arch_insts, trace.arch_insts);
        assert!(totals.chunks >= 2, "exercises chunk boundaries");
    }

    #[test]
    fn file_source_fills_whole_architectural_instructions() {
        let trace = sample_trace(1_000);
        let bytes = encode(&trace);
        let mut src = FileSource::open(&bytes[..]).expect("opens");
        let mut head = Trace::default();
        assert_eq!(src.fill(300, &mut head).expect("fills"), 300);
        assert_eq!(head.arch_insts, 300);
        // Whole-instruction batches: each batch begins on an
        // architectural instruction boundary.
        assert!(head.uops.first().is_some_and(|u| u.first_uop));
        assert_eq!(src.skip(400).expect("skips"), 400);
        let mut tail = Trace::default();
        assert_eq!(src.fill(10_000, &mut tail).expect("fills rest"), 300);
        assert!(tail.uops.first().is_some_and(|u| u.first_uop));
        // head + skipped + tail account for every µop exactly once.
        let skipped = trace.uops.len() - head.uops.len() - tail.uops.len();
        assert!(skipped > 0);
        assert_eq!(tail.uops.last().map(|u| u.seq), trace.uops.last().map(|u| u.seq));
    }

    #[test]
    fn machine_source_matches_materialized_trace() {
        let w = by_name("pointer_chase").expect("workload exists");
        let full = w.trace(500);
        let mut src = MachineSource::new(w.machine());
        let mut a = Trace::default();
        assert_eq!(src.fill(200, &mut a).expect("fills"), 200);
        assert_eq!(src.skip(100).expect("skips"), 100);
        let mut b = Trace::default();
        assert_eq!(src.fill(200, &mut b).expect("fills"), 200);
        assert_eq!(a.uops[..], full.uops[..a.uops.len()]);
        let tail_start = full.uops.len() - b.uops.len();
        assert_eq!(b.uops[..], full.uops[tail_start..]);
    }

    #[test]
    fn truncation_and_corruption_are_detected() {
        let bytes = encode(&sample_trace(2_000));
        // Truncation anywhere (sampled for speed) is never silent.
        for cut in (FILE_HEADER_LEN..bytes.len()).step_by(97) {
            let r = drain(&bytes[..cut]);
            assert!(r.is_err(), "truncation at {cut} must error");
        }
        // A flipped bit in any chunk payload trips the checksum.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(drain(&flipped).is_err(), "bit flip at {mid} must error");
    }

    fn drain(bytes: &[u8]) -> Result<StreamTotals, TraceFileError> {
        let mut r = TraceFileReader::open(bytes)?;
        while r.next_uop()?.is_some() {}
        Ok(r.totals())
    }

    #[test]
    fn validate_file_accepts_good_and_rejects_trailing_garbage() {
        let dir = std::env::temp_dir().join(format!("tvp_stream_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let good = dir.join("good.trace");
        let trace = sample_trace(1_500);
        std::fs::write(&good, encode(&trace)).expect("writes");
        let totals = validate_file(&good).expect("valid file passes");
        assert_eq!(totals.arch_insts, trace.arch_insts);
        let bad = dir.join("trailing.trace");
        let mut bytes = encode(&trace);
        bytes.push(0xAB);
        std::fs::write(&bad, bytes).expect("writes");
        assert!(validate_file(&bad).is_err(), "trailing bytes rejected");
        std::fs::remove_dir_all(&dir).ok();
    }
}
