//! Integer and control-flow dominated kernels.

use tvp_isa::flags::Cond;
use tvp_isa::inst::build::*;
use tvp_isa::inst::AddrMode;
use tvp_isa::reg::x;

use super::{DataRng, HEAP};
use crate::program::Asm;
use crate::suite::Workload;

fn base_disp(base: u8, disp: i64) -> AddrMode {
    AddrMode::BaseDisp { base: x(base), disp }
}

fn base_index(base: u8, index: u8, shift: u8) -> AddrMode {
    AddrMode::BaseIndex { base: x(base), index: x(index), shift }
}

/// 600.perlbench proxy: byte-wise text scanning with character-class
/// predicates. Produces a heavy stream of 0/1 values (`cset`, `ands`)
/// and highly predictable loop branches.
#[must_use]
pub fn string_match() -> Workload {
    string_match_variant("string_match", 0x600, 26)
}

/// Second SimPoint-style slice of the perlbench proxy: text drawn from
/// a narrower alphabet, shifting predicate probabilities and branch
/// behaviour.
#[must_use]
pub fn string_match_2() -> Workload {
    string_match_variant("string_match_2", 0x1600, 8)
}

/// Third slice: near-degenerate text (mostly one character) — the
/// predicates become almost perfectly predictable.
#[must_use]
pub fn string_match_3() -> Workload {
    string_match_variant("string_match_3", 0x2600, 2)
}

fn string_match_variant(name: &'static str, seed: u64, alphabet: u64) -> Workload {
    const LEN: u64 = 64 * 1024;
    let mut rng = DataRng::new(seed);
    let text: Vec<u8> = (0..LEN).map(|_| b'a' + rng.below(alphabet) as u8).collect();

    let mut a = Asm::new();
    a.label("outer");
    a.i(mov(x(0), x(20))); // cursor
    a.i(mov(x(1), x(21))); // remaining bytes
    a.label("scan");
    a.i(ldr_sized(x(3), AddrMode::PostIndex { base: x(0), disp: 1 }, 1, false));
    a.i(cmp(x(3), 0x65i64)); // 'e'
    a.i(cset(x(4), Cond::Eq));
    a.i(add(x(9), x(9), x(4))); // count of 'e'
    a.i(sub(x(5), x(3), 0x61i64)); // c - 'a'  (narrow value)
    a.i(cmp(x(5), 26i64));
    a.i(cset(x(6), Cond::Cc)); // is lowercase letter
    a.i(mov(x(12), x(3))); // eliminable move (register shuffling)
    a.i(w32(mov(x(13), x(5)))); // w-move of a 64-bit def: not eliminable
    a.i(movz(x(14), 1)); // one idiom
    a.i(and(x(7), x(6), x(4))); // lowercase AND 'e' (0/1)
    a.i(add(x(10), x(10), x(7)));
    a.i(ands(x(8), x(3), 1i64)); // odd character code?
    a.b_cond(Cond::Ne, "odd");
    a.i(add(x(11), x(11), 1i64));
    a.label("odd");
    a.i(subs(x(1), x(1), 1i64));
    a.b_cond(Cond::Ne, "scan");
    a.i(add(x(19), x(19), 1i64));
    a.b("outer");

    Workload {
        name,
        proxy: "600.perlbench_s",
        program: a.assemble().expect("string_match assembles"),
        init_regs: vec![(x(20), HEAP), (x(21), LEN)],
        init_mem: vec![(HEAP, text)],
    }
}

/// 602.gcc proxy: repeated walks of a fixed binary tree with
/// value-dependent descent. Pointer loads return stable 64-bit values
/// (per node), exercising GVP-only coverage; the descent branch is
/// data-dependent but repetitive.
#[must_use]
pub fn expr_tree() -> Workload {
    expr_tree_variant("expr_tree", 0x602, 4096)
}

/// Second gcc-proxy slice: a larger tree (deeper walks, more L1-TLB
/// pressure on the node loads).
#[must_use]
pub fn expr_tree_2() -> Workload {
    expr_tree_variant("expr_tree_2", 0x1602, 32 * 1024)
}

/// Third slice: a tiny, cache-resident tree with very hot pointers —
/// the most GVP-predictable variant.
#[must_use]
pub fn expr_tree_3() -> Workload {
    expr_tree_variant("expr_tree_3", 0x2602, 256)
}

#[allow(non_snake_case)]
fn expr_tree_variant(name: &'static str, seed: u64, nodes: u64) -> Workload {
    let NODES: u64 = nodes;
    const NODE_BYTES: u64 = 24; // left, right, value
    let mut rng = DataRng::new(seed);
    // Heap-shaped complete binary tree: node i has children 2i+1, 2i+2.
    let mut data = vec![0u8; (NODES * NODE_BYTES) as usize];
    for i in 0..NODES {
        let node = |k: u64| HEAP + k * NODE_BYTES;
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let left = if l < NODES { node(l) } else { 0 };
        let right = if r < NODES { node(r) } else { 0 };
        let value = rng.below(1 << 16);
        let off = (i * NODE_BYTES) as usize;
        data[off..off + 8].copy_from_slice(&left.to_le_bytes());
        data[off + 8..off + 16].copy_from_slice(&right.to_le_bytes());
        data[off + 16..off + 24].copy_from_slice(&value.to_le_bytes());
    }

    let mut a = Asm::new();
    a.label("outer");
    a.i(mov(x(0), x(20))); // current node
    a.label("walk");
    a.i(ldr(x(1), base_disp(0, 16))); // node value
    a.i(mov(x(3), x(1))); // eliminable move
    a.i(add(x(9), x(9), x(1)));
    a.tbnz(x(1), 0, "right");
    a.i(ldr(x(0), base_disp(0, 0))); // left child
    a.b("check");
    a.label("right");
    a.i(ldr(x(0), base_disp(0, 8))); // right child
    a.label("check");
    a.cbnz(x(0), "walk");
    a.i(add(x(19), x(19), 1i64));
    a.i(and(x(2), x(19), 7i64)); // narrow value production
    a.i(add(x(10), x(10), x(2)));
    a.b("outer");

    Workload {
        name,
        proxy: "602.gcc_s",
        program: a.assemble().expect("expr_tree assembles"),
        init_regs: vec![(x(20), HEAP)],
        init_mem: vec![(HEAP, data)],
    }
}

/// 625.x264 proxy: sum-of-absolute-differences over 16×16 pixel blocks
/// sliding through a frame. Byte loads with post-increment, `csneg`
/// absolute values, strided block advance (stride-prefetcher food).
#[must_use]
pub fn pixel_encode() -> Workload {
    pixel_encode_variant("pixel_encode", 0x625, 512 * 1024)
}

/// Second x264-proxy slice: a small frame (fully L2-resident).
#[must_use]
pub fn pixel_encode_2() -> Workload {
    pixel_encode_variant("pixel_encode_2", 0x1625, 128 * 1024)
}

/// Third slice: a large frame (L3-resident, stride prefetcher does
/// the heavy lifting).
#[must_use]
pub fn pixel_encode_3() -> Workload {
    pixel_encode_variant("pixel_encode_3", 0x2625, 4 * 1024 * 1024)
}

#[allow(non_snake_case)]
fn pixel_encode_variant(name: &'static str, seed: u64, frame: u64) -> Workload {
    let FRAME: u64 = frame;
    let mut rng = DataRng::new(seed);
    let frame: Vec<u8> = (0..FRAME).map(|_| rng.below(256) as u8).collect();

    let mut a = Asm::new();
    a.label("outer");
    a.i(and(x(12), x(19), 0x3FFi64)); // block index (wraps)
    a.i(lsl(x(13), x(12), 8i64)); // block offset = idx * 256
    a.i(add(x(0), x(20), x(13))); // block A
    a.i(add(x(1), x(21), x(13))); // block B (second half of frame)
    a.i(movz(x(2), 256)); // pixel count
    a.i(movz(x(9), 0)); // SAD
    a.label("pix");
    a.i(ldr_sized(x(3), AddrMode::PostIndex { base: x(0), disp: 1 }, 1, false));
    a.i(ldr_sized(x(4), AddrMode::PostIndex { base: x(1), disp: 1 }, 1, false));
    a.i(subs(x(5), x(3), x(4)));
    a.i(csneg(x(5), x(5), x(5), Cond::Ge)); // |a - b|
    a.i(mov(x(6), x(5))); // eliminable move
    a.i(movz(x(7), 0)); // zero idiom
    a.i(movz(x(8), 42)); // rematerialized small constant (9-bit idiom)
    a.i(add(x(9), x(9), x(5)));
    a.i(subs(x(2), x(2), 1i64));
    a.b_cond(Cond::Ne, "pix");
    a.i(add(x(10), x(10), x(9))); // accumulate frame cost
    a.i(lsr(x(11), x(9), 8i64)); // mean diff (narrow)
    a.i(add(x(14), x(14), x(11)));
    a.i(add(x(19), x(19), 1i64));
    a.b("outer");

    Workload {
        name,
        proxy: "625.x264_s",
        program: a.assemble().expect("pixel_encode assembles"),
        init_regs: vec![(x(20), HEAP), (x(21), HEAP + FRAME / 2)],
        init_mem: vec![(HEAP, frame)],
    }
}

/// 631.deepsjeng proxy: board evaluation with data-dependent branches
/// on pseudo-random position values and bit-twiddling (`eor`, `lsr`,
/// `ands`, `rbit`). Branch behaviour is deliberately hard.
#[must_use]
pub fn minimax() -> Workload {
    const BOARD: u64 = 64 * 1024; // 8K positions × 8B
    let mut rng = DataRng::new(0x631);
    let board =
        crate::suite::words_to_bytes(&(0..BOARD / 8).map(|_| rng.next()).collect::<Vec<_>>());

    let mut a = Asm::new();
    a.label("outer");
    a.i(movz(x(2), 4096)); // positions to evaluate
    a.i(movz(x(0), 0)); // position cursor
    a.label("eval");
    a.i(and(x(3), x(0), 0x1FFFi64)); // wrap to 8K entries
    a.i(ldr(x(4), base_index(20, 3, 3))); // position hash
    a.i(mov(x(12), x(4))); // eliminable move
    a.i(eor(x(5), x(4), x(9))); // mix with running key
    a.i(lsr(x(6), x(5), 17i64));
    a.i(eor(x(5), x(5), x(6)));
    a.i(ands(x(7), x(5), 3i64)); // 2 random bits decide the branch
    a.b_cond(Cond::Eq, "prune");
    a.i(rbit(x(8), x(5)));
    a.i(clz(x(10), x(8))); // narrow value (0–64)
    a.i(add(x(9), x(9), x(10)));
    a.b("next");
    a.label("prune");
    a.i(movz(x(13), 1)); // one idiom
    a.i(add(x(11), x(11), 1i64)); // pruned count
    a.i(cmp(x(11), x(2)));
    a.i(csel(x(9), x(9), x(5), Cond::Cc)); // best-score update
    a.label("next");
    a.i(add(x(0), x(0), 1i64));
    a.i(subs(x(2), x(2), 1i64));
    a.b_cond(Cond::Ne, "eval");
    a.i(add(x(19), x(19), 1i64));
    a.b("outer");

    Workload {
        name: "minimax",
        proxy: "631.deepsjeng_s",
        program: a.assemble().expect("minimax assembles"),
        init_regs: vec![(x(20), HEAP)],
        init_mem: vec![(HEAP, board)],
    }
}

/// 638.imagick proxy: pixel transform with saturating arithmetic —
/// multiply, bias, clamp via `cmp`+`csel`, field extraction via `ubfx`.
/// Produces many small constants and `0xFF` clamp values.
#[must_use]
pub fn image_filter() -> Workload {
    const IMAGE: u64 = 256 * 1024;
    let mut rng = DataRng::new(0x638);
    let image: Vec<u8> = (0..IMAGE)
        .map(|_| if rng.below(4) == 0 { rng.below(256) as u8 } else { rng.below(32) as u8 })
        .collect();

    let mut a = Asm::new();
    a.label("outer");
    a.i(mov(x(0), x(20)));
    a.i(mov(x(1), x(21))); // byte count
    a.i(movz(x(15), 255));
    a.label("pixel");
    a.i(ldr_sized(x(3), AddrMode::PostIndex { base: x(0), disp: 1 }, 1, false));
    a.i(add(x(4), x(3), x(3))); // ×2
    a.i(add(x(4), x(4), x(3))); // ×3
    a.i(add(x(4), x(4), 16i64)); // bias
    a.i(lsr(x(4), x(4), 2i64)); // scale
    a.i(cmp(x(4), 255i64));
    a.i(csel(x(5), x(4), x(15), Cond::Ls)); // clamp to 255
    a.i(str_sized(x(5), base_disp(0, -1), 1)); // write back in place
    a.i(ubfx(x(6), x(5), 4, 4)); // high nibble (narrow)
    a.i(add(x(9), x(9), x(6)));
    a.i(subs(x(1), x(1), 1i64));
    a.b_cond(Cond::Ne, "pixel");
    a.i(add(x(19), x(19), 1i64));
    a.b("outer");

    Workload {
        name: "image_filter",
        proxy: "638.imagick_s",
        program: a.assemble().expect("image_filter assembles"),
        init_regs: vec![(x(20), HEAP), (x(21), IMAGE)],
        init_mem: vec![(HEAP, image)],
    }
}

/// 641.leela proxy: Monte-Carlo playouts over a mostly-empty board.
/// The board occupancy loads return `0x0`/`0x1` almost always — the
/// MVP sweet spot — and feed arithmetic directly (SpSR food: `add`
/// with a predicted-zero operand is a move, `and` is a zero idiom).
#[must_use]
pub fn mc_playout() -> Workload {
    const BOARD: u64 = 512 * 1024; // big enough to live in L2
    let mut rng = DataRng::new(0x641);
    // A nearly-empty board: 1 in 1024 points occupied, so the occupancy
    // load is stable enough (≈99.9%) for FPC confidence to saturate.
    let board: Vec<u8> = (0..BOARD).map(|_| u8::from(rng.below(1024) == 0)).collect();

    let mut a = Asm::new();
    a.label("outer");
    a.i(movz(x(2), 2048)); // playout moves
    a.label("mv");
    // LCG point selection.
    a.i(movz(x(3), 0x5851));
    a.i(lsl(x(3), x(3), 16i64));
    a.i(add(x(3), x(3), 0x2D25i64));
    a.i(mul(x(8), x(8), x(3)));
    a.i(add(x(8), x(8), 0x3FDi64));
    a.i(lsr(x(4), x(8), 40i64));
    a.i(and(x(4), x(4), 0x7FFFFi64)); // board index
    a.i(ldr_sized(x(5), base_index(20, 4, 0), 1, false)); // occupancy: 0/1
                                                          // Load consumers — SpSR food once x5 is predicted to 0 (a move
                                                          // idiom and a zero idiom); kept few so the scheduler never fills
                                                          // with load-dependent work.
    a.i(add(x(9), x(9), x(5))); // occupied count
    a.i(and(x(6), x(5), x(19))); // zero idiom when x5 == 0
    a.i(add(x(10), x(10), x(6)));
    // Independent bookkeeping (move-rich, like real playout code).
    a.i(movz(x(14), 0)); // zero idiom
    a.i(movz(x(16), 100)); // rematerialized small constant (9-bit idiom)
    a.i(mov(x(15), x(11))); // eliminable move
    a.i(add(x(11), x(11), 1i64));
    a.i(and(x(12), x(11), 0xFFi64));
    a.i(add(x(13), x(13), x(12)));
    a.i(subs(x(2), x(2), 1i64));
    a.b_cond(Cond::Ne, "mv");
    a.i(add(x(19), x(19), 1i64));
    a.b("outer");

    Workload {
        name: "mc_playout",
        proxy: "641.leela_s",
        program: a.assemble().expect("mc_playout assembles"),
        init_regs: vec![(x(20), HEAP), (x(8), 0x9E37_79B9)],
        init_mem: vec![(HEAP, board)],
    }
}

/// 657.xz proxy: a range-coder-like serial loop. The critical chain
/// includes a probability-table load whose value is almost always the
/// same narrow constant (`16`) — predictable by TVP/GVP (9-bit) but not
/// MVP — so value-predicting it unlinks the dependent shift/add chain.
#[must_use]
pub fn entropy_coder() -> Workload {
    entropy_coder_variant("entropy_coder", 0x657, 1024)
}

/// Second xz-proxy slice: a noisier probability table (1 in 64 entries
/// deviate), so confidence saturates rarely and TVP's win shrinks.
#[must_use]
pub fn entropy_coder_2() -> Workload {
    entropy_coder_variant("entropy_coder_2", 0x1657, 64)
}

fn entropy_coder_variant(name: &'static str, seed: u64, stability: u64) -> Workload {
    const TABLE: u64 = 512 * 1024; // L2-resident probability table
    let mut rng = DataRng::new(seed);
    let table: Vec<u8> = (0..TABLE)
        .map(|_| if rng.below(stability) == 0 { rng.below(200) as u8 } else { 16 })
        .collect();

    let mut a = Asm::new();
    a.label("outer");
    a.i(movz(x(2), 4096));
    a.i(movz(x(3), 0x6329));
    a.label("sym");
    // The table index derives from the *serial* coder state, so the
    // probability load sits squarely on the critical chain — exactly
    // the shape where value-predicting the (stable) probability pays.
    a.i(mul(x(4), x(9), x(3)));
    a.i(and(x(4), x(4), 0x7FFFFi64)); // table index
    a.i(ldr_sized(x(5), base_index(20, 4, 0), 1, false)); // prob ≈ 16
                                                          // Dependent renormalisation chain.
    a.i(lsl(x(6), x(9), 4i64));
    a.i(udiv(x(7), x(6), x(5))); // divide by predicted probability
    a.i(add(x(9), x(7), 1i64));
    a.i(and(x(9), x(9), 0xFFFFi64)); // keep range bounded (narrow)
    a.i(add(x(10), x(10), x(9)));
    a.i(subs(x(2), x(2), 1i64));
    a.b_cond(Cond::Ne, "sym");
    a.i(add(x(19), x(19), 1i64));
    a.b("outer");

    Workload {
        name,
        proxy: "657.xz_s",
        program: a.assemble().expect("entropy_coder assembles"),
        init_regs: vec![(x(20), HEAP), (x(9), 255)],
        init_mem: vec![(HEAP, table)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_match_counts_plausibly() {
        let w = string_match();
        let mut m = w.machine();
        let _ = m.run(500_000); // ≈ 34k bytes at ~14.5 insts/byte
        let e_count = m.reg(x(9));
        // Uniform over 26 letters → ~1300 'e's in ~34k bytes.
        assert!((700..2200).contains(&e_count), "e count = {e_count}");
    }

    #[test]
    fn expr_tree_walks_to_leaves() {
        let w = expr_tree();
        let mut m = w.machine();
        let _ = m.run(50_000);
        assert!(m.reg(x(19)) > 100, "completed walks = {}", m.reg(x(19)));
    }

    #[test]
    fn mc_playout_occupancy_ratio() {
        let w = mc_playout();
        let mut m = w.machine();
        let _ = m.run(200_000);
        let occupied = m.reg(x(9));
        let empty = m.reg(x(11));
        assert!(empty > 1000, "playout made no progress");
        let ratio = occupied as f64 / (occupied + empty) as f64;
        assert!(ratio < 0.01, "occupancy = {ratio} (board should be ~1/1024 full)");
    }

    #[test]
    fn entropy_coder_range_stays_bounded() {
        let w = entropy_coder();
        let mut m = w.machine();
        let _ = m.run(100_000);
        assert!(m.reg(x(9)) <= 0xFFFF);
        assert!(m.reg(x(19)) > 0 || m.reg(x(10)) > 0);
    }

    #[test]
    fn image_filter_clamps() {
        let w = image_filter();
        let mut m = w.machine();
        let _ = m.run(100_000);
        // Spot-check some written-back pixels are ≤ 255 (bytes always
        // are) and the nibble accumulator advanced.
        assert!(m.reg(x(9)) > 0);
    }

    #[test]
    fn minimax_progresses() {
        let w = minimax();
        let mut m = w.machine();
        let _ = m.run(100_000);
        assert!(m.reg(x(0)) > 1000, "positions evaluated = {}", m.reg(x(0)));
    }

    #[test]
    fn pixel_encode_sad_nonzero() {
        let w = pixel_encode();
        let mut m = w.machine();
        let _ = m.run(50_000);
        assert!(m.reg(x(10)) > 0, "accumulated SAD is zero");
    }
}
