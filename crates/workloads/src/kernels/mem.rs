//! Memory-behaviour dominated kernels, including the paper's GVP
//! outlier (`pointer_chase` ≙ 623.xalancbmk).

use tvp_isa::flags::Cond;
use tvp_isa::inst::build::*;
use tvp_isa::inst::AddrMode;
use tvp_isa::reg::x;

use super::{DataRng, HEAP};
use crate::program::Asm;
use crate::suite::{words_to_bytes, Workload};

fn base_disp(base: u8, disp: i64) -> AddrMode {
    AddrMode::BaseDisp { base: x(base), disp }
}

fn base_index(base: u8, index: u8, shift: u8) -> AddrMode {
    AddrMode::BaseIndex { base: x(base), index: x(index), shift }
}

/// 605.mcf proxy: pointer-chasing over a 16MB single-cycle permutation
/// — serial DRAM-latency-bound walks with four interleaved chains for
/// a little memory-level parallelism. Low IPC, cache-hostile.
#[must_use]
pub fn sparse_graph() -> Workload {
    const NODES: u64 = 1024 * 1024; // × 8B = 8MB (≈ L3-sized)
    let mut rng = DataRng::new(0x605);
    // Sattolo's algorithm: a single cycle covering every node, so the
    // walk never falls into a short cached loop.
    let mut perm: Vec<u64> = (0..NODES).collect();
    for i in (1..NODES as usize).rev() {
        let j = rng.below(i as u64) as usize;
        perm.swap(i, j);
    }
    let data = words_to_bytes(&perm);

    let mut a = Asm::new();
    a.label("outer");
    a.i(movz(x(2), 4096));
    a.label("hop");
    // Eight independent pointer-chase chains (memory-level
    // parallelism), each loop-carried through its own register.
    for r in [4u8, 5, 6, 7, 11, 12, 13, 14] {
        a.i(ldr(x(r), base_index(20, r, 3)));
    }
    a.i(add(x(9), x(9), x(4))); // visit accumulator
    a.i(subs(x(2), x(2), 1i64));
    a.b_cond(Cond::Ne, "hop");
    a.i(add(x(19), x(19), 1i64));
    a.b("outer");

    Workload {
        name: "sparse_graph",
        proxy: "605.mcf_s",
        program: a.assemble().expect("sparse_graph assembles"),
        init_regs: vec![
            (x(20), HEAP),
            (x(4), 1),
            (x(5), NODES / 8),
            (x(6), NODES / 4),
            (x(7), 3 * NODES / 8),
            (x(11), NODES / 2),
            (x(12), 5 * NODES / 8),
            (x(13), 3 * NODES / 4),
            (x(14), 7 * NODES / 8),
        ],
        init_mem: vec![(HEAP, data)],
    }
}

/// 620.omnetpp proxy: event-wheel processing. Walks linked event slots
/// (16B: timestamp + next index), conditionally rewriting timestamps —
/// a mix of dependent loads, data-dependent stores and a semi-biased
/// branch (≈ 75/25), like discrete-event simulators.
#[must_use]
pub fn discrete_event() -> Workload {
    const SLOTS: u64 = 64 * 1024; // × 16B = 1MB
    let mut rng = DataRng::new(0x620);
    let mut data = vec![0u8; (SLOTS * 16) as usize];
    for i in 0..SLOTS {
        // Timestamps: 75% small (processed fast path), 25% large.
        let t = if rng.below(4) == 0 { 1_000_000 + rng.below(1 << 20) } else { rng.below(1 << 16) };
        let next = rng.below(SLOTS);
        let off = (i * 16) as usize;
        data[off..off + 8].copy_from_slice(&t.to_le_bytes());
        data[off + 8..off + 16].copy_from_slice(&next.to_le_bytes());
    }

    let mut a = Asm::new();
    a.label("outer");
    a.i(movz(x(2), 4096));
    a.i(movz(x(4), 0)); // current slot
    a.label("event");
    a.i(lsl(x(5), x(4), 4i64));
    a.i(add(x(6), x(20), x(5))); // slot address
    a.i(ldr(x(7), base_disp(6, 0))); // timestamp
    a.i(mov(x(11), x(7))); // eliminable move
    a.i(movz(x(12), 0)); // zero idiom
    a.i(ldr(x(4), base_disp(6, 8))); // next slot (serial chain)
    a.i(cmp(x(7), x(21))); // against the simulation horizon
    a.b_cond(Cond::Hi, "defer");
    a.i(movz(x(13), 16)); // rematerialized increment (9-bit idiom)
    a.i(add(x(7), x(7), x(13))); // reschedule
    a.i(str(x(7), base_disp(6, 0)));
    a.i(add(x(9), x(9), 1i64)); // processed count
    a.b("next");
    a.label("defer");
    a.i(add(x(10), x(10), 1i64)); // deferred count
    a.label("next");
    a.i(subs(x(2), x(2), 1i64));
    a.b_cond(Cond::Ne, "event");
    a.i(add(x(19), x(19), 1i64));
    a.b("outer");

    Workload {
        name: "discrete_event",
        proxy: "620.omnetpp_s",
        program: a.assemble().expect("discrete_event assembles"),
        init_regs: vec![(x(20), HEAP), (x(21), 1 << 17)],
        init_mem: vec![(HEAP, data)],
    }
}

/// 623.xalancbmk proxy — the paper's GVP outlier (§6.1, +52.65%).
///
/// Every iteration retrieves a structure base address through three
/// *dependent* loads whose values are stable across iterations (the
/// indirection cells never change), then feeds it to a fourth load of
/// a 2-byte element. The loaded pointers need more than 9 bits, so
/// only GVP can predict them and collapse the serial chain; MVP and
/// TVP see nothing. A tail of element-dependent hash work makes each
/// iteration long enough that the instruction window cannot hide the
/// chain by overlapping iterations.
#[must_use]
pub fn pointer_chase() -> Workload {
    const ELEMS: u64 = 4096; // 2-byte elements
    let mut rng = DataRng::new(0x623);

    let cell_a = HEAP; // holds &cell_b
    let cell_b = HEAP + 0x400; // holds &cell_c
    let cell_c = HEAP + 0x800; // holds elem_base
    let elem_base = HEAP + 0x1000;
    let elems: Vec<u8> = (0..ELEMS * 2).map(|_| rng.below(256) as u8).collect();

    let mut a = Asm::new();
    a.label("outer");
    a.i(movz(x(2), 4096));
    a.label("lookup");
    // The three stable indirections (ValueStore::contains-like).
    a.i(ldr(x(1), base_disp(20, 0))); // → cell_b
    a.i(ldr(x(3), base_disp(1, 0))); // → cell_c
    a.i(ldr(x(4), base_disp(3, 0))); // → elem_base
    a.i(and(x(5), x(10), 0xFFFi64)); // element index
    a.i(ldr_sized(x(6), base_index(4, 5, 1), 2, false)); // 2B element
                                                         // A hit/miss test on the (statistically random) element — the
                                                         // contains()-style data-dependent branch. It mispredicts about
                                                         // half the time, and until it resolves the front-end cannot
                                                         // advance; its resolution waits on the whole load chain. GVP
                                                         // predicts the three stable pointers, collapsing the chain and
                                                         // resolving the branch an L1-load-chain earlier.
    a.i(add(x(10), x(10), 1i64));
    a.i(ands(x(7), x(6), 1i64));
    a.b_cond(Cond::Ne, "found");
    a.i(add(x(11), x(11), x(6))); // miss path
    a.b("next");
    a.label("found");
    a.i(add(x(12), x(12), 1i64)); // hit count
    a.label("next");
    a.i(add(x(26), x(26), x(6)));
    a.i(subs(x(2), x(2), 1i64));
    a.b_cond(Cond::Ne, "lookup");
    a.i(add(x(19), x(19), 1i64));
    a.b("outer");

    Workload {
        name: "pointer_chase",
        proxy: "623.xalancbmk_s",
        program: a.assemble().expect("pointer_chase assembles"),
        init_regs: vec![(x(20), cell_a)],
        init_mem: vec![
            (cell_a, cell_b.to_le_bytes().to_vec()),
            (cell_b, cell_c.to_le_bytes().to_vec()),
            (cell_c, elem_base.to_le_bytes().to_vec()),
            (elem_base, elems),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_graph_visits_distinct_nodes() {
        let w = sparse_graph();
        let t = w.trace(10_000);
        let loads: Vec<u64> =
            t.uops.iter().filter(|u| u.uop.op.is_load()).filter_map(|u| u.mem_addr).collect();
        let mut unique = loads.clone();
        unique.sort_unstable();
        unique.dedup();
        // A permutation walk keeps producing fresh addresses.
        assert!(
            unique.len() as f64 > loads.len() as f64 * 0.95,
            "{} / {}",
            unique.len(),
            loads.len()
        );
    }

    #[test]
    fn discrete_event_processes_and_defers() {
        let w = discrete_event();
        let mut m = w.machine();
        let _ = m.run(100_000);
        let processed = m.reg(x(9));
        let deferred = m.reg(x(10));
        assert!(processed > 0 && deferred > 0);
        let bias = processed as f64 / (processed + deferred) as f64;
        assert!((0.6..0.9).contains(&bias), "fast-path bias = {bias}");
    }

    #[test]
    fn pointer_chase_indirections_are_stable() {
        let w = pointer_chase();
        let t = w.trace(60_000);
        // Group pointer-load results by PC: the three 8-byte loads must
        // each return one single value for the whole trace.
        use std::collections::HashMap;
        let mut by_pc: HashMap<u64, Vec<u64>> = HashMap::new();
        for u in &t.uops {
            if matches!(u.uop.op, tvp_isa::op::Op::Load { size: 8, .. }) {
                by_pc.entry(u.pc).or_default().push(u.result.unwrap());
            }
        }
        assert_eq!(by_pc.len(), 3, "three pointer loads expected");
        for (pc, values) in by_pc {
            assert!(values.len() > 100);
            assert!(
                values.windows(2).all(|w| w[0] == w[1]),
                "pointer load at {pc:#x} is not stable"
            );
            // The stable value must exceed the 9-bit inlining range, so
            // TVP cannot capture it (the paper's point).
            assert!(values[0] > 255);
        }
    }

    #[test]
    fn pointer_chase_chain_is_dependent() {
        // Structural check: load₂ consumes load₁'s destination, etc.
        let w = pointer_chase();
        let t = w.trace(100);
        let loads: Vec<_> = t
            .uops
            .iter()
            .filter(|u| matches!(u.uop.op, tvp_isa::op::Op::Load { size: 8, .. }))
            .take(3)
            .collect();
        assert_eq!(loads.len(), 3);
        for pair in loads.windows(2) {
            let dst = pair[0].uop.dst.unwrap();
            let base = match pair[1].uop.addr.unwrap() {
                AddrMode::BaseDisp { base, .. } => base,
                m => panic!("unexpected addressing {m:?}"),
            };
            assert_eq!(dst, base, "loads must form a dependence chain");
        }
    }
}
