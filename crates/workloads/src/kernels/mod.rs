//! The kernel implementations behind [`crate::suite()`].
//!
//! Kernels are grouped by dominant behaviour:
//!
//! * [`int`] — integer/control-dominated kernels (perlbench, gcc, x264,
//!   deepsjeng, imagick, leela, xz proxies);
//! * [`fp`] — floating-point kernels (bwaves, cactuBSSN, lbm, wrf,
//!   pop2, nab, roms proxies);
//! * [`mem`] — memory-behaviour-dominated kernels (mcf, omnetpp, and
//!   the xalancbmk `pointer_chase` outlier).
//!
//! Shared conventions: `x19` counts outer-loop repetitions, `x20`–`x27`
//! hold workload parameters installed via initial register state, and
//! `x0`–`x15` are scratch. Data segments start at [`HEAP`].

pub mod fp;
pub mod int;
pub mod mem;

/// Base virtual address of workload data segments.
pub const HEAP: u64 = 0x0100_0000;

/// A tiny splitmix-style generator for deterministic data-segment
/// content (kept separate from the `rand` crate so kernels' data is
/// stable across dependency upgrades).
#[derive(Clone, Debug)]
pub(crate) struct DataRng(u64);

impl DataRng {
    pub(crate) fn new(seed: u64) -> Self {
        DataRng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub(crate) fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_rng_is_deterministic_and_varied() {
        let mut a = DataRng::new(1);
        let mut b = DataRng::new(1);
        let xs: Vec<u64> = (0..10).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        let mut sorted = xs.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }
}
