//! Floating-point dominated kernels.

use tvp_isa::flags::Cond;
use tvp_isa::inst::build::*;
use tvp_isa::inst::AddrMode;
use tvp_isa::reg::{v, x};

use super::{DataRng, HEAP};
use crate::program::Asm;
use crate::suite::{words_to_bytes, Workload};

fn f64_array(rng: &mut DataRng, n: usize, scale: f64) -> Vec<u8> {
    words_to_bytes(
        &(0..n)
            .map(|_| ((rng.below(1_000_000) as f64 / 1_000_000.0) * scale).to_bits())
            .collect::<Vec<_>>(),
    )
}

fn base_disp(base: u8, disp: i64) -> AddrMode {
    AddrMode::BaseDisp { base: x(base), disp }
}

/// 603.bwaves proxy: the classic STREAM triad `a[i] = b[i] + s·c[i]`
/// over megabyte arrays. High IPC, perfectly strided (prefetcher
/// heaven), almost no VP-eligible integer producers.
#[must_use]
pub fn stream_triad() -> Workload {
    stream_triad_variant("stream_triad", 0x603, 128 * 1024)
}

/// Second bwaves-proxy slice: short arrays that fit in the L1D, so
/// the kernel becomes purely FP-throughput-bound.
#[must_use]
pub fn stream_triad_2() -> Workload {
    stream_triad_variant("stream_triad_2", 0x1603, 4 * 1024)
}

#[allow(non_snake_case)]
fn stream_triad_variant(name: &'static str, seed: u64, n: usize) -> Workload {
    let N: usize = n;
    let mut rng = DataRng::new(seed);
    let b = f64_array(&mut rng, N, 10.0);
    let c = f64_array(&mut rng, N, 2.0);

    let mut a = Asm::new();
    a.label("outer");
    a.i(movz(x(4), 0)); // element index
    a.i(movz(x(3), N as i64));
    a.label("elem");
    a.i(ldr(v(1), AddrMode::BaseIndex { base: x(21), index: x(4), shift: 3 }));
    a.i(ldr(v(2), AddrMode::BaseIndex { base: x(22), index: x(4), shift: 3 }));
    a.i(fmul(v(3), v(2), v(0)));
    a.i(fadd(v(4), v(1), v(3)));
    a.i(str(v(4), AddrMode::BaseIndex { base: x(20), index: x(4), shift: 3 }));
    a.i(add(x(4), x(4), 1i64));
    a.i(subs(x(3), x(3), 1i64));
    a.b_cond(Cond::Ne, "elem");
    a.i(add(x(19), x(19), 1i64));
    a.b("outer");

    let b_base = HEAP + (N as u64) * 8;
    let c_base = b_base + (N as u64) * 8;
    Workload {
        name,
        proxy: "603.bwaves_s",
        program: a.assemble().expect("stream_triad assembles"),
        init_regs: vec![(x(20), HEAP), (x(21), b_base), (x(22), c_base), (v(0), 3.0f64.to_bits())],
        init_mem: vec![(b_base, b), (c_base, c)],
    }
}

/// 607.cactuBSSN proxy: 5-point stencil over a 256×256 grid of f64.
/// Neighbour loads at ±8 and ±2048 bytes; regular and predictable.
#[must_use]
pub fn stencil_grid() -> Workload {
    const DIM: usize = 256;
    let mut rng = DataRng::new(0x607);
    let grid = f64_array(&mut rng, DIM * DIM, 1.0);
    let row_bytes = (DIM * 8) as i64;

    let mut a = Asm::new();
    a.label("outer");
    // Walk interior cells linearly: from row 1 to row DIM-2.
    a.i(add(x(0), x(20), row_bytes + 8));
    a.i(movz(x(3), ((DIM - 2) * (DIM - 2)) as i64));
    a.label("cell");
    a.i(ldr(v(1), base_disp(0, -8)));
    a.i(ldr(v(2), base_disp(0, 8)));
    a.i(ldr(v(3), base_disp(0, -row_bytes)));
    a.i(ldr(v(4), base_disp(0, row_bytes)));
    a.i(ldr(v(5), base_disp(0, 0)));
    a.i(fadd(v(6), v(1), v(2)));
    a.i(fadd(v(7), v(3), v(4)));
    a.i(fadd(v(6), v(6), v(7)));
    a.i(fmadd(v(8), v(6), v(0), v(5))); // c·sum + center
    a.i(str(v(8), AddrMode::BaseDisp { base: x(1), disp: 0 }));
    a.i(add(x(1), x(1), 8i64));
    a.i(add(x(0), x(0), 8i64));
    a.i(subs(x(3), x(3), 1i64));
    a.b_cond(Cond::Ne, "cell");
    a.i(mov(x(1), x(21))); // reset output cursor
    a.i(add(x(19), x(19), 1i64));
    a.b("outer");

    let out_base = HEAP + (DIM * DIM * 8) as u64;
    Workload {
        name: "stencil_grid",
        proxy: "607.cactuBSSN_s",
        program: a.assemble().expect("stencil_grid assembles"),
        init_regs: vec![
            (x(20), HEAP),
            (x(21), out_base),
            (x(1), out_base),
            (v(0), 0.25f64.to_bits()),
        ],
        init_mem: vec![(HEAP, grid)],
    }
}

/// 619.lbm proxy: lattice sweep with a long serial FP accumulation —
/// `acc = acc·w + f(cell)` — over streaming cell data. Dependence-bound
/// FP with streaming loads.
#[must_use]
pub fn lattice_fluid() -> Workload {
    const CELLS: usize = 64 * 1024; // ×4 f64 per cell = 2MB
    let mut rng = DataRng::new(0x619);
    let lattice = f64_array(&mut rng, CELLS * 4, 1.0);

    let mut a = Asm::new();
    a.label("outer");
    a.i(mov(x(0), x(20)));
    a.i(movz(x(3), CELLS as i64));
    a.label("cell");
    a.i(ldr(v(1), base_disp(0, 0)));
    a.i(ldr(v(2), base_disp(0, 8)));
    a.i(ldr(v(3), base_disp(0, 16)));
    a.i(ldr(v(4), base_disp(0, 24)));
    a.i(fadd(v(5), v(1), v(2)));
    a.i(fadd(v(6), v(3), v(4)));
    a.i(fadd(v(5), v(5), v(6))); // cell density
    a.i(fmadd(v(7), v(7), v(0), v(5))); // serial: acc = acc·w + density
    a.i(str(v(5), base_disp(0, 0))); // write density back
    a.i(add(x(0), x(0), 32i64));
    a.i(subs(x(3), x(3), 1i64));
    a.b_cond(Cond::Ne, "cell");
    a.i(add(x(19), x(19), 1i64));
    a.b("outer");

    Workload {
        name: "lattice_fluid",
        proxy: "619.lbm_s",
        program: a.assemble().expect("lattice_fluid assembles"),
        init_regs: vec![(x(20), HEAP), (v(0), 0.875f64.to_bits())],
        init_mem: vec![(HEAP, lattice)],
    }
}

/// 621.wrf proxy: mixed integer/FP physics loop — integer index math
/// with an occasional divide, int→FP conversion, fused multiply-add,
/// and a periodic mode branch.
#[must_use]
pub fn weather_loop() -> Workload {
    const N: usize = 32 * 1024;
    let mut rng = DataRng::new(0x621);
    let field = f64_array(&mut rng, N, 100.0);

    let mut a = Asm::new();
    a.label("outer");
    a.i(movz(x(3), N as i64));
    a.i(movz(x(4), 0)); // index
    a.label("point");
    a.i(lsl(x(5), x(4), 3i64));
    a.i(add(x(6), x(20), x(5)));
    a.i(ldr(v(1), AddrMode::BaseDisp { base: x(6), disp: 0 }));
    a.i(and(x(7), x(4), 0xFFi64)); // narrow phase value
    a.i(scvtf(v(2), x(7)));
    a.i(fmadd(v(3), v(1), v(0), v(2)));
    a.i(mov(x(11), x(5))); // eliminable move
    a.i(w32(mov(x(12), x(5)))); // width-restricted move (not eliminable)
    a.i(fadd(v(4), v(4), v(3)));
    a.tbz(x(4), 3, "no_div");
    a.i(add(x(8), x(4), 7i64));
    a.i(udiv(x(9), x(8), x(21))); // occasional integer divide
    a.i(add(x(10), x(10), x(9)));
    a.label("no_div");
    a.i(add(x(4), x(4), 1i64));
    a.i(subs(x(3), x(3), 1i64));
    a.b_cond(Cond::Ne, "point");
    a.i(add(x(19), x(19), 1i64));
    a.b("outer");

    Workload {
        name: "weather_loop",
        proxy: "621.wrf_s",
        program: a.assemble().expect("weather_loop assembles"),
        init_regs: vec![(x(20), HEAP), (x(21), 9), (v(0), 1.0625f64.to_bits())],
        init_mem: vec![(HEAP, field)],
    }
}

/// 628.pop2 proxy: conditional FP reduction. `fcmp` + branch steers
/// values into one of two accumulators (mostly one side — a
/// predictable FP branch).
#[must_use]
pub fn climate_ocean() -> Workload {
    const N: usize = 64 * 1024;
    let mut rng = DataRng::new(0x628);
    let ocean = f64_array(&mut rng, N, 2.0);

    let mut a = Asm::new();
    a.label("outer");
    a.i(mov(x(0), x(20)));
    a.i(movz(x(3), N as i64));
    a.label("cell");
    a.i(ldr(v(1), AddrMode::PostIndex { base: x(0), disp: 8 }));
    a.i(fcmp(v(1), v(0))); // against threshold 1.9 → mostly below
    a.b_cond(Cond::Ge, "warm");
    a.i(fadd(v(2), v(2), v(1))); // cold accumulator (common)
    a.b("next");
    a.label("warm");
    a.i(fadd(v(3), v(3), v(1))); // warm accumulator (rare)
    a.i(add(x(9), x(9), 1i64)); // warm count
    a.label("next");
    a.i(subs(x(3), x(3), 1i64));
    a.b_cond(Cond::Ne, "cell");
    a.i(add(x(19), x(19), 1i64));
    a.b("outer");

    Workload {
        name: "climate_ocean",
        proxy: "628.pop2_s",
        program: a.assemble().expect("climate_ocean assembles"),
        init_regs: vec![(x(20), HEAP), (v(0), 1.9f64.to_bits())],
        init_mem: vec![(HEAP, ocean)],
    }
}

/// 644.nab proxy: molecular-dynamics pair forces. Gathers positions
/// through an index array (integer loads feed FP address math), then a
/// chain of `fsub`/`fmul`/`fmadd` per pair.
#[must_use]
pub fn md_force() -> Workload {
    const ATOMS: u64 = 16 * 1024;
    const PAIRS: u64 = 32 * 1024;
    let mut rng = DataRng::new(0x644);
    let pos = f64_array(&mut rng, (ATOMS * 2) as usize, 50.0);
    let pairs = words_to_bytes(&(0..PAIRS * 2).map(|_| rng.below(ATOMS)).collect::<Vec<_>>());

    let pos_base = HEAP;
    let pair_base = HEAP + ATOMS * 16;
    let mut a = Asm::new();
    a.label("outer");
    a.i(mov(x(0), x(21))); // pair cursor
    a.i(movz(x(3), PAIRS as i64));
    a.label("pair");
    a.i(ldr(x(4), AddrMode::PostIndex { base: x(0), disp: 8 })); // atom i
    a.i(ldr(x(5), AddrMode::PostIndex { base: x(0), disp: 8 })); // atom j
    a.i(lsl(x(4), x(4), 4i64));
    a.i(lsl(x(5), x(5), 4i64));
    a.i(add(x(6), x(20), x(4)));
    a.i(add(x(7), x(20), x(5)));
    a.i(ldr(v(1), AddrMode::BaseDisp { base: x(6), disp: 0 })); // xi
    a.i(ldr(v(2), AddrMode::BaseDisp { base: x(6), disp: 8 })); // yi
    a.i(ldr(v(3), AddrMode::BaseDisp { base: x(7), disp: 0 })); // xj
    a.i(ldr(v(4), AddrMode::BaseDisp { base: x(7), disp: 8 })); // yj
    a.i(fsub(v(5), v(1), v(3))); // dx
    a.i(fsub(v(6), v(2), v(4))); // dy
    a.i(fmul(v(7), v(5), v(5)));
    a.i(fmadd(v(7), v(6), v(6), v(7))); // r²
    a.i(fadd(v(8), v(8), v(7))); // potential accumulator
    a.i(subs(x(3), x(3), 1i64));
    a.b_cond(Cond::Ne, "pair");
    a.i(add(x(19), x(19), 1i64));
    a.b("outer");

    Workload {
        name: "md_force",
        proxy: "644.nab_s",
        program: a.assemble().expect("md_force assembles"),
        init_regs: vec![(x(20), pos_base), (x(21), pair_base)],
        init_mem: vec![(pos_base, pos), (pair_base, pairs)],
    }
}

/// 654.roms proxy: column-major walk of a 512-row grid — the 4KB
/// stride keeps the (unthrottled, degree-4) stride prefetcher firing
/// 16KB ahead, the interaction behind the paper's roms/TVP anomaly
/// (§3.4.1). Each column's length is (re)loaded from a bounds table:
/// a stable narrow value that TVP predicts.
#[must_use]
pub fn stencil_roms() -> Workload {
    const ROWS: usize = 512;
    const COLS: usize = 512; // ROWS×COLS f64 = 2MB
    let mut rng = DataRng::new(0x654);
    let grid = f64_array(&mut rng, ROWS * COLS, 1.0);
    // Column bounds: all 255 (stable narrow value; 9-bit admissible).
    let bounds: Vec<u8> = vec![255; COLS];
    let row_bytes = (COLS * 8) as i64;

    let bounds_base = HEAP + (ROWS * COLS * 8) as u64;
    let mut a = Asm::new();
    a.label("outer");
    a.i(movz(x(4), 0)); // column index
    a.label("col");
    a.i(ldr_sized(x(3), AddrMode::BaseIndex { base: x(21), index: x(4), shift: 0 }, 1, false)); // column height ≈ 255
    a.i(lsl(x(5), x(4), 3i64));
    a.i(add(x(0), x(20), x(5))); // column top
    a.label("row");
    a.i(ldr(v(1), AddrMode::BaseDisp { base: x(0), disp: 0 }));
    a.i(ldr(v(2), AddrMode::BaseDisp { base: x(0), disp: row_bytes }));
    a.i(fadd(v(3), v(1), v(2)));
    a.i(fmadd(v(4), v(3), v(0), v(4)));
    a.i(add(x(0), x(0), row_bytes)); // walk down the column: 4KB stride
    a.i(subs(x(3), x(3), 1i64));
    a.b_cond(Cond::Ne, "row");
    a.i(add(x(4), x(4), 1i64));
    a.i(cmp(x(4), COLS as i64));
    a.b_cond(Cond::Cc, "col");
    a.i(add(x(19), x(19), 1i64));
    a.b("outer");

    Workload {
        name: "stencil_roms",
        proxy: "654.roms_s",
        program: a.assemble().expect("stencil_roms assembles"),
        init_regs: vec![(x(20), HEAP), (x(21), bounds_base), (v(0), 0.5f64.to_bits())],
        init_mem: vec![(HEAP, grid), (bounds_base, bounds)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn final_reg_f64(w: &Workload, insts: u64, r: tvp_isa::reg::Reg) -> f64 {
        let mut m = w.machine();
        let _ = m.run(insts);
        f64::from_bits(m.reg(r))
    }

    #[test]
    fn stream_triad_writes_expected_values() {
        let w = stream_triad();
        let mut m = w.machine();
        let _ = m.run(50_000);
        // a[0] must equal b[0] + 3·c[0].
        let b0 = f64::from_bits(m.read_mem(HEAP + 128 * 1024 * 8, 8));
        let c0 = f64::from_bits(m.read_mem(HEAP + 2 * 128 * 1024 * 8, 8));
        let a0 = f64::from_bits(m.read_mem(HEAP, 8));
        assert!((a0 - (b0 + 3.0 * c0)).abs() < 1e-12, "a0={a0} b0={b0} c0={c0}");
    }

    #[test]
    fn lattice_accumulator_is_finite() {
        let acc = final_reg_f64(&lattice_fluid(), 100_000, v(7));
        assert!(acc.is_finite());
        assert!(acc != 0.0);
    }

    #[test]
    fn climate_ocean_splits_accumulators() {
        let w = climate_ocean();
        let mut m = w.machine();
        let _ = m.run(100_000);
        let cold = f64::from_bits(m.reg(v(2)));
        let warm_count = m.reg(x(9));
        assert!(cold > 0.0);
        // Threshold 1.9 over uniform [0,2) → ~5% warm.
        let total = 100_000 / 9; // ≈ insts per element
        assert!(warm_count > 0 && warm_count < total, "warm = {warm_count}");
    }

    #[test]
    fn md_force_accumulates_positive_r2() {
        let acc = final_reg_f64(&md_force(), 100_000, v(8));
        assert!(acc > 0.0, "sum of squared distances must be positive");
    }

    #[test]
    fn stencil_roms_column_height_is_stable() {
        let w = stencil_roms();
        let t = w.trace(50_000);
        // Every column-height byte load must return 255.
        let heights: Vec<_> = t
            .uops
            .iter()
            .filter(|u| matches!(u.uop.op, tvp_isa::op::Op::Load { size: 1, .. }))
            .map(|u| u.result.unwrap())
            .collect();
        assert!(!heights.is_empty());
        assert!(heights.iter().all(|&h| h == 255));
    }

    #[test]
    fn weather_loop_divides_occasionally() {
        let w = weather_loop();
        let t = w.trace(50_000);
        let divs = t.uops.iter().filter(|u| u.uop.op == tvp_isa::op::Op::Udiv).count();
        assert!(divs > 0, "no divides executed");
        assert!(divs < t.uops.len() / 10, "divides should be occasional");
    }

    #[test]
    fn stencil_grid_makes_full_sweeps() {
        let w = stencil_grid();
        let mut m = w.machine();
        // One sweep is (254² cells × ~14 insts) ≈ 900k instructions.
        let _ = m.run(1_000_000);
        assert!(m.reg(x(19)) >= 1, "completed sweeps = {}", m.reg(x(19)));
    }
}
