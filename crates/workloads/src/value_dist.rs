//! Dynamic value distribution analysis (paper Fig. 1).
//!
//! Fig. 1 plots the distribution of values produced by instructions
//! writing general-purpose registers across SPEC CPU2017: `0x0` is the
//! most produced value (≈5%), `0x1` is third, and narrow values
//! dominate the top of the distribution — the observation motivating
//! MVP and TVP.

use std::collections::BTreeMap;

use crate::trace::Trace;

/// A value histogram over GPR-producing micro-ops.
#[derive(Clone, Debug, Default)]
pub struct ValueDistribution {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl ValueDistribution {
    /// Creates an empty distribution.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates every GPR-producing µop of a trace.
    pub fn add_trace(&mut self, trace: &Trace) {
        for u in &trace.uops {
            if u.uop.produces_gpr() {
                if let Some(v) = u.result {
                    *self.counts.entry(v).or_insert(0) += 1;
                    self.total += 1;
                }
            }
        }
    }

    /// Number of accumulated value productions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `n` most produced values with their dynamic share (descending,
    /// ties broken by value for determinism).
    #[must_use]
    pub fn top(&self, n: usize) -> Vec<(u64, f64)> {
        let mut entries: Vec<(u64, u64)> = self.counts.iter().map(|(&v, &c)| (v, c)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.into_iter().take(n).map(|(v, c)| (v, c as f64 / self.total as f64)).collect()
    }

    /// Dynamic share of a specific value.
    #[must_use]
    pub fn share(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.counts.get(&value).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Dynamic share of values admissible under a 9-bit signed
    /// representation (the TVP/register-inlining range).
    #[must_use]
    pub fn narrow9_share(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let narrow: u64 = self
            .counts
            .iter()
            .filter(|(&v, _)| (-256..=255).contains(&(v as i64)))
            .map(|(_, &c)| c)
            .sum();
        narrow as f64 / self.total as f64
    }

    /// Dynamic share of `0x0` and `0x1` combined (the MVP range).
    #[must_use]
    pub fn zero_one_share(&self) -> f64 {
        self.share(0) + self.share(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::suite;

    #[test]
    fn suite_distribution_matches_fig1_shape() {
        let mut dist = ValueDistribution::new();
        for w in suite() {
            dist.add_trace(&w.trace(20_000));
        }
        assert!(dist.total() > 100_000);
        // Fig. 1 shape: 0x0 is the most produced value.
        let top = dist.top(10);
        assert_eq!(top[0].0, 0, "0x0 must top the distribution, got {top:#x?}");
        // 0x0 share is a few percent or more.
        assert!(dist.share(0) > 0.03, "0x0 share = {}", dist.share(0));
        // 0x1 is prominent (top-5 in our suite; 3rd in the paper).
        assert!(top.iter().take(5).any(|&(val, _)| val == 1), "0x1 missing from top-5: {top:#x?}");
        // Narrow values dominate: the 9-bit share far exceeds the
        // 0/1-only share, which is the TVP-over-MVP argument.
        assert!(dist.narrow9_share() > dist.zero_one_share() + 0.10);
        assert!(dist.narrow9_share() > 0.25, "narrow9 = {}", dist.narrow9_share());
    }

    #[test]
    fn share_and_top_are_consistent() {
        let mut dist = ValueDistribution::new();
        dist.add_trace(&suite()[0].trace(5_000));
        let top = dist.top(3);
        for (v, share) in top {
            assert!((dist.share(v) - share).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_distribution_is_safe() {
        let dist = ValueDistribution::new();
        assert_eq!(dist.total(), 0);
        assert_eq!(dist.share(0), 0.0);
        assert!(dist.top(5).is_empty());
        assert_eq!(dist.narrow9_share(), 0.0);
    }
}
