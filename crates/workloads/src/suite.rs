//! The synthetic workload suite.
//!
//! Stand-ins for the SPEC CPU2017 speed benchmarks the paper evaluates
//! (see DESIGN.md §3 for the substitution rationale). Each kernel is a
//! small assembly program engineered to exhibit the *microarchitectural*
//! property that drives the paper's results on its SPEC counterpart:
//! value distributions skewed toward `0x0`/`0x1` and narrow constants
//! (Fig. 1), µop expansion between 1.0 and 1.15 (Fig. 2), a wide IPC
//! spread, and — for `pointer_chase` — the dependent-load chain that
//! makes 623.xalancbmk the paper's GVP outlier (+52.65%, §6.1).

use tvp_isa::reg::Reg;

use crate::machine::Machine;
use crate::program::Program;
use crate::stream::MachineSource;
use crate::trace::Trace;

/// A named workload: a program plus its initial machine state.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Short kernel name (used in experiment tables).
    pub name: &'static str,
    /// The SPEC CPU2017 benchmark this kernel proxies.
    pub proxy: &'static str,
    pub(crate) program: Program,
    pub(crate) init_regs: Vec<(Reg, u64)>,
    pub(crate) init_mem: Vec<(u64, Vec<u8>)>,
}

impl Workload {
    /// Builds a fresh machine with this workload's initial state.
    #[must_use]
    pub fn machine(&self) -> Machine {
        let mut m = Machine::new(self.program.clone());
        for &(r, v) in &self.init_regs {
            m.set_reg(r, v);
        }
        for (addr, bytes) in &self.init_mem {
            m.write_bytes(*addr, bytes);
        }
        m
    }

    /// Runs the workload for `arch_insts` architectural instructions
    /// and returns the dynamic trace.
    #[must_use]
    pub fn trace(&self, arch_insts: u64) -> Trace {
        self.machine().run(arch_insts)
    }

    /// Wraps a fresh machine as a streaming
    /// [`TraceSource`](crate::stream::TraceSource): the
    /// sampled-simulation entry point (no trace is ever materialized
    /// beyond the interval being fed to the core).
    #[must_use]
    pub fn source(&self) -> MachineSource {
        MachineSource::new(self.machine())
    }

    /// Rebuilds a machine from a mid-trace architectural checkpoint
    /// (snapshot + global µop sequence position) — the resume path.
    /// Initial registers/memory are *not* re-applied; the snapshot
    /// already contains the complete architectural state.
    #[must_use]
    pub fn machine_restored(&self, snap: &crate::machine::ArchSnapshot, seq: u64) -> Machine {
        Machine::restore(self.program.clone(), snap, seq)
    }

    /// Static program size in instructions.
    #[must_use]
    pub fn code_size(&self) -> usize {
        self.program.len()
    }
}

/// All workloads, in the order they appear in experiment tables.
#[must_use]
pub fn suite() -> Vec<Workload> {
    vec![
        crate::kernels::int::string_match(),
        crate::kernels::int::string_match_2(),
        crate::kernels::int::string_match_3(),
        crate::kernels::int::expr_tree(),
        crate::kernels::int::expr_tree_2(),
        crate::kernels::int::expr_tree_3(),
        crate::kernels::fp::stream_triad(),
        crate::kernels::fp::stream_triad_2(),
        crate::kernels::mem::sparse_graph(),
        crate::kernels::fp::stencil_grid(),
        crate::kernels::fp::lattice_fluid(),
        crate::kernels::mem::discrete_event(),
        crate::kernels::fp::weather_loop(),
        crate::kernels::mem::pointer_chase(),
        crate::kernels::int::pixel_encode(),
        crate::kernels::int::pixel_encode_2(),
        crate::kernels::int::pixel_encode_3(),
        crate::kernels::fp::climate_ocean(),
        crate::kernels::int::minimax(),
        crate::kernels::int::image_filter(),
        crate::kernels::int::mc_playout(),
        crate::kernels::fp::md_force(),
        crate::kernels::fp::stencil_roms(),
        crate::kernels::int::entropy_coder(),
        crate::kernels::int::entropy_coder_2(),
    ]
}

/// The 17 distinct kernels (first SimPoint-style slice of each); the
/// full [`suite`] adds second/third slices of five of them, mirroring
/// the paper's 28 benchmark_simpoint rows.
#[must_use]
pub fn base_suite() -> Vec<Workload> {
    suite().into_iter().filter(|w| !w.name.ends_with("_2") && !w.name.ends_with("_3")).collect()
}

/// Looks a workload up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<Workload> {
    suite().into_iter().find(|w| w.name == name)
}

/// Packs a slice of 64-bit words into little-endian bytes (data-segment
/// helper for kernels).
#[must_use]
pub fn words_to_bytes(words: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 8);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twenty_five_distinct_rows() {
        let s = suite();
        assert_eq!(s.len(), 25);
        let mut names: Vec<_> = s.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 25, "duplicate kernel names");
        assert_eq!(base_suite().len(), 17);
    }

    #[test]
    fn variants_differ_from_their_base() {
        let a = by_name("string_match").unwrap().trace(5_000);
        let b = by_name("string_match_2").unwrap().trace(5_000);
        let values_a: Vec<_> = a.uops.iter().filter_map(|u| u.result).collect();
        let values_b: Vec<_> = b.uops.iter().filter_map(|u| u.result).collect();
        assert_ne!(values_a, values_b, "variant must change dynamic behaviour");
    }

    #[test]
    fn every_kernel_runs_10k_instructions() {
        for w in suite() {
            let t = w.trace(10_000);
            assert_eq!(t.arch_insts, 10_000, "{} halted early", w.name);
            assert!(t.uops.len() as u64 >= t.arch_insts);
        }
    }

    #[test]
    fn expansion_ratios_match_fig2_range() {
        // Fig. 2: µops per architectural instruction between 1.0 and
        // ~1.15 across the suite.
        for w in suite() {
            let t = w.trace(20_000);
            let r = t.expansion_ratio();
            assert!((1.0..1.30).contains(&r), "{}: expansion ratio {r}", w.name);
        }
    }

    #[test]
    fn by_name_finds_kernels() {
        assert!(by_name("pointer_chase").is_some());
        assert!(by_name("not_a_kernel").is_none());
    }

    #[test]
    fn traces_are_deterministic() {
        let w = by_name("minimax").unwrap();
        let a = w.trace(5_000);
        let b = w.trace(5_000);
        assert_eq!(a.uops.len(), b.uops.len());
        for (x, y) in a.uops.iter().zip(&b.uops) {
            assert_eq!(x.pc, y.pc);
            assert_eq!(x.result, y.result);
            assert_eq!(x.mem_addr, y.mem_addr);
        }
    }

    #[test]
    fn words_to_bytes_little_endian() {
        let b = words_to_bytes(&[0x0102_0304_0506_0708]);
        assert_eq!(b, vec![8, 7, 6, 5, 4, 3, 2, 1]);
    }
}
