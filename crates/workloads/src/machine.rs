//! The functional machine: architectural execution and trace emission.
//!
//! Executes a [`Program`] at architectural precision — registers, flags,
//! byte-addressed sparse memory, control flow — and emits a
//! [`Trace`] of micro-ops annotated with actual results. The timing
//! core never re-executes semantics; it replays this trace, which makes
//! the functional model the single source of architectural truth.

use std::collections::BTreeMap;

use tvp_isa::exec::{branch_taken, exec_alu, Operands};
use tvp_isa::flags::Nzcv;
use tvp_isa::inst::{expand, AddrMode, Src2};
use tvp_isa::op::Op;
use tvp_isa::reg::{Reg, NUM_FP_REGS, NUM_INT_REGS, ZERO_REG_INDEX};

use crate::program::{Program, INST_BYTES};
use crate::trace::{BranchOutcome, Trace, TraceUop};

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Bytes per sparse-memory page (the checkpoint format serializes
/// whole pages).
pub const PAGE_BYTES: usize = PAGE_SIZE;

/// Sparse byte-addressed memory. Untouched bytes read as zero.
#[derive(Default, Debug, Clone)]
pub struct SparseMem {
    pages: BTreeMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMem {
    /// Reads `size` bytes (1, 2, 4 or 8) little-endian.
    ///
    /// # Panics
    ///
    /// Panics on an unsupported size.
    #[must_use]
    pub fn read(&self, addr: u64, size: u8) -> u64 {
        assert!(matches!(size, 1 | 2 | 4 | 8), "unsupported read size {size}");
        let mut v = 0u64;
        for i in 0..u64::from(size) {
            v |= u64::from(self.read_byte(addr + i)) << (8 * i);
        }
        v
    }

    /// Writes the low `size` bytes of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics on an unsupported size.
    pub fn write(&mut self, addr: u64, size: u8, value: u64) {
        assert!(matches!(size, 1 | 2 | 4 | 8), "unsupported write size {size}");
        for i in 0..u64::from(size) {
            self.write_byte(addr + i, (value >> (8 * i)) as u8);
        }
    }

    fn read_byte(&self, addr: u64) -> u8 {
        self.pages.get(&(addr >> PAGE_SHIFT)).map_or(0, |p| p[(addr as usize) & (PAGE_SIZE - 1)])
    }

    fn write_byte(&mut self, addr: u64, value: u8) {
        let page = self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(|| Box::new([0; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Content digest (FNV-1a over non-zero bytes). All-zero pages are
    /// skipped and zero bytes within a page contribute nothing, so two
    /// memories with identical *observable* contents digest equally
    /// even when one allocated pages the other never touched.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for (page, data) in &self.pages {
            if data.iter().all(|&b| b == 0) {
                continue;
            }
            h = fnv_mix(h, *page);
            for (i, &b) in data.iter().enumerate() {
                if b != 0 {
                    h = fnv_mix(h, ((i as u64) << 8) | u64::from(b));
                }
            }
        }
        h
    }

    /// Iterates pages that hold at least one non-zero byte, in
    /// ascending page-index order. All-zero pages are skipped so the
    /// serialized image matches what [`SparseMem::digest`] observes.
    pub fn nonzero_pages(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.pages
            .iter()
            .filter(|(_, data)| data.iter().any(|&b| b != 0))
            .map(|(&page, data)| (page, &data[..]))
    }

    /// Installs a full page image at `page_index` (checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics when `bytes` is not exactly one page long.
    pub fn install_page(&mut self, page_index: u64, bytes: &[u8]) {
        assert_eq!(bytes.len(), PAGE_SIZE, "page image must be {PAGE_SIZE} bytes");
        let page = self.pages.entry(page_index).or_insert_with(|| Box::new([0; PAGE_SIZE]));
        page.copy_from_slice(bytes);
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

fn fnv_mix(h: u64, v: u64) -> u64 {
    let mut h = h;
    for shift in [0u32, 16, 32, 48] {
        h ^= (v >> shift) & 0xFFFF;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A copy of the complete architectural state of a [`Machine`]:
/// registers, flags, program counter and memory. The chaos commit
/// oracle seeds its golden model from the pre-run snapshot and compares
/// its post-run state against the functional machine's final snapshot.
#[derive(Clone, Debug)]
pub struct ArchSnapshot {
    /// Integer register file (`x0`–`x30`; index 31 is the hardwired
    /// zero register and always reads 0).
    pub int: [u64; NUM_INT_REGS as usize],
    /// Floating-point/SIMD register file (raw bits).
    pub fp: [u64; NUM_FP_REGS as usize],
    /// Condition flags.
    pub flags: Nzcv,
    /// Program counter.
    pub pc: u64,
    /// Sparse data memory.
    pub mem: SparseMem,
}

impl ArchSnapshot {
    /// Digest of the whole architectural state (registers, flags, PC
    /// and memory), suitable for cheap equality checks in tests.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for &r in &self.int {
            h = fnv_mix(h, r);
        }
        for &r in &self.fp {
            h = fnv_mix(h, r);
        }
        h = fnv_mix(h, u64::from(self.flags.pack()));
        h = fnv_mix(h, self.pc);
        fnv_mix(h, self.mem.digest())
    }
}

/// The architectural machine.
#[derive(Debug, Clone)]
pub struct Machine {
    program: Program,
    int: [u64; NUM_INT_REGS as usize],
    fp: [u64; NUM_FP_REGS as usize],
    flags: Nzcv,
    pc: u64,
    mem: SparseMem,
    seq: u64,
}

impl Machine {
    /// Creates a machine at the program's entry point with zeroed
    /// registers and memory.
    #[must_use]
    pub fn new(program: Program) -> Self {
        let pc = program.entry();
        Machine {
            program,
            int: [0; NUM_INT_REGS as usize],
            fp: [0; NUM_FP_REGS as usize],
            flags: Nzcv::default(),
            pc,
            mem: SparseMem::default(),
            seq: 0,
        }
    }

    /// Reads an architectural register (the zero register reads 0).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        match r {
            Reg::Int(ZERO_REG_INDEX) => 0,
            Reg::Int(i) => self.int[usize::from(i)],
            Reg::Fp(i) => self.fp[usize::from(i)],
            Reg::Nzcv => u64::from(self.flags.pack()),
        }
    }

    /// Writes an architectural register (writes to the zero register
    /// are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        match r {
            Reg::Int(ZERO_REG_INDEX) => {}
            Reg::Int(i) => self.int[usize::from(i)] = value,
            Reg::Fp(i) => self.fp[usize::from(i)] = value,
            Reg::Nzcv => self.flags = Nzcv::unpack(value as u8),
        }
    }

    /// Direct memory write for workload initialisation.
    pub fn write_mem(&mut self, addr: u64, size: u8, value: u64) {
        self.mem.write(addr, size, value);
    }

    /// Direct memory read, mostly for tests.
    #[must_use]
    pub fn read_mem(&self, addr: u64, size: u8) -> u64 {
        self.mem.read(addr, size)
    }

    /// Bulk memory initialisation (workload data segments).
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.mem.write_byte(addr + i as u64, b);
        }
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Global sequence number of the *next* µop this machine will
    /// execute — the machine's position in the dynamic µop stream.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Reconstructs a machine from an architectural snapshot plus its
    /// µop sequence position — the checkpoint-resume path. The restored
    /// machine continues the dynamic instruction stream exactly where
    /// the snapshotted one left off.
    #[must_use]
    pub fn restore(program: Program, snap: &ArchSnapshot, seq: u64) -> Self {
        Machine {
            program,
            int: snap.int,
            fp: snap.fp,
            flags: snap.flags,
            pc: snap.pc,
            mem: snap.mem.clone(),
            seq,
        }
    }

    /// Snapshots the complete architectural state (registers, flags,
    /// PC, memory).
    #[must_use]
    pub fn arch_snapshot(&self) -> ArchSnapshot {
        ArchSnapshot {
            int: self.int,
            fp: self.fp,
            flags: self.flags,
            pc: self.pc,
            mem: self.mem.clone(),
        }
    }

    fn src2_value(&self, s: Src2) -> u64 {
        match s {
            Src2::None => 0,
            Src2::Reg(r) => self.reg(r),
            Src2::Imm(i) => i as u64,
        }
    }

    fn effective_addr(&self, addr: AddrMode) -> u64 {
        match addr {
            AddrMode::BaseDisp { base, disp } => self.reg(base).wrapping_add(disp as u64),
            AddrMode::BaseIndex { base, index, shift } => {
                self.reg(base).wrapping_add(self.reg(index) << shift)
            }
            AddrMode::PreIndex { .. } | AddrMode::PostIndex { .. } => {
                unreachable!("writeback addressing is removed by µop expansion")
            }
        }
    }

    /// Executes one *architectural* instruction, appending its µops to
    /// `out`. Returns `false` when the machine has halted (PC left the
    /// text segment).
    pub fn step_into(&mut self, out: &mut Trace) -> bool {
        if !self.step_exec(|rec| out.uops.push(rec)) {
            return false;
        }
        out.arch_insts += 1;
        true
    }

    /// Executes one architectural instruction *without* recording it —
    /// the functional fast-forward used between sampled intervals.
    /// Sequence numbers still advance so every µop keeps its global
    /// position in the dynamic instruction stream.
    pub fn step_quiet(&mut self) -> bool {
        self.step_exec(|_| ())
    }

    /// Functionally executes up to `max_arch_insts` instructions
    /// without emitting a trace; returns how many actually ran before
    /// the machine halted.
    pub fn fast_forward(&mut self, max_arch_insts: u64) -> u64 {
        let mut done = 0;
        while done < max_arch_insts && self.step_quiet() {
            done += 1;
        }
        done
    }

    /// Executes one architectural instruction, handing each annotated
    /// µop record to `emit`. Returns `false` (without calling `emit`)
    /// when the machine has halted.
    fn step_exec(&mut self, mut emit: impl FnMut(TraceUop)) -> bool {
        let Some(&inst) = self.program.fetch(self.pc) else {
            return false;
        };
        let mut next_pc = self.pc + INST_BYTES;
        let uops = expand(&inst);
        let n = uops.len();
        for (k, uop) in uops.into_iter().enumerate() {
            let mut rec = TraceUop {
                seq: self.seq,
                pc: self.pc,
                uop,
                first_uop: k == 0,
                result: None,
                flags_out: None,
                mem_addr: None,
                branch: None,
            };
            self.seq += 1;
            match uop.op {
                Op::Load { size, signed } => {
                    let addr = self.effective_addr(uop.addr.expect("load has addressing"));
                    let raw = self.mem.read(addr, size);
                    let value = if signed && size < 8 {
                        let shift = 64 - u32::from(size) * 8;
                        (((raw << shift) as i64) >> shift) as u64
                    } else {
                        raw
                    };
                    let dst = uop.dst.expect("load has a destination");
                    self.set_reg(dst, value);
                    rec.mem_addr = Some(addr);
                    rec.result = Some(value);
                }
                Op::Store { size } => {
                    let addr = self.effective_addr(uop.addr.expect("store has addressing"));
                    let data = self.reg(uop.src1.expect("store has a data register"));
                    self.mem.write(addr, size, data);
                    rec.mem_addr = Some(addr);
                }
                op if op.is_branch() => {
                    let src = uop.src1.map_or(0, |r| self.reg(r));
                    let taken = branch_taken(op, uop.width, src, self.flags);
                    let target = match op {
                        Op::Br | Op::Blr | Op::Ret => src,
                        _ => uop.target.expect("direct branch has a target"),
                    };
                    if matches!(op, Op::Bl | Op::Blr) {
                        let link = self.pc + INST_BYTES;
                        self.set_reg(Reg::Int(30), link);
                        rec.result = Some(link);
                    }
                    if taken {
                        next_pc = target;
                    }
                    rec.branch = Some(BranchOutcome {
                        taken,
                        target: if taken { target } else { self.pc + INST_BYTES },
                    });
                }
                op => {
                    let ops = Operands {
                        a: uop.src1.map_or(0, |r| self.reg(r)),
                        b: self.src2_value(uop.src2),
                        c: uop.src3.map_or(0, |r| self.reg(r)),
                        flags: self.flags,
                    };
                    let r = exec_alu(op, uop.width, uop.sets_flags, ops);
                    if let Some(dst) = uop.dst {
                        self.set_reg(dst, r.value);
                        rec.result = Some(r.value);
                    }
                    if let Some(f) = r.flags {
                        self.flags = f;
                        rec.flags_out = Some(f);
                    }
                }
            }
            emit(rec);
        }
        debug_assert!(n >= 1);
        self.pc = next_pc;
        true
    }

    /// Runs up to `max_arch_insts` architectural instructions (or until
    /// the machine halts) and returns the trace.
    pub fn run(&mut self, max_arch_insts: u64) -> Trace {
        let mut trace = Trace::default();
        for _ in 0..max_arch_insts {
            if !self.step_into(&mut trace) {
                break;
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Asm;
    use tvp_isa::flags::Cond;
    use tvp_isa::inst::build::*;
    use tvp_isa::reg::x;

    #[test]
    fn counted_loop_executes_correctly() {
        let mut a = Asm::new();
        a.i(movz(x(0), 10)); // counter
        a.i(movz(x(1), 0)); // sum
        a.label("loop");
        a.i(add(x(1), x(1), x(0)));
        a.i(subs(x(0), x(0), 1i64));
        a.b_cond(Cond::Ne, "loop");
        let mut m = Machine::new(a.assemble().unwrap());
        let t = m.run(1_000);
        assert_eq!(m.reg(x(1)), 55, "sum 10..1");
        assert_eq!(m.reg(x(0)), 0);
        // 2 setup + 10 × 3 loop insts.
        assert_eq!(t.arch_insts, 32);
        assert!(t.uops.len() as u64 >= t.arch_insts);
    }

    #[test]
    fn machine_halts_at_text_end() {
        let mut a = Asm::new();
        a.i(movz(x(0), 7));
        let mut m = Machine::new(a.assemble().unwrap());
        let t = m.run(100);
        assert_eq!(t.arch_insts, 1, "runs off the end and halts");
    }

    #[test]
    fn memory_roundtrip_with_sizes() {
        let mut a = Asm::new();
        a.i(movz(x(0), 0x2000));
        a.i(movz(x(1), 0x1234));
        a.i(str_sized(x(1), AddrMode::BaseDisp { base: x(0), disp: 0 }, 2));
        a.i(ldr_sized(x(2), AddrMode::BaseDisp { base: x(0), disp: 0 }, 2, false));
        a.i(ldr_sized(x(3), AddrMode::BaseDisp { base: x(0), disp: 1 }, 1, false));
        let mut m = Machine::new(a.assemble().unwrap());
        let _ = m.run(100);
        assert_eq!(m.reg(x(2)), 0x1234);
        assert_eq!(m.reg(x(3)), 0x12, "little-endian high byte");
    }

    #[test]
    fn signed_loads_sign_extend() {
        let mut a = Asm::new();
        a.i(movz(x(0), 0x3000));
        a.i(movz(x(1), 0x80));
        a.i(str_sized(x(1), AddrMode::BaseDisp { base: x(0), disp: 0 }, 1));
        a.i(ldr_sized(x(2), AddrMode::BaseDisp { base: x(0), disp: 0 }, 1, true));
        let mut m = Machine::new(a.assemble().unwrap());
        let _ = m.run(100);
        assert_eq!(m.reg(x(2)), (-128i64) as u64);
    }

    #[test]
    fn post_index_walks_an_array() {
        let mut a = Asm::new();
        a.i(movz(x(0), 0x4000)); // pointer
        a.i(movz(x(1), 0)); // sum
        a.i(movz(x(2), 4)); // count
        a.label("loop");
        a.i(ldr(x(3), AddrMode::PostIndex { base: x(0), disp: 8 }));
        a.i(add(x(1), x(1), x(3)));
        a.i(subs(x(2), x(2), 1i64));
        a.b_cond(Cond::Ne, "loop");
        let mut m = Machine::new(a.assemble().unwrap());
        for i in 0..4u64 {
            m.write_mem(0x4000 + i * 8, 8, 10 + i);
        }
        let t = m.run(1_000);
        assert_eq!(m.reg(x(1)), 10 + 11 + 12 + 13);
        assert_eq!(m.reg(x(0)), 0x4000 + 32, "post-index writeback");
        assert!(t.expansion_ratio() > 1.0, "ldr post-index expands to 2 µops");
    }

    #[test]
    fn call_and_return() {
        let mut a = Asm::new();
        a.i(movz(x(0), 1));
        a.bl("callee");
        a.i(add(x(0), x(0), 100i64));
        a.b("end");
        a.label("callee");
        a.i(add(x(0), x(0), 10i64));
        a.ret();
        a.label("end");
        a.i(nop());
        let mut m = Machine::new(a.assemble().unwrap());
        let _ = m.run(100);
        assert_eq!(m.reg(x(0)), 111, "call, body, return, continue");
    }

    #[test]
    fn flags_and_csel() {
        let mut a = Asm::new();
        a.i(movz(x(0), 5));
        a.i(movz(x(1), 9));
        a.i(cmp(x(0), x(1)));
        a.i(csel(x(2), x(0), x(1), Cond::Lt)); // 5 < 9 → x0
        a.i(cset(x(3), Cond::Lt)); // → 1
        let mut m = Machine::new(a.assemble().unwrap());
        let _ = m.run(100);
        assert_eq!(m.reg(x(2)), 5);
        assert_eq!(m.reg(x(3)), 1);
    }

    #[test]
    fn trace_records_branch_outcomes() {
        let mut a = Asm::new();
        a.i(movz(x(0), 2));
        a.label("loop");
        a.i(subs(x(0), x(0), 1i64));
        a.b_cond(Cond::Ne, "loop");
        let mut m = Machine::new(a.assemble().unwrap());
        let t = m.run(100);
        let branches: Vec<_> = t.uops.iter().filter_map(|u| u.branch).collect();
        assert_eq!(branches.len(), 2);
        assert!(branches[0].taken);
        assert!(!branches[1].taken);
    }

    #[test]
    fn zero_register_reads_zero_and_discards_writes() {
        let mut a = Asm::new();
        a.i(movz(x(5), 42));
        a.i(add(tvp_isa::reg::XZR, x(5), x(5)));
        a.i(add(x(6), tvp_isa::reg::XZR, 0i64));
        let mut m = Machine::new(a.assemble().unwrap());
        let t = m.run(100);
        assert_eq!(m.reg(x(6)), 0);
        // The discarded write is still recorded in the trace.
        assert_eq!(t.uops[1].result, Some(84));
    }

    #[test]
    fn memory_digest_normalizes_untouched_zero_pages() {
        let mut a = SparseMem::default();
        let mut b = SparseMem::default();
        a.write(0x1000, 8, 0xABCD);
        b.write(0x1000, 8, 0xABCD);
        // `a` additionally touches a page with a value that is later
        // overwritten back to zero; observable contents stay equal.
        a.write(0x9000, 8, 7);
        a.write(0x9000, 8, 0);
        assert_eq!(a.digest(), b.digest());
        b.write(0x1000, 1, 0xFF);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn arch_snapshot_round_trips_machine_state() {
        let mut a = Asm::new();
        a.i(movz(x(3), 99));
        let mut m = Machine::new(a.assemble().unwrap());
        m.write_mem(0x5000, 8, 0x1234);
        let before = m.arch_snapshot();
        let _ = m.run(10);
        let after = m.arch_snapshot();
        assert_ne!(before.digest(), after.digest(), "run changed x3 and pc");
        assert_eq!(after.int[3], 99);
        assert_eq!(after.mem.read(0x5000, 8), 0x1234);
        assert_eq!(after.digest(), m.arch_snapshot().digest(), "snapshot is stable");
    }

    #[test]
    fn fast_forward_is_equivalent_to_traced_execution() {
        let mut a = Asm::new();
        a.i(movz(x(0), 50));
        a.i(movz(x(1), 0));
        a.label("loop");
        a.i(add(x(1), x(1), x(0)));
        a.i(subs(x(0), x(0), 1i64));
        a.b_cond(Cond::Ne, "loop");
        let prog = a.assemble().unwrap();
        let mut traced = Machine::new(prog.clone());
        let mut quiet = Machine::new(prog);
        let _ = traced.run(40);
        assert_eq!(quiet.fast_forward(40), 40);
        assert_eq!(quiet.seq(), traced.seq(), "seq advances identically");
        assert_eq!(
            quiet.arch_snapshot().digest(),
            traced.arch_snapshot().digest(),
            "architectural state identical"
        );
        // Both machines now emit the same continuation trace.
        let t1 = traced.run(20);
        let t2 = quiet.run(20);
        assert_eq!(t1.uops.len(), t2.uops.len());
        for (u1, u2) in t1.uops.iter().zip(&t2.uops) {
            assert_eq!(u1.seq, u2.seq);
            assert_eq!(u1.result, u2.result);
        }
    }

    #[test]
    fn restore_resumes_the_identical_stream() {
        let mut a = Asm::new();
        a.i(movz(x(0), 30));
        a.i(movz(x(2), 0x6000));
        a.label("loop");
        a.i(str_sized(x(0), AddrMode::BaseDisp { base: x(2), disp: 0 }, 8));
        a.i(ldr(x(3), AddrMode::BaseDisp { base: x(2), disp: 0 }));
        a.i(subs(x(0), x(0), 1i64));
        a.b_cond(Cond::Ne, "loop");
        let prog = a.assemble().unwrap();
        let mut original = Machine::new(prog.clone());
        assert_eq!(original.fast_forward(25), 25);
        let snap = original.arch_snapshot();
        let seq = original.seq();
        let mut resumed = Machine::restore(prog, &snap, seq);
        let t1 = original.run(40);
        let t2 = resumed.run(40);
        assert_eq!(t1.arch_insts, t2.arch_insts);
        for (u1, u2) in t1.uops.iter().zip(&t2.uops) {
            assert_eq!(
                (u1.seq, u1.pc, u1.result, u1.mem_addr),
                (u2.seq, u2.pc, u2.result, u2.mem_addr)
            );
        }
    }

    #[test]
    fn nonzero_pages_roundtrip_through_install() {
        let mut m = SparseMem::default();
        m.write(0x1008, 8, 0xDEAD_BEEF);
        m.write(0x9000, 8, 7);
        m.write(0x9000, 8, 0); // all-zero page: skipped
        let mut restored = SparseMem::default();
        let mut pages = 0;
        for (page, bytes) in m.nonzero_pages() {
            restored.install_page(page, bytes);
            pages += 1;
        }
        assert_eq!(pages, 1);
        assert_eq!(restored.digest(), m.digest());
        assert_eq!(restored.read(0x1008, 8), 0xDEAD_BEEF);
    }

    #[test]
    fn sparse_memory_defaults_to_zero() {
        let m = SparseMem::default();
        assert_eq!(m.read(0xDEAD_BEEF, 8), 0);
        let mut m = SparseMem::default();
        m.write(0xFFF, 8, 0x1122_3344_5566_7788);
        // Crosses a page boundary.
        assert_eq!(m.read(0xFFF, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.read(0x1000, 1), 0x77);
    }
}
