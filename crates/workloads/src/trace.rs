//! Dynamic instruction traces.
//!
//! The functional machine emits one [`TraceUop`] per executed micro-op.
//! The timing core replays these records: every µop carries its actual
//! result value (so value predictions can be validated), its memory
//! address (so the cache hierarchy sees the real stream) and its branch
//! outcome (so the front-end model can be checked against truth).

use tvp_isa::flags::Nzcv;
use tvp_isa::inst::Inst;

/// Resolved outcome of a branch micro-op.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BranchOutcome {
    /// Whether the branch was taken.
    pub taken: bool,
    /// The next program counter (fall-through when not taken).
    pub target: u64,
}

/// One executed micro-op.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceUop {
    /// Global µop sequence number.
    pub seq: u64,
    /// Program counter of the parent architectural instruction.
    pub pc: u64,
    /// The micro-op (post-expansion form: no pre/post-index addressing).
    pub uop: Inst,
    /// `true` for the first µop of an architectural instruction.
    pub first_uop: bool,
    /// Value written to the destination register, if any (also recorded
    /// for `xzr` destinations, where the write is architecturally
    /// discarded).
    pub result: Option<u64>,
    /// Condition flags produced, for flag-setting µops.
    pub flags_out: Option<Nzcv>,
    /// Effective virtual address, for loads and stores.
    pub mem_addr: Option<u64>,
    /// Branch resolution, for branch µops.
    pub branch: Option<BranchOutcome>,
}

impl TraceUop {
    /// Returns `true` if this µop is eligible for value prediction:
    /// it writes at least one general-purpose integer register
    /// (paper §6.1).
    #[must_use]
    pub fn vp_eligible(&self) -> bool {
        self.uop.produces_gpr() && !self.uop.op.is_branch() && !self.uop.op.is_store()
    }
}

/// A complete dynamic trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Executed micro-ops, in program order.
    pub uops: Vec<TraceUop>,
    /// Number of architectural instructions covered.
    pub arch_insts: u64,
}

impl Trace {
    /// µops per architectural instruction — the "expansion ratio" of
    /// Fig. 2.
    #[must_use]
    pub fn expansion_ratio(&self) -> f64 {
        if self.arch_insts == 0 {
            return 1.0;
        }
        self.uops.len() as f64 / self.arch_insts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_isa::inst::build::*;
    use tvp_isa::inst::AddrMode;
    use tvp_isa::reg::{x, XZR};

    fn mk(inst: tvp_isa::inst::Inst) -> TraceUop {
        TraceUop {
            seq: 0,
            pc: 0x1_0000,
            uop: inst,
            first_uop: true,
            result: None,
            flags_out: None,
            mem_addr: None,
            branch: None,
        }
    }

    #[test]
    fn vp_eligibility_follows_paper_rule() {
        assert!(mk(add(x(0), x(1), 2i64)).vp_eligible());
        assert!(mk(ldr(x(0), AddrMode::BaseDisp { base: x(1), disp: 0 })).vp_eligible());
        assert!(!mk(str(x(0), AddrMode::BaseDisp { base: x(1), disp: 0 })).vp_eligible());
        assert!(!mk(cmp(x(0), 1i64)).vp_eligible(), "xzr destination");
        assert!(!mk(fadd(tvp_isa::reg::v(0), tvp_isa::reg::v(1), tvp_isa::reg::v(2))).vp_eligible());
        assert!(!mk(sub(XZR, x(0), x(1))).vp_eligible());
    }

    #[test]
    fn expansion_ratio() {
        let t = Trace { uops: vec![mk(nop()), mk(nop()), mk(nop())], arch_insts: 2 };
        assert!((t.expansion_ratio() - 1.5).abs() < 1e-9);
        assert!((Trace::default().expansion_ratio() - 1.0).abs() < 1e-9);
    }
}
