//! Programs and the assembler DSL.
//!
//! A [`Program`] is a sequence of architectural instructions laid out at
//! [`TEXT_BASE`], four bytes apart. The [`Asm`] builder provides a
//! label-based assembler so kernels read like assembly listings:
//!
//! ```
//! use tvp_workloads::program::Asm;
//! use tvp_isa::inst::build::*;
//! use tvp_isa::reg::x;
//! use tvp_isa::flags::Cond;
//!
//! let mut a = Asm::new();
//! a.i(movz(x(0), 10));
//! a.label("loop");
//! a.i(subs(x(0), x(0), 1i64));
//! a.b_cond(Cond::Ne, "loop");
//! let program = a.assemble().unwrap();
//! assert_eq!(program.len(), 3);
//! ```

use std::collections::BTreeMap;
use std::fmt;

use tvp_isa::flags::Cond;
use tvp_isa::inst::Inst;
use tvp_isa::op::Op;
use tvp_isa::reg::Reg;

/// Base virtual address of the text segment.
pub const TEXT_BASE: u64 = 0x0001_0000;

/// Size of one instruction in bytes.
pub const INST_BYTES: u64 = 4;

/// An assembled program.
#[derive(Clone, Debug)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// The instruction at virtual address `pc`, or `None` outside the
    /// text segment (the machine halts there).
    #[must_use]
    pub fn fetch(&self, pc: u64) -> Option<&Inst> {
        if pc < TEXT_BASE || !(pc - TEXT_BASE).is_multiple_of(INST_BYTES) {
            return None;
        }
        self.insts.get(((pc - TEXT_BASE) / INST_BYTES) as usize)
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` for an empty program.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The entry point (first instruction).
    #[must_use]
    pub fn entry(&self) -> u64 {
        TEXT_BASE
    }

    /// Iterates over `(pc, inst)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Inst)> {
        self.insts.iter().enumerate().map(|(i, inst)| (TEXT_BASE + i as u64 * INST_BYTES, inst))
    }
}

/// Assembly error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A branch referenced a label that was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// An instruction failed validation.
    InvalidInst {
        /// Index of the offending instruction.
        index: usize,
        /// Description from [`Inst::validate`].
        reason: String,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::InvalidInst { index, reason } => {
                write!(f, "invalid instruction at index {index}: {reason}")
            }
        }
    }
}

impl std::error::Error for AsmError {}

/// The assembler builder.
#[derive(Default, Debug)]
pub struct Asm {
    insts: Vec<Inst>,
    labels: BTreeMap<String, usize>,
    fixups: Vec<(usize, String)>,
}

impl Asm {
    /// Creates an empty assembler.
    #[must_use]
    pub fn new() -> Self {
        Asm::default()
    }

    /// Defines a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics on duplicate labels (a programming error in a kernel).
    pub fn label(&mut self, name: &str) {
        let prev = self.labels.insert(name.to_owned(), self.insts.len());
        assert!(prev.is_none(), "duplicate label `{name}`");
    }

    /// Appends an instruction.
    pub fn i(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    fn branch_to(&mut self, op: Op, label: &str) -> &mut Self {
        let mut inst = Inst::new(op);
        inst.target = Some(0); // patched at assemble time
        self.fixups.push((self.insts.len(), label.to_owned()));
        self.insts.push(inst);
        self
    }

    /// `b label`.
    pub fn b(&mut self, label: &str) -> &mut Self {
        self.branch_to(Op::B, label)
    }

    /// `bl label` (writes x30).
    pub fn bl(&mut self, label: &str) -> &mut Self {
        let idx = self.insts.len();
        self.branch_to(Op::Bl, label);
        self.insts[idx].dst = Some(tvp_isa::reg::x(30));
        self
    }

    /// `b.cond label`.
    pub fn b_cond(&mut self, cond: Cond, label: &str) -> &mut Self {
        self.branch_to(Op::BCond(cond), label)
    }

    /// `cbz reg, label`.
    pub fn cbz(&mut self, reg: Reg, label: &str) -> &mut Self {
        let idx = self.insts.len();
        self.branch_to(Op::Cbz, label);
        self.insts[idx].src1 = Some(reg);
        self
    }

    /// `cbnz reg, label`.
    pub fn cbnz(&mut self, reg: Reg, label: &str) -> &mut Self {
        let idx = self.insts.len();
        self.branch_to(Op::Cbnz, label);
        self.insts[idx].src1 = Some(reg);
        self
    }

    /// `tbz reg, #bit, label`.
    pub fn tbz(&mut self, reg: Reg, bit: u8, label: &str) -> &mut Self {
        let idx = self.insts.len();
        self.branch_to(Op::Tbz(bit), label);
        self.insts[idx].src1 = Some(reg);
        self
    }

    /// `tbnz reg, #bit, label`.
    pub fn tbnz(&mut self, reg: Reg, bit: u8, label: &str) -> &mut Self {
        let idx = self.insts.len();
        self.branch_to(Op::Tbnz(bit), label);
        self.insts[idx].src1 = Some(reg);
        self
    }

    /// `ret` (indirect through x30).
    pub fn ret(&mut self) -> &mut Self {
        let mut inst = Inst::new(Op::Ret);
        inst.src1 = Some(tvp_isa::reg::x(30));
        self.insts.push(inst);
        self
    }

    /// `br reg`.
    pub fn br(&mut self, reg: Reg) -> &mut Self {
        let mut inst = Inst::new(Op::Br);
        inst.src1 = Some(reg);
        self.insts.push(inst);
        self
    }

    /// Resolves labels and validates every instruction.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] on undefined labels or malformed
    /// instructions.
    pub fn assemble(mut self) -> Result<Program, AsmError> {
        for (idx, label) in &self.fixups {
            let target =
                self.labels.get(label).ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
            self.insts[*idx].target = Some(TEXT_BASE + *target as u64 * INST_BYTES);
        }
        for (index, inst) in self.insts.iter().enumerate() {
            inst.validate().map_err(|reason| AsmError::InvalidInst { index, reason })?;
        }
        Ok(Program { insts: self.insts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_isa::inst::build::*;
    use tvp_isa::reg::x;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut a = Asm::new();
        a.label("top");
        a.i(add(x(0), x(0), 1i64));
        a.b("skip");
        a.i(add(x(0), x(0), 100i64));
        a.label("skip");
        a.b("top");
        let p = a.assemble().unwrap();
        // b skip at index 1 → target index 3.
        assert_eq!(p.fetch(TEXT_BASE + 4).unwrap().target, Some(TEXT_BASE + 12));
        // b top at index 3 → target index 0.
        assert_eq!(p.fetch(TEXT_BASE + 12).unwrap().target, Some(TEXT_BASE));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Asm::new();
        a.b("nowhere");
        assert_eq!(a.assemble().unwrap_err(), AsmError::UndefinedLabel("nowhere".into()));
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut a = Asm::new();
        a.label("l");
        a.label("l");
    }

    #[test]
    fn fetch_outside_text_is_none() {
        let mut a = Asm::new();
        a.i(nop());
        let p = a.assemble().unwrap();
        assert!(p.fetch(TEXT_BASE).is_some());
        assert!(p.fetch(TEXT_BASE + 4).is_none());
        assert!(p.fetch(0).is_none());
        assert!(p.fetch(TEXT_BASE + 2).is_none(), "misaligned");
    }

    #[test]
    fn invalid_instruction_reported_with_index() {
        let mut a = Asm::new();
        a.i(nop());
        let mut bad = orr(x(0), x(1), x(2));
        bad.sets_flags = true;
        a.i(bad);
        match a.assemble().unwrap_err() {
            AsmError::InvalidInst { index, .. } => assert_eq!(index, 1),
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn bl_writes_link_register() {
        let mut a = Asm::new();
        a.label("f");
        a.bl("f");
        let p = a.assemble().unwrap();
        assert_eq!(p.fetch(TEXT_BASE).unwrap().dst, Some(x(30)));
    }
}
