//! Malformed environment settings fail loudly (exit 2, message
//! naming the variable) instead of silently running with defaults.
//!
//! The regression these lock: `TVP_STORE_KILL_AFTER` used to be read
//! with `.ok().and_then(|s| s.parse().ok())`, so a typo (`3s`, `0x3`)
//! silently *disarmed* the chaos knob the crash-safety CI depends on
//! — the job would pass without ever exercising the kill path. Same
//! pattern for `TVP_INSTS`: a typo silently ran the default budget.

use std::process::Command;

/// Runs `exe` with `args` and the given extra environment, with both
/// TVP knobs scrubbed first so the ambient test environment can't
/// leak in.
fn run(exe: &str, args: &[&str], envs: &[(&str, &str)]) -> std::process::Output {
    let mut cmd = Command::new(exe);
    cmd.args(args);
    cmd.env_remove("TVP_INSTS");
    cmd.env_remove("TVP_STORE_KILL_AFTER");
    cmd.env_remove("TVP_STORE_DIR");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn binary")
}

fn assert_loud_rejection(out: &std::process::Output, var: &str, bad: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "malformed {var}={bad} must exit 2, got {:?}; stderr: {stderr}",
        out.status.code()
    );
    assert!(
        stderr.contains(var) && stderr.contains(bad),
        "stderr must name the variable and the offending value: {stderr}"
    );
}

#[test]
fn run_all_rejects_malformed_kill_after() {
    for bad in ["3s", "-1", "1.5", ""] {
        let out = run(
            env!("CARGO_BIN_EXE_run_all"),
            &["--smoke", "--jobs", "1"],
            &[("TVP_STORE_KILL_AFTER", bad)],
        );
        assert_loud_rejection(&out, "TVP_STORE_KILL_AFTER", bad);
    }
}

#[test]
fn run_all_rejects_malformed_insts() {
    let out =
        run(env!("CARGO_BIN_EXE_run_all"), &["--smoke", "--jobs", "1"], &[("TVP_INSTS", "lots")]);
    assert_loud_rejection(&out, "TVP_INSTS", "lots");
}

#[test]
fn campaign_worker_rejects_malformed_kill_after() {
    // The env check runs before any store I/O, so no store is needed.
    let out = run(
        env!("CARGO_BIN_EXE_campaign_worker"),
        &["worker", "--store", "/nonexistent", "--id", "w0"],
        &[("TVP_STORE_KILL_AFTER", "0x3")],
    );
    assert_loud_rejection(&out, "TVP_STORE_KILL_AFTER", "0x3");
}

#[test]
fn sample_campaign_rejects_malformed_kill_after() {
    let dir = std::env::temp_dir().join(format!("tvp-envval-{}", std::process::id()));
    let out = run(
        env!("CARGO_BIN_EXE_sample_campaign"),
        &["run", "--insts", "1000", "--store", dir.to_str().expect("utf8 tempdir")],
        &[("TVP_STORE_KILL_AFTER", "soon")],
    );
    let _ = std::fs::remove_dir_all(&dir);
    assert_loud_rejection(&out, "TVP_STORE_KILL_AFTER", "soon");
}

#[test]
fn well_formed_kill_after_still_arms_the_knob() {
    // Sanity companion: a *valid* value must not be rejected by the
    // new validation. kill_after=1 exits with the kill code (42)
    // after the first publication — proving the knob armed.
    let dir = std::env::temp_dir().join(format!("tvp-envval-armed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = run(
        env!("CARGO_BIN_EXE_sample_campaign"),
        &[
            "run",
            "--insts",
            "30000",
            "--spec",
            "10000:1000:1000",
            "--store",
            dir.to_str().expect("utf8 tempdir"),
        ],
        &[("TVP_STORE_KILL_AFTER", "1")],
    );
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        out.status.code(),
        Some(42),
        "valid kill_after must arm the chaos knob; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
