//! End-to-end distributed campaign (DESIGN.md §16): coordinator +
//! workers + kill + reap + merge, compared byte-for-byte against a
//! serial run of the same campaign.
//!
//! The choreography mirrors the CI `distributed-smoke` job:
//!
//! 1. serial reference: `run_all` with no store;
//! 2. coordinator: `campaign_worker manifest` pins the campaign;
//! 3. worker `w0` runs with `TVP_STORE_KILL_AFTER=3` — it dies with
//!    the kill exit code (42) holding a batch of leases, one of them
//!    with a durable blob whose `done` record was withheld;
//! 4. `reap --dead w0` reclaims every orphaned lease;
//! 5. worker `w1` drains the rest of the manifest;
//! 6. `merge` assembles `results/*.json`.
//!
//! Acceptance: the merged results are byte-identical to the serial
//! reference, and both telemetry records carry the same campaign
//! fingerprint. The merge telemetry additionally shows the fabric's
//! history: two workers, a nonzero reclaim count.

use std::path::{Path, PathBuf};
use std::process::Command;

const INSTS: &str = "1000";

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tvp-dist-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs a binary with a scrubbed TVP environment plus `envs`,
/// asserting the expected exit code. Returns (stdout, stderr).
fn run(exe: &str, args: &[&str], envs: &[(&str, &str)], want_code: i32) -> (String, String) {
    let mut cmd = Command::new(exe);
    cmd.args(args);
    for var in ["TVP_INSTS", "TVP_STORE_KILL_AFTER", "TVP_STORE_DIR", "TVP_RESULTS_DIR"] {
        cmd.env_remove(var);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn binary");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_eq!(
        out.status.code(),
        Some(want_code),
        "{exe} {args:?}: expected exit {want_code}, got {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        out.status.code()
    );
    (stdout, stderr)
}

/// Pulls `"campaign_fingerprint": "<16 hex>"` out of a telemetry file.
fn fingerprint_of(telemetry: &Path) -> String {
    let text = std::fs::read_to_string(telemetry).expect("read telemetry");
    let tag = "\"campaign_fingerprint\": \"";
    let at = text.find(tag).unwrap_or_else(|| panic!("no campaign_fingerprint in {text}"));
    text[at + tag.len()..at + tag.len() + 16].to_owned()
}

/// Asserts two results directories hold byte-identical file sets.
fn assert_identical_results(a: &Path, b: &Path) {
    let list = |d: &Path| -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(d)
            .expect("read results dir")
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        names
    };
    let names = list(a);
    assert_eq!(names, list(b), "results file sets differ");
    assert!(!names.is_empty(), "campaign produced no results files");
    for name in names {
        let bytes_a = std::fs::read(a.join(&name)).expect("read serial result");
        let bytes_b = std::fs::read(b.join(&name)).expect("read distributed result");
        assert!(bytes_a == bytes_b, "{name}: serial and distributed results differ");
    }
}

#[test]
fn killed_worker_reap_and_merge_reproduce_the_serial_results() {
    let root = scratch("campaign");
    let store = root.join("store");
    let serial_results = root.join("serial-results");
    let dist_results = root.join("dist-results");
    let serial_telemetry = root.join("serial-telemetry.json");
    let dist_telemetry = root.join("dist-telemetry.json");
    let s = |p: &Path| p.to_str().expect("utf8 path").to_owned();

    // 1. Serial reference (no store).
    run(
        env!("CARGO_BIN_EXE_run_all"),
        &["--jobs", "2"],
        &[
            ("TVP_INSTS", INSTS),
            ("TVP_RESULTS_DIR", &s(&serial_results)),
            ("TVP_BENCH_TELEMETRY", &s(&serial_telemetry)),
        ],
        0,
    );

    // 2. Coordinator pins the campaign.
    let worker_exe = env!("CARGO_BIN_EXE_campaign_worker");
    let (stdout, _) =
        run(worker_exe, &["manifest", "--store", &s(&store), "--insts", INSTS], &[], 0);
    assert!(stdout.contains("manifest written"), "{stdout}");

    // 3. Worker w0 dies mid-campaign with leases in hand.
    run(
        worker_exe,
        &["worker", "--store", &s(&store), "--id", "w0", "--jobs", "2"],
        &[("TVP_STORE_KILL_AFTER", "3")],
        42,
    );

    // 4. The reaper reclaims w0's orphaned leases.
    let (stdout, _) = run(worker_exe, &["reap", "--store", &s(&store), "--dead", "w0"], &[], 0);
    assert!(
        !stdout.contains("reap: 0 reclaimed"),
        "w0 died holding leases; reap must reclaim some: {stdout}"
    );

    // 5. Worker w1 drains the remainder.
    let (stdout, _) =
        run(worker_exe, &["worker", "--store", &s(&store), "--id", "w1", "--jobs", "2"], &[], 0);
    assert!(stdout.contains("published"), "{stdout}");

    // 6. Merge assembles the results.
    run(
        worker_exe,
        &[
            "merge",
            "--store",
            &s(&store),
            "--results",
            &s(&dist_results),
            "--telemetry",
            &s(&dist_telemetry),
        ],
        &[],
        0,
    );

    // Byte-identity and fingerprint agreement.
    assert_identical_results(&serial_results, &dist_results);
    assert_eq!(
        fingerprint_of(&serial_telemetry),
        fingerprint_of(&dist_telemetry),
        "serial and distributed campaigns must agree on the fingerprint"
    );
    // The merge telemetry records the fabric's history.
    let merged = std::fs::read_to_string(&dist_telemetry).expect("read merge telemetry");
    assert!(merged.contains("\"dist_workers\": 2"), "{merged}");
    assert!(!merged.contains("\"reclaimed_leases\": 0"), "reclaims must be visible: {merged}");
    let _ = std::fs::remove_dir_all(&root);
}
