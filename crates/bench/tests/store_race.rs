//! Concurrent-publish race on the durable store (DESIGN.md §14/§16):
//! two handles on the same store directory publish the *same* key at
//! the same time, across a loop of barrier-synchronised
//! interleavings.
//!
//! The invariants under test:
//!
//! - both publishes succeed (blob bytes are a pure function of the
//!   key, so the race has no wrong winner);
//! - exactly one blob survives under the content address and it fully
//!   re-verifies (checksum, schema, echoed key);
//! - the journal replays the point as completed exactly once, no
//!   matter how many `done` records the racers appended;
//! - when the loser observably loses (publishes after the winner's
//!   blob landed), it is *counted* (`duplicate_publishes`), not
//!   silently absorbed.

use std::sync::{Arc, Barrier};

use tvp_bench::jobs::{ExpKey, SimPoint};
use tvp_bench::store::{LoadOutcome, ResultStore, StoreConfig};
use tvp_core::config::{CoreConfig, VpMode};
use tvp_core::stats::SimStats;

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tvp-race-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key_for(round: u64) -> ExpKey {
    let mut cfg = CoreConfig::with_vp(VpMode::Tvp);
    cfg.watchdog_cycles += round; // distinct digest per round
    ExpKey::new("string_match", 5_000, &cfg)
}

fn point_for(key: &ExpKey) -> SimPoint {
    SimPoint { stats: SimStats { cycles: 100 + key.digest() % 100, ..Default::default() } }
}

#[test]
fn racing_publishes_of_the_same_key_leave_one_valid_blob() {
    let dir = scratch("pair");
    // First open initializes the layout + journal; both racers then
    // attach shared (neither may truncate the other's journal tail).
    drop(ResultStore::open(StoreConfig::at(&dir)).expect("initialize store"));

    const ROUNDS: u64 = 24;
    for round in 0..ROUNDS {
        let key = key_for(round);
        let point = point_for(&key);
        let barrier = Arc::new(Barrier::new(2));
        let counts: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let barrier = Arc::clone(&barrier);
                    let (dir, key, point) = (dir.clone(), key.clone(), point);
                    scope.spawn(move || {
                        let mut store =
                            ResultStore::open_shared(StoreConfig::at(&dir)).expect("shared open");
                        barrier.wait();
                        store.publish(&key, &point).expect("racing publish succeeds");
                        store.counters().duplicate_publishes
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("racer thread")).collect()
        });

        // Exactly one blob under the content address, fully valid.
        let blob = dir.join("blobs").join(format!("{:016x}.blob", key.digest()));
        assert!(blob.exists(), "round {round}: blob must exist");
        let mut verifier = ResultStore::open_shared(StoreConfig::at(&dir)).expect("verifier");
        match verifier.load(&key) {
            LoadOutcome::Hit(p) => assert_eq!(*p, point, "round {round}: winner's bytes verify"),
            other => panic!("round {round}: expected a warm hit, got {other:?}"),
        }
        // Completed exactly once in the replayed journal.
        assert!(verifier.journal_state().completed.contains(&key.digest()));
        // At most one loser can have observed the winner's blob.
        assert!(counts.iter().sum::<u64>() <= 1, "round {round}: counts {counts:?}");
    }

    // All ROUNDS digests intact at the end — no cross-round damage.
    let mut store = ResultStore::open(StoreConfig::at(&dir)).expect("final open");
    for round in 0..ROUNDS {
        let key = key_for(round);
        assert!(
            matches!(store.load(&key), LoadOutcome::Hit(_)),
            "round {round}: blob survived the campaign"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn observable_loser_is_counted_not_hidden() {
    // The deterministic half: handle B publishes strictly after A's
    // blob is durable, so B *must* see the collision and count it.
    let dir = scratch("loser");
    let key = key_for(1000);
    let point = point_for(&key);
    let mut a = ResultStore::open(StoreConfig::at(&dir)).expect("open a");
    let mut b = ResultStore::open_shared(StoreConfig::at(&dir)).expect("open b");
    a.publish(&key, &point).expect("winner publish");
    b.publish(&key, &point).expect("loser publish");
    assert_eq!(a.counters().duplicate_publishes, 0);
    assert_eq!(b.counters().duplicate_publishes, 1, "the loser is counted");
    assert!(b.summary().contains("duplicate"), "and surfaced in the summary");
    // The store is still perfectly healthy.
    let report = tvp_bench::store::fsck::fsck(&dir).expect("fsck");
    assert!(report.clean(), "{}", report.summary());
    let _ = std::fs::remove_dir_all(&dir);
}
