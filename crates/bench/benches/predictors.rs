//! Micro-benchmarks: predictor structures.

use tvp_bench::microbench::bench_function;
use tvp_predictors::tage::{Tage, TageConfig};
use tvp_predictors::vtage::{PredMode, Vtage, VtageConfig};

fn bench_tage() {
    bench_function("tage_predict_update", |b| {
        let mut tage = Tage::new(TageConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            let pc = 0x1000 + (i % 64) * 4;
            let taken = i.is_multiple_of(3);
            let token = tage.predict(pc);
            tage.push_history(taken);
            tage.update(&token, taken);
            i += 1;
            token.taken
        });
    });

    bench_function("tage_history_checkpoint", |b| {
        let mut tage = Tage::new(TageConfig::default());
        for i in 0..1000 {
            let t = tage.predict(0x4000 + i * 4);
            tage.push_history(i % 2 == 0);
            tage.update(&t, i % 2 == 0);
        }
        b.iter(|| tage.history_checkpoint());
    });
}

fn bench_vtage() {
    for (mode, name) in [
        (PredMode::ZeroOne, "vtage_mvp_predict_update"),
        (PredMode::Narrow9, "vtage_tvp_predict_update"),
        (PredMode::Full64, "vtage_gvp_predict_update"),
    ] {
        bench_function(name, |b| {
            let mut vp = Vtage::new(VtageConfig::paper(mode));
            let mut i = 0u64;
            b.iter(|| {
                let pc = 0x2000 + (i % 128) * 4;
                let pred = vp.predict(pc);
                vp.update(&pred, i % 2);
                i += 1;
                pred.confident
            });
        });
    }
}

fn main() {
    bench_tage();
    bench_vtage();
}
