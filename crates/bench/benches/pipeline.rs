//! Macro-benchmarks: simulator throughput per configuration.
//!
//! These measure *simulator* speed (host µops simulated per second),
//! useful for tracking regressions in the cycle loop, and they double
//! as smoke tests that every configuration runs a real workload.

use tvp_bench::microbench::bench_function;
use tvp_core::config::VpMode;
use tvp_core::pipeline::simulate_vp;

fn bench_simulator() {
    let workload = tvp_workloads::suite::by_name("mc_playout").expect("kernel exists");
    let trace = workload.trace(20_000);
    println!("simulate_mc_playout_20k ({} uops/iter)", trace.uops.len());
    for (vp, spsr, name) in [
        (VpMode::Off, false, "baseline"),
        (VpMode::Mvp, true, "mvp_spsr"),
        (VpMode::Tvp, true, "tvp_spsr"),
        (VpMode::Gvp, false, "gvp"),
    ] {
        bench_function(name, |b| {
            b.iter(|| simulate_vp(vp, spsr, &trace).cycles);
        });
    }
}

fn bench_trace_generation() {
    let workload = tvp_workloads::suite::by_name("string_match").expect("kernel exists");
    bench_function("trace_generation_string_match_20k", |b| {
        b.iter(|| workload.trace(20_000).uops.len());
    });
}

fn main() {
    bench_simulator();
    bench_trace_generation();
}
