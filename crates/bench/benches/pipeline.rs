//! Criterion macro-benchmarks: simulator throughput per configuration.
//!
//! These measure *simulator* speed (host µops simulated per second),
//! useful for tracking regressions in the cycle loop, and they double
//! as smoke tests that every configuration runs a real workload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tvp_core::config::VpMode;
use tvp_core::pipeline::simulate_vp;

fn bench_simulator(c: &mut Criterion) {
    let workload = tvp_workloads::suite::by_name("mc_playout").expect("kernel exists");
    let trace = workload.trace(20_000);
    let mut group = c.benchmark_group("simulate_mc_playout_20k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.uops.len() as u64));
    for (vp, spsr, name) in [
        (VpMode::Off, false, "baseline"),
        (VpMode::Mvp, true, "mvp_spsr"),
        (VpMode::Tvp, true, "tvp_spsr"),
        (VpMode::Gvp, false, "gvp"),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| simulate_vp(vp, spsr, &trace).cycles);
        });
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let workload = tvp_workloads::suite::by_name("string_match").expect("kernel exists");
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(20_000));
    group.bench_function("string_match_20k", |b| {
        b.iter(|| workload.trace(20_000).uops.len());
    });
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_trace_generation);
criterion_main!(benches);
