//! Micro-benchmarks: memory hierarchy structures.

use tvp_bench::microbench::bench_function;
use tvp_mem::hierarchy::{Hierarchy, HierarchyConfig};
use tvp_mem::prefetch::{AmpmPrefetcher, StridePrefetcher};

fn bench_hierarchy() {
    bench_function("hierarchy_streaming_loads", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let mut cycle = 0u64;
        let mut addr = 0x1000_0000u64;
        b.iter(|| {
            addr = addr.wrapping_add(64);
            cycle += 4;
            h.data_access(0x4000, addr, false, cycle)
        });
    });

    bench_function("hierarchy_random_loads", |b| {
        let mut h = Hierarchy::new(HierarchyConfig {
            stride_prefetcher: false,
            ampm_prefetcher: false,
            ..HierarchyConfig::default()
        });
        let mut cycle = 0u64;
        let mut state = 0x12345u64;
        b.iter(|| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            cycle += 10;
            h.data_access(0x4000, 0x1000_0000 + (state & 0xFF_FFC0), false, cycle)
        });
    });
}

fn bench_prefetchers() {
    bench_function("stride_observe", |b| {
        let mut p = StridePrefetcher::new(256, 4);
        let mut addr = 0u64;
        let mut out = Vec::new();
        b.iter(|| {
            addr += 64;
            out.clear();
            p.observe_into(0x4000, addr, &mut out);
            out.len()
        });
    });

    bench_function("ampm_observe", |b| {
        let mut p = AmpmPrefetcher::new(64, 8);
        let mut addr = 0u64;
        let mut clock = 0u64;
        let mut out = Vec::new();
        b.iter(|| {
            addr += 64;
            clock += 1;
            out.clear();
            p.observe_into(addr, clock, &mut out);
            out.len()
        });
    });
}

fn main() {
    bench_hierarchy();
    bench_prefetchers();
}
