//! Blob wire format: one self-verifying simulation point on disk.
//!
//! A blob is the durable form of one (key, point) pair. Nothing about
//! it is trusted on the way back in: the fixed header carries a magic,
//! a schema version and both section lengths, the *full* key is echoed
//! inside the blob (not just its 64-bit digest, so a content-address
//! collision can never serve the wrong point), and the final eight
//! bytes are an FNV-1a checksum over everything before them. A torn
//! write, a flipped bit, a foreign file or a blob from an older schema
//! all decode to a specific [`BlobError`] instead of a wrong result.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      8 bytes   b"TVPSTOR\x01"
//! schema     u32       BLOB_SCHEMA
//! key_len    u32       length of the key section
//! body_len   u32       length of the payload section
//! key        key_len   length-prefixed ExpKey fields (workload,
//!                      insts, chaos flag+seed, config fingerprint)
//! payload    body_len  SimStats as a counted list of u64 counters
//! checksum   u64       FNV-1a over every preceding byte
//! ```
//!
//! The payload codec destructures [`SimStats`] and every sub-struct
//! without `..` rest patterns, so adding a counter to any stats struct
//! is a compile error here until the codec (and [`BLOB_SCHEMA`]) are
//! updated — the schema version can never silently lie about the
//! payload shape.

use tvp_core::stats::{
    ActivityStats, ChaosStats, DegradeStats, FlushStats, RenameStats, SimStats, VpStats,
};

use crate::jobs::{ExpKey, SimPoint};

/// Magic prefix of every blob file.
pub const BLOB_MAGIC: [u8; 8] = *b"TVPSTOR\x01";

/// Blob wire-format version. Bump whenever the key or payload encoding
/// changes shape; decoders reject every other version.
pub const BLOB_SCHEMA: u32 = 1;

/// Size of the fixed header (magic + schema + two section lengths).
pub const HEADER_LEN: usize = 8 + 4 + 4 + 4;

/// Size of the trailing checksum.
pub const CHECKSUM_LEN: usize = 8;

/// Why a blob failed to decode. Every variant is a detectable
/// corruption (or version skew) class; none of them is a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlobError {
    /// Shorter than the fixed header + checksum — a torn write.
    TooShort {
        /// Observed file length.
        len: usize,
    },
    /// The magic prefix is wrong — not a blob (or a torn header).
    BadMagic,
    /// Written by a different wire-format version.
    SchemaMismatch {
        /// Schema version found in the header.
        found: u32,
    },
    /// Header section lengths disagree with the file length — a torn
    /// write that preserved the header.
    LengthMismatch {
        /// Total length the header declares.
        declared: usize,
        /// Actual file length.
        actual: usize,
    },
    /// The trailing FNV-1a checksum does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the blob.
        stored: u64,
        /// Checksum recomputed over the content.
        computed: u64,
    },
    /// The key section does not parse (corruption the checksum cannot
    /// see is impossible; this guards decoder/encoder skew).
    MalformedKey,
    /// The payload section does not parse (wrong counter count).
    MalformedPayload,
}

impl std::fmt::Display for BlobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlobError::TooShort { len } => {
                write!(f, "torn blob: {len} bytes is shorter than header + checksum")
            }
            BlobError::BadMagic => write!(f, "bad magic: not a TVP result blob"),
            BlobError::SchemaMismatch { found } => {
                write!(f, "schema mismatch: blob schema {found}, decoder expects {BLOB_SCHEMA}")
            }
            BlobError::LengthMismatch { declared, actual } => {
                write!(f, "torn blob: header declares {declared} bytes, file has {actual}")
            }
            BlobError::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}")
            }
            BlobError::MalformedKey => write!(f, "malformed key section"),
            BlobError::MalformedPayload => write!(f, "malformed payload section"),
        }
    }
}

/// Short machine-friendly tag for quarantine file names and reports.
impl BlobError {
    /// One-word classification of the error.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            BlobError::TooShort { .. } | BlobError::LengthMismatch { .. } => "torn",
            BlobError::BadMagic => "magic",
            BlobError::SchemaMismatch { .. } => "schema",
            BlobError::ChecksumMismatch { .. } => "checksum",
            BlobError::MalformedKey => "key",
            BlobError::MalformedPayload => "payload",
        }
    }
}

/// The key as decoded back out of a blob. Owned strings (a blob read
/// from disk cannot reconstruct the `&'static str` workload name), but
/// field-for-field comparable with the [`ExpKey`] that was asked for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlobKey {
    /// Workload name.
    pub workload: String,
    /// Instruction budget.
    pub insts: u64,
    /// Chaos campaign seed, when armed.
    pub chaos_seed: Option<u64>,
    /// `Debug` rendering of the full `CoreConfig`.
    pub config_fp: String,
}

impl BlobKey {
    /// True when this stored key is exactly the requested key — the
    /// re-verification that makes a content-address (digest) collision
    /// harmless.
    #[must_use]
    pub fn matches(&self, key: &ExpKey) -> bool {
        self.workload == key.workload
            && self.insts == key.insts
            && self.chaos_seed == key.chaos_seed
            && self.config_fp == key.config_fp
    }

    /// The same FNV-1a digest [`ExpKey::digest`] computes, so fsck can
    /// check a blob file sits under its own content address.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(self.workload.as_bytes());
        eat(&self.insts.to_le_bytes());
        eat(&self.chaos_seed.unwrap_or(0).to_le_bytes());
        eat(self.config_fp.as_bytes());
        h
    }
}

/// FNV-1a over a byte slice (the same primitive the key digest and the
/// golden-stats fingerprints use).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub(crate) fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, u32::try_from(s.len()).expect("key field fits u32"));
    out.extend_from_slice(s.as_bytes());
}

/// Byte-cursor over a section; every read is bounds-checked.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    pub(crate) fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    pub(crate) fn exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Bytes not yet consumed — the bound every wire-declared element
    /// count must respect *before* it sizes an allocation.
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// Encodes the key section.
pub(crate) fn encode_key(key: &ExpKey) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + key.config_fp.len());
    push_str(&mut out, key.workload);
    push_u64(&mut out, key.insts);
    out.push(u8::from(key.chaos_seed.is_some()));
    push_u64(&mut out, key.chaos_seed.unwrap_or(0));
    push_str(&mut out, &key.config_fp);
    out
}

pub(crate) fn decode_key(bytes: &[u8]) -> Option<BlobKey> {
    let mut c = Cursor::new(bytes);
    let workload = c.str()?;
    let insts = c.u64()?;
    let flag = *c.take(1)?.first()?;
    if flag > 1 {
        return None;
    }
    let seed = c.u64()?;
    let config_fp = c.str()?;
    if !c.exhausted() {
        return None;
    }
    Some(BlobKey {
        workload,
        insts,
        chaos_seed: if flag == 1 { Some(seed) } else { None },
        config_fp,
    })
}

/// Flattens a [`SimStats`] into its counters, in wire order. The
/// exhaustive destructuring (no `..`) is the completeness guarantee:
/// a new stats field fails to compile here until it is added to the
/// wire order and [`BLOB_SCHEMA`] is bumped.
pub(crate) fn stats_to_counters(s: &SimStats) -> Vec<u64> {
    let SimStats {
        cycles,
        insts_retired,
        uops_retired,
        rename,
        vp,
        activity,
        flush,
        chaos,
        degrade,
        overflow_events,
    } = *s;
    let RenameStats {
        arch_insts,
        uops,
        zero_idiom,
        one_idiom,
        move_elim,
        non_me_move,
        nine_bit_idiom,
        spsr,
        spsr_squashed,
    } = rename;
    let VpStats { eligible, used, correct_used, incorrect_used, silenced_lookups } = vp;
    let ActivityStats { int_prf_reads, int_prf_writes, iq_dispatched, iq_issued } = activity;
    let FlushStats {
        branch_mispredicts,
        vp_flushes,
        mem_order_flushes,
        squashed_uops,
        vp_replays,
        replayed_uops,
    } = flush;
    let ChaosStats {
        vp_forced_mispredicts,
        vtage_corruptions,
        tage_corruptions,
        btb_corruptions,
        storeset_corruptions,
        branch_inversions,
        cache_delays,
        prefetch_drop_cycles,
    } = chaos;
    let DegradeStats {
        throttle_engagements,
        throttled_cycles,
        killswitch_suppressed,
        throttle_suppressed,
    } = degrade;
    vec![
        cycles,
        insts_retired,
        uops_retired,
        arch_insts,
        uops,
        zero_idiom,
        one_idiom,
        move_elim,
        non_me_move,
        nine_bit_idiom,
        spsr,
        spsr_squashed,
        eligible,
        used,
        correct_used,
        incorrect_used,
        silenced_lookups,
        int_prf_reads,
        int_prf_writes,
        iq_dispatched,
        iq_issued,
        branch_mispredicts,
        vp_flushes,
        mem_order_flushes,
        squashed_uops,
        vp_replays,
        replayed_uops,
        vp_forced_mispredicts,
        vtage_corruptions,
        tage_corruptions,
        btb_corruptions,
        storeset_corruptions,
        branch_inversions,
        cache_delays,
        prefetch_drop_cycles,
        throttle_engagements,
        throttled_cycles,
        killswitch_suppressed,
        throttle_suppressed,
        overflow_events,
    ]
}

/// Rebuilds a [`SimStats`] from wire-order counters (inverse of
/// [`stats_to_counters`]).
pub(crate) fn counters_to_stats(v: &[u64]) -> Option<SimStats> {
    let mut it = v.iter().copied();
    let mut next = || it.next();
    let stats = SimStats {
        cycles: next()?,
        insts_retired: next()?,
        uops_retired: next()?,
        rename: RenameStats {
            arch_insts: next()?,
            uops: next()?,
            zero_idiom: next()?,
            one_idiom: next()?,
            move_elim: next()?,
            non_me_move: next()?,
            nine_bit_idiom: next()?,
            spsr: next()?,
            spsr_squashed: next()?,
        },
        vp: VpStats {
            eligible: next()?,
            used: next()?,
            correct_used: next()?,
            incorrect_used: next()?,
            silenced_lookups: next()?,
        },
        activity: ActivityStats {
            int_prf_reads: next()?,
            int_prf_writes: next()?,
            iq_dispatched: next()?,
            iq_issued: next()?,
        },
        flush: FlushStats {
            branch_mispredicts: next()?,
            vp_flushes: next()?,
            mem_order_flushes: next()?,
            squashed_uops: next()?,
            vp_replays: next()?,
            replayed_uops: next()?,
        },
        chaos: ChaosStats {
            vp_forced_mispredicts: next()?,
            vtage_corruptions: next()?,
            tage_corruptions: next()?,
            btb_corruptions: next()?,
            storeset_corruptions: next()?,
            branch_inversions: next()?,
            cache_delays: next()?,
            prefetch_drop_cycles: next()?,
        },
        degrade: DegradeStats {
            throttle_engagements: next()?,
            throttled_cycles: next()?,
            killswitch_suppressed: next()?,
            throttle_suppressed: next()?,
        },
        overflow_events: next()?,
    };
    if it.next().is_some() {
        return None;
    }
    Some(stats)
}

/// Encodes one (key, point) pair as a complete blob, checksum
/// included. Pure: identical inputs yield identical bytes, which is
/// what makes cold and warm runs byte-comparable.
#[must_use]
pub fn encode(key: &ExpKey, point: &SimPoint) -> Vec<u8> {
    let key_bytes = encode_key(key);
    let counters = stats_to_counters(&point.stats);
    let mut payload = Vec::with_capacity(4 + counters.len() * 8);
    push_u32(&mut payload, u32::try_from(counters.len()).expect("counter count fits u32"));
    for c in &counters {
        push_u64(&mut payload, *c);
    }

    let mut out = Vec::with_capacity(HEADER_LEN + key_bytes.len() + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&BLOB_MAGIC);
    push_u32(&mut out, BLOB_SCHEMA);
    push_u32(&mut out, u32::try_from(key_bytes.len()).expect("key fits u32"));
    push_u32(&mut out, u32::try_from(payload.len()).expect("payload fits u32"));
    out.extend_from_slice(&key_bytes);
    out.extend_from_slice(&payload);
    let checksum = fnv1a(&out);
    push_u64(&mut out, checksum);
    out
}

/// Decodes and fully verifies a blob: magic, schema, section lengths,
/// checksum, then both sections. Returns the echoed key and the point.
pub fn decode(bytes: &[u8]) -> Result<(BlobKey, SimPoint), BlobError> {
    // Every framed read below goes through the checked [`Cursor`] (or
    // `get`-based slicing): no length field from the wire is ever used
    // to index before it has been bounds-checked, so a corrupt header
    // returns a [`BlobError`] — it can never panic.
    let mut h = Cursor::new(bytes);
    let too_short = BlobError::TooShort { len: bytes.len() };
    let magic = h.take(BLOB_MAGIC.len()).ok_or(too_short.clone())?;
    if magic != BLOB_MAGIC {
        return Err(BlobError::BadMagic);
    }
    let schema = h.u32().ok_or(too_short.clone())?;
    if schema != BLOB_SCHEMA {
        return Err(BlobError::SchemaMismatch { found: schema });
    }
    let key_len = h.u32().ok_or(too_short.clone())? as usize;
    let body_len = h.u32().ok_or(too_short)? as usize;
    let declared = HEADER_LEN
        .checked_add(key_len)
        .and_then(|n| n.checked_add(body_len))
        .and_then(|n| n.checked_add(CHECKSUM_LEN))
        .ok_or(BlobError::LengthMismatch { declared: usize::MAX, actual: bytes.len() })?;
    if declared != bytes.len() {
        return Err(BlobError::LengthMismatch { declared, actual: bytes.len() });
    }
    let content = bytes.get(..bytes.len() - CHECKSUM_LEN).ok_or(BlobError::MalformedPayload)?;
    let stored = bytes
        .get(bytes.len() - CHECKSUM_LEN..)
        .and_then(|b| <[u8; 8]>::try_from(b).ok())
        .map(u64::from_le_bytes)
        .ok_or(BlobError::MalformedPayload)?;
    let computed = fnv1a(content);
    if stored != computed {
        return Err(BlobError::ChecksumMismatch { stored, computed });
    }

    let mut sections = Cursor::new(&bytes[HEADER_LEN..bytes.len() - CHECKSUM_LEN]);
    let key_bytes = sections.take(key_len).ok_or(BlobError::MalformedKey)?;
    let key = decode_key(key_bytes).ok_or(BlobError::MalformedKey)?;
    let payload = sections.take(body_len).ok_or(BlobError::MalformedPayload)?;
    let mut c = Cursor::new(payload);
    let count = c.u32().ok_or(BlobError::MalformedPayload)? as usize;
    // Bound the allocation by the bytes that actually exist: a corrupt
    // count field (up to u32::MAX) fed straight into `with_capacity`
    // would attempt a multi-gigabyte allocation and *abort* before the
    // first checked read ever ran.
    if count > payload.len().saturating_sub(4) / 8 {
        return Err(BlobError::MalformedPayload);
    }
    let mut counters = Vec::with_capacity(count);
    for _ in 0..count {
        counters.push(c.u64().ok_or(BlobError::MalformedPayload)?);
    }
    if !c.exhausted() {
        return Err(BlobError::MalformedPayload);
    }
    let stats = counters_to_stats(&counters).ok_or(BlobError::MalformedPayload)?;
    Ok((key, SimPoint { stats }))
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;
    use tvp_core::config::{CoreConfig, VpMode};

    fn sample() -> (ExpKey, SimPoint) {
        let cfg = CoreConfig::with_vp(VpMode::Tvp);
        let key = ExpKey::new("string_match", 20_000, &cfg);
        let mut stats = SimStats {
            cycles: 12_345,
            insts_retired: 20_000,
            uops_retired: 21_000,
            overflow_events: 1,
            ..Default::default()
        };
        stats.rename.spsr = 77;
        stats.vp.correct_used = 42;
        stats.flush.vp_flushes = 3;
        stats.degrade.throttled_cycles = 9;
        (key, SimPoint { stats })
    }

    #[test]
    fn roundtrip_preserves_key_and_every_counter() {
        let (key, point) = sample();
        let bytes = encode(&key, &point);
        let (got_key, got_point) = decode(&bytes).expect("clean blob decodes");
        assert!(got_key.matches(&key));
        assert_eq!(got_key.digest(), key.digest(), "BlobKey digest mirrors ExpKey digest");
        assert_eq!(got_point, point);
    }

    #[test]
    fn chaos_seed_survives_the_roundtrip() {
        let cfg = CoreConfig::table2().with_chaos(tvp_chaos::ChaosConfig::campaign(0xBEEF));
        let key = ExpKey::new("k", 10, &cfg);
        let bytes = encode(&key, &SimPoint { stats: SimStats::default() });
        let (got, _) = decode(&bytes).expect("decodes");
        assert_eq!(got.chaos_seed, Some(0xBEEF));
        assert!(got.matches(&key));
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let (key, point) = sample();
        let bytes = encode(&key, &point);
        // Every possible torn-write prefix fails with a structured
        // error — never a panic, never a wrong point.
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).expect_err("truncated blob must not decode");
            assert!(
                matches!(
                    err,
                    BlobError::TooShort { .. }
                        | BlobError::BadMagic
                        | BlobError::LengthMismatch { .. }
                        | BlobError::SchemaMismatch { .. }
                ),
                "cut at {cut}: unexpected error class {err:?}"
            );
        }
    }

    #[test]
    fn any_flipped_bit_in_the_content_fails_the_checksum() {
        let (key, point) = sample();
        let bytes = encode(&key, &point);
        for pos in [20, bytes.len() / 2, bytes.len() - CHECKSUM_LEN - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            let err = decode(&bad).expect_err("bit flip must be caught");
            assert!(
                matches!(
                    err,
                    BlobError::ChecksumMismatch { .. }
                        | BlobError::LengthMismatch { .. }
                        | BlobError::MalformedKey
                ),
                "flip at {pos}: unexpected error class {err:?}"
            );
        }
    }

    #[test]
    fn schema_skew_is_its_own_error() {
        let (key, point) = sample();
        let mut bytes = encode(&key, &point);
        bytes[8..12].copy_from_slice(&(BLOB_SCHEMA + 1).to_le_bytes());
        // Re-seal the checksum so *only* the schema is wrong.
        let len = bytes.len();
        let fixed = fnv1a(&bytes[..len - CHECKSUM_LEN]);
        bytes[len - CHECKSUM_LEN..].copy_from_slice(&fixed.to_le_bytes());
        assert_eq!(decode(&bytes), Err(BlobError::SchemaMismatch { found: BLOB_SCHEMA + 1 }));
    }

    #[test]
    fn encoding_is_deterministic() {
        let (key, point) = sample();
        assert_eq!(encode(&key, &point), encode(&key, &point));
    }

    /// Re-seals the trailing checksum so a crafted corruption reaches
    /// the section parsers instead of dying at the checksum gate.
    fn reseal(bytes: &mut [u8]) {
        let len = bytes.len();
        let fixed = fnv1a(&bytes[..len - CHECKSUM_LEN]);
        bytes[len - CHECKSUM_LEN..].copy_from_slice(&fixed.to_le_bytes());
    }

    #[test]
    fn corrupt_counter_count_is_an_error_not_an_abort() {
        // Regression: the payload's counter count used to size a
        // `Vec::with_capacity` before any validation — a crafted (or
        // unluckily corrupted) count of u32::MAX requested a 32 GiB
        // allocation, aborting the process instead of returning `Err`.
        let (key, point) = sample();
        let mut bytes = encode(&key, &point);
        let key_len = u32::from_le_bytes(bytes[12..16].try_into().expect("4-byte slice")) as usize;
        let count_at = HEADER_LEN + key_len;
        bytes[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        reseal(&mut bytes);
        assert_eq!(decode(&bytes), Err(BlobError::MalformedPayload));
    }

    #[test]
    fn corrupt_key_string_length_is_an_error_not_a_panic() {
        // The first field inside the key section is the workload-name
        // length; blow it up past every bound and re-seal.
        let (key, point) = sample();
        let mut bytes = encode(&key, &point);
        bytes[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        reseal(&mut bytes);
        assert_eq!(decode(&bytes), Err(BlobError::MalformedKey));
    }

    #[test]
    fn corrupt_section_lengths_never_panic() {
        // Sweep hostile values through both header length fields (with
        // and without a matching re-seal): every combination must come
        // back as a structured error or a clean decode, never a panic
        // or abort.
        let (key, point) = sample();
        let base = encode(&key, &point);
        let hostile =
            [0u32, 1, 7, 8, 0x7FFF_FFFF, 0x8000_0000, u32::MAX, u32::MAX - 7, base.len() as u32];
        for &key_len in &hostile {
            for &body_len in &hostile {
                let mut bytes = base.clone();
                bytes[12..16].copy_from_slice(&key_len.to_le_bytes());
                bytes[16..20].copy_from_slice(&body_len.to_le_bytes());
                let _ = decode(&bytes);
                reseal(&mut bytes);
                let _ = decode(&bytes);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Random byte-flips over a valid blob never panic: decode
        /// returns `Err` (or, for flips the format cannot distinguish,
        /// a clean decode of identical content) — it never aborts.
        #[test]
        fn random_byte_flips_never_panic(
            flips in proptest::collection::vec((any::<u16>(), 1u8..=255), 1..8)
        ) {
            let (key, point) = sample();
            let mut bytes = encode(&key, &point);
            for (pos, mask) in &flips {
                let at = *pos as usize % bytes.len();
                bytes[at] ^= mask;
            }
            match decode(&bytes) {
                Ok((got_key, got_point)) => {
                    // Only reachable when the flips cancelled out.
                    prop_assert!(got_key.matches(&key));
                    prop_assert_eq!(got_point, point.clone());
                }
                Err(_) => {}
            }
        }

        /// Random truncation + tail garbage never panics either.
        #[test]
        fn random_truncation_never_panics(cut in any::<u16>(), garbage in any::<u8>()) {
            let (key, point) = sample();
            let mut bytes = encode(&key, &point);
            let at = cut as usize % bytes.len();
            bytes.truncate(at);
            bytes.push(garbage);
            prop_assert!(decode(&bytes).is_err());
        }
    }

    #[test]
    fn error_tags_cover_every_class() {
        assert_eq!(BlobError::TooShort { len: 1 }.tag(), "torn");
        assert_eq!(BlobError::BadMagic.tag(), "magic");
        assert_eq!(BlobError::SchemaMismatch { found: 9 }.tag(), "schema");
        assert_eq!(BlobError::ChecksumMismatch { stored: 1, computed: 2 }.tag(), "checksum");
        assert_eq!(BlobError::MalformedKey.tag(), "key");
        assert_eq!(BlobError::MalformedPayload.tag(), "payload");
    }
}
