//! Checkpoint wire format: one mid-trace sampled-campaign state on
//! disk.
//!
//! A checkpoint is the durable form of a *partially completed* sampled
//! run: the functional machine's complete architectural state
//! (registers, flags, PC, nonzero memory pages) plus every finished
//! interval's measured statistics. A campaign killed between intervals
//! resumes from the newest checkpoint without re-executing the prefix,
//! and the resumed run is byte-identical to an uninterrupted one (the
//! interval fingerprints prove it).
//!
//! Trust model matches [`super::blob`]: nothing on the way back in is
//! believed. Fixed header with magic + schema + section lengths, the
//! full [`SampleKey`] echoed inside (experiment key *and* sampling
//! spec — a checkpoint can never resume the wrong run), and a trailing
//! FNV-1a checksum over everything before it. Any failure decodes to a
//! [`BlobError`] class; the store quarantines and the campaign starts
//! cold.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      8 bytes   b"TVPCKPT\x01"
//! schema     u32       CKPT_SCHEMA
//! key_len    u32       length of the key section
//! body_len   u32       length of the body section
//! key        key_len   blob key encoding of the ExpKey, then the
//!                      sampling spec (period, warmup, measured u64s)
//! body       body_len  stream position, run totals, interval list,
//!                      architectural snapshot (see below)
//! checksum   u64       FNV-1a over every preceding byte
//! ```

use tvp_workloads::machine::{ArchSnapshot, SparseMem, PAGE_BYTES};

use crate::sampling::{IntervalResult, SampleKey, SampleSpec};
use crate::store::blob::{self, BlobError, Cursor};

/// Magic prefix of every checkpoint file.
pub const CKPT_MAGIC: [u8; 8] = *b"TVPCKPT\x01";

/// Checkpoint wire-format version. Bump whenever any section changes
/// shape; decoders reject every other version (the campaign then
/// simply starts cold — checkpoints are a cache, not a source of
/// truth).
pub const CKPT_SCHEMA: u32 = 1;

/// Size of the fixed header (magic + schema + two section lengths).
pub const HEADER_LEN: usize = 8 + 4 + 4 + 4;

/// Size of the trailing checksum.
pub const CHECKSUM_LEN: usize = 8;

/// The resumable state of a sampled campaign after its most recent
/// finished interval.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Global µop sequence position of the machine.
    pub seq: u64,
    /// Complete architectural state at that position.
    pub snapshot: ArchSnapshot,
    /// Every interval measured so far, in stream order.
    pub intervals: Vec<IntervalResult>,
    /// Architectural instructions consumed from the stream so far.
    pub total_insts: u64,
    /// Instructions functionally fast-forwarded so far.
    pub skipped_insts: u64,
    /// Instructions simulated as unmeasured warmup so far.
    pub warmup_insts: u64,
    /// Instructions simulated and measured so far.
    pub measured_insts: u64,
}

/// The key as decoded back out of a checkpoint: the blob key plus the
/// sampling spec, field-for-field comparable with the requested
/// [`SampleKey`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CkptKey {
    /// The underlying experiment key (owned form).
    pub exp: blob::BlobKey,
    /// The sampling spec.
    pub spec: SampleSpec,
}

impl CkptKey {
    /// True when this stored key is exactly the requested key.
    #[must_use]
    pub fn matches(&self, key: &SampleKey) -> bool {
        self.exp.matches(&key.exp) && self.spec == key.spec
    }
}

fn encode_key(key: &SampleKey) -> Vec<u8> {
    let mut out = blob::encode_key(&key.exp);
    blob::push_u64(&mut out, key.spec.period);
    blob::push_u64(&mut out, key.spec.warmup);
    blob::push_u64(&mut out, key.spec.measured);
    out
}

fn decode_key(bytes: &[u8]) -> Option<CkptKey> {
    // The ExpKey section is self-delimiting only via its own field
    // lengths, so re-parse it in place and continue with the spec.
    let mut c = Cursor::new(bytes);
    let workload = c.str()?;
    let insts = c.u64()?;
    let flag = *c.take(1)?.first()?;
    if flag > 1 {
        return None;
    }
    let seed = c.u64()?;
    let config_fp = c.str()?;
    let period = c.u64()?;
    let warmup = c.u64()?;
    let measured = c.u64()?;
    if !c.exhausted() {
        return None;
    }
    Some(CkptKey {
        exp: blob::BlobKey {
            workload,
            insts,
            chaos_seed: if flag == 1 { Some(seed) } else { None },
            config_fp,
        },
        spec: SampleSpec::new(period, warmup, measured).ok()?,
    })
}

fn encode_interval(iv: &IntervalResult, out: &mut Vec<u8>) {
    blob::push_u32(out, iv.index);
    blob::push_u64(out, iv.start_seq);
    blob::push_u64(out, iv.represented_insts);
    blob::push_u64(out, iv.measured_insts);
    blob::push_u64(out, iv.measured_uops);
    blob::push_u64(out, iv.fingerprint);
    let counters = blob::stats_to_counters(&iv.stats);
    blob::push_u32(out, u32::try_from(counters.len()).expect("counter count fits u32"));
    for c in counters {
        blob::push_u64(out, c);
    }
}

fn decode_interval(c: &mut Cursor<'_>) -> Option<IntervalResult> {
    let index = c.u32()?;
    let start_seq = c.u64()?;
    let represented_insts = c.u64()?;
    let measured_insts = c.u64()?;
    let measured_uops = c.u64()?;
    let fingerprint = c.u64()?;
    let count = c.u32()? as usize;
    // Bound by the bytes that remain: a corrupt count must never size
    // the allocation (see the matching guard in `blob::decode`).
    if count > c.remaining() / 8 {
        return None;
    }
    let mut counters = Vec::with_capacity(count);
    for _ in 0..count {
        counters.push(c.u64()?);
    }
    Some(IntervalResult {
        index,
        start_seq,
        represented_insts,
        measured_insts,
        measured_uops,
        stats: blob::counters_to_stats(&counters)?,
        fingerprint,
    })
}

fn encode_snapshot(snap: &ArchSnapshot, out: &mut Vec<u8>) {
    out.push(snap.flags.pack());
    blob::push_u64(out, snap.pc);
    blob::push_u32(out, u32::try_from(snap.int.len()).expect("regfile fits u32"));
    for &r in &snap.int {
        blob::push_u64(out, r);
    }
    blob::push_u32(out, u32::try_from(snap.fp.len()).expect("regfile fits u32"));
    for &r in &snap.fp {
        blob::push_u64(out, r);
    }
    let pages: Vec<(u64, &[u8])> = snap.mem.nonzero_pages().collect();
    blob::push_u32(out, u32::try_from(pages.len()).expect("page count fits u32"));
    for (idx, bytes) in pages {
        blob::push_u64(out, idx);
        out.extend_from_slice(bytes);
    }
}

fn decode_snapshot(c: &mut Cursor<'_>) -> Option<ArchSnapshot> {
    let flags = tvp_isa::flags::Nzcv::unpack(*c.take(1)?.first()?);
    let pc = c.u64()?;
    let mut snap = ArchSnapshot {
        int: [0; tvp_isa::reg::NUM_INT_REGS as usize],
        fp: [0; tvp_isa::reg::NUM_FP_REGS as usize],
        flags,
        pc,
        mem: SparseMem::default(),
    };
    let n_int = c.u32()? as usize;
    if n_int != snap.int.len() {
        return None;
    }
    for r in &mut snap.int {
        *r = c.u64()?;
    }
    let n_fp = c.u32()? as usize;
    if n_fp != snap.fp.len() {
        return None;
    }
    for r in &mut snap.fp {
        *r = c.u64()?;
    }
    let n_pages = c.u32()? as usize;
    let mut prev_page: Option<u64> = None;
    for _ in 0..n_pages {
        let idx = c.u64()?;
        // Page indices are strictly increasing on the wire (BTreeMap
        // iteration order); enforcing it rejects hand-crafted dupes.
        if prev_page.is_some_and(|p| idx <= p) {
            return None;
        }
        prev_page = Some(idx);
        let bytes = c.take(PAGE_BYTES)?;
        snap.mem.install_page(idx, bytes);
    }
    Some(snap)
}

/// Encodes one (key, checkpoint) pair as a complete self-verifying
/// file, checksum included. Pure: identical inputs yield identical
/// bytes.
#[must_use]
pub fn encode(key: &SampleKey, ckpt: &Checkpoint) -> Vec<u8> {
    let key_bytes = encode_key(key);
    let mut body = Vec::with_capacity(256);
    blob::push_u64(&mut body, ckpt.seq);
    blob::push_u64(&mut body, ckpt.total_insts);
    blob::push_u64(&mut body, ckpt.skipped_insts);
    blob::push_u64(&mut body, ckpt.warmup_insts);
    blob::push_u64(&mut body, ckpt.measured_insts);
    blob::push_u32(&mut body, u32::try_from(ckpt.intervals.len()).expect("intervals fit u32"));
    for iv in &ckpt.intervals {
        encode_interval(iv, &mut body);
    }
    encode_snapshot(&ckpt.snapshot, &mut body);

    let mut out = Vec::with_capacity(HEADER_LEN + key_bytes.len() + body.len() + CHECKSUM_LEN);
    out.extend_from_slice(&CKPT_MAGIC);
    blob::push_u32(&mut out, CKPT_SCHEMA);
    blob::push_u32(&mut out, u32::try_from(key_bytes.len()).expect("key fits u32"));
    blob::push_u32(&mut out, u32::try_from(body.len()).expect("body fits u32"));
    out.extend_from_slice(&key_bytes);
    out.extend_from_slice(&body);
    let checksum = blob::fnv1a(&out);
    blob::push_u64(&mut out, checksum);
    out
}

/// Decodes and fully verifies a checkpoint: magic, schema, section
/// lengths, checksum, then both sections. Returns the echoed key and
/// the state.
pub fn decode(bytes: &[u8]) -> Result<(CkptKey, Checkpoint), BlobError> {
    // All framed reads are checked (see `blob::decode`): no length or
    // count field from the wire indexes or sizes anything before it is
    // validated against the bytes that actually exist.
    let mut h = Cursor::new(bytes);
    let too_short = BlobError::TooShort { len: bytes.len() };
    let magic = h.take(CKPT_MAGIC.len()).ok_or(too_short.clone())?;
    if magic != CKPT_MAGIC {
        return Err(BlobError::BadMagic);
    }
    let schema = h.u32().ok_or(too_short.clone())?;
    if schema != CKPT_SCHEMA {
        return Err(BlobError::SchemaMismatch { found: schema });
    }
    let key_len = h.u32().ok_or(too_short.clone())? as usize;
    let body_len = h.u32().ok_or(too_short)? as usize;
    let declared = HEADER_LEN
        .checked_add(key_len)
        .and_then(|n| n.checked_add(body_len))
        .and_then(|n| n.checked_add(CHECKSUM_LEN))
        .ok_or(BlobError::LengthMismatch { declared: usize::MAX, actual: bytes.len() })?;
    if declared != bytes.len() {
        return Err(BlobError::LengthMismatch { declared, actual: bytes.len() });
    }
    let content = bytes.get(..bytes.len() - CHECKSUM_LEN).ok_or(BlobError::MalformedPayload)?;
    let stored = bytes
        .get(bytes.len() - CHECKSUM_LEN..)
        .and_then(|b| <[u8; 8]>::try_from(b).ok())
        .map(u64::from_le_bytes)
        .ok_or(BlobError::MalformedPayload)?;
    let computed = blob::fnv1a(content);
    if stored != computed {
        return Err(BlobError::ChecksumMismatch { stored, computed });
    }

    let mut sections = Cursor::new(&bytes[HEADER_LEN..bytes.len() - CHECKSUM_LEN]);
    let key_bytes = sections.take(key_len).ok_or(BlobError::MalformedKey)?;
    let key = decode_key(key_bytes).ok_or(BlobError::MalformedKey)?;
    let body = sections.take(body_len).ok_or(BlobError::MalformedPayload)?;
    let mut c = Cursor::new(body);
    let parse = || -> Option<Checkpoint> {
        let seq = c.u64()?;
        let total_insts = c.u64()?;
        let skipped_insts = c.u64()?;
        let warmup_insts = c.u64()?;
        let measured_insts = c.u64()?;
        let n_intervals = c.u32()? as usize;
        // An encoded interval is at least 48 bytes (index, five u64
        // fields, counter count); bound the list allocation before
        // trusting the wire count.
        if n_intervals > c.remaining() / 48 {
            return None;
        }
        let mut intervals = Vec::with_capacity(n_intervals);
        for _ in 0..n_intervals {
            intervals.push(decode_interval(&mut c)?);
        }
        let snapshot = decode_snapshot(&mut c)?;
        if !c.exhausted() {
            return None;
        }
        Some(Checkpoint {
            seq,
            snapshot,
            intervals,
            total_insts,
            skipped_insts,
            warmup_insts,
            measured_insts,
        })
    }();
    let ckpt = parse.ok_or(BlobError::MalformedPayload)?;
    Ok((key, ckpt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_core::config::{CoreConfig, VpMode};
    use tvp_core::stats::SimStats;
    use tvp_workloads::suite::by_name;

    fn sample() -> (SampleKey, Checkpoint) {
        let cfg = CoreConfig::with_vp(VpMode::Tvp);
        let spec = SampleSpec::new(4_000, 500, 500).expect("valid spec");
        let key = SampleKey::new("pointer_chase", 20_000, &cfg, spec);
        let w = by_name("pointer_chase").expect("workload");
        let mut m = w.machine();
        m.fast_forward(4_000);
        let mut stats = SimStats { cycles: 777, insts_retired: 500, ..Default::default() };
        stats.rename.spsr = 13;
        let ckpt = Checkpoint {
            seq: m.seq(),
            snapshot: m.arch_snapshot(),
            intervals: vec![IntervalResult {
                index: 0,
                start_seq: 4_100,
                represented_insts: 4_000,
                measured_insts: 500,
                measured_uops: 520,
                stats,
                fingerprint: 0xDEAD_BEEF,
            }],
            total_insts: 4_000,
            skipped_insts: 3_000,
            warmup_insts: 500,
            measured_insts: 500,
        };
        (key, ckpt)
    }

    #[test]
    fn roundtrip_preserves_key_intervals_and_machine_state() {
        let (key, ckpt) = sample();
        let bytes = encode(&key, &ckpt);
        let (got_key, got) = decode(&bytes).expect("clean checkpoint decodes");
        assert!(got_key.matches(&key));
        assert_eq!(got.seq, ckpt.seq);
        assert_eq!(got.intervals, ckpt.intervals);
        assert_eq!(got.total_insts, ckpt.total_insts);
        assert_eq!(got.snapshot.digest(), ckpt.snapshot.digest(), "arch state byte-identical");
    }

    #[test]
    fn restored_machine_continues_the_identical_stream() {
        let (key, ckpt) = sample();
        let bytes = encode(&key, &ckpt);
        let (_, got) = decode(&bytes).expect("decodes");
        let w = by_name("pointer_chase").expect("workload");
        let mut resumed = w.machine_restored(&got.snapshot, got.seq);
        let mut reference = w.machine();
        reference.fast_forward(4_000);
        let a = resumed.run(1_000);
        let b = reference.run(1_000);
        assert_eq!(a.uops, b.uops, "resumed stream diverged from uninterrupted stream");
    }

    #[test]
    fn spec_mismatch_is_a_key_mismatch_not_a_hit() {
        let (key, ckpt) = sample();
        let bytes = encode(&key, &ckpt);
        let (got_key, _) = decode(&bytes).expect("decodes");
        let other = SampleKey {
            exp: key.exp.clone(),
            spec: SampleSpec::new(8_000, 500, 500).expect("valid"),
        };
        assert!(!got_key.matches(&other), "different spec must never resume this checkpoint");
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let (key, ckpt) = sample();
        let bytes = encode(&key, &ckpt);
        // Checkpoints are big (memory pages); step rather than testing
        // every prefix, but always include the boundary cuts.
        let mut cuts: Vec<usize> = (0..bytes.len()).step_by(97).collect();
        cuts.extend([0, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1]);
        for cut in cuts {
            let err = decode(&bytes[..cut]).expect_err("truncated checkpoint must not decode");
            assert!(
                matches!(
                    err,
                    BlobError::TooShort { .. }
                        | BlobError::BadMagic
                        | BlobError::LengthMismatch { .. }
                        | BlobError::SchemaMismatch { .. }
                ),
                "cut at {cut}: unexpected error class {err:?}"
            );
        }
    }

    #[test]
    fn any_flipped_bit_fails_the_checksum() {
        let (key, ckpt) = sample();
        let bytes = encode(&key, &ckpt);
        for pos in [20, bytes.len() / 3, bytes.len() / 2, bytes.len() - CHECKSUM_LEN - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(decode(&bad).is_err(), "flip at {pos} must be caught");
        }
    }

    #[test]
    fn schema_skew_is_its_own_error() {
        let (key, ckpt) = sample();
        let mut bytes = encode(&key, &ckpt);
        bytes[8..12].copy_from_slice(&(CKPT_SCHEMA + 1).to_le_bytes());
        let len = bytes.len();
        let fixed = blob::fnv1a(&bytes[..len - CHECKSUM_LEN]);
        bytes[len - CHECKSUM_LEN..].copy_from_slice(&fixed.to_le_bytes());
        match decode(&bytes) {
            Err(BlobError::SchemaMismatch { found }) => assert_eq!(found, CKPT_SCHEMA + 1),
            other => panic!("expected schema mismatch, got {other:?}"),
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let (key, ckpt) = sample();
        assert_eq!(encode(&key, &ckpt), encode(&key, &ckpt));
    }

    #[test]
    fn corrupt_interval_count_is_an_error_not_an_abort() {
        // Regression: like `blob::decode`, the interval count used to
        // size a `Vec::with_capacity` straight off the wire — a
        // corrupt u32::MAX meant an abort-sized allocation request
        // instead of `Err`.
        let (key, ckpt) = sample();
        let mut bytes = encode(&key, &ckpt);
        let key_len = u32::from_le_bytes(bytes[12..16].try_into().expect("4-byte slice")) as usize;
        let count_at = HEADER_LEN + key_len + 5 * 8;
        bytes[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let len = bytes.len();
        let fixed = blob::fnv1a(&bytes[..len - CHECKSUM_LEN]);
        bytes[len - CHECKSUM_LEN..].copy_from_slice(&fixed.to_le_bytes());
        assert_eq!(decode(&bytes).expect_err("must not decode"), BlobError::MalformedPayload);
    }

    #[test]
    fn corrupt_section_lengths_never_panic() {
        let (key, ckpt) = sample();
        let base = encode(&key, &ckpt);
        let hostile = [0u32, 1, 19, 20, 0x7FFF_FFFF, u32::MAX, u32::MAX - 19];
        for &key_len in &hostile {
            for &body_len in &hostile {
                let mut bytes = base.clone();
                bytes[12..16].copy_from_slice(&key_len.to_le_bytes());
                bytes[16..20].copy_from_slice(&body_len.to_le_bytes());
                let _ = decode(&bytes);
                let len = bytes.len();
                let fixed = blob::fnv1a(&bytes[..len - CHECKSUM_LEN]);
                bytes[len - CHECKSUM_LEN..].copy_from_slice(&fixed.to_le_bytes());
                let _ = decode(&bytes);
            }
        }
    }
}
