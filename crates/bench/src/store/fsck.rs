//! `fsck` for the result store: walk everything, trust nothing.
//!
//! [`fsck`] validates every blob (magic, schema, lengths, checksum,
//! and that the file sits under its own content address), replays the
//! journal, and cross-checks the two: a `done` record with no blob is
//! **missing**, a valid blob with no `done` record is an **orphan**
//! (harmless — it still warms the next run — but worth knowing about
//! after a kill), leases with no completion are the points a killed
//! campaign died holding, and everything already in `quarantine/` is
//! counted. `cargo xtask fsck-store <DIR>` is the CLI entry point; the
//! `fsck_store` bin wires [`FsckReport`] to exit codes and JSON.

use std::collections::BTreeSet;
use std::io;
use std::path::Path;

use super::blob;
use super::lease;
use super::manifest::{self, JournalState, JOURNAL_FILE};
use super::{BLOBS_DIR, QUARANTINE_DIR, TMP_DIR};

/// One invalid blob found by the walk.
#[derive(Clone, Debug)]
pub struct BadBlob {
    /// File name under `blobs/`.
    pub file: String,
    /// Why it failed verification.
    pub error: String,
}

/// Everything an fsck pass learned about a store.
#[derive(Clone, Debug, Default)]
pub struct FsckReport {
    /// Blobs that decoded and verified completely.
    pub blobs_ok: u64,
    /// Blobs that failed verification (checksum, schema, torn, or
    /// filed under the wrong content address).
    pub corrupt: Vec<BadBlob>,
    /// Valid blobs with no `done` journal record.
    pub orphans: Vec<String>,
    /// `done` journal records with no blob on disk.
    pub missing: Vec<String>,
    /// Files already set aside in `quarantine/`.
    pub quarantined: u64,
    /// Leases never completed or failed (killed mid-campaign).
    pub pending: u64,
    /// Terminal failures recorded in the journal.
    pub failed: u64,
    /// Stale scratch files in `tmp/` (a crashed publication).
    pub tmp_stale: u64,
    /// The journal ended in a torn (checksum-failing) line.
    pub journal_torn_tail: bool,
    /// Corrupt journal lines before the tail.
    pub journal_skipped: u64,
    /// The journal header was missing or wrong.
    pub journal_bad_header: bool,
    /// Lease files currently held, as `<digest:016x>=worker@epoch`
    /// (sorted; `?` for a torn lease file whose owner is unreadable).
    pub leases_held: Vec<String>,
    /// Distinct worker ids that ever held a lease (from the journal).
    pub workers: Vec<String>,
    /// Total reclaim events in the journal.
    pub reclaimed: u64,
    /// Fenced-off stale publishes recorded in the journal.
    pub stale_publishes: u64,
    /// Held lease files whose point the journal says completed —
    /// workers killed between `done` and release (reap cleans these).
    pub leases_on_done: u64,
}

impl FsckReport {
    /// True when the store is fully healthy: every blob verifies and
    /// every journal completion has its blob. Orphans, pending leases
    /// and a torn journal tail are *expected* after a kill and do not
    /// make a store unhealthy — resuming repairs them.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.corrupt.is_empty() && self.missing.is_empty() && self.journal_skipped == 0
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} blob(s) ok, {} corrupt, {} orphan(s), {} missing, {} quarantined, \
             {} pending lease(s), {} failed, torn_tail={}, {} held lease(s), \
             {} worker(s), {} reclaimed, {} stale publish(es)",
            self.blobs_ok,
            self.corrupt.len(),
            self.orphans.len(),
            self.missing.len(),
            self.quarantined,
            self.pending,
            self.failed,
            self.journal_torn_tail,
            self.leases_held.len(),
            self.workers.len(),
            self.reclaimed,
            self.stale_publishes,
        )
    }

    /// Machine-readable report (`fsck_store --json`), uploaded as the
    /// CI resume-smoke artifact.
    #[must_use]
    pub fn to_json(&self) -> String {
        let corrupt: Vec<String> = self
            .corrupt
            .iter()
            .map(|b| {
                format!(
                    "{{\"file\": \"{}\", \"error\": \"{}\"}}",
                    crate::json::escape(&b.file),
                    crate::json::escape(&b.error)
                )
            })
            .collect();
        let strings = |v: &[String]| -> Vec<String> {
            v.iter().map(|s| format!("\"{}\"", crate::json::escape(s))).collect()
        };
        crate::json::object(&[
            ("clean", self.clean().to_string()),
            ("blobs_ok", self.blobs_ok.to_string()),
            ("corrupt", crate::json::array(&corrupt)),
            ("orphans", crate::json::array(&strings(&self.orphans))),
            ("missing", crate::json::array(&strings(&self.missing))),
            ("quarantined", self.quarantined.to_string()),
            ("pending", self.pending.to_string()),
            ("failed", self.failed.to_string()),
            ("tmp_stale", self.tmp_stale.to_string()),
            ("journal_torn_tail", self.journal_torn_tail.to_string()),
            ("journal_skipped", self.journal_skipped.to_string()),
            ("journal_bad_header", self.journal_bad_header.to_string()),
            ("leases_held", crate::json::array(&strings(&self.leases_held))),
            ("workers", crate::json::array(&strings(&self.workers))),
            ("reclaimed", self.reclaimed.to_string()),
            ("stale_publishes", self.stale_publishes.to_string()),
            ("leases_on_done", self.leases_on_done.to_string()),
        ])
    }
}

/// Counts plain files directly under `dir` (0 if it doesn't exist).
fn count_files(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| entries.flatten().filter(|e| e.path().is_file()).count() as u64)
        .unwrap_or(0)
}

/// Walks and validates the store at `dir`. Errors only on an unusable
/// root (not a store at all); per-blob problems land in the report.
pub fn fsck(dir: &Path) -> io::Result<FsckReport> {
    if !dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} is not a directory", dir.display()),
        ));
    }
    let mut report = FsckReport::default();

    // Journal first: it defines what *should* exist.
    let journal: JournalState = match std::fs::read_to_string(dir.join(JOURNAL_FILE)) {
        Ok(text) => manifest::replay(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => JournalState::default(),
        Err(e) => return Err(e),
    };
    report.journal_torn_tail = journal.torn_tail;
    report.journal_skipped = journal.skipped_lines;
    report.journal_bad_header = journal.bad_header;
    report.pending = journal.pending.len() as u64;
    report.failed = journal.failed.len() as u64;
    report.workers = journal.workers.iter().cloned().collect();
    report.reclaimed = journal.reclaims.values().map(|&n| u64::from(n)).sum();
    report.stale_publishes = journal.stale_publishes;

    // Lease files: who holds what right now, cross-checked against
    // journal completions (a held lease on a completed point is the
    // done-then-died shape the reaper releases).
    for (digest, owner) in lease::list(dir)? {
        let label = match &owner {
            Some(o) => format!("{digest:016x}={}@{}", o.worker, o.epoch),
            None => format!("{digest:016x}=?"),
        };
        if journal.completed.contains(&digest) {
            report.leases_on_done += 1;
        }
        report.leases_held.push(label);
    }

    // Walk blobs/ in sorted order (deterministic reports).
    let mut on_disk: BTreeSet<u64> = BTreeSet::new();
    // Addresses whose file exists but failed verification — already
    // reported as corrupt, so they must not *also* count as missing.
    let mut corrupt_addrs: BTreeSet<u64> = BTreeSet::new();
    let blobs_dir = dir.join(BLOBS_DIR);
    let mut blob_files: Vec<std::path::PathBuf> = std::fs::read_dir(&blobs_dir)
        .map(|entries| entries.flatten().map(|e| e.path()).collect())
        .unwrap_or_default();
    blob_files.sort();
    for path in blob_files {
        let file = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        let fail = |error: String, report: &mut FsckReport| {
            report.corrupt.push(BadBlob { file: file.clone(), error });
        };
        let Some(stem) = file.strip_suffix(".blob") else {
            fail("not a .blob file".to_owned(), &mut report);
            continue;
        };
        let Ok(addr) = u64::from_str_radix(stem, 16) else {
            fail("file name is not a 16-hex content address".to_owned(), &mut report);
            continue;
        };
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                corrupt_addrs.insert(addr);
                fail(format!("unreadable: {e}"), &mut report);
                continue;
            }
        };
        match blob::decode(&bytes) {
            Ok((key, _point)) => {
                if key.digest() == addr {
                    report.blobs_ok += 1;
                    on_disk.insert(addr);
                } else {
                    corrupt_addrs.insert(addr);
                    fail(
                        format!(
                            "content address mismatch: file says {addr:016x}, \
                             key digests to {:016x}",
                            key.digest()
                        ),
                        &mut report,
                    );
                }
            }
            Err(e) => {
                corrupt_addrs.insert(addr);
                fail(e.to_string(), &mut report);
            }
        }
    }

    // Cross-check journal vs disk.
    for digest in on_disk.difference(&journal.completed) {
        report.orphans.push(format!("{digest:016x}.blob"));
    }
    for digest in journal.completed.difference(&on_disk) {
        if !corrupt_addrs.contains(digest) {
            report.missing.push(format!("{digest:016x}.blob"));
        }
    }

    report.quarantined = count_files(&dir.join(QUARANTINE_DIR));
    report.tmp_stale = count_files(&dir.join(TMP_DIR));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::{ExpKey, SimPoint};
    use crate::store::{ResultStore, StoreConfig};
    use std::path::PathBuf;
    use tvp_core::config::{CoreConfig, VpMode};
    use tvp_core::stats::SimStats;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tvp_fsck_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn populate(dir: &Path, n: u64) -> Vec<ExpKey> {
        let mut store = ResultStore::open(StoreConfig::at(dir)).expect("open");
        let keys: Vec<ExpKey> = (0..n)
            .map(|i| {
                let mut cfg = CoreConfig::with_vp(VpMode::Tvp);
                cfg.watchdog_cycles += i; // distinct fingerprints
                ExpKey::new("string_match", 5_000, &cfg)
            })
            .collect();
        store.lease_all(keys.iter()).expect("lease");
        for k in &keys {
            let stats = SimStats { cycles: 100 + k.digest() % 100, ..Default::default() };
            store.publish(k, &SimPoint { stats }).expect("publish");
        }
        keys
    }

    #[test]
    fn healthy_store_is_clean() {
        let dir = scratch("clean");
        let keys = populate(&dir, 3);
        let report = fsck(&dir).expect("fsck");
        assert!(report.clean(), "healthy store must fsck clean: {}", report.summary());
        assert_eq!(report.blobs_ok, keys.len() as u64);
        assert!(report.orphans.is_empty() && report.missing.is_empty());
        assert_eq!(report.pending, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_orphans_and_missing_are_all_reported() {
        let dir = scratch("dirty");
        let keys = populate(&dir, 3);
        let blob_of = |k: &ExpKey| dir.join(BLOBS_DIR).join(format!("{:016x}.blob", k.digest()));
        // Corrupt blob 0 (truncate = torn write).
        let bytes = std::fs::read(blob_of(&keys[0])).expect("read");
        std::fs::write(blob_of(&keys[0]), &bytes[..bytes.len() / 2]).expect("truncate");
        // Delete blob 1 → `done` with no blob = missing.
        std::fs::remove_file(blob_of(&keys[1])).expect("delete");
        // Drop an orphan blob (valid, but no journal record).
        let mut cfg = CoreConfig::with_vp(VpMode::Gvp);
        cfg.watchdog_cycles += 99;
        let orphan = ExpKey::new("mc_playout", 5_000, &cfg);
        let orphan_bytes =
            crate::store::blob::encode(&orphan, &SimPoint { stats: SimStats::default() });
        std::fs::write(
            dir.join(BLOBS_DIR).join(format!("{:016x}.blob", orphan.digest())),
            orphan_bytes,
        )
        .expect("write orphan");

        let report = fsck(&dir).expect("fsck");
        assert!(!report.clean());
        assert_eq!(report.corrupt.len(), 1, "truncated blob reported: {:?}", report.corrupt);
        assert!(report.corrupt[0].error.contains("torn"), "{:?}", report.corrupt);
        assert_eq!(report.missing, vec![format!("{:016x}.blob", keys[1].digest())]);
        assert_eq!(report.orphans, vec![format!("{:016x}.blob", orphan.digest())]);
        assert_eq!(report.blobs_ok, 2, "blob 2 and the orphan still verify");
        // The JSON form carries the same verdict and parses basic shape.
        let json = report.to_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("content") || json.contains("torn"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mislabeled_content_address_is_corruption() {
        let dir = scratch("mislabel");
        let keys = populate(&dir, 2);
        // File blob 0's bytes under blob 1's address.
        let a = dir.join(BLOBS_DIR).join(format!("{:016x}.blob", keys[0].digest()));
        let b = dir.join(BLOBS_DIR).join(format!("{:016x}.blob", keys[1].digest()));
        let bytes = std::fs::read(&a).expect("read");
        std::fs::write(&b, bytes).expect("overwrite under wrong address");
        let report = fsck(&dir).expect("fsck");
        assert_eq!(report.corrupt.len(), 1);
        assert!(report.corrupt[0].error.contains("content address mismatch"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distributed_state_is_reported() {
        let dir = scratch("dist");
        let keys = populate(&dir, 2);
        let mut store = ResultStore::open_shared(StoreConfig::at(&dir)).expect("shared open");
        // w0 leases a fresh (never-published) point, then the reaper
        // reclaims it; w1 re-leases at the bumped epoch and holds it.
        let mut cfg = CoreConfig::with_vp(VpMode::Gvp);
        cfg.watchdog_cycles += 7;
        let fresh = ExpKey::new("string_match", 5_000, &cfg);
        store.acquire_lease_batch(&[&fresh], "w0", |_| 1, 8).expect("w0 lease");
        store.reclaim_lease(fresh.digest(), 1).expect("reclaim");
        store.acquire_lease_batch(&[&fresh], "w1", |_| 2, 8).expect("w1 lease");

        let report = fsck(&dir).expect("fsck");
        assert!(report.clean(), "distributed churn is not corruption: {}", report.summary());
        assert_eq!(report.workers, vec!["w0".to_owned(), "w1".to_owned()]);
        assert_eq!(report.reclaimed, 1);
        assert_eq!(
            report.leases_held,
            vec![format!("{:016x}=w1@2", fresh.digest())],
            "w1's live lease is listed with its epoch"
        );
        assert_eq!(report.leases_on_done, 0);
        assert_eq!(report.pending, 1, "the reclaimed point is pending again");
        let json = report.to_json();
        assert!(json.contains("\"workers\"") && json.contains("\"w0\""), "{json}");
        assert!(json.contains("\"reclaimed\": 1"), "{json}");

        // A worker killed between `done` and release leaves its lease
        // on a completed point — reported, not corruption.
        lease::acquire(&dir, keys[0].digest(), "w0", 1).expect("lease done point");
        let report = fsck(&dir).expect("fsck again");
        assert_eq!(report.leases_on_done, 1);
        assert!(report.clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_root_is_an_error_not_a_panic() {
        let dir = scratch("nonexistent");
        assert!(fsck(&dir).is_err());
    }
}
