//! Campaign journal: an append-only, torn-tail-tolerant progress log.
//!
//! The blobs are the authoritative store — every load re-verifies the
//! blob itself — so the journal's job is *bookkeeping*: it records
//! which points a campaign leased (scheduled), completed, and failed,
//! which lets a resumed run and `fsck-store` distinguish "killed
//! mid-campaign" (leases with no completion) from "orphan blob"
//! (a blob no journal line accounts for).
//!
//! Format: one record per line, each sealed with its own FNV-1a
//! checksum so a crash mid-append (the classic torn tail) is detected
//! and dropped on replay instead of corrupting the whole log:
//!
//! ```text
//! tvp-journal 1
//! lease 00d8c8e57e06cbad string_match@20000#00d8c8e57e06cbad #5b3c…
//! wlease 00d8c8e57e06cbad w0 1 string_match@20000#00d8c8e57e06cbad #77aa…
//! reclaim 00d8c8e57e06cbad 1 #01fe…
//! stale 00d8c8e57e06cbad w0 1 #b00c…
//! done 00d8c8e57e06cbad #9a17…
//! fail 00d8c8e57e06cbad attempts 2 #c2f0…
//! ```
//!
//! The distributed fabric (DESIGN.md §16) adds three record kinds on
//! top of the original three: `wlease` is a lease owned by a named
//! worker process at a fencing epoch, `reclaim` records the reaper
//! retiring a dead worker's lease (the digest returns to pending at
//! the next epoch), and `stale` records a fenced-off late publish
//! (a worker that lost its lease tried to complete it anyway — the
//! publish was detected and deduped, never double-counted).
//!
//! A checksum-failing *last* line is a torn tail (normal after a
//! kill); a checksum-failing line *mid-file* is corruption and is
//! counted so fsck can report it. Replay never panics on any input.
//!
//! **Multi-process appends.** Every record is rendered into a single
//! buffer and appended with one `write` syscall on an `O_APPEND`
//! handle, so concurrent workers appending to the same journal never
//! interleave bytes *within* a record on a local filesystem; the
//! per-line checksum catches the pathological cases anyway. Shared
//! handles ([`Journal::open_shared`]) never truncate — torn-tail
//! repair is reserved for exclusive opens, when no other writer can
//! be racing the `set_len`.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use super::blob::fnv1a;

/// Journal file name inside the store directory.
pub const JOURNAL_FILE: &str = "journal.log";

/// Header line identifying the journal format version.
pub const JOURNAL_HEADER: &str = "tvp-journal 1";

/// Everything replaying a journal recovers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JournalState {
    /// Digests with a `done` record (a blob was published).
    pub completed: BTreeSet<u64>,
    /// Digests with a `fail` record, with the attempt count of the
    /// most recent failure.
    pub failed: BTreeMap<u64, u32>,
    /// Digests leased but never completed or failed — the points a
    /// killed campaign died holding.
    pub pending: BTreeSet<u64>,
    /// Reclaim events per digest: how many times the reaper retired a
    /// dead worker's lease on this point. A fresh lease's fencing
    /// epoch is `reclaims + 1`, so epochs are monotonic per point.
    pub reclaims: BTreeMap<u64, u32>,
    /// Fenced-off late publishes detected and deduped (`stale`
    /// records).
    pub stale_publishes: u64,
    /// Distinct worker ids that ever held a lease in this store.
    pub workers: BTreeSet<String>,
    /// The final line failed its checksum and was dropped (the
    /// expected signature of a crash mid-append).
    pub torn_tail: bool,
    /// Checksum-failing or unparseable lines *before* the tail —
    /// genuine corruption, surfaced by fsck.
    pub skipped_lines: u64,
    /// The file existed but its header was missing or wrong (treated
    /// as an empty journal; fsck reports it).
    pub bad_header: bool,
}

/// Append handle plus the state replayed at open.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    state: JournalState,
    /// Shared handles on a file whose last byte is not a newline (a
    /// crash mid-append by some other process) must start their first
    /// record on a fresh line; exclusive handles truncate instead.
    needs_leading_newline: bool,
}

/// Seals `body` with its FNV-1a checksum: `"<body> #<16 hex>"`.
pub(crate) fn seal(body: &str) -> String {
    format!("{body} #{:016x}", fnv1a(body.as_bytes()))
}

/// Splits a sealed line back into its body, verifying the checksum.
pub(crate) fn unseal(line: &str) -> Option<&str> {
    let (body, sum) = line.rsplit_once(" #")?;
    let stored = u64::from_str_radix(sum, 16).ok()?;
    (sum.len() == 16 && stored == fnv1a(body.as_bytes())).then_some(body)
}

/// One parsed journal record.
enum Record {
    Lease(u64),
    WLease(u64, String, u32),
    Reclaim(u64, u32),
    Stale(u64, String, u32),
    Done(u64),
    Fail(u64, u32),
}

/// Worker ids appear as journal tokens and in lease file names, so
/// they are restricted to a filesystem- and parser-safe alphabet.
#[must_use]
pub fn valid_worker_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.')
}

fn parse_record(body: &str) -> Option<Record> {
    let mut parts = body.split(' ');
    let kind = parts.next()?;
    let digest = u64::from_str_radix(parts.next()?, 16).ok()?;
    match kind {
        "lease" => Some(Record::Lease(digest)),
        "wlease" => {
            let worker = parts.next()?;
            if !valid_worker_id(worker) {
                return None;
            }
            let epoch = parts.next()?.parse().ok()?;
            // The label trails; it carries no replay state.
            Some(Record::WLease(digest, worker.to_owned(), epoch))
        }
        "reclaim" => {
            let epoch = parts.next()?.parse().ok()?;
            parts.next().is_none().then_some(Record::Reclaim(digest, epoch))
        }
        "stale" => {
            let worker = parts.next()?;
            if !valid_worker_id(worker) {
                return None;
            }
            let epoch = parts.next()?.parse().ok()?;
            parts.next().is_none().then_some(Record::Stale(digest, worker.to_owned(), epoch))
        }
        "done" if parts.next().is_none() => Some(Record::Done(digest)),
        "fail" => {
            if parts.next()? != "attempts" {
                return None;
            }
            let attempts = parts.next()?.parse().ok()?;
            parts.next().is_none().then_some(Record::Fail(digest, attempts))
        }
        _ => None,
    }
}

/// Replays journal text into a [`JournalState`]. Total: tolerates any
/// byte soup without panicking.
#[must_use]
pub fn replay(text: &str) -> JournalState {
    let mut state = JournalState::default();
    let mut lines = text.lines();
    match lines.next() {
        None => return state,
        Some(JOURNAL_HEADER) => {}
        Some(_) => {
            state.bad_header = true;
            return state;
        }
    }
    let rest: Vec<&str> = lines.collect();
    let n = rest.len();
    for (i, line) in rest.iter().enumerate() {
        let record = unseal(line).and_then(parse_record);
        match record {
            Some(Record::Lease(d)) => {
                if !state.completed.contains(&d) && !state.failed.contains_key(&d) {
                    state.pending.insert(d);
                }
            }
            Some(Record::WLease(d, worker, _epoch)) => {
                state.workers.insert(worker);
                if !state.completed.contains(&d) && !state.failed.contains_key(&d) {
                    state.pending.insert(d);
                }
            }
            Some(Record::Reclaim(d, _epoch)) => {
                let count = state.reclaims.entry(d).or_insert(0);
                *count = count.saturating_add(1);
                // A reclaimed point still has to run; it stays (or
                // returns to) pending unless something completed it.
                if !state.completed.contains(&d) && !state.failed.contains_key(&d) {
                    state.pending.insert(d);
                }
            }
            Some(Record::Stale(_d, worker, _epoch)) => {
                state.workers.insert(worker);
                state.stale_publishes += 1;
            }
            Some(Record::Done(d)) => {
                state.pending.remove(&d);
                state.failed.remove(&d);
                state.completed.insert(d);
            }
            Some(Record::Fail(d, attempts)) => {
                state.pending.remove(&d);
                state.failed.insert(d, attempts);
            }
            None => {
                if i + 1 == n {
                    state.torn_tail = true;
                } else {
                    state.skipped_lines += 1;
                }
            }
        }
    }
    state
}

impl Journal {
    /// Opens (or creates) the journal under `store_dir`, replaying any
    /// existing records first. A fresh journal gets its header line
    /// immediately. A torn final record (the signature of a crash
    /// mid-append — checksum-failing or missing its newline) is
    /// *truncated away* so new appends start on a clean line boundary;
    /// without that repair the first resumed record would concatenate
    /// onto the torn bytes and become permanent mid-file corruption.
    pub fn open(store_dir: &Path) -> std::io::Result<Journal> {
        let path = store_dir.join(JOURNAL_FILE);
        let (state, text) = match std::fs::read_to_string(&path) {
            Ok(text) => (replay(&text), text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                (JournalState::default(), String::new())
            }
            Err(e) => return Err(e),
        };
        // An existing-but-empty file (crash between create and header
        // write) needs its header just like a missing one.
        let needs_header = text.is_empty();
        let mut keep = text.len();
        let mut needs_newline = false;
        if !needs_header && !state.bad_header {
            let end = text.strip_suffix('\n').map_or(text.len(), str::len);
            let last_start = text[..end].rfind('\n').map_or(0, |i| i + 1);
            let last_line = &text[last_start..end];
            let last_is_good = if last_start == 0 {
                last_line == JOURNAL_HEADER
            } else {
                unseal(last_line).and_then(parse_record).is_some()
            };
            if !last_is_good {
                keep = last_start;
            } else if end == text.len() {
                // Complete record, missing only its terminator.
                needs_newline = true;
            }
        }
        if keep < text.len() {
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(keep as u64)?;
            f.sync_all()?;
        }
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if needs_header {
            file.write_all(format!("{JOURNAL_HEADER}\n").as_bytes())?;
            file.sync_all()?;
        } else if needs_newline {
            file.write_all(b"\n")?;
            file.sync_all()?;
        }
        Ok(Journal { path, file, state, needs_leading_newline: false })
    }

    /// Opens an already-initialized journal for a *shared* writer (a
    /// distributed worker): replays the existing records but performs
    /// no repair — never truncates (another writer may be appending
    /// past the bytes we read) and never writes the header (the
    /// coordinator did, exactly once, under an exclusive open). A
    /// missing or headerless journal is an error: the campaign
    /// coordinator must initialize the store before workers attach.
    pub fn open_shared(store_dir: &Path) -> std::io::Result<Journal> {
        let path = store_dir.join(JOURNAL_FILE);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!(
                        "store journal {} does not exist — initialize the campaign \
                         (coordinator / manifest step) before attaching workers",
                        path.display()
                    ),
                ));
            }
            Err(e) => return Err(e),
        };
        let state = replay(&text);
        if state.bad_header {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("store journal {} has a missing or corrupt header", path.display()),
            ));
        }
        let file = OpenOptions::new().append(true).open(&path)?;
        // If some other process died mid-append, our first record must
        // start on a fresh line; the torn bytes become one counted
        // garbage line and the exclusive reopen (reaper/merge) repairs.
        let needs_leading_newline = !text.is_empty() && !text.ends_with('\n');
        Ok(Journal { path, file, state, needs_leading_newline })
    }

    /// Appends one pre-rendered batch of lines with a single `write`
    /// syscall (concurrent-writer atomicity) and fsyncs it.
    fn append_batch(&mut self, mut batch: String) -> std::io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        if self.needs_leading_newline {
            batch.insert(0, '\n');
            self.needs_leading_newline = false;
        }
        self.file.write_all(batch.as_bytes())?;
        self.file.sync_all()
    }

    /// The state replayed when the journal was opened.
    #[must_use]
    pub fn state(&self) -> &JournalState {
        &self.state
    }

    /// Path of the journal file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records a batch of leases (the cold schedule), fsyncing once at
    /// the end of the batch.
    pub fn lease_all<'k>(
        &mut self,
        keys: impl Iterator<Item = (u64, &'k str)>,
    ) -> std::io::Result<()> {
        let mut batch = String::new();
        let mut digests = Vec::new();
        for (digest, label) in keys {
            batch.push_str(&seal(&format!("lease {digest:016x} {label}")));
            batch.push('\n');
            digests.push(digest);
        }
        self.append_batch(batch)?;
        self.state.pending.extend(digests);
        Ok(())
    }

    /// Records a batch of worker-owned leases at a fencing epoch each,
    /// fsyncing once at the end of the batch.
    pub fn wlease_all<'k>(
        &mut self,
        worker: &str,
        keys: impl Iterator<Item = (u64, u32, &'k str)>,
    ) -> std::io::Result<()> {
        debug_assert!(valid_worker_id(worker), "worker id {worker:?} fails valid_worker_id");
        let mut batch = String::new();
        let mut digests = Vec::new();
        for (digest, epoch, label) in keys {
            batch.push_str(&seal(&format!("wlease {digest:016x} {worker} {epoch} {label}")));
            batch.push('\n');
            digests.push(digest);
        }
        self.append_batch(batch)?;
        self.state.workers.insert(worker.to_owned());
        self.state.pending.extend(digests);
        Ok(())
    }

    /// Records the reaper retiring a dead worker's lease on `digest`
    /// at `epoch`; the point returns to pending for the next epoch.
    pub fn reclaim(&mut self, digest: u64, epoch: u32) -> std::io::Result<()> {
        let mut batch = seal(&format!("reclaim {digest:016x} {epoch}"));
        batch.push('\n');
        self.append_batch(batch)?;
        let count = self.state.reclaims.entry(digest).or_insert(0);
        *count = count.saturating_add(1);
        if !self.state.completed.contains(&digest) && !self.state.failed.contains_key(&digest) {
            self.state.pending.insert(digest);
        }
        Ok(())
    }

    /// Records a fenced-off late publish: `worker` lost its lease on
    /// `digest` (epoch `epoch`) and its publish was detected and
    /// deduped rather than double-counted.
    pub fn stale(&mut self, digest: u64, worker: &str, epoch: u32) -> std::io::Result<()> {
        debug_assert!(valid_worker_id(worker), "worker id {worker:?} fails valid_worker_id");
        let mut batch = seal(&format!("stale {digest:016x} {worker} {epoch}"));
        batch.push('\n');
        self.append_batch(batch)?;
        self.state.workers.insert(worker.to_owned());
        self.state.stale_publishes += 1;
        Ok(())
    }

    /// Records a completed publication. Fsynced per record: a `done`
    /// line must never claim a blob that a crash then loses.
    pub fn done(&mut self, digest: u64) -> std::io::Result<()> {
        let mut batch = seal(&format!("done {digest:016x}"));
        batch.push('\n');
        self.append_batch(batch)?;
        self.state.pending.remove(&digest);
        self.state.completed.insert(digest);
        Ok(())
    }

    /// Records a terminal job failure (after retries).
    pub fn fail(&mut self, digest: u64, attempts: u32) -> std::io::Result<()> {
        let mut batch = seal(&format!("fail {digest:016x} attempts {attempts}"));
        batch.push('\n');
        self.append_batch(batch)?;
        self.state.pending.remove(&digest);
        self.state.failed.insert(digest, attempts);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_and_unseal_roundtrip() {
        let line = seal("done 00000000000000ff");
        assert_eq!(unseal(&line), Some("done 00000000000000ff"));
        assert_eq!(unseal("done 00000000000000ff #0000000000000000"), None, "bad checksum");
        assert_eq!(unseal("no separator"), None);
    }

    #[test]
    fn replay_tracks_lease_done_fail_lifecycle() {
        let text = format!(
            "{JOURNAL_HEADER}\n{}\n{}\n{}\n{}\n",
            seal("lease 0000000000000001 a@1#x"),
            seal("lease 0000000000000002 b@1#y"),
            seal("done 0000000000000001"),
            seal("fail 0000000000000002 attempts 2"),
        );
        let s = replay(&text);
        assert!(s.completed.contains(&1));
        assert_eq!(s.failed.get(&2), Some(&2));
        assert!(s.pending.is_empty());
        assert!(!s.torn_tail && s.skipped_lines == 0 && !s.bad_header);
    }

    #[test]
    fn torn_tail_is_dropped_but_midfile_garbage_is_counted() {
        let good = seal("lease 0000000000000003 c@1#z");
        let torn = &good[..good.len() - 5];
        let text = format!("{JOURNAL_HEADER}\n{good}\nnot a sealed line\n{good}\n{torn}\n");
        let s = replay(&text);
        assert!(s.torn_tail, "checksum-failing last line is a torn tail");
        assert_eq!(s.skipped_lines, 1, "mid-file garbage counted");
        assert!(s.pending.contains(&3));
    }

    #[test]
    fn missing_or_wrong_header_is_flagged() {
        assert_eq!(replay(""), JournalState::default());
        let s = replay("something else\n");
        assert!(s.bad_header);
    }

    #[test]
    fn done_after_fail_wins_and_lease_after_done_stays_complete() {
        let text = format!(
            "{JOURNAL_HEADER}\n{}\n{}\n{}\n{}\n",
            seal("lease 0000000000000007 w@1#d"),
            seal("fail 0000000000000007 attempts 2"),
            seal("done 0000000000000007"),
            seal("lease 0000000000000007 w@1#d"),
        );
        let s = replay(&text);
        assert!(s.completed.contains(&7));
        assert!(s.failed.is_empty());
        assert!(s.pending.is_empty(), "a completed point re-leased is not pending");
    }

    #[test]
    fn torn_tail_is_truncated_at_open_so_appends_stay_clean() {
        let dir = std::env::temp_dir().join(format!("tvp_journal_torn_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let good = seal("lease 0000000000000009 w@1#a");
        // Unterminated garbage tail — the classic kill-mid-append.
        std::fs::write(dir.join(JOURNAL_FILE), format!("{JOURNAL_HEADER}\n{good}\ndone 00000000"))
            .expect("write torn journal");
        {
            let mut j = Journal::open(&dir).expect("open torn");
            assert!(j.state().pending.contains(&9), "good prefix replayed");
            j.done(9).expect("append after torn tail");
        }
        let replayed = replay(&std::fs::read_to_string(dir.join(JOURNAL_FILE)).expect("read"));
        assert!(replayed.completed.contains(&9), "appended record parses");
        assert_eq!(replayed.skipped_lines, 0, "torn bytes did not poison the next record");
        assert!(!replayed.torn_tail, "torn tail was truncated away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unterminated_good_record_gets_its_newline_at_open() {
        let dir = std::env::temp_dir().join(format!("tvp_journal_noeol_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let good = seal("lease 000000000000000a w@1#b");
        std::fs::write(dir.join(JOURNAL_FILE), format!("{JOURNAL_HEADER}\n{good}"))
            .expect("write journal sans newline");
        {
            let mut j = Journal::open(&dir).expect("open");
            assert!(j.state().pending.contains(&0xA));
            j.done(0xA).expect("append");
        }
        let replayed = replay(&std::fs::read_to_string(dir.join(JOURNAL_FILE)).expect("read"));
        assert!(replayed.completed.contains(&0xA));
        assert!(replayed.pending.is_empty());
        assert_eq!(replayed.skipped_lines, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_tracks_distributed_lifecycle() {
        let text = format!(
            "{JOURNAL_HEADER}\n{}\n{}\n{}\n{}\n{}\n{}\n",
            seal("wlease 0000000000000011 w0 1 a@1#q"),
            seal("wlease 0000000000000012 w1 1 b@1#r"),
            seal("reclaim 0000000000000011 1"),
            seal("wlease 0000000000000011 w1 2 a@1#q"),
            seal("stale 0000000000000011 w0 1"),
            seal("done 0000000000000011"),
        );
        let s = replay(&text);
        assert!(s.completed.contains(&0x11));
        assert!(s.pending.contains(&0x12), "w1's unfinished lease stays pending");
        assert_eq!(s.reclaims.get(&0x11), Some(&1));
        assert_eq!(s.stale_publishes, 1);
        assert_eq!(
            s.workers.iter().cloned().collect::<Vec<_>>(),
            ["w0".to_owned(), "w1".to_owned()]
        );
        assert_eq!(s.skipped_lines, 0);
    }

    #[test]
    fn reclaim_returns_point_to_pending_unless_completed() {
        let text = format!(
            "{JOURNAL_HEADER}\n{}\n{}\n",
            seal("wlease 0000000000000021 w0 1 a@1#q"),
            seal("reclaim 0000000000000021 1"),
        );
        let s = replay(&text);
        assert!(s.pending.contains(&0x21), "reclaimed point still has to run");
        let text = format!(
            "{JOURNAL_HEADER}\n{}\n{}\n{}\n",
            seal("wlease 0000000000000022 w0 1 a@1#q"),
            seal("done 0000000000000022"),
            seal("reclaim 0000000000000022 1"),
        );
        let s = replay(&text);
        assert!(!s.pending.contains(&0x22), "a completed point never re-pends");
        assert!(s.completed.contains(&0x22));
    }

    #[test]
    fn worker_ids_are_validated_at_parse_time() {
        assert!(valid_worker_id("w0"));
        assert!(valid_worker_id("host-3.worker_12"));
        assert!(!valid_worker_id(""));
        assert!(!valid_worker_id("has space"));
        assert!(!valid_worker_id("dot/dot"));
        assert!(!valid_worker_id(&"x".repeat(65)));
        // An invalid worker token makes the whole record unparseable.
        let line = seal("wlease 0000000000000001 bad/id 1 a@1#q");
        let text = format!("{JOURNAL_HEADER}\n{line}\n{line}\n");
        let s = replay(&text);
        assert!(s.workers.is_empty());
        assert_eq!(s.skipped_lines, 1);
        assert!(s.torn_tail);
    }

    #[test]
    fn shared_open_requires_initialized_journal_and_never_truncates() {
        let dir = std::env::temp_dir().join(format!("tvp_journal_shared_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        // Missing journal: a worker must not invent one.
        let err = Journal::open_shared(&dir).expect_err("missing journal is an error");
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
        // Torn tail: shared open leaves the bytes alone and starts its
        // first record on a fresh line.
        let good = seal("wlease 0000000000000031 w0 1 a@1#q");
        let torn = format!("{JOURNAL_HEADER}\n{good}\ndone 000000");
        std::fs::write(dir.join(JOURNAL_FILE), &torn).expect("write torn journal");
        {
            let mut j = Journal::open_shared(&dir).expect("shared open");
            assert!(j.state().pending.contains(&0x31));
            j.done(0x31).expect("append");
        }
        let text = std::fs::read_to_string(dir.join(JOURNAL_FILE)).expect("read");
        assert!(text.starts_with(&torn), "shared open never truncates");
        let s = replay(&text);
        assert!(s.completed.contains(&0x31), "append landed on a fresh line");
        assert_eq!(s.skipped_lines, 1, "torn bytes became one counted garbage line");
        // Headerless journal: refuse.
        std::fs::write(dir.join(JOURNAL_FILE), "garbage\n").expect("write bad journal");
        let err = Journal::open_shared(&dir).expect_err("bad header is an error");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_shared_handles_interleave_whole_records() {
        let dir = std::env::temp_dir().join(format!("tvp_journal_two_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        drop(Journal::open(&dir).expect("init"));
        let mut a = Journal::open_shared(&dir).expect("handle a");
        let mut b = Journal::open_shared(&dir).expect("handle b");
        a.wlease_all("wa", [(0x41, 1, "a@1#a"), (0x42, 1, "b@1#b")].into_iter()).expect("wlease a");
        b.wlease_all("wb", [(0x43, 1, "c@1#c")].into_iter()).expect("wlease b");
        a.done(0x41).expect("done a");
        b.done(0x43).expect("done b");
        let s = replay(&std::fs::read_to_string(dir.join(JOURNAL_FILE)).expect("read"));
        assert_eq!(s.skipped_lines, 0, "no byte interleaving within records");
        assert!(!s.torn_tail);
        assert!(s.completed.contains(&0x41) && s.completed.contains(&0x43));
        assert!(s.pending.contains(&0x42));
        assert_eq!(s.workers.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_open_append_replay_roundtrip() {
        let dir = std::env::temp_dir().join(format!("tvp_journal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        {
            let mut j = Journal::open(&dir).expect("open fresh");
            j.lease_all([(0xAB, "a@1#ab"), (0xCD, "c@1#cd")].into_iter()).expect("lease");
            j.done(0xAB).expect("done");
            j.fail(0xCD, 2).expect("fail");
        }
        let j = Journal::open(&dir).expect("reopen");
        assert!(j.state().completed.contains(&0xAB));
        assert_eq!(j.state().failed.get(&0xCD), Some(&2));
        assert!(j.state().pending.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
