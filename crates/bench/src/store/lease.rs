//! Filesystem lease files and worker heartbeats — the mutual-exclusion
//! layer of the distributed campaign fabric (DESIGN.md §16).
//!
//! The journal records *history*; lease files are the *lock*. A worker
//! claims a point by creating `leases/<digest:016x>.lease` with
//! `O_CREAT|O_EXCL`, which the filesystem makes atomic: exactly one of
//! N racing workers wins each point, with no coordinator in the loop.
//! The file body is one sealed line naming the owner and its fencing
//! epoch, so the reaper (and `fsck-store`) can attribute every held
//! lease, and a worker can re-check *its own* ownership immediately
//! before journaling a completion — the fencing read that turns a dead
//! worker's late publish into a counted `stale` record instead of a
//! double-count.
//!
//! Heartbeats are `workers/<id>.hb` files holding a sealed
//! monotonically-increasing sequence number, rewritten atomically
//! (tmp + rename). There are **no wall clocks anywhere** — liveness is
//! judged by whether the sequence advances between two observations,
//! and the observation interval belongs to the caller (the reaper
//! bin sleeps; this module only reads and writes). That keeps the
//! whole layer a pure function of its inputs, bound by the
//! `determinism-audit` lint rule like the rest of the store.
//!
//! Crash anatomy the design leans on:
//!
//! - Killed *holding* a lease: the file persists, the heartbeat goes
//!   quiet, the reaper journals `reclaim` **then** deletes the file —
//!   in that order, so a lease file's absence always means "free to
//!   acquire at the epoch the journal now implies".
//! - Killed *between* publish and release: the blob is durable and the
//!   journal has `done`; the reaper sees a lease on a completed digest
//!   and simply deletes it (nothing to re-run).
//! - A stale worker that outlived a reclaim: its fencing read fails
//!   (file gone, or re-leased under a different owner/epoch) and it
//!   records `stale` instead of `done`. Blob bytes are deterministic,
//!   so even the unavoidable read-check-act window is benign — the
//!   worst case is the same bytes written twice.

use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use super::manifest::{seal, unseal, valid_worker_id};

/// Lease subdirectory name inside the store.
pub const LEASES_DIR: &str = "leases";
/// Heartbeat subdirectory name inside the store.
pub const WORKERS_DIR: &str = "workers";

/// A parsed lease file: who holds the point, at which fencing epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeaseOwner {
    /// Owning worker id (validated by [`valid_worker_id`]).
    pub worker: String,
    /// Fencing epoch the lease was taken at (reclaims + 1).
    pub epoch: u32,
}

/// Result of an acquisition attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Acquire {
    /// We created the lease file; the point is ours.
    Won,
    /// Another worker holds it (or held it when we raced).
    Held,
}

fn lease_path(store_dir: &Path, digest: u64) -> PathBuf {
    store_dir.join(LEASES_DIR).join(format!("{digest:016x}.lease"))
}

fn heartbeat_path(store_dir: &Path, worker: &str) -> PathBuf {
    store_dir.join(WORKERS_DIR).join(format!("{worker}.hb"))
}

/// Attempts to claim `digest` for `worker` at `epoch` by creating the
/// lease file with `O_CREAT|O_EXCL` — the atomic, coordinator-free
/// mutex. [`Acquire::Held`] is the normal contended outcome, not an
/// error.
pub fn acquire(store_dir: &Path, digest: u64, worker: &str, epoch: u32) -> io::Result<Acquire> {
    debug_assert!(valid_worker_id(worker), "worker id {worker:?} fails valid_worker_id");
    let path = lease_path(store_dir, digest);
    let mut file = match OpenOptions::new().write(true).create_new(true).open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => return Ok(Acquire::Held),
        Err(e) => return Err(e),
    };
    file.write_all(
        format!("{}\n", seal(&format!("held {digest:016x} {worker} {epoch}"))).as_bytes(),
    )?;
    file.sync_all()?;
    Ok(Acquire::Won)
}

/// Reads and verifies the lease file for `digest`. `Ok(None)` means no
/// lease is held; a present-but-garbled file (torn write by a worker
/// killed inside [`acquire`]) is also `None` — the reaper treats it as
/// reclaimable.
pub fn read(store_dir: &Path, digest: u64) -> io::Result<Option<LeaseOwner>> {
    let path = lease_path(store_dir, digest);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    Ok(parse_lease_body(text.trim_end_matches('\n'), digest))
}

fn parse_lease_body(line: &str, digest: u64) -> Option<LeaseOwner> {
    let body = unseal(line)?;
    let mut parts = body.split(' ');
    if parts.next()? != "held" {
        return None;
    }
    let file_digest = u64::from_str_radix(parts.next()?, 16).ok()?;
    if file_digest != digest {
        return None;
    }
    let worker = parts.next()?;
    if !valid_worker_id(worker) {
        return None;
    }
    let epoch = parts.next()?.parse().ok()?;
    parts.next().is_none().then(|| LeaseOwner { worker: worker.to_owned(), epoch })
}

/// The fencing read: does `worker`@`epoch` still own `digest`? A
/// missing, torn, or re-owned lease file all mean "no" — the caller
/// must record `stale` instead of `done`.
pub fn owned_by(store_dir: &Path, digest: u64, worker: &str, epoch: u32) -> bool {
    matches!(
        read(store_dir, digest),
        Ok(Some(ref o)) if o.worker == worker && o.epoch == epoch
    )
}

/// Releases a lease after its point is journaled `done` (or when the
/// reaper retires it — always *after* the `reclaim` record is
/// durable, so absence implies the journal already explains it).
pub fn release(store_dir: &Path, digest: u64) -> io::Result<()> {
    match std::fs::remove_file(lease_path(store_dir, digest)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// Lists every held lease in the store: `(digest, owner)` pairs, plus
/// the digests of unreadable/torn lease files (owner `None`).
pub fn list(store_dir: &Path) -> io::Result<Vec<(u64, Option<LeaseOwner>)>> {
    let dir = store_dir.join(LEASES_DIR);
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".lease")) else { continue };
        let Ok(digest) = u64::from_str_radix(stem, 16) else { continue };
        out.push((digest, read(store_dir, digest)?));
    }
    out.sort_by_key(|(d, _)| *d);
    Ok(out)
}

/// Atomically (tmp + rename) writes `worker`'s heartbeat with sequence
/// number `seq`. Callers pass a strictly increasing counter; liveness
/// is "the sequence advanced between two reads", with the observation
/// interval owned by the reaper — no clocks in here.
pub fn beat(store_dir: &Path, worker: &str, seq: u64) -> io::Result<()> {
    debug_assert!(valid_worker_id(worker), "worker id {worker:?} fails valid_worker_id");
    let dir = store_dir.join(WORKERS_DIR);
    let tmp = dir.join(format!("{worker}.hb.{}.tmp", std::process::id()));
    {
        let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        f.write_all(format!("{}\n", seal(&format!("hb {worker} {seq}"))).as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, heartbeat_path(store_dir, worker))
}

/// Reads `worker`'s heartbeat sequence. `None` when the worker never
/// beat or its file is torn.
#[must_use]
pub fn read_beat(store_dir: &Path, worker: &str) -> Option<u64> {
    let text = std::fs::read_to_string(heartbeat_path(store_dir, worker)).ok()?;
    let body = unseal(text.trim_end_matches('\n'))?;
    let mut parts = body.split(' ');
    (parts.next()? == "hb" && parts.next()? == worker)
        .then(|| parts.next())
        .flatten()?
        .parse()
        .ok()
        .filter(|_| parts.next().is_none())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tvp_lease_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join(LEASES_DIR)).expect("mk leases");
        std::fs::create_dir_all(dir.join(WORKERS_DIR)).expect("mk workers");
        dir
    }

    #[test]
    fn acquire_is_exclusive_and_release_frees() {
        let dir = scratch("excl");
        assert_eq!(acquire(&dir, 0x10, "w0", 1).expect("acquire"), Acquire::Won);
        assert_eq!(acquire(&dir, 0x10, "w1", 1).expect("contend"), Acquire::Held);
        assert_eq!(
            read(&dir, 0x10).expect("read"),
            Some(LeaseOwner { worker: "w0".into(), epoch: 1 })
        );
        assert!(owned_by(&dir, 0x10, "w0", 1));
        assert!(!owned_by(&dir, 0x10, "w1", 1), "wrong worker is fenced off");
        assert!(!owned_by(&dir, 0x10, "w0", 2), "wrong epoch is fenced off");
        release(&dir, 0x10).expect("release");
        assert_eq!(read(&dir, 0x10).expect("read freed"), None);
        assert_eq!(acquire(&dir, 0x10, "w1", 2).expect("re-acquire"), Acquire::Won);
        release(&dir, 0x10).expect("idempotent release");
        release(&dir, 0x10).expect("release of a free lease is Ok");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_lease_file_reads_as_unowned() {
        let dir = scratch("torn");
        assert_eq!(acquire(&dir, 0x20, "w0", 1).expect("acquire"), Acquire::Won);
        // A worker killed mid-acquire leaves a short/garbled body.
        std::fs::write(dir.join(LEASES_DIR).join(format!("{:016x}.lease", 0x20)), b"held 00")
            .expect("tear");
        assert_eq!(read(&dir, 0x20).expect("read torn"), None);
        assert!(!owned_by(&dir, 0x20, "w0", 1), "torn lease never passes the fence");
        // A lease whose body names a different digest (copied file) is
        // also rejected.
        let other = seal(&format!("held {:016x} w0 1", 0x99_u64));
        std::fs::write(dir.join(LEASES_DIR).join(format!("{:016x}.lease", 0x20)), other)
            .expect("cross-digest");
        assert_eq!(read(&dir, 0x20).expect("read cross"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn list_reports_held_and_torn_leases_sorted() {
        let dir = scratch("list");
        assert_eq!(acquire(&dir, 0x31, "w1", 1).expect("a"), Acquire::Won);
        assert_eq!(acquire(&dir, 0x30, "w0", 2).expect("b"), Acquire::Won);
        std::fs::write(dir.join(LEASES_DIR).join(format!("{:016x}.lease", 0x32_u64)), b"junk")
            .expect("torn");
        let leases = list(&dir).expect("list");
        assert_eq!(leases.len(), 3);
        assert_eq!(leases[0].0, 0x30);
        assert_eq!(leases[0].1.as_ref().map(|o| o.epoch), Some(2));
        assert_eq!(leases[1].1.as_ref().map(|o| o.worker.as_str()), Some("w1"));
        assert_eq!(leases[2], (0x32, None), "torn lease listed as unattributed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_roundtrip_and_monotonic_overwrite() {
        let dir = scratch("hb");
        assert_eq!(read_beat(&dir, "w0"), None, "never beat");
        beat(&dir, "w0", 1).expect("beat 1");
        assert_eq!(read_beat(&dir, "w0"), Some(1));
        beat(&dir, "w0", 7).expect("beat 7");
        assert_eq!(read_beat(&dir, "w0"), Some(7), "atomic overwrite");
        std::fs::write(dir.join(WORKERS_DIR).join("w1.hb"), b"hb w1 3").expect("unsealed");
        assert_eq!(read_beat(&dir, "w1"), None, "unsealed heartbeat rejected");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
