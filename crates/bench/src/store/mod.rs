//! Durable content-addressed result store — crash-safe resumable
//! campaigns.
//!
//! The in-process [`ResultCache`](crate::cache::ResultCache) dedups
//! points *within* one `run_all`; this store dedups them *across*
//! runs and across crashes. Every simulated point is published as a
//! self-verifying blob (see [`blob`]) under its key's content address,
//! and a campaign journal (see [`manifest`]) records leases,
//! completions and failures, so a killed campaign resumes exactly
//! where it died and a corrupted blob is quarantined and re-simulated
//! instead of poisoning the results.
//!
//! On-disk layout (`--store DIR` / `$TVP_STORE_DIR`):
//!
//! ```text
//! <dir>/
//!   blobs/<digest:016x>.blob      one verified point per file
//!   quarantine/<digest>.<reason>.<n>.blob   corrupt blobs, set aside
//!   tmp/                          scratch for atomic publication
//!   journal.log                   append-only campaign journal
//! ```
//!
//! Guarantees:
//!
//! - **Atomic publication.** A blob is written to `tmp/`, fsynced,
//!   renamed into `blobs/`, and the directory is fsynced. A reader
//!   (or a resumed campaign) can observe a blob fully or not at all —
//!   never torn. A crash can at worst leave scratch files in `tmp/`,
//!   which the next open sweeps.
//! - **Verified loads.** [`ResultStore::load`] re-verifies everything:
//!   magic, schema, lengths, checksum, and that the key echoed inside
//!   the blob is field-for-field the key that was asked for. A blob
//!   that fails is renamed into `quarantine/` (evidence preserved),
//!   counted, and reported as a miss so the engine re-simulates it.
//! - **Determinism.** The store holds only deterministic simulation
//!   results keyed by deterministic fingerprints; blob bytes are a
//!   pure function of (key, point). This module is bound by the
//!   `determinism-audit` lint rule: no wall clocks, no environment
//!   reads — the kill knob and directory arrive via [`StoreConfig`].

use std::collections::BTreeSet;
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};

use crate::jobs::{ExpKey, SimPoint};

pub mod blob;
pub mod checkpoint;
pub mod fsck;
pub mod lease;
pub mod manifest;

use blob::BlobError;
use manifest::Journal;

/// Exit code of a campaign deliberately killed by the
/// [`StoreConfig::kill_after`] chaos knob (CI's resume-smoke asserts
/// on it to distinguish the staged kill from a real failure).
pub const KILL_EXIT_CODE: i32 = 42;

/// Blob subdirectory name.
pub const BLOBS_DIR: &str = "blobs";
/// Checkpoint subdirectory name (sampled-campaign resume state).
pub const CHECKPOINTS_DIR: &str = "checkpoints";
/// Quarantine subdirectory name.
pub const QUARANTINE_DIR: &str = "quarantine";
/// Scratch subdirectory for atomic publication.
pub const TMP_DIR: &str = "tmp";

/// How the store is opened. No environment is read here — the engine
/// resolves `$TVP_STORE_DIR` / `$TVP_STORE_KILL_AFTER` and passes the
/// results in, keeping this module a pure function of its inputs.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Store root directory (created if missing).
    pub dir: PathBuf,
    /// Chaos knob: after this many successful blob publications the
    /// process exits with [`KILL_EXIT_CODE`] *before* writing the
    /// journal completion record — an honest mid-manifest death for
    /// kill-resume testing.
    pub kill_after: Option<u64>,
}

impl StoreConfig {
    /// A plain store at `dir` with no kill knob armed.
    #[must_use]
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        StoreConfig { dir: dir.into(), kill_after: None }
    }
}

/// Store activity counters for telemetry and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Loads served by a verified on-disk blob.
    pub warm_hits: u64,
    /// Loads that found no blob.
    pub misses: u64,
    /// Corrupt / torn / version-skewed blobs moved to quarantine.
    pub quarantined: u64,
    /// Blobs published this run.
    pub published: u64,
    /// Valid blobs whose echoed key was a *different* key under the
    /// same 64-bit content address (astronomically rare; counted so it
    /// is observable rather than silent).
    pub digest_collisions: u64,
    /// Scratch files left by a crashed run, swept at open.
    pub tmp_swept: u64,
    /// Quarantine attempts where both the rename *and* the copy+remove
    /// fallback failed — the corrupt blob may still be in `blobs/`.
    /// Nonzero is a loud warning, never silent.
    pub quarantine_failed: u64,
    /// Publications that found the destination blob already present
    /// (another handle won the race). The bytes are deterministic, so
    /// the overwrite is harmless; the loser is counted here.
    pub duplicate_publishes: u64,
    /// Publications withheld by the fencing check: this handle lost
    /// its lease (reclaimed and re-owned) between simulating and
    /// journaling, and recorded `stale` instead of `done`.
    pub stale_publishes: u64,
}

/// What [`ResultStore::load`] found for a key.
#[derive(Debug)]
pub enum LoadOutcome {
    /// A fully verified point.
    Hit(Box<SimPoint>),
    /// No blob at this content address.
    Miss,
    /// A blob existed but failed verification; it has been quarantined
    /// and the key must be re-simulated.
    Quarantined(BlobError),
}

/// What [`ResultStore::load_checkpoint`] found for a sample key.
#[derive(Debug)]
pub enum CheckpointOutcome {
    /// A fully verified, key-matching checkpoint.
    Hit(Box<checkpoint::Checkpoint>),
    /// No checkpoint at this content address.
    Miss,
    /// A checkpoint existed but failed verification; it has been
    /// quarantined and the campaign starts cold.
    Quarantined(BlobError),
}

/// The durable store: directories, journal, counters.
#[derive(Debug)]
pub struct ResultStore {
    cfg: StoreConfig,
    journal: Journal,
    counters: StoreCounters,
    /// Digests already quarantined this run, to derive unique
    /// quarantine file names without re-listing the directory.
    quarantine_seq: BTreeSet<(u64, u32)>,
}

/// Fsyncs a directory so a just-renamed entry survives power loss
/// (POSIX requires the parent directory's metadata to be durable).
fn fsync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// Names a scratch file uniquely per *handle and publication*, not
/// just per process: two store handles in one process racing the same
/// digest (the concurrent-publish test, or a future in-process
/// multi-worker) must never write through the same scratch path, or
/// one handle's `File::create` truncates the other's half-written
/// bytes and the second rename fails on the vanished entry.
fn scratch_name(digest: u64, suffix: &str) -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    format!("{digest:016x}.{}.{seq}.{suffix}", std::process::id())
}

/// Moves `src` to `dest`, preferring an atomic same-filesystem rename
/// and falling back to copy + remove when the rename fails (the
/// classic case: `quarantine/` on a different device than `blobs/`,
/// where `rename(2)` returns `EXDEV`). The rename primitive is
/// injected so the fallback path has a deterministic regression test.
fn quarantine_transfer(
    src: &Path,
    dest: &Path,
    rename: impl Fn(&Path, &Path) -> io::Result<()>,
) -> io::Result<()> {
    if rename(src, dest).is_ok() {
        return Ok(());
    }
    std::fs::copy(src, dest)?;
    std::fs::remove_file(src)
}

impl ResultStore {
    /// Opens (creating if needed) the store at `cfg.dir`: lays out the
    /// subdirectories, sweeps stale scratch files from a previous
    /// crash, and replays the campaign journal.
    pub fn open(cfg: StoreConfig) -> io::Result<ResultStore> {
        Self::layout(&cfg.dir)?;
        let mut tmp_swept = 0;
        for entry in std::fs::read_dir(cfg.dir.join(TMP_DIR))?.flatten() {
            if entry.path().is_file() && std::fs::remove_file(entry.path()).is_ok() {
                tmp_swept += 1;
            }
        }
        let journal = Journal::open(&cfg.dir)?;
        Ok(ResultStore {
            cfg,
            journal,
            counters: StoreCounters { tmp_swept, ..Default::default() },
            quarantine_seq: BTreeSet::new(),
        })
    }

    /// Opens the store as one of several concurrent *worker* processes
    /// (DESIGN.md §16). Two differences from [`ResultStore::open`]:
    /// the `tmp/` sweep is skipped (another live worker's scratch
    /// files must not be deleted underneath it — scratch names are
    /// pid-unique, so each process only ever touches its own), and the
    /// journal is attached in shared mode, which never truncates and
    /// requires the coordinator to have initialized the store first.
    pub fn open_shared(cfg: StoreConfig) -> io::Result<ResultStore> {
        Self::layout(&cfg.dir)?;
        let journal = Journal::open_shared(&cfg.dir)?;
        Ok(ResultStore {
            cfg,
            journal,
            counters: StoreCounters::default(),
            quarantine_seq: BTreeSet::new(),
        })
    }

    fn layout(dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir.join(BLOBS_DIR))?;
        std::fs::create_dir_all(dir.join(CHECKPOINTS_DIR))?;
        std::fs::create_dir_all(dir.join(QUARANTINE_DIR))?;
        std::fs::create_dir_all(dir.join(TMP_DIR))?;
        std::fs::create_dir_all(dir.join(lease::LEASES_DIR))?;
        std::fs::create_dir_all(dir.join(lease::WORKERS_DIR))
    }

    /// The store root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Activity counters so far.
    #[must_use]
    pub fn counters(&self) -> &StoreCounters {
        &self.counters
    }

    /// The journal state replayed at open (completed / failed /
    /// pending digests of earlier runs against this store).
    #[must_use]
    pub fn journal_state(&self) -> &manifest::JournalState {
        self.journal.state()
    }

    fn blob_path(&self, digest: u64) -> PathBuf {
        self.cfg.dir.join(BLOBS_DIR).join(format!("{digest:016x}.blob"))
    }

    /// Loads and fully re-verifies the point for `key`. Corrupt blobs
    /// are moved aside into `quarantine/` and reported as
    /// [`LoadOutcome::Quarantined`]; the caller re-simulates.
    pub fn load(&mut self, key: &ExpKey) -> LoadOutcome {
        let digest = key.digest();
        let path = self.blob_path(digest);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.counters.misses += 1;
                return LoadOutcome::Miss;
            }
            Err(_) => {
                // Unreadable blob (permissions, I/O error): treat as a
                // miss rather than aborting the campaign.
                self.counters.misses += 1;
                return LoadOutcome::Miss;
            }
        };
        match blob::decode(&bytes) {
            Ok((stored_key, point)) => {
                if stored_key.matches(key) {
                    self.counters.warm_hits += 1;
                    LoadOutcome::Hit(Box::new(point))
                } else {
                    // A valid blob for a *different* key under the same
                    // content address. Don't quarantine a good blob;
                    // count the collision and re-simulate (the publish
                    // will overwrite — acceptable at 2^-64 odds, and
                    // observable through the counter).
                    self.counters.digest_collisions += 1;
                    self.counters.misses += 1;
                    LoadOutcome::Miss
                }
            }
            Err(err) => {
                self.quarantine(digest, &path, &err);
                self.counters.quarantined += 1;
                LoadOutcome::Quarantined(err)
            }
        }
    }

    /// Moves a failed blob into `quarantine/` under a unique name that
    /// records why it was pulled.
    fn quarantine(&mut self, digest: u64, path: &Path, err: &BlobError) {
        let qdir = self.cfg.dir.join(QUARANTINE_DIR);
        let mut seq: u32 = 0;
        let dest = loop {
            let candidate = qdir.join(format!("{digest:016x}.{}.{seq}.blob", err.tag()));
            if !candidate.exists() && !self.quarantine_seq.contains(&(digest, seq)) {
                break candidate;
            }
            seq += 1;
        };
        self.quarantine_seq.insert((digest, seq));
        if let Err(e) = quarantine_transfer(path, &dest, |s, d| std::fs::rename(s, d)) {
            // Both the rename and the copy+remove fallback failed.
            // Last resort: delete the bad bytes so they can never be
            // loaded again, and say so loudly — a quarantine that
            // silently fails would leave a corrupt blob re-read (and
            // re-"quarantined") by every warm load forever.
            self.counters.quarantine_failed += 1;
            let removed = std::fs::remove_file(path).is_ok();
            eprintln!(
                "[store] warning: quarantine of {} -> {} failed ({e}); \
                 corrupt blob {}",
                path.display(),
                dest.display(),
                if removed { "deleted instead (evidence lost)" } else { "may still be present" }
            );
        }
    }

    /// Journals a batch of leases for the points this campaign is
    /// about to simulate.
    pub fn lease_all<'j>(&mut self, keys: impl Iterator<Item = &'j ExpKey>) -> io::Result<()> {
        let leases: Vec<(u64, String)> = keys.map(|k| (k.digest(), k.display())).collect();
        self.journal.lease_all(leases.iter().map(|(d, l)| (*d, l.as_str())))
    }

    /// Worker-side bounded lease acquisition: tries to claim each key
    /// in `candidates` (in order) via an exclusive lease file until
    /// `batch` points are won, then journals one `wlease` batch for
    /// the wins. Contended points are skipped, not errors. Returns the
    /// indices of the won candidates.
    pub fn acquire_lease_batch(
        &mut self,
        candidates: &[&ExpKey],
        worker: &str,
        epoch_of: impl Fn(u64) -> u32,
        batch: usize,
    ) -> io::Result<Vec<usize>> {
        let mut won = Vec::new();
        let mut records: Vec<(u64, u32, String)> = Vec::new();
        for (i, key) in candidates.iter().enumerate() {
            if won.len() >= batch {
                break;
            }
            let digest = key.digest();
            let epoch = epoch_of(digest);
            if lease::acquire(&self.cfg.dir, digest, worker, epoch)? == lease::Acquire::Won {
                won.push(i);
                records.push((digest, epoch, key.display()));
            }
        }
        self.journal.wlease_all(worker, records.iter().map(|(d, e, l)| (*d, *e, l.as_str())))?;
        Ok(won)
    }

    /// Reaper-side reclaim of one held lease: journals `reclaim` (so
    /// the next epoch for this digest is durably implied) **then**
    /// deletes the lease file — in that order, so an absent lease file
    /// always means the journal already explains it.
    pub fn reclaim_lease(&mut self, digest: u64, epoch: u32) -> io::Result<()> {
        self.journal.reclaim(digest, epoch)?;
        lease::release(&self.cfg.dir, digest)
    }

    /// Publishes one simulated point durably: encode → write to
    /// scratch → fsync → rename into `blobs/` → fsync the directory →
    /// journal `done`. A torn publication is impossible to observe;
    /// a crash between rename and journal leaves an orphan blob that
    /// still verifies (and warms the next run).
    ///
    /// When the [`StoreConfig::kill_after`] chaos knob is armed, the
    /// process exits with [`KILL_EXIT_CODE`] after the N-th blob is
    /// durable but *before* its journal record — the exact
    /// mid-manifest state a real kill produces.
    pub fn publish(&mut self, key: &ExpKey, point: &SimPoint) -> io::Result<()> {
        let digest = self.publish_blob(key, point)?;
        self.journal.done(digest)
    }

    /// The durable half of [`ResultStore::publish`]: encodes, writes
    /// the blob atomically, counts, and fires the kill knob — but does
    /// *not* journal. Returns the digest so the caller can journal
    /// `done` (plain publish) or run the fencing check first (worker
    /// publish).
    fn publish_blob(&mut self, key: &ExpKey, point: &SimPoint) -> io::Result<u64> {
        let digest = key.digest();
        let bytes = blob::encode(key, point);
        let tmp = self.cfg.dir.join(TMP_DIR).join(scratch_name(digest, "tmp"));
        {
            let mut f = File::create(&tmp)?;
            io::Write::write_all(&mut f, &bytes)?;
            f.sync_all()?;
        }
        let dest = self.blob_path(digest);
        if dest.exists() {
            // Another handle published this digest first. Blob bytes
            // are a pure function of the key, so overwriting is
            // harmless; the loser of the race is counted, not hidden.
            self.counters.duplicate_publishes += 1;
        }
        std::fs::rename(&tmp, &dest)?;
        fsync_dir(&self.cfg.dir.join(BLOBS_DIR))?;
        self.counters.published += 1;
        if let Some(kill_after) = self.cfg.kill_after {
            if self.counters.published >= kill_after {
                eprintln!(
                    "[store] TVP_STORE_KILL_AFTER: exiting after {kill_after} publication(s) \
                     (blob durable, journal record withheld)"
                );
                std::process::exit(KILL_EXIT_CODE);
            }
        }
        Ok(digest)
    }

    /// Worker publish with the fencing check (DESIGN.md §16): after
    /// the blob is durable, re-read the lease file; only the current
    /// owner journals `done` (and releases the lease). A worker whose
    /// lease was reclaimed while it simulated journals `stale`
    /// instead — its publish is detected and deduped, never
    /// double-counted. Returns `true` when the fence passed.
    ///
    /// The blob itself is written unconditionally in both cases: the
    /// bytes are deterministic, so a stale worker at worst rewrites
    /// the identical blob the new owner publishes.
    pub fn publish_fenced(
        &mut self,
        key: &ExpKey,
        point: &SimPoint,
        worker: &str,
        epoch: u32,
    ) -> io::Result<bool> {
        let digest = self.publish_blob(key, point)?;
        if lease::owned_by(&self.cfg.dir, digest, worker, epoch) {
            self.journal.done(digest)?;
            lease::release(&self.cfg.dir, digest)?;
            Ok(true)
        } else {
            self.counters.stale_publishes += 1;
            self.journal.stale(digest, worker, epoch)?;
            Ok(false)
        }
    }

    fn checkpoint_path(&self, digest: u64) -> PathBuf {
        self.cfg.dir.join(CHECKPOINTS_DIR).join(format!("{digest:016x}.ckpt"))
    }

    /// Loads and fully re-verifies the sampled-campaign checkpoint for
    /// `key`. Corrupt checkpoints are moved into `quarantine/` and
    /// reported as [`CheckpointOutcome::Quarantined`]; the campaign
    /// starts cold (checkpoints are a cache, never a source of truth).
    pub fn load_checkpoint(&mut self, key: &crate::sampling::SampleKey) -> CheckpointOutcome {
        let digest = key.digest();
        let path = self.checkpoint_path(digest);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.counters.misses += 1;
                return CheckpointOutcome::Miss;
            }
            Err(_) => {
                self.counters.misses += 1;
                return CheckpointOutcome::Miss;
            }
        };
        match checkpoint::decode(&bytes) {
            Ok((stored_key, ckpt)) => {
                if stored_key.matches(key) {
                    self.counters.warm_hits += 1;
                    CheckpointOutcome::Hit(Box::new(ckpt))
                } else {
                    self.counters.digest_collisions += 1;
                    self.counters.misses += 1;
                    CheckpointOutcome::Miss
                }
            }
            Err(err) => {
                self.quarantine(digest, &path, &err);
                self.counters.quarantined += 1;
                CheckpointOutcome::Quarantined(err)
            }
        }
    }

    /// Publishes a sampled-campaign checkpoint durably, with the same
    /// atomic scratch → fsync → rename → directory-fsync discipline as
    /// [`ResultStore::publish`]. Later checkpoints for the same key
    /// overwrite earlier ones (only the newest matters for resume).
    ///
    /// Checkpoint publications share the [`StoreConfig::kill_after`]
    /// counter with blob publications, so the chaos knob can kill a
    /// sampled campaign mid-trace — the state the kill-resume tests
    /// need.
    pub fn publish_checkpoint(
        &mut self,
        key: &crate::sampling::SampleKey,
        ckpt: &checkpoint::Checkpoint,
    ) -> io::Result<()> {
        let digest = key.digest();
        let bytes = checkpoint::encode(key, ckpt);
        let tmp = self.cfg.dir.join(TMP_DIR).join(scratch_name(digest, "ckpt.tmp"));
        {
            let mut f = File::create(&tmp)?;
            io::Write::write_all(&mut f, &bytes)?;
            f.sync_all()?;
        }
        let dest = self.checkpoint_path(digest);
        std::fs::rename(&tmp, &dest)?;
        fsync_dir(&self.cfg.dir.join(CHECKPOINTS_DIR))?;
        self.counters.published += 1;
        if let Some(kill_after) = self.cfg.kill_after {
            if self.counters.published >= kill_after {
                eprintln!(
                    "[store] TVP_STORE_KILL_AFTER: exiting after {kill_after} publication(s) \
                     (checkpoint durable)"
                );
                std::process::exit(KILL_EXIT_CODE);
            }
        }
        Ok(())
    }

    /// Journals a terminal job failure (after retries).
    pub fn record_failure(&mut self, key: &ExpKey, attempts: u32) -> io::Result<()> {
        self.journal.fail(key.digest(), attempts)
    }

    /// One-line summary for the engine's stderr reporting.
    #[must_use]
    pub fn summary(&self) -> String {
        let c = &self.counters;
        let mut s = format!(
            "{} warm hit(s), {} miss(es), {} quarantined, {} published",
            c.warm_hits, c.misses, c.quarantined, c.published
        );
        if c.duplicate_publishes > 0 {
            s.push_str(&format!(", {} duplicate publish(es)", c.duplicate_publishes));
        }
        if c.stale_publishes > 0 {
            s.push_str(&format!(", {} stale publish(es) fenced", c.stale_publishes));
        }
        if c.quarantine_failed > 0 {
            s.push_str(&format!(", {} quarantine failure(s)!", c.quarantine_failed));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_core::config::{CoreConfig, VpMode};
    use tvp_core::stats::SimStats;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tvp_store_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(workload: &'static str) -> ExpKey {
        ExpKey::new(workload, 5_000, &CoreConfig::with_vp(VpMode::Tvp))
    }

    fn point(cycles: u64) -> SimPoint {
        SimPoint { stats: SimStats { cycles, insts_retired: 5_000, ..Default::default() } }
    }

    #[test]
    fn publish_then_load_roundtrip_and_counters() {
        let dir = scratch("roundtrip");
        let mut store = ResultStore::open(StoreConfig::at(&dir)).expect("open");
        let k = key("string_match");
        assert!(matches!(store.load(&k), LoadOutcome::Miss));
        store.publish(&k, &point(123)).expect("publish");
        match store.load(&k) {
            LoadOutcome::Hit(p) => assert_eq!(*p, point(123)),
            other => panic!("expected warm hit, got {other:?}"),
        }
        assert_eq!(store.counters().warm_hits, 1);
        assert_eq!(store.counters().misses, 1);
        assert_eq!(store.counters().published, 1);
        // The blob is also visible to a *fresh* store handle (the
        // cross-run resume path), which re-verifies it from scratch.
        let mut reopened = ResultStore::open(StoreConfig::at(&dir)).expect("reopen");
        assert!(matches!(reopened.load(&k), LoadOutcome::Hit(_)));
        assert!(reopened.journal_state().completed.contains(&k.digest()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_blob_is_quarantined_and_republishable() {
        let dir = scratch("quarantine");
        let mut store = ResultStore::open(StoreConfig::at(&dir)).expect("open");
        let k = key("mc_playout");
        store.publish(&k, &point(9)).expect("publish");
        // Flip one byte in the stored blob.
        let path = dir.join(BLOBS_DIR).join(format!("{:016x}.blob", k.digest()));
        let mut bytes = std::fs::read(&path).expect("read blob");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("rewrite corrupted");

        let mut resumed = ResultStore::open(StoreConfig::at(&dir)).expect("reopen");
        match resumed.load(&k) {
            LoadOutcome::Quarantined(err) => {
                assert!(matches!(
                    err,
                    BlobError::ChecksumMismatch { .. } | BlobError::MalformedKey
                ));
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert!(!path.exists(), "bad blob removed from blobs/");
        let quarantined: Vec<_> = std::fs::read_dir(dir.join(QUARANTINE_DIR))
            .expect("quarantine dir")
            .flatten()
            .collect();
        assert_eq!(quarantined.len(), 1, "evidence preserved in quarantine/");
        // Re-simulating and re-publishing heals the store.
        resumed.publish(&k, &point(9)).expect("republish");
        assert!(matches!(resumed.load(&k), LoadOutcome::Hit(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tmp_files_are_swept_at_open() {
        let dir = scratch("sweep");
        std::fs::create_dir_all(dir.join(TMP_DIR)).expect("mk tmp");
        std::fs::write(dir.join(TMP_DIR).join("dead.tmp"), b"partial").expect("write");
        let store = ResultStore::open(StoreConfig::at(&dir)).expect("open");
        assert_eq!(store.counters().tmp_swept, 1);
        assert!(std::fs::read_dir(dir.join(TMP_DIR)).expect("tmp").next().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_transfer_falls_back_to_copy_and_remove() {
        // Regression: a failed quarantine rename used to be swallowed
        // (the blob was just deleted, or worse, left behind). The
        // cross-device case (`EXDEV`) is simulated by injecting a
        // rename that always fails: the fallback must copy the bytes
        // to the destination and remove the source.
        let dir = scratch("qt_fallback");
        std::fs::create_dir_all(&dir).expect("mk scratch");
        let src = dir.join("bad.blob");
        let dest = dir.join("quarantined.blob");
        std::fs::write(&src, b"corrupt evidence").expect("write src");
        quarantine_transfer(&src, &dest, |_, _| {
            Err(io::Error::new(io::ErrorKind::CrossesDevices, "EXDEV"))
        })
        .expect("fallback succeeds");
        assert!(!src.exists(), "source removed");
        assert_eq!(std::fs::read(&dest).expect("dest"), b"corrupt evidence");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_failure_is_counted_not_swallowed() {
        // Regression: when quarantine itself fails (here: the
        // quarantine directory was removed underneath the store, so
        // rename *and* copy both fail), the store must surface a
        // counter instead of silently doing nothing.
        let dir = scratch("qt_fail");
        let mut store = ResultStore::open(StoreConfig::at(&dir)).expect("open");
        let k = key("string_match");
        store.publish(&k, &point(5)).expect("publish");
        let path = dir.join(BLOBS_DIR).join(format!("{:016x}.blob", k.digest()));
        let mut bytes = std::fs::read(&path).expect("read blob");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("corrupt");
        std::fs::remove_dir_all(dir.join(QUARANTINE_DIR)).expect("sabotage quarantine dir");

        let mut resumed = ResultStore::open_shared(StoreConfig::at(&dir)).expect("reopen");
        std::fs::remove_dir_all(dir.join(QUARANTINE_DIR)).expect("re-sabotage");
        assert!(matches!(resumed.load(&k), LoadOutcome::Quarantined(_)));
        assert_eq!(resumed.counters().quarantine_failed, 1, "failure surfaced");
        assert!(!path.exists(), "last resort: bad bytes deleted, never re-read");
        assert!(resumed.summary().contains("quarantine failure"), "summary warns");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_publish_counts_the_loser() {
        let dir = scratch("dup");
        let mut a = ResultStore::open(StoreConfig::at(&dir)).expect("open a");
        let mut b = ResultStore::open_shared(StoreConfig::at(&dir)).expect("open b");
        let k = key("string_match");
        a.publish(&k, &point(7)).expect("publish a");
        b.publish(&k, &point(7)).expect("publish b");
        assert_eq!(a.counters().duplicate_publishes, 0, "winner saw no existing blob");
        assert_eq!(b.counters().duplicate_publishes, 1, "loser counted");
        assert!(matches!(a.load(&k), LoadOutcome::Hit(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fenced_publish_requires_live_lease_ownership() {
        let dir = scratch("fence");
        let mut w0 = ResultStore::open(StoreConfig::at(&dir)).expect("init");
        let k = key("mc_playout");
        let digest = k.digest();
        let won = w0.acquire_lease_batch(&[&k], "w0", |_| 1, 8).expect("acquire");
        assert_eq!(won, vec![0]);
        // The reaper reclaims w0's lease (w0 is presumed dead) and w1
        // re-leases at the next epoch.
        let mut reaper = ResultStore::open_shared(StoreConfig::at(&dir)).expect("reaper");
        reaper.reclaim_lease(digest, 1).expect("reclaim");
        let mut w1 = ResultStore::open_shared(StoreConfig::at(&dir)).expect("w1");
        assert_eq!(w1.journal_state().reclaims.get(&digest), Some(&1));
        let won = w1.acquire_lease_batch(&[&k], "w1", |_| 2, 8).expect("re-lease");
        assert_eq!(won, vec![0]);
        // w0 wakes up and tries to complete its stale lease: fenced.
        assert!(!w0.publish_fenced(&k, &point(3), "w0", 1).expect("stale publish"));
        assert_eq!(w0.counters().stale_publishes, 1);
        // w1, the live owner, completes.
        assert!(w1.publish_fenced(&k, &point(3), "w1", 2).expect("live publish"));
        assert!(matches!(w1.load(&k), LoadOutcome::Hit(_)));
        // Replay shows one done, one stale, one reclaim — no double count.
        let merged = ResultStore::open(StoreConfig::at(&dir)).expect("merge view");
        let js = merged.journal_state();
        assert!(js.completed.contains(&digest));
        assert_eq!(js.stale_publishes, 1);
        assert_eq!(js.reclaims.get(&digest), Some(&1));
        assert_eq!(
            js.workers.iter().cloned().collect::<Vec<_>>(),
            ["w0".to_owned(), "w1".to_owned()]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_open_keeps_other_workers_scratch() {
        let dir = scratch("shared_tmp");
        drop(ResultStore::open(StoreConfig::at(&dir)).expect("init"));
        std::fs::write(dir.join(TMP_DIR).join("other-worker.tmp"), b"live scratch")
            .expect("scratch");
        let shared = ResultStore::open_shared(StoreConfig::at(&dir)).expect("shared");
        assert_eq!(shared.counters().tmp_swept, 0);
        assert!(dir.join(TMP_DIR).join("other-worker.tmp").exists(), "scratch preserved");
        // An exclusive reopen (no concurrent workers by contract)
        // sweeps as before.
        let excl = ResultStore::open(StoreConfig::at(&dir)).expect("exclusive");
        assert_eq!(excl.counters().tmp_swept, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_open_requires_initialized_store() {
        let dir = scratch("shared_uninit");
        let err = ResultStore::open_shared(StoreConfig::at(&dir))
            .expect_err("worker cannot invent a store");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_keys_never_share_a_blob() {
        let dir = scratch("distinct");
        let mut store = ResultStore::open(StoreConfig::at(&dir)).expect("open");
        let a = key("string_match");
        let b = ExpKey::new("string_match", 5_000, &CoreConfig::with_vp(VpMode::Gvp));
        store.publish(&a, &point(1)).expect("publish a");
        store.publish(&b, &point(2)).expect("publish b");
        match (store.load(&a), store.load(&b)) {
            (LoadOutcome::Hit(pa), LoadOutcome::Hit(pb)) => {
                assert_eq!(*pa, point(1));
                assert_eq!(*pb, point(2));
            }
            other => panic!("expected two hits, got {other:?}"),
        }
        assert_eq!(store.counters().digest_collisions, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
