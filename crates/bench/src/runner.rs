//! Scoped work-stealing thread pool for simulation jobs.
//!
//! Workers run on `std::thread::scope` threads (no `'static` bounds,
//! no dependencies): each worker owns a deque seeded round-robin with
//! job indices, pops from its own front, and steals from the back of
//! the busiest sibling when empty. Jobs are coarse (one full pipeline
//! simulation each, typically 10⁵–10⁶ cycles), so the per-steal mutex
//! cost is noise.
//!
//! Every job runs under `catch_unwind`: a panicking simulation (e.g. a
//! watchdog-diagnosed deadlock) is captured as a [`JobFailure`] carrying
//! the job's [`ExpKey`] and the panic payload. The pool always drains —
//! one poisoned point can never hang or abort the whole run.
//!
//! Determinism: results are keyed, and the simulator is a pure
//! function of (trace, config), so *which worker* runs a job — and in
//! what order — cannot affect any simulated value. The assembly phase
//! consumes results by key in experiment order, which is what makes
//! `--jobs 1` and `--jobs N` byte-identical.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tvp_core::pipeline::Core;
use tvp_obs::cpi::CpiStack;
use tvp_workloads::trace::Trace;

use crate::jobs::{ExpKey, Job, SimPoint};

/// A job that panicked instead of producing a [`SimPoint`] — on every
/// attempt (a panic healed by the retry is not a failure).
#[derive(Clone, Debug)]
pub struct JobFailure {
    /// The failed point's identity.
    pub key: ExpKey,
    /// Rendered panic payload of the final attempt.
    pub panic: String,
    /// How many attempts were made (always [`MAX_ATTEMPTS`] for a
    /// reported failure).
    pub attempts: u32,
}

/// Attempts per job: the first run plus one bounded retry. The
/// simulator is deterministic, so a *logic* panic will simply repeat —
/// the retry exists for transient environmental failures (OOM-killed
/// sibling, resource spikes) and costs nothing when the first attempt
/// succeeds.
pub const MAX_ATTEMPTS: u32 = 2;

/// Fixed pause before the retry attempt, giving a transient condition
/// (memory pressure, scheduler spike) time to clear.
pub const RETRY_BACKOFF: Duration = Duration::from_millis(25);

/// Wall-clock timing of one completed job (telemetry only; never part
/// of the cached result).
#[derive(Clone, Debug)]
pub struct JobTiming {
    /// The point's identity.
    pub key: ExpKey,
    /// Simulation wall time.
    pub wall: Duration,
    /// Cycles the point simulated (throughput numerator).
    pub cycles: u64,
    /// The point's CPI stack — where its retire-bandwidth slots went.
    pub cpi: CpiStack,
}

/// Everything the pool produced: results, failures and timings.
#[derive(Debug, Default)]
pub struct RunOutcome {
    /// Successfully simulated points.
    pub points: Vec<(ExpKey, SimPoint)>,
    /// Jobs that panicked on every attempt, with their keys.
    pub failures: Vec<JobFailure>,
    /// Per-job wall-clock timings (successful jobs only).
    pub timings: Vec<JobTiming>,
    /// Jobs that needed a second attempt (healed or not).
    pub retries: u64,
}

/// One job's outcome slot, written exactly once by whichever worker
/// ran the job: the simulated point and its wall time (or the rendered
/// panic payload of the final attempt), plus the attempt count.
type ResultSlot = Mutex<Option<(Result<(SimPoint, CpiStack, Duration), String>, u32)>>;

/// Resolves the worker count: an explicit `--jobs N` wins, otherwise
/// the pool is sized to the machine's available cores.
#[must_use]
pub fn resolve_workers(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

/// Runs `jobs` on `workers` threads, looking up each job's trace with
/// `trace_of` (keyed by workload name). Returns all results, failures
/// and timings; panics in jobs are contained (and retried once, see
/// [`MAX_ATTEMPTS`]), panics in `trace_of` (unknown workload) are a
/// harness bug and propagate.
pub fn run_jobs<'t>(
    jobs: &[Job],
    trace_of: impl Fn(&'static str) -> &'t Trace + Sync,
    workers: usize,
    progress: bool,
) -> RunOutcome {
    run_jobs_with(jobs, workers, progress, |job| {
        let trace = trace_of(job.key.workload);
        // Drive the core directly (rather than through `simulate`) so
        // the CPI stack can be captured for per-job telemetry; the
        // watchdog fail-loud behaviour of `simulate` is preserved.
        let cfg = job.cfg.clone();
        let mut core = Core::new(cfg);
        let stats = core.run(trace);
        if let Some(diag) = core.watchdog_diagnostic() {
            // deliberate fail-loud path — a tripped watchdog is a simulator bug
            panic!("pipeline deadlock:\n{diag}");
        }
        (SimPoint { stats }, core.cpi_stack())
    })
}

/// The pool with an injectable simulation function — the production
/// path goes through [`run_jobs`]; tests inject flaky `sim` closures
/// to exercise the retry machinery deterministically.
pub fn run_jobs_with(
    jobs: &[Job],
    workers: usize,
    progress: bool,
    sim: impl Fn(&Job) -> (SimPoint, CpiStack) + Sync,
) -> RunOutcome {
    let workers = workers.max(1).min(jobs.len().max(1));
    // Round-robin seeding gives every worker a balanced starting deque;
    // stealing evens out whatever imbalance the workloads create.
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, _) in jobs.iter().enumerate() {
        deques[i % workers].lock().expect("seed deque").push_back(i);
    }

    let slots: Vec<ResultSlot> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let done = AtomicUsize::new(0);
    let total = jobs.len();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let done = &done;
            let sim = &sim;
            scope.spawn(move || {
                while let Some(idx) = next_job(deques, me) {
                    let job = &jobs[idx];
                    let mut attempts = 0;
                    let result = loop {
                        attempts += 1;
                        let start = Instant::now();
                        let result = catch_unwind(AssertUnwindSafe(|| sim(job)));
                        let wall = start.elapsed();
                        match result {
                            Ok((point, cpi)) => break Ok((point, cpi, wall)),
                            Err(payload) => {
                                let text = panic_text(payload.as_ref());
                                if attempts >= MAX_ATTEMPTS {
                                    break Err(text);
                                }
                                if progress {
                                    eprintln!(
                                        "  [retry {attempts}/{MAX_ATTEMPTS}] {}",
                                        job.key.display()
                                    );
                                }
                                std::thread::sleep(RETRY_BACKOFF);
                            }
                        }
                    };
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if progress {
                        eprintln!("  [{finished:>4}/{total}] {}", job.key.display());
                    }
                    *slots[idx].lock().expect("result slot") = Some((result, attempts));
                }
            });
        }
    });

    let mut outcome = RunOutcome::default();
    for (job, slot) in jobs.iter().zip(slots) {
        let (result, attempts) =
            slot.into_inner().expect("slot lock").expect("pool drained every job");
        if attempts > 1 {
            outcome.retries += 1;
        }
        match result {
            Ok((point, cpi, wall)) => {
                outcome.timings.push(JobTiming {
                    key: job.key.clone(),
                    wall,
                    cycles: point.stats.cycles,
                    cpi,
                });
                outcome.points.push((job.key.clone(), point));
            }
            Err(panic) => {
                outcome.failures.push(JobFailure { key: job.key.clone(), panic, attempts });
            }
        }
    }
    outcome
}

/// Pops from our own deque, or steals from the back of the fullest
/// sibling. `None` only when every deque is empty (all jobs taken).
fn next_job(deques: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(idx) = deques[me].lock().expect("own deque").pop_front() {
        return Some(idx);
    }
    // Steal from the victim with the most queued work to keep steal
    // frequency low.
    let victim = deques
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != me)
        .max_by_key(|(_, d)| d.lock().expect("victim deque").len())
        .map(|(i, _)| i)?;
    deques[victim].lock().expect("steal deque").pop_back()
}

/// Renders a panic payload (the two shapes `panic!` produces).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_core::config::CoreConfig;

    fn tiny_traces() -> Vec<(&'static str, Trace)> {
        tvp_workloads::suite().into_iter().take(3).map(|w| (w.name, w.trace(2_000))).collect()
    }

    fn lookup<'t>(
        traces: &'t [(&'static str, Trace)],
    ) -> impl Fn(&'static str) -> &'t Trace + Sync {
        move |name| &traces.iter().find(|(n, _)| *n == name).expect("known workload").1
    }

    #[test]
    fn pool_runs_all_jobs_any_width() {
        let traces = tiny_traces();
        let jobs: Vec<Job> =
            traces.iter().map(|(name, _)| Job::new(name, 2_000, CoreConfig::table2())).collect();
        let serial = run_jobs(&jobs, lookup(&traces), 1, false);
        let wide = run_jobs(&jobs, lookup(&traces), 4, false);
        assert_eq!(serial.points.len(), jobs.len());
        assert_eq!(wide.points.len(), jobs.len());
        assert!(serial.failures.is_empty() && wide.failures.is_empty());
        for ((ka, pa), (kb, pb)) in serial.points.iter().zip(&wide.points) {
            assert_eq!(ka, kb);
            assert_eq!(pa, pb, "worker count changed a simulated point");
        }
    }

    #[test]
    fn panicking_job_fails_with_its_key_and_pool_drains() {
        let traces = tiny_traces();
        // A watchdog budget of 1 cycle trips on the first cold-cache
        // stall, and the simulate() entry point panics on the
        // diagnostic — a deterministic in-job panic.
        let mut poisoned = CoreConfig::table2();
        poisoned.watchdog_cycles = 1;
        let mut jobs: Vec<Job> =
            traces.iter().map(|(name, _)| Job::new(name, 2_000, CoreConfig::table2())).collect();
        jobs.insert(1, Job::new(traces[0].0, 2_000, poisoned));

        let outcome = run_jobs(&jobs, lookup(&traces), 3, false);
        assert_eq!(outcome.points.len(), jobs.len() - 1, "healthy jobs all completed");
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].key, jobs[1].key, "failure names the poisoned key");
        assert!(!outcome.failures[0].panic.is_empty());
        assert_eq!(
            outcome.failures[0].attempts, MAX_ATTEMPTS,
            "a deterministic panic is retried once before being reported"
        );
        assert_eq!(outcome.retries, 1, "only the poisoned job needed a retry");
    }

    #[test]
    fn transient_panic_is_healed_by_the_single_retry() {
        use std::sync::atomic::AtomicBool;
        let jobs = vec![
            Job::new("a", 1_000, CoreConfig::table2()),
            Job::new("b", 1_000, CoreConfig::table2()),
        ];
        let flaked = AtomicBool::new(false);
        let outcome = run_jobs_with(&jobs, 1, false, |job| {
            if job.key.workload == "b" && !flaked.swap(true, Ordering::Relaxed) {
                panic!("transient failure");
            }
            (SimPoint { stats: Default::default() }, CpiStack::default())
        });
        assert!(outcome.failures.is_empty(), "the retry healed the flake");
        assert_eq!(outcome.points.len(), 2);
        assert_eq!(outcome.retries, 1);
        assert_eq!(outcome.timings.len(), 2);
    }

    #[test]
    fn persistent_panic_exhausts_both_attempts() {
        use std::sync::atomic::AtomicU32;
        let jobs = vec![Job::new("a", 1_000, CoreConfig::table2())];
        let calls = AtomicU32::new(0);
        let outcome = run_jobs_with(&jobs, 1, false, |_job| -> (SimPoint, CpiStack) {
            calls.fetch_add(1, Ordering::Relaxed);
            panic!("always fails");
        });
        assert_eq!(calls.load(Ordering::Relaxed), MAX_ATTEMPTS);
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].attempts, MAX_ATTEMPTS);
        assert!(outcome.failures[0].panic.contains("always fails"));
        assert_eq!(outcome.retries, 1);
    }
}
