//! SimPoint-style sampled simulation with streaming traces.
//!
//! The paper evaluates on 100M-instruction SimPoints; cycle-simulating
//! that much dynamic instruction stream in detail is three orders of
//! magnitude beyond the whole-trace flow. This module implements the
//! classic sampling answer (see DESIGN.md §15):
//!
//! * the dynamic stream is *never* materialized — a
//!   [`TraceSource`] (normally the functional machine itself) is
//!   fast-forwarded architecturally between intervals;
//! * each sampling period of `P` instructions ends with a warmup
//!   window of `W` instructions that primes caches, TLBs and
//!   predictors on a fresh core *without charging statistics*,
//!   followed by a measured window of `M` instructions simulated in
//!   full detail;
//! * whole-trace statistics are reconstructed by weighting each
//!   measured window by the instruction count its period represents.
//!
//! Determinism: a sampled run is a pure function of
//! (workload, config, budget, spec). Every interval runs on a fresh
//! core and carries its own commit fingerprint; the run fingerprint
//! folds them in interval order, so cold runs, resumed runs and any
//! `--jobs` width must agree bit-for-bit — the same bar PR 3/PR 7 set
//! for full runs.
//!
//! Checkpoint/resume rides the PR 7 durable store: after each interval
//! the machine's architectural state plus every finished interval is
//! published as a self-verifying checkpoint blob (see
//! [`crate::store::checkpoint`]), so a killed campaign resumes
//! mid-trace without re-executing the prefix.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use tvp_core::config::CoreConfig;
use tvp_core::pipeline::Core;
use tvp_core::stats::SimStats;
use tvp_workloads::stream::{MachineSource, TraceSource};
use tvp_workloads::suite::Workload;
use tvp_workloads::trace::Trace;

use crate::jobs::ExpKey;
use crate::store::checkpoint::Checkpoint;
use crate::store::{CheckpointOutcome, ResultStore};

/// Upper bound on the functionally-warmed tail of each interval's skip
/// phase. Skipped instructions beyond this window are fast-forwarded
/// raw; the last `min(skip, cap)` additionally train caches and
/// predictors through [`Core::functional_warm`]. Bounding the window
/// keeps the per-interval cost flat as the period grows, and keeps
/// every interval a pure function of its own period (the
/// resume-determinism invariant).
pub const FUNCTIONAL_WARMING_CAP: u64 = 100_000;

/// Chunk size the warming tail is streamed in: one chunk of µop
/// records is materialized at a time, so memory stays flat no matter
/// how long the warming window is.
pub const FUNCTIONAL_WARMING_CHUNK: u64 = 16_384;

/// One sampling configuration: every `period` architectural
/// instructions, the last `warmup + measured` are simulated in detail
/// and only the final `measured` are charged to statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SampleSpec {
    /// Sampling period (architectural instructions per interval).
    pub period: u64,
    /// Detailed-but-unmeasured warmup instructions per interval.
    pub warmup: u64,
    /// Measured instructions per interval.
    pub measured: u64,
}

impl SampleSpec {
    /// Validates and builds a spec.
    ///
    /// # Errors
    ///
    /// A description of the violated constraint (`measured ≥ 1`,
    /// `warmup + measured ≤ period`).
    pub fn new(period: u64, warmup: u64, measured: u64) -> Result<Self, String> {
        if measured == 0 {
            return Err("sample spec: measured window must be at least 1 instruction".into());
        }
        let detailed = warmup.checked_add(measured).ok_or("sample spec: overflow")?;
        if detailed > period {
            return Err(format!(
                "sample spec: warmup ({warmup}) + measured ({measured}) exceed period ({period})"
            ));
        }
        Ok(SampleSpec { period, warmup, measured })
    }

    /// Parses the CLI form `PERIOD:WARMUP:MEASURED`.
    ///
    /// # Errors
    ///
    /// A description of the parse or constraint failure.
    pub fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 3 {
            return Err(format!("sample spec `{s}`: expected PERIOD:WARMUP:MEASURED"));
        }
        let num = |p: &str| -> Result<u64, String> {
            p.replace('_', "").parse().map_err(|_| format!("sample spec `{s}`: bad number `{p}`"))
        };
        SampleSpec::new(num(parts[0])?, num(parts[1])?, num(parts[2])?)
    }

    /// Fraction of the stream simulated in detail (warmup + measured).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn detail_fraction(&self) -> f64 {
        if self.period == 0 {
            return 1.0;
        }
        (self.warmup + self.measured) as f64 / self.period as f64
    }

    /// Canonical display form (`period:warmup:measured`).
    #[must_use]
    pub fn display(&self) -> String {
        format!("{}:{}:{}", self.period, self.warmup, self.measured)
    }
}

/// Identity of one *sampled* simulation point: the underlying
/// experiment key plus the sampling spec. Digests are domain-separated
/// from full-run [`ExpKey`] digests so checkpoints and result blobs
/// can never collide across the two spaces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampleKey {
    /// The underlying (workload × config × budget) identity.
    pub exp: ExpKey,
    /// The sampling configuration.
    pub spec: SampleSpec,
}

impl SampleKey {
    /// Keys a sampled point.
    #[must_use]
    pub fn new(workload: &'static str, insts: u64, cfg: &CoreConfig, spec: SampleSpec) -> Self {
        SampleKey { exp: ExpKey::new(workload, insts, cfg), spec }
    }

    /// Content digest (FNV-1a over the experiment digest, a domain
    /// tag, and the spec fields).
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(b"sampled");
        eat(&self.exp.digest().to_le_bytes());
        eat(&self.spec.period.to_le_bytes());
        eat(&self.spec.warmup.to_le_bytes());
        eat(&self.spec.measured.to_le_bytes());
        h
    }

    /// Human-readable form for reports.
    #[must_use]
    pub fn display(&self) -> String {
        format!("{}~{}#{:016x}", self.exp.display(), self.spec.display(), self.digest())
    }
}

/// The measured outcome of one sampled interval.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntervalResult {
    /// Interval index (0-based, in stream order).
    pub index: u32,
    /// Global µop sequence number where the measured window began.
    pub start_seq: u64,
    /// Architectural instructions this interval stands for (the whole
    /// period, or the actual tail when the machine halted early).
    pub represented_insts: u64,
    /// Architectural instructions actually measured.
    pub measured_insts: u64,
    /// µops actually measured.
    pub measured_uops: u64,
    /// Full statistics of the measured window.
    pub stats: SimStats,
    /// Commit fingerprint of the measured window — the per-interval
    /// determinism witness.
    pub fingerprint: u64,
}

/// A complete sampled run: per-interval results plus stream totals.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SampledRun {
    /// Every measured interval, in stream order.
    pub intervals: Vec<IntervalResult>,
    /// Architectural instructions consumed from the stream in total
    /// (fast-forwarded + warmup + measured).
    pub total_insts: u64,
    /// Instructions functionally fast-forwarded (never detailed).
    pub skipped_insts: u64,
    /// Instructions simulated as unmeasured warmup.
    pub warmup_insts: u64,
    /// Instructions simulated and measured.
    pub measured_insts: u64,
    /// Whether the machine halted before the budget was exhausted.
    pub halted: bool,
    /// Intervals served from a resume checkpoint instead of being
    /// re-simulated (0 on a cold run; telemetry only, excluded from
    /// the fingerprint so cold and resumed runs compare equal).
    pub resumed_intervals: u32,
}

impl SampledRun {
    /// Order-sensitive fingerprint over every interval's fingerprint
    /// and identity — byte-identity witness across `--jobs` widths and
    /// kill/resume.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut eat = |v: u64| {
            for &b in &v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for iv in &self.intervals {
            eat(u64::from(iv.index));
            eat(iv.start_seq);
            eat(iv.represented_insts);
            eat(iv.measured_insts);
            eat(iv.measured_uops);
            eat(iv.fingerprint);
            eat(iv.stats.cycles);
        }
        eat(self.total_insts);
        h
    }

    /// Weighted whole-trace reconstruction (see DESIGN.md §15): every
    /// measured counter is scaled by its interval's weight
    /// `represented_insts / measured_insts` and summed.
    #[must_use]
    pub fn estimate(&self) -> SampleEstimate {
        let mut e = SampleEstimate::default();
        for iv in &self.intervals {
            if iv.measured_insts == 0 {
                continue;
            }
            #[allow(clippy::cast_precision_loss)]
            let w = iv.represented_insts as f64 / iv.measured_insts as f64;
            #[allow(clippy::cast_precision_loss)]
            let scale = |v: u64| v as f64 * w;
            let s = &iv.stats;
            e.insts += scale(s.insts_retired);
            e.uops += scale(s.uops_retired);
            e.cycles += scale(s.cycles);
            e.branch_mispredicts += scale(s.flush.branch_mispredicts);
            e.vp_used += scale(s.vp.used);
            e.vp_incorrect += scale(s.vp.incorrect_used);
            e.rename_uops += scale(s.rename.uops);
            e.spsr += scale(s.rename.spsr);
        }
        e
    }
}

/// Whole-trace statistics reconstructed from the weighted intervals.
/// Floating point is fine here (reports only — fingerprints and
/// checkpoints stay integer).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SampleEstimate {
    /// Estimated retired architectural instructions.
    pub insts: f64,
    /// Estimated retired µops.
    pub uops: f64,
    /// Estimated cycles.
    pub cycles: f64,
    /// Estimated branch mispredictions.
    pub branch_mispredicts: f64,
    /// Estimated value predictions consumed.
    pub vp_used: f64,
    /// Estimated incorrect consumed value predictions.
    pub vp_incorrect: f64,
    /// Estimated renamed µops.
    pub rename_uops: f64,
    /// Estimated SpSR-strength-reduced µops.
    pub spsr: f64,
}

impl SampleEstimate {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles > 0.0 {
            self.insts / self.cycles
        } else {
            0.0
        }
    }

    /// Branch mispredictions per kilo-instruction.
    #[must_use]
    pub fn branch_mpki(&self) -> f64 {
        if self.insts > 0.0 {
            self.branch_mispredicts * 1000.0 / self.insts
        } else {
            0.0
        }
    }

    /// Incorrect consumed value predictions per kilo-instruction.
    #[must_use]
    pub fn vp_mpki(&self) -> f64 {
        if self.insts > 0.0 {
            self.vp_incorrect * 1000.0 / self.insts
        } else {
            0.0
        }
    }

    /// Fraction of renamed µops that SpSR strength-reduced.
    #[must_use]
    pub fn spsr_coverage(&self) -> f64 {
        if self.rename_uops > 0.0 {
            self.spsr / self.rename_uops
        } else {
            0.0
        }
    }

    /// The same headline stats computed from a *full* run's
    /// statistics, for error-bound comparison.
    #[must_use]
    pub fn from_full(s: &SimStats) -> SampleEstimate {
        #[allow(clippy::cast_precision_loss)]
        let f = |v: u64| v as f64;
        SampleEstimate {
            insts: f(s.insts_retired),
            uops: f(s.uops_retired),
            cycles: f(s.cycles),
            branch_mispredicts: f(s.flush.branch_mispredicts),
            vp_used: f(s.vp.used),
            vp_incorrect: f(s.vp.incorrect_used),
            rename_uops: f(s.rename.uops),
            spsr: f(s.rename.spsr),
        }
    }
}

/// Declared per-stat error bounds for sampled-vs-full validation:
/// relative for IPC, absolute for the rate stats (which sit near zero
/// for many workloads, where relative error is meaningless).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorBounds {
    /// Max relative IPC error (|sampled − full| / full).
    pub ipc_rel: f64,
    /// Max absolute branch-MPKI error.
    pub branch_mpki_abs: f64,
    /// Max absolute VP-MPKI error.
    pub vp_mpki_abs: f64,
    /// Max absolute SpSR-coverage error (coverage is already a
    /// fraction in [0, 1]).
    pub spsr_coverage_abs: f64,
}

/// Default bounds the accuracy suite holds every workload to, derived
/// empirically: observed worst-case error across the 25-workload suite
/// under the paper's TVP+SpSR configuration at the accuracy-test spec,
/// plus headroom. The IPC bound is dominated by the cold-start bias of
/// fresh-core intervals on workloads whose training horizon exceeds
/// one sampling period (`stream_triad_2`, `discrete_event` — see
/// DESIGN.md §15); functional warming of the skip tail roughly halves
/// that bias but cannot see past the period boundary. Tightening these
/// is a deliberate act, loosening them is a regression.
pub const DEFAULT_BOUNDS: ErrorBounds =
    ErrorBounds { ipc_rel: 0.40, branch_mpki_abs: 3.0, vp_mpki_abs: 1.0, spsr_coverage_abs: 0.10 };

/// Sampled-vs-full error of one workload's headline stats.
#[derive(Clone, Debug, PartialEq)]
pub struct StatErrors {
    /// Workload name.
    pub workload: String,
    /// Full-run headline stats.
    pub full: SampleEstimate,
    /// Sampled reconstruction.
    pub sampled: SampleEstimate,
    /// Relative IPC error.
    pub ipc_rel_err: f64,
    /// Absolute branch-MPKI error.
    pub branch_mpki_err: f64,
    /// Absolute VP-MPKI error.
    pub vp_mpki_err: f64,
    /// Absolute SpSR-coverage error.
    pub spsr_coverage_err: f64,
}

impl StatErrors {
    /// Compares a sampled reconstruction against full-run stats.
    #[must_use]
    pub fn compare(workload: &str, full: &SimStats, sampled: &SampleEstimate) -> StatErrors {
        let full = SampleEstimate::from_full(full);
        let ipc_rel_err = if full.ipc() > 0.0 {
            (sampled.ipc() - full.ipc()).abs() / full.ipc()
        } else {
            sampled.ipc().abs()
        };
        StatErrors {
            workload: workload.to_owned(),
            full,
            sampled: *sampled,
            ipc_rel_err,
            branch_mpki_err: (sampled.branch_mpki() - full.branch_mpki()).abs(),
            vp_mpki_err: (sampled.vp_mpki() - full.vp_mpki()).abs(),
            spsr_coverage_err: (sampled.spsr_coverage() - full.spsr_coverage()).abs(),
        }
    }

    /// The bounds this comparison violates (empty = pass).
    #[must_use]
    pub fn violations(&self, bounds: &ErrorBounds) -> Vec<String> {
        let mut v = Vec::new();
        if self.ipc_rel_err > bounds.ipc_rel {
            v.push(format!("ipc: rel err {:.4} > bound {:.4}", self.ipc_rel_err, bounds.ipc_rel));
        }
        if self.branch_mpki_err > bounds.branch_mpki_abs {
            v.push(format!(
                "branch_mpki: abs err {:.4} > bound {:.4}",
                self.branch_mpki_err, bounds.branch_mpki_abs
            ));
        }
        if self.vp_mpki_err > bounds.vp_mpki_abs {
            v.push(format!(
                "vp_mpki: abs err {:.4} > bound {:.4}",
                self.vp_mpki_err, bounds.vp_mpki_abs
            ));
        }
        if self.spsr_coverage_err > bounds.spsr_coverage_abs {
            v.push(format!(
                "spsr_coverage: abs err {:.4} > bound {:.4}",
                self.spsr_coverage_err, bounds.spsr_coverage_abs
            ));
        }
        v
    }

    /// True when every stat is within `bounds`.
    #[must_use]
    pub fn passes(&self, bounds: &ErrorBounds) -> bool {
        self.violations(bounds).is_empty()
    }

    /// Machine-readable JSON object for the error report artifact.
    #[must_use]
    pub fn to_json(&self, bounds: &ErrorBounds) -> String {
        crate::json::object(&[
            ("workload", format!("\"{}\"", crate::json::escape(&self.workload))),
            ("full_ipc", crate::json::number(self.full.ipc())),
            ("sampled_ipc", crate::json::number(self.sampled.ipc())),
            ("ipc_rel_err", crate::json::number(self.ipc_rel_err)),
            ("full_branch_mpki", crate::json::number(self.full.branch_mpki())),
            ("sampled_branch_mpki", crate::json::number(self.sampled.branch_mpki())),
            ("branch_mpki_err", crate::json::number(self.branch_mpki_err)),
            ("full_vp_mpki", crate::json::number(self.full.vp_mpki())),
            ("sampled_vp_mpki", crate::json::number(self.sampled.vp_mpki())),
            ("vp_mpki_err", crate::json::number(self.vp_mpki_err)),
            ("full_spsr_coverage", crate::json::number(self.full.spsr_coverage())),
            ("sampled_spsr_coverage", crate::json::number(self.sampled.spsr_coverage())),
            ("spsr_coverage_err", crate::json::number(self.spsr_coverage_err)),
            ("pass", self.passes(bounds).to_string()),
        ])
    }
}

/// Knobs of one sampled run beyond the key itself.
#[derive(Debug, Default)]
pub struct SampleRunOptions<'s> {
    /// Durable store for checkpoint publication and resume, shared
    /// behind a mutex so parallel campaign workers can interleave
    /// publications. `None` runs cold with no checkpoints.
    pub store: Option<&'s Mutex<ResultStore>>,
    /// In-process chaos knob: stop (returning the partial run) after
    /// this many *newly simulated* intervals, leaving the store in the
    /// exact state a mid-campaign kill produces. Test-only analogue of
    /// `TVP_STORE_KILL_AFTER` that composes with `#[test]` threads.
    pub stop_after_intervals: Option<u32>,
}

/// Runs one workload sampled: fast-forward / warmup / measure per
/// interval, optional checkpoint publication and resume through the
/// durable store.
///
/// # Panics
///
/// Panics if the pipeline watchdog trips (simulator bug — same
/// fail-loud contract as [`tvp_core::pipeline::simulate`]) or if the
/// machine source fails (it cannot: machine execution is infallible).
#[must_use]
pub fn run_sampled(
    workload: &Workload,
    cfg: &CoreConfig,
    insts: u64,
    spec: SampleSpec,
    opts: SampleRunOptions<'_>,
) -> SampledRun {
    let key = SampleKey::new(workload.name, insts, cfg, spec);
    let SampleRunOptions { store, stop_after_intervals } = opts;

    let mut run = SampledRun::default();
    let mut source;
    // Resume from the newest valid checkpoint, if the store has one.
    if let Some(ckpt) =
        store.and_then(|m| match m.lock().expect("store lock poisoned").load_checkpoint(&key) {
            CheckpointOutcome::Hit(c) => Some(c),
            CheckpointOutcome::Miss | CheckpointOutcome::Quarantined(_) => None,
        })
    {
        source = MachineSource::new(workload.machine_restored(&ckpt.snapshot, ckpt.seq));
        run.intervals = ckpt.intervals;
        run.total_insts = ckpt.total_insts;
        run.skipped_insts = ckpt.skipped_insts;
        run.warmup_insts = ckpt.warmup_insts;
        run.measured_insts = ckpt.measured_insts;
        run.resumed_intervals = u32::try_from(run.intervals.len()).expect("interval count fits");
    } else {
        source = workload.source();
    }

    let mut fresh_intervals: u32 = 0;
    while run.total_insts < insts {
        let budget = insts - run.total_insts;
        // The detailed window sits at the end of the period; a final
        // partial period keeps its windows but shrinks the skip.
        let period = spec.period.min(budget).max(1);
        let detailed = (spec.warmup + spec.measured).min(period);
        let warmup = detailed.saturating_sub(spec.measured);
        let measured = detailed - warmup;
        let skip = period - detailed;

        // Fresh core per interval: its state is a pure function of the
        // interval's own records, so a resumed run replays any interval
        // byte-identically from the architectural checkpoint alone.
        let mut core = Core::new(cfg.clone());

        // Skip phase: raw fast-forward, then functionally warm the
        // tail of the skip (bounded, streamed in chunks) so caches and
        // predictors whose training horizon exceeds the detailed
        // warmup window are primed without detailed simulation.
        let fwarm = skip.min(FUNCTIONAL_WARMING_CAP);
        let mut skipped = source.skip(skip - fwarm).expect("machine source cannot fail");
        let mut halted_in_skip = skipped < skip - fwarm;
        if !halted_in_skip {
            let mut chunk = Trace::default();
            let mut warmed_func = 0u64;
            while warmed_func < fwarm {
                let want = (fwarm - warmed_func).min(FUNCTIONAL_WARMING_CHUNK);
                chunk.uops.clear();
                chunk.arch_insts = 0;
                let got = source.fill(want, &mut chunk).expect("machine source cannot fail");
                core.functional_warm(&chunk);
                warmed_func += got;
                skipped += got;
                if got < want {
                    halted_in_skip = true;
                    break;
                }
            }
        }
        run.skipped_insts += skipped;
        run.total_insts += skipped;
        if halted_in_skip {
            run.halted = true;
            break;
        }

        let mut warm = Trace::default();
        let warmed = source.fill(warmup, &mut warm).expect("machine source cannot fail");
        run.warmup_insts += warmed;
        run.total_insts += warmed;

        let start_seq = source.machine().seq();
        let mut meas = Trace::default();
        let measured_got = source.fill(measured, &mut meas).expect("machine source cannot fail");
        run.measured_insts += measured_got;
        run.total_insts += measured_got;
        if warmed < warmup || measured_got == 0 {
            run.halted = true;
            break;
        }

        if !warm.uops.is_empty() {
            let _ = core.run_segment(&warm);
            assert!(core.watchdog_diagnostic().is_none(), "pipeline deadlock in warmup segment");
        }
        core.begin_measurement();
        let stats = core.run_segment(&meas);
        assert!(core.watchdog_diagnostic().is_none(), "pipeline deadlock in measured segment");

        let index = u32::try_from(run.intervals.len()).expect("interval count fits u32");
        // The interval represents everything consumed since the last
        // one (skip + warmup + measured), so weights cover the stream.
        let represented = skipped + warmed + measured_got;
        run.intervals.push(IntervalResult {
            index,
            start_seq,
            represented_insts: represented,
            measured_insts: measured_got,
            measured_uops: meas.uops.len() as u64,
            stats,
            fingerprint: core.commit_fingerprint(),
        });
        if measured_got < measured {
            run.halted = true;
        }

        if let Some(m) = store {
            let ckpt = Checkpoint {
                seq: source.machine().seq(),
                snapshot: source.machine().arch_snapshot(),
                intervals: run.intervals.clone(),
                total_insts: run.total_insts,
                skipped_insts: run.skipped_insts,
                warmup_insts: run.warmup_insts,
                measured_insts: run.measured_insts,
            };
            m.lock()
                .expect("store lock poisoned")
                .publish_checkpoint(&key, &ckpt)
                .expect("checkpoint publication");
        }
        fresh_intervals += 1;
        if run.halted {
            break;
        }
        if stop_after_intervals.is_some_and(|n| fresh_intervals >= n) {
            return run;
        }
    }
    run
}

/// Runs a whole workload list sampled on a pool of `jobs` worker
/// threads. Results come back in workload order regardless of worker
/// count or completion order — together with the per-interval
/// fingerprints, that makes the campaign byte-identical across
/// `--jobs` widths (the same bar the full-run pool meets).
///
/// # Panics
///
/// Panics if a worker thread panics (propagated — a failed sampled run
/// is a simulator bug, not a recoverable condition).
#[must_use]
pub fn run_suite_sampled(
    workloads: &[Workload],
    cfg: &CoreConfig,
    insts: u64,
    spec: SampleSpec,
    jobs: usize,
    store: Option<&Mutex<ResultStore>>,
) -> Vec<SampledRun> {
    let jobs = jobs.max(1).min(workloads.len().max(1));
    let slots: Vec<Mutex<Option<SampledRun>>> =
        workloads.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(w) = workloads.get(i) else { break };
                let opts = SampleRunOptions { store, stop_after_intervals: None };
                let run = run_sampled(w, cfg, insts, spec, opts);
                *slots[i].lock().expect("slot lock poisoned") = Some(run);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot lock poisoned").expect("worker filled every slot"))
        .collect()
}

/// Order-sensitive fingerprint over a campaign's per-workload run
/// fingerprints — one number that must match across `--jobs` widths
/// and across kill/resume.
#[must_use]
pub fn campaign_fingerprint(runs: &[SampledRun]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for run in runs {
        for &b in &run.fingerprint().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_core::config::VpMode;
    use tvp_core::pipeline::simulate;
    use tvp_workloads::suite::by_name;

    fn spec() -> SampleSpec {
        SampleSpec::new(4_000, 600, 600).expect("valid spec")
    }

    #[test]
    fn spec_validation_and_parsing() {
        assert!(SampleSpec::new(100, 60, 50).is_err(), "warmup+measured > period");
        assert!(SampleSpec::new(100, 10, 0).is_err(), "measured must be positive");
        let s = SampleSpec::parse("1_000_000:20000:20000").expect("parses");
        assert_eq!(s, SampleSpec { period: 1_000_000, warmup: 20_000, measured: 20_000 });
        assert!(SampleSpec::parse("10:2").is_err());
        assert!((s.detail_fraction() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn sample_key_digests_are_domain_separated() {
        let cfg = CoreConfig::with_vp(VpMode::Tvp);
        let k = SampleKey::new("string_match", 20_000, &cfg, spec());
        assert_ne!(k.digest(), k.exp.digest(), "sampled and full digests never collide");
        let other = SampleKey::new(
            "string_match",
            20_000,
            &cfg,
            SampleSpec::new(4_000, 600, 601).expect("valid"),
        );
        assert_ne!(k.digest(), other.digest(), "spec is part of the identity");
        assert!(k.display().contains("~4000:600:600#"));
    }

    #[test]
    fn sampled_run_is_deterministic_and_covers_the_stream() {
        let w = by_name("pointer_chase").expect("workload");
        let cfg = CoreConfig::with_vp(VpMode::Tvp);
        let a = run_sampled(&w, &cfg, 20_000, spec(), SampleRunOptions::default());
        let b = run_sampled(&w, &cfg, 20_000, spec(), SampleRunOptions::default());
        assert_eq!(a, b, "sampled runs are pure functions of their key");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.total_insts, 20_000);
        assert_eq!(a.intervals.len(), 5);
        let represented: u64 = a.intervals.iter().map(|iv| iv.represented_insts).sum();
        assert_eq!(represented, 20_000, "weights cover the whole stream");
        assert!(a.measured_insts < a.total_insts / 4, "most of the stream is fast-forwarded");
    }

    #[test]
    fn estimate_tracks_full_simulation() {
        let w = by_name("image_filter").expect("workload");
        let cfg = CoreConfig::with_vp(VpMode::Tvp);
        let insts = 24_000;
        let full = simulate(cfg.clone(), &w.trace(insts));
        let run = run_sampled(&w, &cfg, insts, spec(), SampleRunOptions::default());
        let errors = StatErrors::compare(w.name, &full, &run.estimate());
        assert!(
            errors.passes(&DEFAULT_BOUNDS),
            "sampled stats out of bounds: {:?}",
            errors.violations(&DEFAULT_BOUNDS)
        );
    }

    #[test]
    fn halting_workload_shrinks_the_tail_interval() {
        // A tiny budget against a spec larger than the program run
        // exercises the partial-period path.
        let w = by_name("pointer_chase").expect("workload");
        let cfg = CoreConfig::with_vp(VpMode::Off);
        let run = run_sampled(&w, &cfg, 1_000, spec(), SampleRunOptions::default());
        assert_eq!(run.intervals.len(), 1);
        assert_eq!(run.total_insts, 1_000);
        assert!(run.intervals[0].measured_insts <= 600);
    }
}
