//! # tvp-bench — experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index). This library holds the shared machinery: trace preparation,
//! configuration shorthand, geometric means and machine-readable result
//! dumps.
//!
//! All binaries accept the instruction budget through the `TVP_INSTS`
//! environment variable (architectural instructions per workload;
//! default 300,000 — a scaled-down SimPoint) and write JSON next to
//! their stdout tables into `results/`.

use tvp_core::config::{CoreConfig, VpMode};
use tvp_core::pipeline::simulate;
use tvp_core::stats::SimStats;
use tvp_workloads::suite::{suite, Workload};
use tvp_workloads::trace::Trace;

pub mod cache;
pub mod distributed;
pub mod engine;
pub mod experiments;
#[cfg(test)]
mod fingerprint_tests;
pub mod jobs;
pub mod runner;
pub mod sampling;
pub mod schedbench;
pub mod store;
pub mod telemetry;

/// Default per-workload instruction budget.
pub const DEFAULT_INSTS: u64 = 300_000;

/// Parses an optional unsigned-integer setting. `Ok(None)` when unset;
/// a *set but malformed* value is an error, never a silent fallback. A
/// typo in `TVP_STORE_KILL_AFTER` used to silently disable the chaos
/// knob the crash-safety CI depends on, and a typo in `TVP_INSTS`
/// silently ran the default budget — both now fail loudly.
pub fn parse_env_u64(name: &str, raw: Option<&str>) -> Result<Option<u64>, String> {
    match raw {
        None => Ok(None),
        Some(s) => s.trim().parse::<u64>().map(Some).map_err(|_| {
            format!("{name} must be an unsigned integer, got {s:?} — fix or unset it")
        }),
    }
}

/// Reads `name` from the environment through [`parse_env_u64`],
/// exiting with code 2 (the CLI usage-error code) on a malformed
/// value.
#[must_use]
pub fn env_u64_or_exit(name: &str) -> Option<u64> {
    let raw = match std::env::var(name) {
        Ok(v) => Some(v),
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(_)) => {
            eprintln!("error: {name} is set but is not valid UTF-8 — fix or unset it");
            std::process::exit(2);
        }
    };
    match parse_env_u64(name, raw.as_deref()) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// Reads the instruction budget from `TVP_INSTS` (falls back to
/// [`DEFAULT_INSTS`]; exits with code 2 if the variable is set but
/// malformed).
#[must_use]
pub fn inst_budget() -> u64 {
    env_u64_or_exit("TVP_INSTS").unwrap_or(DEFAULT_INSTS)
}

/// A workload with its pre-generated trace (traces are deterministic,
/// so generating once per process keeps experiments comparable and
/// fast).
pub struct PreparedWorkload {
    /// The workload definition.
    pub workload: Workload,
    /// Its dynamic trace at the configured budget.
    pub trace: Trace,
}

/// Generates traces for the whole suite at the configured budget.
#[must_use]
pub fn prepare_suite(insts: u64) -> Vec<PreparedWorkload> {
    suite()
        .into_iter()
        .map(|workload| {
            let trace = workload.trace(insts);
            PreparedWorkload { workload, trace }
        })
        .collect()
}

/// Simulates one prepared workload under a VP mode (paper machine).
pub fn run_vp(p: &PreparedWorkload, vp: VpMode, spsr: bool) -> SimStats {
    let mut cfg = CoreConfig::with_vp(vp);
    cfg.spsr = spsr;
    simulate(cfg, &p.trace)
}

/// Simulates one prepared workload under an explicit configuration.
pub fn run_cfg(p: &PreparedWorkload, cfg: CoreConfig) -> SimStats {
    simulate(cfg, &p.trace)
}

/// Geometric mean of `new/old` cycle-count speedups, as the paper
/// reports (Figs. 3 and 5, Table 3).
#[must_use]
pub fn geomean_speedup(pairs: &[(SimStats, SimStats)]) -> f64 {
    if pairs.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = pairs.iter().map(|(new, base)| new.speedup_over(base).ln()).sum();
    (log_sum / pairs.len() as f64).exp()
}

/// Arithmetic mean.
#[must_use]
pub fn amean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Harmonic mean (Fig. 2's IPC average).
#[must_use]
pub fn hmean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
    }
}

/// Speedup in percent over a baseline.
#[must_use]
pub fn speedup_pct(new: &SimStats, base: &SimStats) -> f64 {
    (new.speedup_over(base) - 1.0) * 100.0
}

/// JSON-friendly snapshot of one simulation.
#[derive(Clone, Debug)]
pub struct StatsRow {
    /// Workload name.
    pub workload: &'static str,
    /// Configuration label (e.g. `"tvp+spsr"`).
    pub config: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Architectural instructions retired.
    pub insts: u64,
    /// µops retired.
    pub uops: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// VP coverage (`correct_used / eligible`).
    pub vp_coverage: f64,
    /// VP accuracy.
    pub vp_accuracy: f64,
    /// VP-misprediction pipeline flushes.
    pub vp_flushes: u64,
    /// Branch mispredictions.
    pub branch_mispredicts: u64,
    /// Integer PRF reads.
    pub prf_reads: u64,
    /// Integer PRF writes.
    pub prf_writes: u64,
    /// µops dispatched into the IQ.
    pub iq_dispatched: u64,
    /// µops issued.
    pub iq_issued: u64,
    /// Rename eliminations: zero idiom.
    pub zero_idiom: u64,
    /// Rename eliminations: one idiom.
    pub one_idiom: u64,
    /// Rename eliminations: move elimination.
    pub move_elim: u64,
    /// Rename eliminations: 9-bit idiom.
    pub nine_bit_idiom: u64,
    /// Rename eliminations: SpSR.
    pub spsr: u64,
    /// Moves blocked by the width restriction.
    pub non_me_move: u64,
}

impl StatsRow {
    /// Builds a row from a simulation result.
    #[must_use]
    pub fn new(workload: &'static str, config: impl Into<String>, s: &SimStats) -> Self {
        StatsRow {
            workload,
            config: config.into(),
            cycles: s.cycles,
            insts: s.insts_retired,
            uops: s.uops_retired,
            ipc: s.ipc(),
            vp_coverage: s.vp.coverage(),
            vp_accuracy: s.vp.accuracy(),
            vp_flushes: s.flush.vp_flushes,
            branch_mispredicts: s.flush.branch_mispredicts,
            prf_reads: s.activity.int_prf_reads,
            prf_writes: s.activity.int_prf_writes,
            iq_dispatched: s.activity.iq_dispatched,
            iq_issued: s.activity.iq_issued,
            zero_idiom: s.rename.zero_idiom,
            one_idiom: s.rename.one_idiom,
            move_elim: s.rename.move_elim,
            nine_bit_idiom: s.rename.nine_bit_idiom,
            spsr: s.rename.spsr,
            non_me_move: s.rename.non_me_move,
        }
    }
}

/// Hand-rolled JSON emission (the offline build environment has no
/// `serde`; results stay machine-readable without it).
pub mod json {
    /// Escapes a string for inclusion in a JSON document.
    #[must_use]
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Formats an `f64` as a JSON number (finite values only; NaN and
    /// infinities serialise as `null`, as `serde_json` does).
    #[must_use]
    pub fn number(x: f64) -> String {
        if x.is_finite() {
            format!("{x}")
        } else {
            "null".to_owned()
        }
    }

    /// Serialises `(key, value)` pairs as one pretty-printed object.
    #[must_use]
    pub fn object(fields: &[(&str, String)]) -> String {
        let body: Vec<String> =
            fields.iter().map(|(k, v)| format!("    \"{}\": {v}", escape(k))).collect();
        format!("{{\n{}\n  }}", body.join(",\n"))
    }

    /// Serialises pre-rendered elements as a pretty-printed array.
    #[must_use]
    pub fn array(elements: &[String]) -> String {
        if elements.is_empty() {
            return "[]".to_owned();
        }
        format!("[\n  {}\n]", elements.join(",\n  "))
    }
}

impl StatsRow {
    /// Serialises the row as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        json::object(&[
            ("workload", format!("\"{}\"", json::escape(self.workload))),
            ("config", format!("\"{}\"", json::escape(&self.config))),
            ("cycles", self.cycles.to_string()),
            ("insts", self.insts.to_string()),
            ("uops", self.uops.to_string()),
            ("ipc", json::number(self.ipc)),
            ("vp_coverage", json::number(self.vp_coverage)),
            ("vp_accuracy", json::number(self.vp_accuracy)),
            ("vp_flushes", self.vp_flushes.to_string()),
            ("branch_mispredicts", self.branch_mispredicts.to_string()),
            ("prf_reads", self.prf_reads.to_string()),
            ("prf_writes", self.prf_writes.to_string()),
            ("iq_dispatched", self.iq_dispatched.to_string()),
            ("iq_issued", self.iq_issued.to_string()),
            ("zero_idiom", self.zero_idiom.to_string()),
            ("one_idiom", self.one_idiom.to_string()),
            ("move_elim", self.move_elim.to_string()),
            ("nine_bit_idiom", self.nine_bit_idiom.to_string()),
            ("spsr", self.spsr.to_string()),
            ("non_me_move", self.non_me_move.to_string()),
        ])
    }
}

/// Writes experiment rows as JSON under `<results-dir>/<name>.json`
/// (see [`engine::results_dir`]).
///
/// # Panics
///
/// Panics if the results directory or file cannot be written — the
/// harness treats an unwritable workspace as a fatal setup error.
pub fn write_results(name: &str, rows: &[StatsRow]) {
    let dir = engine::results_dir();
    std::fs::create_dir_all(&dir).expect("create results directory");
    let path = format!("{dir}/{name}.json");
    let rendered: Vec<String> = rows.iter().map(StatsRow::to_json).collect();
    std::fs::write(&path, json::array(&rendered)).expect("write results file");
    println!("\n[results written to {path}]");
}

/// Dependency-free micro-benchmark harness (the offline build has no
/// `criterion`). Auto-calibrates iteration counts against wall-clock
/// time and reports ns/iteration; `cargo bench` wires the `benches/`
/// files straight into it via `harness = false`.
pub mod microbench {
    use std::hint::black_box;
    use std::time::Instant;

    /// Timing state handed to each benchmark closure.
    pub struct Bencher {
        ns_per_iter: f64,
    }

    impl Bencher {
        /// Calibrates and times `f`, storing the per-iteration cost.
        pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
            // Warm up and find an iteration count that runs ≥ ~50 ms.
            let mut batch: u64 = 8;
            loop {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                let elapsed = start.elapsed();
                if elapsed.as_millis() >= 50 || batch >= 1 << 28 {
                    #[allow(clippy::cast_precision_loss)]
                    let ns = elapsed.as_nanos() as f64 / batch as f64;
                    self.ns_per_iter = ns;
                    return;
                }
                batch *= 4;
            }
        }
    }

    /// Runs one named benchmark and prints its ns/iteration.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(name: &str, f: F) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        println!("{name:<40} {:>12.1} ns/iter", b.ns_per_iter);
    }
}

/// The VP flavours of Fig. 3, with display labels.
pub const VP_FLAVOURS: [(VpMode, &str); 3] =
    [(VpMode::Mvp, "Min. VP"), (VpMode::Tvp, "Tar. VP"), (VpMode::Gvp, "Gen. VP")];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_behave() {
        assert!((hmean(&[1.0, 4.0]) - 1.6).abs() < 1e-12);
        assert!((amean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        let base = SimStats { cycles: 100, ..Default::default() };
        let fast = SimStats { cycles: 80, ..Default::default() };
        let g = geomean_speedup(&[(fast, base), (base, base)]);
        assert!((g - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn env_settings_parse_loudly() {
        assert_eq!(parse_env_u64("TVP_INSTS", None), Ok(None));
        assert_eq!(parse_env_u64("TVP_INSTS", Some("300000")), Ok(Some(300_000)));
        assert_eq!(parse_env_u64("TVP_INSTS", Some(" 42\n")), Ok(Some(42)));
        // Malformed values are errors, not silent defaults — the old
        // `.ok().and_then(|s| s.parse().ok())` pattern discarded these.
        for bad in ["", "3x", "-1", "1.5", "0x10", "lots"] {
            let err = parse_env_u64("TVP_STORE_KILL_AFTER", Some(bad)).unwrap_err();
            assert!(
                err.contains("TVP_STORE_KILL_AFTER") && err.contains(&format!("{bad:?}")),
                "error should name the variable and the value: {err}"
            );
        }
    }

    #[test]
    fn stats_row_snapshot() {
        let s = SimStats { cycles: 10, insts_retired: 20, uops_retired: 22, ..Default::default() };
        let row = StatsRow::new("k", "base", &s);
        assert_eq!(row.ipc, 2.0);
        assert_eq!(row.uops, 22);
    }
}
