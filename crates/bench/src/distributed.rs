//! Distributed campaign fabric: a multi-process work-queue on the
//! durable result store (DESIGN.md §16).
//!
//! One **coordinator** pins a campaign by writing a manifest — the
//! instruction budget plus the full deduplicated schedule, in
//! schedule order — next to the store journal. Any number of
//! **worker** processes then attach to the same store directory and
//! drain the manifest:
//!
//! 1. refresh the campaign's journal view (other processes append to
//!    the same journal; replay is a pure function of the file);
//! 2. claim up to [`LEASE_BATCH`] unfinished points through exclusive
//!    lease files ([`crate::store::lease`]) and journal one `wlease`
//!    batch for the wins;
//! 3. simulate the batch on the in-process pool and publish each
//!    point through the fenced path
//!    ([`ResultStore::publish_fenced`]) — a worker whose lease was
//!    reclaimed while it simulated is detected and deduped, never
//!    double-counted;
//! 4. heartbeat (a monotonic sequence number, no wall clocks) and go
//!    to 1 until every manifest point is done, failed, or held by
//!    some other live worker.
//!
//! A **reaper** retires the leases of workers declared dead (the
//! caller names them — liveness is an orchestration fact, not
//! something the fabric guesses from clocks): each reclaimed point
//! returns to the pending pool at a bumped fencing epoch, so the next
//! worker re-runs it and the dead worker's late publish (if the
//! process was merely wedged, not dead) fences off as `stale`.
//!
//! The **merge** step is just the serial engine run against the same
//! store: every published point loads warm (fully re-verified),
//! orphans that nobody re-ran simulate locally, and assembly is
//! single-threaded in fixed experiment order — which is why serial,
//! `--jobs N` and K-process distributed campaigns produce
//! byte-identical `results/*.json` and agree on the campaign
//! fingerprint.
//!
//! Everything here is deterministic given the campaign inputs: the
//! schedule order is pinned by the manifest, blob bytes are a pure
//! function of the key, and the only nondeterminism (which worker
//! wins which lease) is confined to the journal's history — never to
//! the results.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

use crate::cache::ResultCache;
use crate::experiments::{ExpContext, Experiment};
use crate::jobs::{ExpKey, Job};
use crate::prepare_suite;
use crate::runner;
use crate::store::blob::fnv1a;
use crate::store::manifest::{self, valid_worker_id};
use crate::store::{lease, ResultStore, StoreConfig};

/// Points a worker claims per journal round-trip. Bounds both the
/// size of one atomic `wlease` journal append and the work lost when
/// a worker dies mid-batch (at most this many points need reclaim).
pub const LEASE_BATCH: usize = 64;

/// Campaign manifest file, written by the coordinator into the store
/// directory.
pub const MANIFEST_FILE: &str = "campaign.manifest";

/// Header line identifying the manifest format version.
pub const MANIFEST_HEADER: &str = "tvp-manifest 1";

/// Order-sensitive FNV-1a fold over the schedule's key digests — the
/// identity of *what a campaign simulates*. Serial, `--jobs N` and
/// K-worker runs of the same experiment set and budget compute the
/// same value; it is printed by every engine run and recorded in
/// telemetry (schema 6) so CI can compare runs without diffing files.
#[must_use]
pub fn campaign_fingerprint(digests: impl Iterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for d in digests {
        for b in d.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// The coordinator's durable statement of one campaign: the
/// instruction budget and every deduplicated point, in schedule
/// order. Workers read the budget from here (not from their own
/// flags), so a coordinator/worker budget mismatch is impossible by
/// construction; a *schedule* mismatch (different binary versions
/// enumerating different points) is detected and refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignManifest {
    /// Architectural instruction budget per workload.
    pub insts: u64,
    /// `(digest, display label)` of every point, in schedule order.
    pub points: Vec<(u64, String)>,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl CampaignManifest {
    /// Builds the manifest for a deduplicated schedule.
    #[must_use]
    pub fn from_schedule(insts: u64, schedule: &[Job]) -> Self {
        CampaignManifest {
            insts,
            points: schedule.iter().map(|j| (j.key.digest(), j.key.display())).collect(),
        }
    }

    /// Campaign id: FNV-1a over the budget and the ordered point
    /// digests. Two manifests with the same id describe the same
    /// campaign.
    #[must_use]
    pub fn id(&self) -> u64 {
        let mut bytes = Vec::with_capacity(8 + self.points.len() * 8);
        bytes.extend_from_slice(&self.insts.to_le_bytes());
        for (d, _) in &self.points {
            bytes.extend_from_slice(&d.to_le_bytes());
        }
        fnv1a(&bytes)
    }

    /// The manifest path inside a store directory.
    #[must_use]
    pub fn path(store_dir: &Path) -> std::path::PathBuf {
        store_dir.join(MANIFEST_FILE)
    }

    /// Writes the manifest atomically (scratch + fsync + rename).
    /// Every line is checksum-sealed and the trailer repeats the
    /// campaign id, so a torn or tampered manifest is detected at
    /// load, never half-trusted.
    pub fn write(&self, store_dir: &Path) -> io::Result<()> {
        let mut text = format!("{MANIFEST_HEADER}\n");
        text.push_str(&manifest::seal(&format!("insts {}", self.insts)));
        text.push('\n');
        for (digest, label) in &self.points {
            text.push_str(&manifest::seal(&format!("point {digest:016x} {label}")));
            text.push('\n');
        }
        text.push_str(&manifest::seal(&format!("end {:016x}", self.id())));
        text.push('\n');
        let tmp = store_dir.join(format!("{MANIFEST_FILE}.{}.tmp", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            io::Write::write_all(&mut f, text.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, Self::path(store_dir))
    }

    /// Loads and fully verifies a manifest: header, per-line seals,
    /// and the trailer id recomputed over the parsed content.
    pub fn load(store_dir: &Path) -> io::Result<CampaignManifest> {
        let path = Self::path(store_dir);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                invalid(format!(
                    "no campaign manifest at {} — run the coordinator (`campaign_worker \
                     manifest --store ...`) before attaching workers",
                    path.display()
                ))
            } else {
                e
            }
        })?;
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err(invalid(format!("{}: bad manifest header", path.display())));
        }
        let mut insts: Option<u64> = None;
        let mut points = Vec::new();
        let mut end: Option<u64> = None;
        for (n, line) in lines.enumerate() {
            let body = manifest::unseal(line).ok_or_else(|| {
                invalid(format!("{}: line {} fails its seal", path.display(), n + 2))
            })?;
            let mut toks = body.split(' ');
            match toks.next() {
                Some("insts") => {
                    insts = toks.next().and_then(|s| s.parse().ok());
                    if insts.is_none() {
                        return Err(invalid(format!("{}: malformed insts line", path.display())));
                    }
                }
                Some("point") => {
                    let digest =
                        toks.next().and_then(|s| u64::from_str_radix(s, 16).ok()).ok_or_else(
                            || invalid(format!("{}: malformed point line", path.display())),
                        )?;
                    let label = toks.collect::<Vec<_>>().join(" ");
                    points.push((digest, label));
                }
                Some("end") => {
                    end = toks.next().and_then(|s| u64::from_str_radix(s, 16).ok());
                }
                _ => return Err(invalid(format!("{}: unknown manifest record", path.display()))),
            }
        }
        let man = CampaignManifest {
            insts: insts.ok_or_else(|| invalid(format!("{}: missing insts", path.display())))?,
            points,
        };
        match end {
            Some(id) if id == man.id() => Ok(man),
            Some(_) => {
                Err(invalid(format!("{}: campaign id mismatch (torn or tampered)", path.display())))
            }
            None => Err(invalid(format!("{}: missing end trailer (torn write)", path.display()))),
        }
    }
}

/// What one worker invocation did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Points this worker simulated and published with a passing
    /// fence.
    pub published: u64,
    /// Publishes fenced off because the lease was reclaimed
    /// mid-simulation (deduped, not lost — the new owner's publish
    /// counts).
    pub stale: u64,
    /// Points that panicked on every attempt (journaled as `fail`).
    pub failed: u64,
    /// Lease-acquisition rounds driven.
    pub rounds: u64,
}

/// Re-enumerates the deterministic schedule this binary would run at
/// `insts` and indexes it by key digest. The manifest stores digests
/// (keys are not round-trippable through a text file — `workload` is
/// a `&'static str` into the binary), so workers rebuild the jobs
/// locally and verify the manifest is a subset.
fn schedule_for(experiments: &[Box<dyn Experiment>], insts: u64) -> (ExpContext, Vec<Job>) {
    let ctx = ExpContext { insts, prepared: prepare_suite(insts) };
    let mut cache = ResultCache::new();
    for exp in experiments {
        for job in &exp.jobs(&ctx) {
            cache.request(job);
        }
    }
    let schedule = cache.take_scheduled();
    (ctx, schedule)
}

/// Drains the campaign manifest as worker `worker`: bounded lease
/// batches, fenced publishes, monotonic heartbeats. Returns when
/// every manifest point is done/failed or held by someone else.
///
/// # Errors
///
/// Fails on an invalid worker id, a missing/corrupt manifest, a
/// manifest point this binary's schedule does not contain (version
/// mismatch), or any store I/O error.
pub fn worker_loop(
    experiments: &[Box<dyn Experiment>],
    store_dir: &Path,
    worker: &str,
    jobs: usize,
    kill_after: Option<u64>,
) -> io::Result<WorkerReport> {
    if !valid_worker_id(worker) {
        return Err(invalid(format!(
            "invalid worker id {worker:?} (alphanumeric, `_`, `-`, `.`; 1..=64 chars)"
        )));
    }
    let man = CampaignManifest::load(store_dir)?;
    let mut store = ResultStore::open_shared(StoreConfig { dir: store_dir.into(), kill_after })?;
    let (ctx, schedule) = schedule_for(experiments, man.insts);
    let by_digest: BTreeMap<u64, &Job> = schedule.iter().map(|j| (j.key.digest(), j)).collect();
    for (digest, label) in &man.points {
        if !by_digest.contains_key(digest) {
            return Err(invalid(format!(
                "manifest point {label} ({digest:016x}) is not in this binary's schedule — \
                 coordinator/worker version mismatch"
            )));
        }
    }
    let traces: BTreeMap<&str, &tvp_workloads::trace::Trace> =
        ctx.prepared.iter().map(|p| (p.workload.name, &p.trace)).collect();

    let mut report = WorkerReport::default();
    let mut settled: BTreeSet<u64> = BTreeSet::new();
    let mut seq: u64 = 0;
    loop {
        report.rounds += 1;
        seq += 1;
        lease::beat(store_dir, worker, seq)?;
        // Refresh the whole campaign's journal view — completions and
        // reclaims by other processes matter; replay is pure.
        let js =
            manifest::replay(&std::fs::read_to_string(store_dir.join(manifest::JOURNAL_FILE))?);
        let candidates: Vec<&Job> = man
            .points
            .iter()
            .filter(|(d, _)| {
                !settled.contains(d) && !js.completed.contains(d) && !js.failed.contains_key(d)
            })
            .map(|(d, _)| by_digest[d])
            .collect();
        if candidates.is_empty() {
            break;
        }
        let keys: Vec<&ExpKey> = candidates.iter().map(|j| &j.key).collect();
        let epoch_of = |d: u64| js.reclaims.get(&d).copied().unwrap_or(0) + 1;
        let won = store.acquire_lease_batch(&keys, worker, epoch_of, LEASE_BATCH)?;
        if won.is_empty() {
            // Everything left is leased by some other worker. Its
            // fate is theirs (or the reaper's) to decide.
            break;
        }
        let batch: Vec<Job> = won.iter().map(|&i| candidates[i].clone()).collect();
        let outcome = runner::run_jobs(
            &batch,
            |name| traces.get(name).unwrap_or_else(|| panic!("no trace for workload {name}")),
            jobs,
            false,
        );
        // Publish in batch (schedule) order — deterministic for the
        // kill_after chaos knob, exactly like the serial engine.
        for (key, point) in outcome.points {
            let digest = key.digest();
            if store.publish_fenced(&key, &point, worker, epoch_of(digest))? {
                report.published += 1;
            } else {
                report.stale += 1;
            }
            settled.insert(digest);
        }
        for f in &outcome.failures {
            store.record_failure(&f.key, f.attempts)?;
            lease::release(store_dir, f.key.digest())?;
            settled.insert(f.key.digest());
            report.failed += 1;
        }
    }
    Ok(report)
}

/// What one reap pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReapReport {
    /// Leases reclaimed from dead workers (points returned to the
    /// pending pool at a bumped epoch).
    pub reclaimed: u64,
    /// Leases of dead workers released without reclaim because the
    /// point already completed (died between `done` and release).
    pub released_done: u64,
    /// Torn lease files retired (writer died mid-create; owner
    /// unknowable, treated as dead at epoch 0).
    pub torn: u64,
    /// Held leases left alone (owner not in the dead set).
    pub live: u64,
}

/// Retires the leases of dead workers. `is_dead` names them —
/// liveness is decided by the orchestrator (explicit `--dead` ids,
/// or heartbeat-sequence comparison across its own observations),
/// never by this function reading a clock.
pub fn reap(store_dir: &Path, is_dead: &dyn Fn(&str) -> bool) -> io::Result<ReapReport> {
    let mut store = ResultStore::open_shared(StoreConfig::at(store_dir))?;
    let completed = store.journal_state().completed.clone();
    let reclaims = store.journal_state().reclaims.clone();
    let mut report = ReapReport::default();
    for (digest, owner) in lease::list(store_dir)? {
        match owner {
            Some(o) if is_dead(&o.worker) => {
                if completed.contains(&digest) {
                    lease::release(store_dir, digest)?;
                    report.released_done += 1;
                } else {
                    store.reclaim_lease(digest, o.epoch)?;
                    report.reclaimed += 1;
                }
            }
            Some(_) => report.live += 1,
            None => {
                report.torn += 1;
                if completed.contains(&digest) {
                    lease::release(store_dir, digest)?;
                } else {
                    let epoch = reclaims.get(&digest).copied().unwrap_or(0);
                    store.reclaim_lease(digest, epoch)?;
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::SimPoint;
    use tvp_core::config::{CoreConfig, VpMode};

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tvp-dist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tempdir");
        dir
    }

    fn jobs3() -> Vec<Job> {
        vec![
            Job::new("a", 100, CoreConfig::table2()),
            Job::new("b", 100, CoreConfig::with_vp(VpMode::Tvp)),
            Job::new("c", 200, CoreConfig::table2()),
        ]
    }

    #[test]
    fn fingerprint_is_order_sensitive_and_stable() {
        let a = campaign_fingerprint([1u64, 2, 3].into_iter());
        let b = campaign_fingerprint([1u64, 2, 3].into_iter());
        let c = campaign_fingerprint([3u64, 2, 1].into_iter());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, campaign_fingerprint([1u64, 2].into_iter()));
    }

    #[test]
    fn manifest_round_trips_and_pins_the_campaign() {
        let dir = tempdir("manifest");
        let man = CampaignManifest::from_schedule(100, &jobs3());
        man.write(&dir).expect("write manifest");
        let back = CampaignManifest::load(&dir).expect("load manifest");
        assert_eq!(man, back);
        assert_eq!(man.id(), back.id());
        // Same points at a different budget is a different campaign.
        let other = CampaignManifest::from_schedule(200, &jobs3());
        assert_ne!(man.id(), other.id());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_rejects_torn_and_tampered_files() {
        let dir = tempdir("manifest-torn");
        let man = CampaignManifest::from_schedule(100, &jobs3());
        man.write(&dir).expect("write manifest");
        let path = CampaignManifest::path(&dir);
        let text = std::fs::read_to_string(&path).expect("read back");

        // Torn: drop the end trailer.
        let torn: String =
            text.lines().filter(|l| !l.starts_with("end ")).map(|l| format!("{l}\n")).collect();
        std::fs::write(&path, torn).expect("write torn");
        let err = CampaignManifest::load(&dir).expect_err("torn manifest must not load");
        assert!(err.to_string().contains("end trailer"), "{err}");

        // Tampered: flip a digest nibble inside a sealed line.
        let tampered = text.replacen("point", "po1nt", 1);
        std::fs::write(&path, tampered).expect("write tampered");
        let err = CampaignManifest::load(&dir).expect_err("tampered manifest must not load");
        assert!(err.to_string().contains("seal"), "{err}");

        // Missing entirely: the error tells the operator what to run.
        std::fs::remove_file(&path).expect("remove manifest");
        let err = CampaignManifest::load(&dir).expect_err("missing manifest must not load");
        assert!(err.to_string().contains("coordinator"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reap_reclaims_dead_releases_done_and_spares_live() {
        let dir = tempdir("reap");
        let jobs = jobs3();
        let keys: Vec<&ExpKey> = jobs.iter().map(|j| &j.key).collect();
        let mut store = ResultStore::open(StoreConfig::at(&dir)).expect("open store");

        // w0 (dead) holds keys[0] unfinished and keys[1] completed
        // (killed between `done` and release); w1 (live) holds
        // keys[2].
        store.acquire_lease_batch(&keys[0..2], "w0", |_| 1, LEASE_BATCH).expect("w0 leases");
        store.acquire_lease_batch(&keys[2..3], "w1", |_| 1, LEASE_BATCH).expect("w1 lease");
        let point = SimPoint { stats: tvp_core::stats::SimStats::default() };
        // Publish keys[1] without releasing its lease — the
        // done-then-die shape (publish_fenced would release, so
        // journal `done` directly through the plain publish path).
        store.publish(&jobs[1].key, &point).expect("publish");

        let report = reap(&dir, &|w| w == "w0").expect("reap");
        assert_eq!(
            report,
            ReapReport { reclaimed: 1, released_done: 1, torn: 0, live: 1 },
            "one unfinished lease reclaimed, one done lease released, w1 untouched"
        );
        // The reclaimed point is pending again at a bumped epoch; the
        // live lease survives.
        let store = ResultStore::open_shared(StoreConfig::at(&dir)).expect("reopen");
        assert!(store.journal_state().pending.contains(&jobs[0].key.digest()));
        assert_eq!(store.journal_state().reclaims.get(&jobs[0].key.digest()), Some(&1));
        let held = lease::list(&dir).expect("list leases");
        assert_eq!(held.len(), 1, "only w1's lease remains: {held:?}");
        assert_eq!(held[0].0, jobs[2].key.digest());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
