//! Property tests for the [`ExpKey`](crate::jobs::ExpKey)
//! configuration fingerprint.
//!
//! The result cache dedupes simulation points by fingerprint, so a
//! collision between *different* configurations would silently reuse
//! the wrong simulation. The fingerprint is the structural `Debug`
//! rendering of the complete [`CoreConfig`]; these tests lock that it
//! reacts to every field:
//!
//! - a mutator table perturbs each `CoreConfig` field (and a
//!   representative field of every nested sub-config) and asserts the
//!   key changes;
//! - a self-auditing check parses the `Debug` rendering and fails if a
//!   newly added `CoreConfig` field has no mutator — extending the
//!   struct without extending this test is a test failure, not a
//!   silent gap;
//! - a property test applies random mutator subsets and asserts the
//!   fingerprint never collides with the base configuration.

use tvp_core::config::{CoreConfig, RecoveryPolicy, VpMode};
use tvp_predictors::vtage::{PredMode, VtageConfig};

use crate::jobs::ExpKey;

/// One named single-field perturbation. Every mutator must produce a
/// config whose fingerprint differs from `table2()`.
type Mutator = (&'static str, fn(&mut CoreConfig));

fn mutators() -> Vec<Mutator> {
    vec![
        ("fetch_width", |c| c.fetch_width += 1),
        ("fetch_queue", |c| c.fetch_queue += 1),
        ("decode_width", |c| c.decode_width += 1),
        ("rename_width", |c| c.rename_width += 1),
        ("issue_width", |c| c.issue_width += 1),
        ("commit_width", |c| c.commit_width += 1),
        ("fetch_to_decode", |c| c.fetch_to_decode += 1),
        ("decode_to_rename", |c| c.decode_to_rename += 1),
        ("rename_to_dispatch", |c| c.rename_to_dispatch += 1),
        ("taken_branch_penalty", |c| c.taken_branch_penalty += 1),
        ("redirect_penalty", |c| c.redirect_penalty += 1),
        ("btb_miss_penalty", |c| c.btb_miss_penalty += 1),
        ("rob_size", |c| c.rob_size += 1),
        ("iq_size", |c| c.iq_size += 1),
        ("lq_size", |c| c.lq_size += 1),
        ("sq_size", |c| c.sq_size += 1),
        ("int_regs", |c| c.int_regs += 1),
        ("fp_regs", |c| c.fp_regs += 1),
        ("move_elim", |c| c.move_elim = !c.move_elim),
        ("zero_one_idiom", |c| c.zero_one_idiom = !c.zero_one_idiom),
        ("nine_bit_idiom", |c| c.nine_bit_idiom = !c.nine_bit_idiom),
        ("vp", |c| c.vp = VpMode::Tvp),
        ("vtage", |c| c.vtage = Some(VtageConfig::paper(PredMode::Narrow9))),
        ("vtage.conf_bits", |c| {
            let mut v = VtageConfig::paper(PredMode::Narrow9);
            v.conf_bits += 1;
            c.vtage = Some(v);
        }),
        ("spsr", |c| c.spsr = !c.spsr),
        ("silence_cycles", |c| c.silence_cycles += 1),
        ("recovery", |c| c.recovery = RecoveryPolicy::Replay),
        ("adaptive_silencing", |c| c.adaptive_silencing = !c.adaptive_silencing),
        ("tage.base_log2", |c| c.tage.base_log2 += 1),
        ("tage.seed", |c| c.tage.seed ^= 1),
        ("mem.dram_latency", |c| c.mem.dram_latency += 1),
        ("mem.l1d.latency", |c| c.mem.l1d.latency += 1),
        ("mem.stride_prefetcher", |c| c.mem.stride_prefetcher = !c.mem.stride_prefetcher),
        ("mem.stride_degree", |c| c.mem.stride_degree += 1),
        ("mem.ampm_prefetcher", |c| c.mem.ampm_prefetcher = !c.mem.ampm_prefetcher),
        ("audit_every", |c| c.audit_every += 1),
        ("chaos", |c| c.chaos = Some(tvp_chaos::ChaosConfig::campaign(7))),
        ("chaos.seed", |c| c.chaos = Some(tvp_chaos::ChaosConfig::campaign(8))),
        ("watchdog_cycles", |c| c.watchdog_cycles += 1),
        ("vp_kill_switch", |c| c.vp_kill_switch = !c.vp_kill_switch),
        ("spsr_kill_switch", |c| c.spsr_kill_switch = !c.spsr_kill_switch),
        ("auto_throttle", |c| c.auto_throttle = !c.auto_throttle),
        ("throttle_window", |c| c.throttle_window += 1),
        ("throttle_threshold", |c| c.throttle_threshold += 1),
    ]
}

/// The field names at the top level of a non-pretty `Debug` struct
/// rendering (`CoreConfig { a: ..., b: Nested { .. }, ... }`).
fn top_level_fields(debug: &str) -> Vec<String> {
    let open = debug.find('{').expect("struct Debug has a brace");
    let close = debug.rfind('}').expect("struct Debug closes");
    let body = &debug[open + 1..close];
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut token = String::new();
    let mut expecting_name = true;
    for ch in body.chars() {
        match ch {
            '{' | '(' | '[' => depth += 1,
            '}' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                expecting_name = true;
                token.clear();
            }
            ':' if depth == 0 && expecting_name => {
                fields.push(token.trim().to_owned());
                expecting_name = false;
            }
            _ if depth == 0 && expecting_name => token.push(ch),
            _ => {}
        }
    }
    fields
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    fn key(cfg: &CoreConfig) -> ExpKey {
        ExpKey::new("w", 1_000, cfg)
    }

    #[test]
    fn every_single_field_mutation_changes_the_fingerprint() {
        let base = key(&CoreConfig::table2());
        for (name, mutate) in mutators() {
            let mut cfg = CoreConfig::table2();
            mutate(&mut cfg);
            assert_ne!(
                base,
                key(&cfg),
                "mutating `{name}` did not change the fingerprint — the cache would \
                 serve a stale point for this configuration"
            );
        }
    }

    #[test]
    fn mutator_table_covers_every_core_config_field() {
        let rendered = format!("{:?}", CoreConfig::table2());
        let fields = top_level_fields(&rendered);
        assert!(fields.len() >= 30, "Debug parse failed? got {fields:?}");
        let muts = mutators();
        for field in &fields {
            let covered = muts
                .iter()
                .any(|(name, _)| *name == field || name.starts_with(&format!("{field}.")));
            assert!(
                covered,
                "CoreConfig field `{field}` has no fingerprint mutator — a new field \
                 was added; extend mutators() so the dedup-safety property keeps \
                 covering the whole configuration"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random multi-field mutations never collide with the base key.
        #[test]
        fn random_mutation_subsets_never_collide(picks in proptest::collection::vec(any::<u16>(), 1..6)) {
            let base = key(&CoreConfig::table2());
            let muts = mutators();
            let mut cfg = CoreConfig::table2();
            for p in &picks {
                let (_, mutate) = muts[*p as usize % muts.len()];
                mutate(&mut cfg);
            }
            // Toggling a bool twice restores it; the property only
            // holds when the net mutation is non-empty.
            if format!("{cfg:?}") != format!("{:?}", CoreConfig::table2()) {
                prop_assert_ne!(&base, &key(&cfg));
            }
        }

        /// The digest tracks key identity for every budget/seed shape.
        #[test]
        fn digest_matches_key_equality(insts in 1u64..1_000_000, seed in any::<u64>()) {
            let cfg = CoreConfig::table2().with_chaos(tvp_chaos::ChaosConfig::campaign(seed));
            let a = ExpKey::new("w", insts, &cfg);
            let b = ExpKey::new("w", insts, &cfg);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(a.digest(), b.digest());
            let c = ExpKey::new("w", insts.wrapping_add(1), &cfg);
            prop_assert_ne!(&a, &c);
        }
    }
}
