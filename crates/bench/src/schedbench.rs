//! Scheduler micro-benchmark — the perf trajectory record.
//!
//! `cargo xtask perf` (a thin wrapper over the `perf_scheduler` bin)
//! times the simulator hot loop on the stock workloads with std-only
//! timers: each (workload, config) point runs `reps` times and reports
//! the **min-of-K** wall time, the classic noise-rejection estimator
//! for a deterministic computation on a shared host. Results land in
//! `BENCH_scheduler.json` (schema-versioned, see DESIGN.md §12); a
//! previous record can be folded in with `--baseline FILE` so one file
//! carries the before/after pair and the speedup.
//!
//! The benchmark is also an equivalence probe: every repetition of a
//! point must simulate the exact same cycle count, and a `--baseline`
//! record taken at the same instruction budget must agree on every
//! point's simulated cycles — either disagreement aborts the run.

use std::time::{Duration, Instant};

use tvp_core::config::{CoreConfig, VpMode};
use tvp_core::pipeline::Core;
use tvp_workloads::suite::base_suite;
use tvp_workloads::trace::Trace;

use crate::engine::SMOKE_INSTS;
use crate::json;
use crate::DEFAULT_INSTS;

/// `BENCH_scheduler.json` record schema version.
pub const SCHED_BENCH_SCHEMA: u32 = 1;

/// Default output path (workspace root).
pub const SCHED_BENCH_FILE: &str = "BENCH_scheduler.json";

/// The configurations each workload is timed under.
const CONFIGS: [(&str, VpMode, bool); 2] =
    [("base", VpMode::Off, false), ("tvp_spsr", VpMode::Tvp, true)];

/// Parsed CLI for the scheduler micro-benchmark.
#[derive(Clone, Debug)]
pub struct BenchOptions {
    /// Architectural instructions per workload.
    pub insts: u64,
    /// Repetitions per point (min-of-K).
    pub reps: u32,
    /// Smoke mode (CI-sized budget unless `--insts` overrides).
    pub smoke: bool,
    /// Previous record to embed as the baseline.
    pub baseline: Option<String>,
    /// Output path.
    pub out: String,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            insts: DEFAULT_INSTS,
            reps: 3,
            smoke: false,
            baseline: None,
            out: SCHED_BENCH_FILE.to_owned(),
        }
    }
}

/// Parses `[--smoke] [--insts N] [--reps K] [--baseline FILE]
/// [--out FILE]`.
///
/// # Panics
///
/// Exits the process (code 2) on unknown or malformed arguments.
#[must_use]
pub fn parse_bench_options(args: impl Iterator<Item = String>) -> BenchOptions {
    let usage = || -> ! {
        eprintln!(
            "usage: perf_scheduler [--smoke] [--insts N] [--reps K] [--baseline FILE] [--out FILE]"
        );
        std::process::exit(2);
    };
    let mut opts = BenchOptions::default();
    let mut insts_flag: Option<u64> = None;
    let args: Vec<String> = args.collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--insts" => {
                insts_flag =
                    Some(it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--reps" => {
                let k: u32 = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                if k == 0 {
                    usage();
                }
                opts.reps = k;
            }
            "--baseline" => opts.baseline = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--out" => opts.out = it.next().unwrap_or_else(|| usage()).clone(),
            _ => usage(),
        }
    }
    opts.insts = insts_flag.unwrap_or(if opts.smoke { SMOKE_INSTS } else { DEFAULT_INSTS });
    opts
}

/// One timed (workload, config) point.
#[derive(Clone, Debug)]
pub struct BenchPoint {
    /// Workload name.
    pub workload: &'static str,
    /// Configuration label.
    pub config: &'static str,
    /// Simulated cycles (identical across repetitions by construction).
    pub cycles: u64,
    /// Best (minimum) wall time over the repetitions.
    pub best_wall: Duration,
}

impl BenchPoint {
    /// Simulated cycles per second of host wall time, at the best rep.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.best_wall.as_secs_f64();
        if secs > 0.0 {
            self.cycles as f64 / secs
        } else {
            0.0
        }
    }
}

/// A baseline point recovered from a previous record.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselinePoint {
    /// Workload name.
    pub workload: String,
    /// Configuration label.
    pub config: String,
    /// Its simulated cycle count (absent in hand-edited records).
    pub cycles: Option<u64>,
    /// Its recorded throughput.
    pub cycles_per_sec: f64,
}

/// Times one point: `reps` full simulations, min-of-K wall time.
///
/// # Panics
///
/// Panics if repetitions disagree on the simulated cycle count — the
/// simulator must be deterministic, so disagreement is a bug.
#[must_use]
pub fn time_point(
    workload: &'static str,
    config: &'static str,
    cfg: &CoreConfig,
    trace: &Trace,
    reps: u32,
) -> BenchPoint {
    let mut cycles = 0u64;
    let mut best = Duration::MAX;
    for rep in 0..reps {
        let mut core = Core::new(cfg.clone());
        let start = Instant::now();
        let stats = core.run(trace);
        let wall = start.elapsed();
        assert!(
            rep == 0 || stats.cycles == cycles,
            "{workload}/{config}: rep {rep} simulated {} cycles, rep 0 simulated {cycles}",
            stats.cycles
        );
        cycles = stats.cycles;
        best = best.min(wall);
    }
    BenchPoint { workload, config, cycles, best_wall: best }
}

/// Runs the full benchmark: every stock workload under every config.
/// Progress goes to stderr; the record is returned, not yet written.
#[must_use]
pub fn run_bench(opts: &BenchOptions) -> Vec<BenchPoint> {
    let mut points = Vec::new();
    for workload in base_suite() {
        let trace = workload.trace(opts.insts);
        for (label, vp, spsr) in CONFIGS {
            let mut cfg = CoreConfig::with_vp(vp);
            cfg.spsr = spsr;
            let point = time_point(workload.name, label, &cfg, &trace, opts.reps);
            eprintln!(
                "[perf] {:<16} {:<9} {:>9} cycles  {:>8.1}ms best-of-{}  {:>6.2}M cyc/s",
                point.workload,
                point.config,
                point.cycles,
                point.best_wall.as_secs_f64() * 1e3,
                opts.reps,
                point.cycles_per_sec() / 1e6,
            );
            points.push(point);
        }
    }
    points
}

/// Geometric mean of per-point throughputs.
#[must_use]
pub fn geomean_cps(cps: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0u32);
    for x in cps {
        if x > 0.0 {
            log_sum += x.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / f64::from(n)).exp()
    }
}

/// Renders one point as a single-line JSON object. The fixed key order
/// is load-bearing: [`scan_baseline`] recovers baseline points from a
/// previous record by scanning these lines.
fn point_json(p: &BenchPoint, baseline: Option<&BaselinePoint>) -> String {
    let mut s = format!(
        "{{\"workload\": \"{}\", \"config\": \"{}\", \"cycles\": {}, \
         \"best_wall_seconds\": {}, \"cycles_per_sec\": {}",
        json::escape(p.workload),
        json::escape(p.config),
        p.cycles,
        json::number(p.best_wall.as_secs_f64()),
        json::number(p.cycles_per_sec()),
    );
    if let Some(b) = baseline {
        let speedup =
            if b.cycles_per_sec > 0.0 { p.cycles_per_sec() / b.cycles_per_sec } else { 0.0 };
        s.push_str(&format!(
            ", \"baseline_cycles_per_sec\": {}, \"speedup\": {}",
            json::number(b.cycles_per_sec),
            json::number(speedup),
        ));
    }
    s.push('}');
    s
}

/// Recovers baseline points (workload, config, simulated cycles,
/// cycles/s) from a record
/// this module wrote earlier. Not a general JSON parser: it relies on
/// the one-point-per-line layout and fixed key order of [`to_json`],
/// which is all `--baseline` ever reads.
#[must_use]
pub fn scan_baseline(src: &str) -> Vec<BaselinePoint> {
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let end = rest.find([',', '}'])?;
        Some(rest[..end].trim())
    }
    let mut out = Vec::new();
    for line in src.lines() {
        let line = line.trim();
        if !line.starts_with("{\"workload\":") {
            continue;
        }
        let (Some(w), Some(c), Some(cps)) =
            (field(line, "workload"), field(line, "config"), field(line, "cycles_per_sec"))
        else {
            continue;
        };
        let Ok(cycles_per_sec) = cps.parse::<f64>() else { continue };
        out.push(BaselinePoint {
            workload: w.trim_matches('"').to_owned(),
            config: c.trim_matches('"').to_owned(),
            cycles: field(line, "cycles").and_then(|s| s.parse().ok()),
            cycles_per_sec,
        });
    }
    out
}

/// Recovers the root `insts` budget from a previous record (the first
/// `"insts": N` line that is not inside a point object).
#[must_use]
pub fn scan_baseline_insts(src: &str) -> Option<u64> {
    src.lines()
        .map(str::trim)
        .find(|l| l.starts_with("\"insts\":"))
        .and_then(|l| l["\"insts\":".len()..].trim().trim_end_matches(',').parse().ok())
}

/// Cross-checks simulated cycle counts against a baseline record taken
/// at the same instruction budget: behaviour preservation means every
/// matched (workload, config) point must simulate the *exact* same
/// cycle count. Returns one description per mismatch.
#[must_use]
pub fn equivalence_mismatches(points: &[BenchPoint], baseline: &[BaselinePoint]) -> Vec<String> {
    let mut out = Vec::new();
    for p in points {
        let matched = baseline.iter().find(|b| b.workload == p.workload && b.config == p.config);
        if let Some(b) = matched {
            if let Some(bc) = b.cycles {
                if bc != p.cycles {
                    out.push(format!(
                        "{}/{}: baseline simulated {bc} cycles, this run {}",
                        p.workload, p.config, p.cycles
                    ));
                }
            }
        }
    }
    out
}

/// Serialises the record. `baseline` points (from a previous record)
/// are matched to current points by (workload, config); the headline
/// `speedup` is the ratio of geometric-mean throughputs over the
/// matched points.
#[must_use]
pub fn to_json(opts: &BenchOptions, points: &[BenchPoint], baseline: &[BaselinePoint]) -> String {
    let rendered: Vec<String> = points
        .iter()
        .map(|p| {
            let b = baseline.iter().find(|b| b.workload == p.workload && b.config == p.config);
            point_json(p, b)
        })
        .collect();
    let geomean = geomean_cps(points.iter().map(BenchPoint::cycles_per_sec));
    let mut fields = vec![
        ("schema", SCHED_BENCH_SCHEMA.to_string()),
        ("insts", opts.insts.to_string()),
        ("reps", opts.reps.to_string()),
        ("smoke", opts.smoke.to_string()),
        ("points", json::array(&rendered)),
        ("geomean_cycles_per_sec", json::number(geomean)),
    ];
    let matched: Vec<f64> = points
        .iter()
        .filter_map(|p| {
            baseline
                .iter()
                .find(|b| b.workload == p.workload && b.config == p.config)
                .map(|b| b.cycles_per_sec)
        })
        .collect();
    if !matched.is_empty() {
        let base_geomean = geomean_cps(matched.iter().copied());
        let speedup = if base_geomean > 0.0 { geomean / base_geomean } else { 0.0 };
        fields.push(("baseline_geomean_cycles_per_sec", json::number(base_geomean)));
        fields.push(("speedup", json::number(speedup)));
    }
    json::object(&fields.iter().map(|(k, v)| (*k, v.clone())).collect::<Vec<_>>())
}

/// Full bin body: parse args, run, merge baseline, write the record.
///
/// # Panics
///
/// Panics if the output file cannot be written, a `--baseline` file
/// cannot be read (fatal setup errors), or a baseline taken at the
/// same instruction budget disagrees on any point's simulated cycle
/// count — a perf comparison is only meaningful between behaviourally
/// identical simulators, so disagreement is a correctness bug, not a
/// perf result.
pub fn run_main(args: impl Iterator<Item = String>) {
    let opts = parse_bench_options(args);
    let mut baseline_insts = None;
    let baseline = opts.baseline.as_deref().map_or_else(Vec::new, |path| {
        let src = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        baseline_insts = scan_baseline_insts(&src);
        let points = scan_baseline(&src);
        assert!(!points.is_empty(), "baseline {path} holds no points");
        points
    });
    eprintln!(
        "[perf] {} insts/workload, min-of-{}{}",
        opts.insts,
        opts.reps,
        if opts.smoke { " (smoke)" } else { "" }
    );
    let points = run_bench(&opts);
    if !baseline.is_empty() {
        if baseline_insts == Some(opts.insts) {
            let mismatches = equivalence_mismatches(&points, &baseline);
            assert!(
                mismatches.is_empty(),
                "simulated-cycle divergence vs baseline:\n  {}",
                mismatches.join("\n  ")
            );
            eprintln!("[perf] equivalence: simulated cycles match the baseline on every point");
        } else {
            eprintln!(
                "[perf] note: baseline budget {:?} != {} insts — cycle cross-check skipped",
                baseline_insts, opts.insts
            );
        }
    }
    let json = to_json(&opts, &points, &baseline);
    std::fs::write(&opts.out, &json).expect("write scheduler benchmark record");
    let geomean = geomean_cps(points.iter().map(BenchPoint::cycles_per_sec));
    eprintln!("[perf] geomean {:.2}M simulated cycles/s — written to {}", geomean / 1e6, opts.out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points() -> Vec<BenchPoint> {
        vec![
            BenchPoint {
                workload: "string_match",
                config: "base",
                cycles: 1_000_000,
                best_wall: Duration::from_millis(250),
            },
            BenchPoint {
                workload: "string_match",
                config: "tvp_spsr",
                cycles: 900_000,
                best_wall: Duration::from_millis(300),
            },
        ]
    }

    #[test]
    fn record_roundtrips_through_baseline_scan() {
        let opts = BenchOptions { insts: 1000, reps: 2, ..Default::default() };
        let json = to_json(&opts, &sample_points(), &[]);
        for field in ["\"schema\": 1", "\"points\"", "\"geomean_cycles_per_sec\""] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        let scanned = scan_baseline(&json);
        assert_eq!(scanned.len(), 2);
        assert_eq!(scanned[0].workload, "string_match");
        assert_eq!(scanned[0].config, "base");
        assert_eq!(scanned[0].cycles, Some(1_000_000));
        assert!((scanned[0].cycles_per_sec - 4_000_000.0).abs() < 1.0);
        assert_eq!(scan_baseline_insts(&json), Some(1000));
    }

    #[test]
    fn equivalence_check_flags_cycle_divergence() {
        let points = sample_points();
        let agree = scan_baseline(&to_json(
            &BenchOptions { insts: 1000, reps: 2, ..Default::default() },
            &points,
            &[],
        ));
        assert!(equivalence_mismatches(&points, &agree).is_empty());

        let mut diverged = agree.clone();
        diverged[1].cycles = Some(900_001);
        let mismatches = equivalence_mismatches(&points, &diverged);
        assert_eq!(mismatches.len(), 1);
        assert!(mismatches[0].contains("string_match/tvp_spsr"), "{}", mismatches[0]);

        // A baseline without cycle counts (hand-edited) checks nothing.
        let mut blind = agree;
        for b in &mut blind {
            b.cycles = None;
        }
        assert!(equivalence_mismatches(&points, &blind).is_empty());
    }

    #[test]
    fn baseline_merge_adds_speedup_fields() {
        let opts = BenchOptions { insts: 1000, reps: 2, ..Default::default() };
        let baseline = vec![BaselinePoint {
            workload: "string_match".to_owned(),
            config: "base".to_owned(),
            cycles: None,
            cycles_per_sec: 2_000_000.0,
        }];
        let json = to_json(&opts, &sample_points(), &baseline);
        assert!(json.contains("\"baseline_cycles_per_sec\": 2000000"), "{json}");
        assert!(json.contains("\"speedup\": 2"), "{json}");
        assert!(json.contains("\"baseline_geomean_cycles_per_sec\""), "{json}");
    }

    #[test]
    fn geomean_ignores_empty_and_zero() {
        assert!((geomean_cps([4.0, 9.0].into_iter()) - 6.0).abs() < 1e-9);
        assert!(geomean_cps(std::iter::empty()).abs() < f64::EPSILON);
    }

    #[test]
    fn smoke_bench_runs_and_is_deterministic() {
        // One tiny point end to end: exercises the determinism assert.
        let workload = tvp_workloads::suite::by_name("string_match").expect("kernel exists");
        let trace = workload.trace(2_000);
        let cfg = CoreConfig::with_vp(VpMode::Off);
        let p = time_point("string_match", "base", &cfg, &trace, 2);
        assert!(p.cycles > 0);
        assert!(p.cycles_per_sec() > 0.0);
    }
}
