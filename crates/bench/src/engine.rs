//! The experiment engine: enumerate → dedupe → simulate → assemble.
//!
//! Used by `run_all` and by every per-figure binary. The phases are:
//!
//! 1. **prepare** — generate every workload trace once;
//! 2. **enumerate** — collect each experiment's [`Job`]s and push them
//!    through the [`ResultCache`], which dedupes shared points (the
//!    VP-off baseline appears in most experiments but simulates once);
//!    with a durable store attached (`--store` / `$TVP_STORE_DIR`),
//!    already-published points load warm — fully re-verified — and
//!    leave the schedule, so a killed campaign resumes where it died;
//! 3. **simulate** — run the deduplicated cold schedule on the
//!    work-stealing pool ([`runner::run_jobs`]), retrying each
//!    panicked job once, then publish every fresh point durably;
//! 4. **assemble** — single-threaded, in fixed experiment order: print
//!    each experiment's tables and write its `results/*.json` from
//!    cached points only.
//!
//! Failures never abort the sequence: a panicked job is recorded with
//! its [`ExpKey`], experiments that depend on it are skipped (and
//! listed), every other experiment still assembles, and the process
//! exits non-zero at the end.
//!
//! Determinism: simulation is a pure function of (trace, config), the
//! schedule is keyed, and assembly is ordered — so `--jobs 1` and
//! `--jobs N` produce byte-identical results files.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use crate::cache::ResultCache;
use crate::experiments::{ExpContext, Experiment, ResultSet};
use crate::jobs::ExpKey;
use crate::runner::{self, JobFailure};
use crate::store::{LoadOutcome, ResultStore, StoreConfig, StoreCounters};
use crate::telemetry::{Telemetry, TELEMETRY_SCHEMA};
use crate::{prepare_suite, DEFAULT_INSTS};

/// Instruction budget used by `--smoke` (CI-sized).
pub const SMOKE_INSTS: u64 = 20_000;

/// Parsed engine options, shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Worker threads (`--jobs N`); `None` sizes to available cores.
    pub workers: Option<usize>,
    /// Architectural instructions per workload.
    pub insts: u64,
    /// Smoke mode (CI-sized budget unless `--insts` overrides).
    pub smoke: bool,
    /// Per-job progress lines on stderr.
    pub progress: bool,
    /// Emit the raw per-job timing array in telemetry (`--per-job`).
    pub per_job: bool,
    /// Durable result store directory (`--store DIR` /
    /// `$TVP_STORE_DIR`); `None` runs without a store.
    pub store_dir: Option<PathBuf>,
    /// Chaos knob (`$TVP_STORE_KILL_AFTER`): deliberately exit with
    /// [`crate::store::KILL_EXIT_CODE`] after N blob publications.
    pub store_kill_after: Option<u64>,
    /// Results directory override; `None` resolves [`results_dir`]
    /// (env / default). Tests use the override to avoid mutating
    /// process-wide environment from parallel test threads.
    pub results_dir: Option<String>,
    /// Telemetry path override; `None` resolves
    /// [`Telemetry::default_path`].
    pub telemetry_path: Option<String>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            workers: None,
            insts: DEFAULT_INSTS,
            smoke: false,
            progress: false,
            per_job: false,
            store_dir: None,
            store_kill_after: None,
            results_dir: None,
            telemetry_path: None,
        }
    }
}

/// Parses the common experiment CLI: `[--jobs N] [--smoke]
/// [--insts N] [--progress] [--per-job] [--store DIR]`. Budget
/// precedence: `--insts` flag, then the `TVP_INSTS` environment
/// variable, then the smoke/default budget. Store precedence:
/// `--store` flag, then `$TVP_STORE_DIR`; the kill-resume chaos knob
/// is environment-only (`$TVP_STORE_KILL_AFTER`).
///
/// # Panics
///
/// Exits the process (code 2) on unknown or malformed arguments.
#[must_use]
pub fn parse_run_options(args: impl Iterator<Item = String>) -> RunOptions {
    let usage = || -> ! {
        eprintln!(
            "usage: <experiment> [--jobs N] [--smoke] [--insts N] [--progress] [--per-job] \
             [--store DIR]"
        );
        std::process::exit(2);
    };
    let mut workers = None;
    let mut insts_flag: Option<u64> = None;
    let mut smoke = false;
    let mut progress = false;
    let mut per_job = false;
    let mut store_flag: Option<PathBuf> = None;
    let args: Vec<String> = args.collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let n: usize = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                if n == 0 {
                    usage();
                }
                workers = Some(n);
            }
            "--smoke" => smoke = true,
            "--insts" => {
                insts_flag =
                    Some(it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--progress" => progress = true,
            "--per-job" => per_job = true,
            "--store" => {
                store_flag = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            _ => usage(),
        }
    }
    // Environment settings fail loudly: a malformed value exits with a
    // message rather than silently running the default (which used to
    // disarm the TVP_STORE_KILL_AFTER chaos knob CI relies on).
    let insts = insts_flag.or_else(|| crate::env_u64_or_exit("TVP_INSTS")).unwrap_or(if smoke {
        SMOKE_INSTS
    } else {
        DEFAULT_INSTS
    });
    let store_dir = store_flag.or_else(|| std::env::var_os("TVP_STORE_DIR").map(PathBuf::from));
    let store_kill_after = crate::env_u64_or_exit("TVP_STORE_KILL_AFTER");
    RunOptions {
        workers,
        insts,
        smoke,
        progress,
        per_job,
        store_dir,
        store_kill_after,
        results_dir: None,
        telemetry_path: None,
    }
}

/// Resolves the results directory (`$TVP_RESULTS_DIR`, default
/// `results`).
#[must_use]
pub fn results_dir() -> String {
    std::env::var("TVP_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned())
}

/// What one engine invocation produced, beyond the files on disk.
pub struct EngineReport {
    /// Jobs that panicked, with their keys.
    pub failures: Vec<JobFailure>,
    /// Experiments skipped because one of their points failed, with
    /// the missing keys.
    pub skipped: Vec<(&'static str, Vec<ExpKey>)>,
    /// Performance record of this invocation.
    pub telemetry: Telemetry,
}

/// Runs `experiments` end to end: enumerate, dedupe, simulate on the
/// pool, assemble in order, write results JSON and telemetry.
///
/// # Panics
///
/// Panics if the results directory cannot be created or a results
/// file cannot be written (fatal setup errors); job panics are
/// *contained* and reported through the returned [`EngineReport`].
pub fn run(experiments: &[Box<dyn Experiment>], opts: &RunOptions) -> EngineReport {
    let total_start = Instant::now();

    // 1. prepare —————————————————————————————————————————————————————
    eprintln!("[engine] generating workload traces ({} insts each)...", opts.insts);
    let prepare_start = Instant::now();
    let ctx = ExpContext { insts: opts.insts, prepared: prepare_suite(opts.insts) };
    let prepare = prepare_start.elapsed();

    // 2. enumerate + dedupe ——————————————————————————————————————————
    let mut cache = ResultCache::new();
    let mut wanted: Vec<(&'static str, Vec<ExpKey>)> = Vec::new();
    for exp in experiments {
        let jobs = exp.jobs(&ctx);
        for job in &jobs {
            cache.request(job);
        }
        wanted.push((exp.name(), jobs.into_iter().map(|j| j.key).collect()));
    }
    let schedule = cache.take_scheduled();
    let requested = cache.hits() + cache.misses();
    let workers = runner::resolve_workers(opts.workers);
    // Fingerprint of the full deduplicated schedule — computed before
    // warm filtering, so serial, `--jobs N` and distributed runs of
    // the same campaign all print the same value.
    let campaign_fingerprint =
        crate::distributed::campaign_fingerprint(schedule.iter().map(|j| j.key.digest()));
    eprintln!(
        "[engine] {} unique simulation points ({} requested, {} cache hits) on {} worker(s)",
        schedule.len(),
        requested,
        cache.hits(),
        workers
    );
    eprintln!("[engine] campaign fingerprint {campaign_fingerprint:016x}");

    // 2b. warm-load from the durable store ———————————————————————————
    // Every reloaded blob is re-verified (checksum, schema, echoed
    // key); corrupt blobs are quarantined and stay in the cold
    // schedule to be re-simulated.
    let mut store = opts.store_dir.as_ref().map(|dir| {
        let cfg = StoreConfig { dir: dir.clone(), kill_after: opts.store_kill_after };
        ResultStore::open(cfg).expect("open result store")
    });
    let schedule = if let Some(store) = store.as_mut() {
        let total = schedule.len();
        let mut cold = Vec::with_capacity(total);
        for job in schedule {
            match store.load(&job.key) {
                LoadOutcome::Hit(point) => cache.insert(job.key.clone(), *point),
                LoadOutcome::Miss => cold.push(job),
                LoadOutcome::Quarantined(err) => {
                    eprintln!(
                        "[engine] store: QUARANTINED corrupt blob for {} ({err}); re-simulating",
                        job.key.display()
                    );
                    cold.push(job);
                }
            }
        }
        // Lease in bounded batches: each batch is one atomic journal
        // append, so a crash mid-campaign leaves at most one torn
        // batch record instead of one giant torn line, and the same
        // batching bounds worker-loop appends in distributed runs.
        for chunk in cold.chunks(crate::distributed::LEASE_BATCH) {
            store.lease_all(chunk.iter().map(|j| &j.key)).expect("journal campaign leases");
        }
        eprintln!(
            "[engine] store {}: {} of {total} point(s) loaded warm, {} to simulate",
            store.dir().display(),
            total - cold.len(),
            cold.len()
        );
        cold
    } else {
        schedule
    };

    // 3. simulate ————————————————————————————————————————————————————
    let traces: BTreeMap<&str, &tvp_workloads::trace::Trace> =
        ctx.prepared.iter().map(|p| (p.workload.name, &p.trace)).collect();
    let sim_start = Instant::now();
    let outcome = runner::run_jobs(
        &schedule,
        |name| traces.get(name).unwrap_or_else(|| panic!("no trace for workload {name}")),
        workers,
        opts.progress,
    );
    let sim_wall = sim_start.elapsed();
    // Publish in slot (schedule) order — single-threaded and
    // deterministic, which is what makes the kill_after chaos knob
    // reproducible for a given seed/schedule.
    for (key, point) in outcome.points {
        if let Some(store) = store.as_mut() {
            store.publish(&key, &point).expect("publish result blob");
        }
        cache.insert(key, point);
    }
    for f in &outcome.failures {
        if let Some(store) = store.as_mut() {
            store.record_failure(&f.key, f.attempts).expect("journal job failure");
        }
    }
    let store_counters: StoreCounters = store.as_ref().map(|s| *s.counters()).unwrap_or_default();
    // Distributed-fabric counters come from the replayed journal, so a
    // merge run reports the whole campaign's history (every worker id,
    // every reclaimed lease, every fenced-off stale publish), not just
    // this process's slice of it.
    let (dist_workers, reclaimed_leases, stale_publishes) = store
        .as_ref()
        .map(|s| {
            let js = s.journal_state();
            let reclaimed: u64 = js.reclaims.values().map(|&n| u64::from(n)).sum();
            (js.workers.len() as u64, reclaimed, js.stale_publishes)
        })
        .unwrap_or_default();
    if let Some(store) = store.as_ref() {
        eprintln!("[engine] store: {}", store.summary());
    }

    // 4. assemble ————————————————————————————————————————————————————
    let dir = opts.results_dir.clone().unwrap_or_else(results_dir);
    std::fs::create_dir_all(&dir).expect("create results directory");
    let mut skipped = Vec::new();
    let results = ResultSet::new(&cache);
    for (exp, (name, keys)) in experiments.iter().zip(&wanted) {
        if experiments.len() > 1 {
            println!("\n================================================================");
            println!("== {name}");
            println!("================================================================\n");
        }
        let missing: Vec<ExpKey> =
            keys.iter().filter(|k| cache.get(k).is_none()).cloned().collect();
        if missing.is_empty() {
            for file in exp.assemble(&ctx, &results) {
                let path = format!("{dir}/{}.json", file.name);
                std::fs::write(&path, file.json).expect("write results file");
                println!("\n[results written to {path}]");
            }
        } else {
            eprintln!("[engine] SKIPPED {name}: {} failed point(s)", missing.len());
            skipped.push((*name, missing));
        }
    }

    // telemetry ——————————————————————————————————————————————————————
    let cpu_time = outcome.timings.iter().map(|t| t.wall).sum();
    let simulated_cycles = outcome.timings.iter().map(|t| t.cycles).sum();
    #[allow(clippy::cast_possible_truncation)]
    let telemetry = Telemetry {
        schema: TELEMETRY_SCHEMA,
        workers,
        insts: opts.insts,
        smoke: opts.smoke,
        jobs_requested: requested,
        jobs_unique: schedule.len() as u64,
        cache_hits: cache.hits(),
        cache_hit_rate: cache.hit_rate(),
        jobs_failed: outcome.failures.len() as u64,
        retries: outcome.retries,
        quarantined: store_counters.quarantined,
        store_warm_hits: store_counters.warm_hits,
        store_enabled: store.is_some(),
        cache_conflicts: cache.conflicts(),
        dist_workers,
        reclaimed_leases,
        stale_publishes,
        campaign_fingerprint,
        prepare,
        sim_wall,
        total_wall: total_start.elapsed(),
        cpu_time,
        simulated_cycles,
        per_job: outcome.timings,
        emit_per_job: opts.per_job,
        sampling: None,
    };
    let telemetry_path = opts.telemetry_path.clone().unwrap_or_else(Telemetry::default_path);
    telemetry.write(&telemetry_path);
    eprintln!("[engine] {}", telemetry.summary());
    eprintln!("[engine] telemetry written to {telemetry_path}");

    EngineReport { failures: outcome.failures, skipped, telemetry }
}

/// Prints the failure report (if any) and returns the process exit
/// code: 0 on a fully clean run, 1 when any job failed.
#[must_use]
pub fn exit_code(report: &EngineReport) -> i32 {
    if report.failures.is_empty() && report.skipped.is_empty() {
        return 0;
    }
    eprintln!("\n[engine] {} job(s) FAILED:", report.failures.len());
    for f in &report.failures {
        let first_line = f.panic.lines().next().unwrap_or("");
        eprintln!("  {}: {first_line}", f.key.display());
    }
    for (name, missing) in &report.skipped {
        eprintln!("[engine] experiment {name} skipped ({} missing point(s))", missing.len());
    }
    1
}

/// Standard `main` body for an experiment binary: parse the common
/// CLI, run the given experiments, exit non-zero if anything failed.
pub fn run_main(experiments: &[Box<dyn Experiment>]) -> ! {
    let opts = parse_run_options(std::env::args().skip(1));
    let report = run(experiments, &opts);
    std::process::exit(exit_code(&report));
}
