//! The experiment engine: enumerate → dedupe → simulate → assemble.
//!
//! Used by `run_all` and by every per-figure binary. The phases are:
//!
//! 1. **prepare** — generate every workload trace once;
//! 2. **enumerate** — collect each experiment's [`Job`]s and push them
//!    through the [`ResultCache`], which dedupes shared points (the
//!    VP-off baseline appears in most experiments but simulates once);
//! 3. **simulate** — run the deduplicated schedule on the
//!    work-stealing pool ([`runner::run_jobs`]);
//! 4. **assemble** — single-threaded, in fixed experiment order: print
//!    each experiment's tables and write its `results/*.json` from
//!    cached points only.
//!
//! Failures never abort the sequence: a panicked job is recorded with
//! its [`ExpKey`], experiments that depend on it are skipped (and
//! listed), every other experiment still assembles, and the process
//! exits non-zero at the end.
//!
//! Determinism: simulation is a pure function of (trace, config), the
//! schedule is keyed, and assembly is ordered — so `--jobs 1` and
//! `--jobs N` produce byte-identical results files.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::cache::ResultCache;
use crate::experiments::{ExpContext, Experiment, ResultSet};
use crate::jobs::ExpKey;
use crate::runner::{self, JobFailure};
use crate::telemetry::{Telemetry, TELEMETRY_SCHEMA};
use crate::{prepare_suite, DEFAULT_INSTS};

/// Instruction budget used by `--smoke` (CI-sized).
pub const SMOKE_INSTS: u64 = 20_000;

/// Parsed engine options, shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Worker threads (`--jobs N`); `None` sizes to available cores.
    pub workers: Option<usize>,
    /// Architectural instructions per workload.
    pub insts: u64,
    /// Smoke mode (CI-sized budget unless `--insts` overrides).
    pub smoke: bool,
    /// Per-job progress lines on stderr.
    pub progress: bool,
    /// Emit the raw per-job timing array in telemetry (`--per-job`).
    pub per_job: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            workers: None,
            insts: DEFAULT_INSTS,
            smoke: false,
            progress: false,
            per_job: false,
        }
    }
}

/// Parses the common experiment CLI: `[--jobs N] [--smoke]
/// [--insts N] [--progress] [--per-job]`. Budget precedence: `--insts`
/// flag, then the `TVP_INSTS` environment variable, then the
/// smoke/default budget.
///
/// # Panics
///
/// Exits the process (code 2) on unknown or malformed arguments.
#[must_use]
pub fn parse_run_options(args: impl Iterator<Item = String>) -> RunOptions {
    let usage = || -> ! {
        eprintln!("usage: <experiment> [--jobs N] [--smoke] [--insts N] [--progress] [--per-job]");
        std::process::exit(2);
    };
    let mut workers = None;
    let mut insts_flag: Option<u64> = None;
    let mut smoke = false;
    let mut progress = false;
    let mut per_job = false;
    let args: Vec<String> = args.collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let n: usize = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                if n == 0 {
                    usage();
                }
                workers = Some(n);
            }
            "--smoke" => smoke = true,
            "--insts" => {
                insts_flag =
                    Some(it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--progress" => progress = true,
            "--per-job" => per_job = true,
            _ => usage(),
        }
    }
    let insts = insts_flag
        .or_else(|| std::env::var("TVP_INSTS").ok().and_then(|s| s.parse().ok()))
        .unwrap_or(if smoke { SMOKE_INSTS } else { DEFAULT_INSTS });
    RunOptions { workers, insts, smoke, progress, per_job }
}

/// Resolves the results directory (`$TVP_RESULTS_DIR`, default
/// `results`).
#[must_use]
pub fn results_dir() -> String {
    std::env::var("TVP_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned())
}

/// What one engine invocation produced, beyond the files on disk.
pub struct EngineReport {
    /// Jobs that panicked, with their keys.
    pub failures: Vec<JobFailure>,
    /// Experiments skipped because one of their points failed, with
    /// the missing keys.
    pub skipped: Vec<(&'static str, Vec<ExpKey>)>,
    /// Performance record of this invocation.
    pub telemetry: Telemetry,
}

/// Runs `experiments` end to end: enumerate, dedupe, simulate on the
/// pool, assemble in order, write results JSON and telemetry.
///
/// # Panics
///
/// Panics if the results directory cannot be created or a results
/// file cannot be written (fatal setup errors); job panics are
/// *contained* and reported through the returned [`EngineReport`].
pub fn run(experiments: &[Box<dyn Experiment>], opts: &RunOptions) -> EngineReport {
    let total_start = Instant::now();

    // 1. prepare —————————————————————————————————————————————————————
    eprintln!("[engine] generating workload traces ({} insts each)...", opts.insts);
    let prepare_start = Instant::now();
    let ctx = ExpContext { insts: opts.insts, prepared: prepare_suite(opts.insts) };
    let prepare = prepare_start.elapsed();

    // 2. enumerate + dedupe ——————————————————————————————————————————
    let mut cache = ResultCache::new();
    let mut wanted: Vec<(&'static str, Vec<ExpKey>)> = Vec::new();
    for exp in experiments {
        let jobs = exp.jobs(&ctx);
        for job in &jobs {
            cache.request(job);
        }
        wanted.push((exp.name(), jobs.into_iter().map(|j| j.key).collect()));
    }
    let schedule = cache.take_scheduled();
    let requested = cache.hits() + cache.misses();
    let workers = runner::resolve_workers(opts.workers);
    eprintln!(
        "[engine] {} unique simulation points ({} requested, {} cache hits) on {} worker(s)",
        schedule.len(),
        requested,
        cache.hits(),
        workers
    );

    // 3. simulate ————————————————————————————————————————————————————
    let traces: BTreeMap<&str, &tvp_workloads::trace::Trace> =
        ctx.prepared.iter().map(|p| (p.workload.name, &p.trace)).collect();
    let sim_start = Instant::now();
    let outcome = runner::run_jobs(
        &schedule,
        |name| traces.get(name).unwrap_or_else(|| panic!("no trace for workload {name}")),
        workers,
        opts.progress,
    );
    let sim_wall = sim_start.elapsed();
    for (key, point) in outcome.points {
        cache.insert(key, point);
    }

    // 4. assemble ————————————————————————————————————————————————————
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results directory");
    let mut skipped = Vec::new();
    let results = ResultSet::new(&cache);
    for (exp, (name, keys)) in experiments.iter().zip(&wanted) {
        if experiments.len() > 1 {
            println!("\n================================================================");
            println!("== {name}");
            println!("================================================================\n");
        }
        let missing: Vec<ExpKey> =
            keys.iter().filter(|k| cache.get(k).is_none()).cloned().collect();
        if missing.is_empty() {
            for file in exp.assemble(&ctx, &results) {
                let path = format!("{dir}/{}.json", file.name);
                std::fs::write(&path, file.json).expect("write results file");
                println!("\n[results written to {path}]");
            }
        } else {
            eprintln!("[engine] SKIPPED {name}: {} failed point(s)", missing.len());
            skipped.push((*name, missing));
        }
    }

    // telemetry ——————————————————————————————————————————————————————
    let cpu_time = outcome.timings.iter().map(|t| t.wall).sum();
    let simulated_cycles = outcome.timings.iter().map(|t| t.cycles).sum();
    #[allow(clippy::cast_possible_truncation)]
    let telemetry = Telemetry {
        schema: TELEMETRY_SCHEMA,
        workers,
        insts: opts.insts,
        smoke: opts.smoke,
        jobs_requested: requested,
        jobs_unique: schedule.len() as u64,
        cache_hits: cache.hits(),
        cache_hit_rate: cache.hit_rate(),
        jobs_failed: outcome.failures.len() as u64,
        prepare,
        sim_wall,
        total_wall: total_start.elapsed(),
        cpu_time,
        simulated_cycles,
        per_job: outcome.timings,
        emit_per_job: opts.per_job,
    };
    let telemetry_path = Telemetry::default_path();
    telemetry.write(&telemetry_path);
    eprintln!("[engine] {}", telemetry.summary());
    eprintln!("[engine] telemetry written to {telemetry_path}");

    EngineReport { failures: outcome.failures, skipped, telemetry }
}

/// Prints the failure report (if any) and returns the process exit
/// code: 0 on a fully clean run, 1 when any job failed.
#[must_use]
pub fn exit_code(report: &EngineReport) -> i32 {
    if report.failures.is_empty() && report.skipped.is_empty() {
        return 0;
    }
    eprintln!("\n[engine] {} job(s) FAILED:", report.failures.len());
    for f in &report.failures {
        let first_line = f.panic.lines().next().unwrap_or("");
        eprintln!("  {}: {first_line}", f.key.display());
    }
    for (name, missing) in &report.skipped {
        eprintln!("[engine] experiment {name} skipped ({} missing point(s))", missing.len());
    }
    1
}

/// Standard `main` body for an experiment binary: parse the common
/// CLI, run the given experiments, exit non-zero if anything failed.
pub fn run_main(experiments: &[Box<dyn Experiment>]) -> ! {
    let opts = parse_run_options(std::env::args().skip(1));
    let report = run(experiments, &opts);
    std::process::exit(exit_code(&report));
}
