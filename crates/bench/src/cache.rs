//! Keyed result cache with hit/miss accounting.
//!
//! The engine requests every simulation point each experiment wants;
//! the cache turns that request stream into a deduplicated schedule
//! (first request for a key is a **miss** and schedules the job, every
//! repeat is a **hit**) and afterwards serves the simulated
//! [`SimPoint`]s back to the assembly phase. Shared points — the
//! VP-off baseline appears in seven of the eleven experiments — are
//! therefore simulated exactly once per `run_all` invocation.

use std::collections::BTreeMap;

use crate::jobs::{ExpKey, Job, SimPoint};

/// Deduplicating store of simulated points, keyed by [`ExpKey`].
#[derive(Debug, Default)]
pub struct ResultCache {
    points: BTreeMap<ExpKey, SimPoint>,
    scheduled: BTreeMap<ExpKey, Job>,
    hits: u64,
    misses: u64,
    conflicts: u64,
}

impl ResultCache {
    /// Empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests one simulation point. The first request for a key
    /// schedules its job and counts as a miss; any further request for
    /// the same key (same experiment or a different one) is a hit and
    /// schedules nothing.
    pub fn request(&mut self, job: &Job) {
        if self.points.contains_key(&job.key) || self.scheduled.contains_key(&job.key) {
            self.hits += 1;
        } else {
            self.misses += 1;
            self.scheduled.insert(job.key.clone(), job.clone());
        }
    }

    /// Drains the scheduled (deduplicated) jobs for the runner, in
    /// deterministic key order.
    pub fn take_scheduled(&mut self) -> Vec<Job> {
        std::mem::take(&mut self.scheduled).into_values().collect()
    }

    /// Stores one simulated point. Double-inserting the *same* value
    /// for a key is harmless (warm store + fresh simulation can race
    /// to the same answer); double-inserting a *different* value means
    /// two sources disagree about a deterministic point — a
    /// determinism bug. Conflicts are counted (and debug-asserted) and
    /// the first value wins, so a verified store blob is never
    /// silently displaced.
    pub fn insert(&mut self, key: ExpKey, point: SimPoint) {
        if let Some(existing) = self.points.get(&key) {
            if *existing != point {
                self.conflicts += 1;
                debug_assert_eq!(
                    *existing,
                    point,
                    "cache conflict: two values for one key {}",
                    key.display()
                );
            }
            return;
        }
        self.points.insert(key, point);
    }

    /// Looks up a simulated point (assembly phase; not counted in the
    /// hit/miss accounting, which describes scheduling dedup).
    #[must_use]
    pub fn get(&self, key: &ExpKey) -> Option<&SimPoint> {
        self.points.get(key)
    }

    /// Requests answered from already-requested keys.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Requests that scheduled a fresh simulation.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Double-inserts that disagreed on a key's value (determinism
    /// bugs; always 0 on a healthy run).
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Publishes the cache's counters into an observability registry
    /// under the `bench.cache` scope.
    pub fn fill_registry(&self, registry: &mut tvp_obs::registry::Registry) {
        registry.counter_scoped("bench.cache", "hits", self.hits);
        registry.counter_scoped("bench.cache", "misses", self.misses);
        registry.counter_scoped("bench.cache", "conflicts", self.conflicts);
        registry.counter_scoped("bench.cache", "points", self.points.len() as u64);
    }

    /// `hits / (hits + misses)`, or 0 for an untouched cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.hits as f64 / total as f64
            }
        }
    }

    /// Number of distinct points currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_core::config::{CoreConfig, VpMode};
    use tvp_core::stats::SimStats;

    fn job(workload: &'static str, vp: VpMode) -> Job {
        Job::new(workload, 1_000, CoreConfig::with_vp(vp))
    }

    #[test]
    fn dedup_accounting() {
        let mut cache = ResultCache::new();
        // Two experiments both want the k/Off baseline; only one wants
        // the TVP point.
        cache.request(&job("k", VpMode::Off));
        cache.request(&job("k", VpMode::Tvp));
        cache.request(&job("k", VpMode::Off));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 1);
        assert!((cache.hit_rate() - 1.0 / 3.0).abs() < 1e-12);

        let scheduled = cache.take_scheduled();
        assert_eq!(scheduled.len(), 2, "shared baseline scheduled once");

        // A request after simulation is still a hit, not a reschedule.
        let key = scheduled[0].key.clone();
        cache.insert(key.clone(), SimPoint { stats: SimStats::default() });
        cache.request(&scheduled[0].clone());
        assert_eq!(cache.hits(), 2);
        assert!(cache.take_scheduled().is_empty());
        assert!(cache.get(&key).is_some());
    }

    #[test]
    fn same_value_double_insert_is_not_a_conflict() {
        let mut cache = ResultCache::new();
        let key = job("k", VpMode::Tvp).key;
        let point = SimPoint { stats: SimStats { cycles: 9, ..Default::default() } };
        cache.insert(key.clone(), point);
        cache.insert(key.clone(), point);
        assert_eq!(cache.conflicts(), 0);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key), Some(&point));
    }

    #[test]
    fn disagreeing_double_insert_counts_a_conflict_and_keeps_first() {
        let mut cache = ResultCache::new();
        let key = job("k", VpMode::Tvp).key;
        let first = SimPoint { stats: SimStats { cycles: 9, ..Default::default() } };
        let second = SimPoint { stats: SimStats { cycles: 10, ..Default::default() } };
        cache.insert(key.clone(), first);
        // In debug builds the conflict also debug-asserts; swallow the
        // panic so the counter behaviour stays testable.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.insert(key.clone(), second);
        }));
        assert_eq!(cache.conflicts(), 1);
        assert_eq!(cache.get(&key), Some(&first), "first value wins");
    }

    #[test]
    fn registry_export_carries_cache_counters() {
        let mut cache = ResultCache::new();
        cache.request(&job("k", VpMode::Off));
        cache.request(&job("k", VpMode::Off));
        let mut registry = tvp_obs::registry::Registry::new();
        cache.fill_registry(&mut registry);
        let find =
            |name: &str| registry.counters().iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert_eq!(find("bench.cache.hits"), Some(1));
        assert_eq!(find("bench.cache.misses"), Some(1));
        assert_eq!(find("bench.cache.conflicts"), Some(0));
        assert_eq!(find("bench.cache.points"), Some(0));
    }

    #[test]
    fn empty_cache_rate_is_zero() {
        let cache = ResultCache::new();
        assert_eq!(cache.hit_rate(), 0.0);
        assert!(cache.is_empty());
        assert_eq!(cache.len(), 0);
    }
}
