//! Simulation points as keyed jobs.
//!
//! Every (workload × configuration) point an experiment wants is an
//! [`ExpKey`]: the workload id, the instruction budget, the chaos seed
//! (when a campaign is armed) and a fingerprint of the *complete*
//! [`CoreConfig`]. Two experiments that ask for the same point get the
//! same key, so the engine simulates it exactly once and both read the
//! cached [`SimPoint`].

use tvp_core::config::CoreConfig;
use tvp_core::stats::SimStats;

/// Canonical identity of one simulation point.
///
/// The configuration fingerprint is the `Debug` rendering of the full
/// [`CoreConfig`]. Every field (including the nested TAGE, VTAGE,
/// memory-hierarchy and chaos sub-configs) derives `Debug`
/// structurally, so the rendering is injective: configurations that
/// differ in *any* field produce different fingerprints (locked by the
/// `fingerprint_covers_every_field` property test), and identical
/// configurations always collide — which is exactly what keys a
/// dedup cache.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExpKey {
    /// Bundled workload name (trace identity — traces are a pure
    /// function of workload and budget).
    pub workload: &'static str,
    /// Architectural instruction budget the trace was generated at.
    pub insts: u64,
    /// Chaos campaign seed, when fault injection is armed. Redundant
    /// with the fingerprint (the seed is part of `CoreConfig::chaos`)
    /// but kept as a first-class component so chaos points are
    /// self-describing in failure reports and telemetry.
    pub chaos_seed: Option<u64>,
    /// `Debug` rendering of the complete `CoreConfig`.
    pub config_fp: String,
}

impl ExpKey {
    /// Keys a simulation point.
    #[must_use]
    pub fn new(workload: &'static str, insts: u64, cfg: &CoreConfig) -> Self {
        ExpKey {
            workload,
            insts,
            chaos_seed: cfg.chaos.as_ref().map(|c| c.seed),
            config_fp: format!("{cfg:?}"),
        }
    }

    /// Short stable digest of the key (FNV-1a over all components),
    /// used to label jobs in telemetry without embedding the full
    /// fingerprint string.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(self.workload.as_bytes());
        eat(&self.insts.to_le_bytes());
        eat(&self.chaos_seed.unwrap_or(0).to_le_bytes());
        eat(self.config_fp.as_bytes());
        h
    }

    /// Compact human-readable form for failure reports and progress
    /// lines: `workload@insts[/chaos:seed]#digest`.
    #[must_use]
    pub fn display(&self) -> String {
        let chaos = match self.chaos_seed {
            Some(seed) => format!("/chaos:{seed:#x}"),
            None => String::new(),
        };
        format!("{}@{}{}#{:016x}", self.workload, self.insts, chaos, self.digest())
    }
}

/// One schedulable simulation: the key plus the configuration needed
/// to actually run it (the key alone is a fingerprint, not a config).
#[derive(Clone, Debug)]
pub struct Job {
    /// Canonical identity (cache key).
    pub key: ExpKey,
    /// The configuration to simulate under.
    pub cfg: CoreConfig,
}

impl Job {
    /// Builds a job (and its key) for one simulation point.
    #[must_use]
    pub fn new(workload: &'static str, insts: u64, cfg: CoreConfig) -> Self {
        let key = ExpKey::new(workload, insts, &cfg);
        Job { key, cfg }
    }
}

/// The result of simulating one job. Deterministic: a pure function of
/// the job's key (trace × configuration), which is what makes the
/// result cache and the serial/parallel equivalence sound. Wall-clock
/// timings deliberately live in the runner's telemetry, *not* here, so
/// two runs of the same key compare equal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimPoint {
    /// Full statistics of the simulated point.
    pub stats: SimStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_core::config::VpMode;

    #[test]
    fn identical_configs_collide_and_different_ones_do_not() {
        let a = ExpKey::new("k", 1000, &CoreConfig::table2());
        let b = ExpKey::new("k", 1000, &CoreConfig::table2());
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());

        let c = ExpKey::new("k", 1000, &CoreConfig::with_vp(VpMode::Tvp));
        assert_ne!(a, c);
        let d = ExpKey::new("k", 2000, &CoreConfig::table2());
        assert_ne!(a, d);
        let e = ExpKey::new("other", 1000, &CoreConfig::table2());
        assert_ne!(a, e);
    }

    #[test]
    fn chaos_seed_is_lifted_out_of_the_config() {
        let cfg = CoreConfig::table2().with_chaos(tvp_chaos::ChaosConfig::campaign(0xBEEF));
        let key = ExpKey::new("k", 10, &cfg);
        assert_eq!(key.chaos_seed, Some(0xBEEF));
        assert!(key.display().contains("/chaos:0xbeef"));

        let quiet = ExpKey::new("k", 10, &CoreConfig::table2());
        assert_eq!(quiet.chaos_seed, None);
        assert_ne!(key, quiet);
    }
}
