//! Runner performance telemetry — the bench trajectory record.
//!
//! Every `run_all` invocation writes `BENCH_parallel_runner.json` (at
//! the workspace root, or `$TVP_BENCH_TELEMETRY` when set) describing
//! how fast the experiment engine itself ran: wall time, simulations
//! per second, aggregate simulated cycles per second, cache hit rate
//! and per-job timings. The schema is documented in DESIGN.md §10.

use std::time::Duration;

use crate::json;
use crate::runner::JobTiming;

/// Default telemetry path (workspace root).
pub const TELEMETRY_FILE: &str = "BENCH_parallel_runner.json";

/// Telemetry record schema. Version 2 added the per-job `cpi` object
/// (cycle-attribution stack components). Version 3 replaced the
/// always-on `per_job` array (which grew one raw record per unique
/// simulation point — 725 entries on a full sweep) with bounded
/// `per_workload` wall-time aggregates (p50/p95/p99/max); the raw
/// array is still available behind the `--per-job` flag. Version 4
/// added the robustness counters: `retries` (jobs that needed the
/// pool's second attempt), `quarantined` (corrupt store blobs set
/// aside and re-simulated), `store_warm_hits` / `store_enabled`
/// (durable result-store activity) and `cache_conflicts`
/// (disagreeing double-inserts — determinism violations). Version 5
/// added the optional `sampling` object emitted by sampled campaigns:
/// the sampling spec (`period`/`warmup`/`measured`), stream coverage
/// counters (`total_insts`, `skipped_insts`, `warmup_insts`,
/// `measured_insts`, `intervals`), `resumed_intervals` (served from a
/// checkpoint instead of re-simulated), the detail fraction actually
/// simulated, and the run fingerprint (the cross-jobs/kill-resume
/// byte-identity witness). Version 6 added the distributed-campaign
/// counters replayed from the store journal — `dist_workers` (distinct
/// worker ids that ever held a lease), `reclaimed_leases` (leases the
/// reaper retired from dead workers) and `stale_publishes` (fenced-off
/// late publishes deduped after a reclaim) — plus
/// `campaign_fingerprint`, the order-sensitive digest of the full
/// deduplicated schedule that serial, `--jobs N` and K-worker runs of
/// the same campaign must agree on.
pub const TELEMETRY_SCHEMA: u32 = 6;

/// Sampled-campaign section of the telemetry record (schema 5).
#[derive(Clone, Debug)]
pub struct SamplingTelemetry {
    /// Sampling period (architectural instructions per interval).
    pub period: u64,
    /// Warmup instructions per interval.
    pub warmup: u64,
    /// Measured instructions per interval.
    pub measured: u64,
    /// Measured intervals across all workloads.
    pub intervals: u64,
    /// Intervals served from resume checkpoints.
    pub resumed_intervals: u64,
    /// Architectural instructions consumed across all workloads.
    pub total_insts: u64,
    /// Instructions functionally fast-forwarded.
    pub skipped_insts: u64,
    /// Instructions simulated as unmeasured warmup.
    pub warmup_insts: u64,
    /// Instructions simulated and measured.
    pub measured_insts: u64,
    /// Fraction of the stream simulated in detail (warmup + measured).
    pub detail_fraction: f64,
    /// Order-sensitive fingerprint folded over every workload's
    /// sampled-run fingerprint, in campaign order.
    pub fingerprint: u64,
}

impl SamplingTelemetry {
    /// Serialises the section as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        json::object(&[
            ("period", self.period.to_string()),
            ("warmup", self.warmup.to_string()),
            ("measured", self.measured.to_string()),
            ("intervals", self.intervals.to_string()),
            ("resumed_intervals", self.resumed_intervals.to_string()),
            ("total_insts", self.total_insts.to_string()),
            ("skipped_insts", self.skipped_insts.to_string()),
            ("warmup_insts", self.warmup_insts.to_string()),
            ("measured_insts", self.measured_insts.to_string()),
            ("detail_fraction", json::number(self.detail_fraction)),
            ("fingerprint", format!("\"{:016x}\"", self.fingerprint)),
        ])
    }
}

/// One engine invocation's performance record.
#[derive(Clone, Debug)]
pub struct Telemetry {
    /// Schema version of this record.
    pub schema: u32,
    /// Worker thread count the pool ran with.
    pub workers: usize,
    /// Architectural instruction budget per workload.
    pub insts: u64,
    /// Whether the run was in smoke mode.
    pub smoke: bool,
    /// Points requested across all experiments (before dedup).
    pub jobs_requested: u64,
    /// Distinct points actually simulated.
    pub jobs_unique: u64,
    /// Requests served by the cache (`requested - unique`).
    pub cache_hits: u64,
    /// `cache_hits / jobs_requested`.
    pub cache_hit_rate: f64,
    /// Jobs that panicked on every attempt.
    pub jobs_failed: u64,
    /// Jobs that needed the pool's single bounded retry.
    pub retries: u64,
    /// Corrupt store blobs quarantined (then re-simulated).
    pub quarantined: u64,
    /// Points served from the durable result store.
    pub store_warm_hits: u64,
    /// Whether a durable result store was attached to this run.
    pub store_enabled: bool,
    /// Disagreeing cache double-inserts (determinism violations;
    /// always 0 on a healthy run).
    pub cache_conflicts: u64,
    /// Distinct worker ids that ever held a lease in the attached
    /// store's journal (0 without a store; counts the whole campaign's
    /// history, not just this process).
    pub dist_workers: u64,
    /// Leases the reaper reclaimed from dead workers (journal total).
    pub reclaimed_leases: u64,
    /// Fenced-off stale publishes detected and deduped (journal
    /// total).
    pub stale_publishes: u64,
    /// Order-sensitive digest of the full deduplicated schedule;
    /// identical across serial, `--jobs N` and K-worker runs of the
    /// same campaign.
    pub campaign_fingerprint: u64,
    /// Trace-generation wall time.
    pub prepare: Duration,
    /// Pool wall time (simulation phase only).
    pub sim_wall: Duration,
    /// End-to-end wall time (prepare + simulate + assemble).
    pub total_wall: Duration,
    /// Sum of per-job simulation times (≈ `sim_wall × workers` when
    /// the pool is saturated).
    pub cpu_time: Duration,
    /// Total simulated cycles across all unique points.
    pub simulated_cycles: u64,
    /// Per-job wall-clock timings (aggregated per workload in the
    /// record; serialised raw only when `emit_per_job` is set).
    pub per_job: Vec<JobTiming>,
    /// Include the raw `per_job` array in the JSON record
    /// (`--per-job`).
    pub emit_per_job: bool,
    /// Sampled-campaign section (schema 5); `None` for full runs.
    pub sampling: Option<SamplingTelemetry>,
}

/// Bounded per-workload digest of job wall times: one entry per
/// workload regardless of how many configurations were swept.
#[derive(Clone, Debug)]
pub struct WorkloadAggregate {
    /// Workload name.
    pub workload: &'static str,
    /// Simulation points run for this workload.
    pub jobs: u64,
    /// Total simulated cycles across those points.
    pub cycles: u64,
    /// Median job wall time, in microseconds.
    pub p50_micros: u128,
    /// 95th-percentile job wall time, in microseconds.
    pub p95_micros: u128,
    /// 99th-percentile job wall time, in microseconds.
    pub p99_micros: u128,
    /// Slowest job wall time, in microseconds.
    pub max_micros: u128,
}

/// Nearest-rank percentile over an ascending-sorted sample
/// (`q` in 0..=100; the empty sample yields 0).
fn percentile(sorted: &[u128], q: u128) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u128;
    let rank = (q * n).div_ceil(100).max(1);
    sorted[usize::try_from(rank - 1).expect("rank fits usize")]
}

/// Folds raw job timings into one [`WorkloadAggregate`] per workload,
/// sorted by workload name.
#[must_use]
pub fn aggregate_per_workload(timings: &[JobTiming]) -> Vec<WorkloadAggregate> {
    let mut by_workload: std::collections::BTreeMap<&'static str, (u64, Vec<u128>)> =
        std::collections::BTreeMap::new();
    for t in timings {
        let (cycles, walls) = by_workload.entry(t.key.workload).or_default();
        *cycles += t.cycles;
        walls.push(t.wall.as_micros());
    }
    by_workload
        .into_iter()
        .map(|(workload, (cycles, mut walls))| {
            walls.sort_unstable();
            WorkloadAggregate {
                workload,
                jobs: walls.len() as u64,
                cycles,
                p50_micros: percentile(&walls, 50),
                p95_micros: percentile(&walls, 95),
                p99_micros: percentile(&walls, 99),
                max_micros: walls.last().copied().unwrap_or(0),
            }
        })
        .collect()
}

impl Telemetry {
    /// Completed simulations per second of pool wall time.
    #[must_use]
    pub fn sims_per_sec(&self) -> f64 {
        per_second(self.jobs_unique as f64, self.sim_wall)
    }

    /// Aggregate simulated cycles per second of pool wall time.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn cycles_per_sec(&self) -> f64 {
        per_second(self.simulated_cycles as f64, self.sim_wall)
    }

    /// Serialises the record as a JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let per_workload: Vec<String> = aggregate_per_workload(&self.per_job)
            .iter()
            .map(|w| {
                format!(
                    "{{\"workload\": \"{}\", \"jobs\": {}, \"cycles\": {}, \
                     \"p50_micros\": {}, \"p95_micros\": {}, \"p99_micros\": {}, \
                     \"max_micros\": {}}}",
                    json::escape(w.workload),
                    w.jobs,
                    w.cycles,
                    w.p50_micros,
                    w.p95_micros,
                    w.p99_micros,
                    w.max_micros
                )
            })
            .collect();
        let mut fields = vec![
            ("schema", self.schema.to_string()),
            ("workers", self.workers.to_string()),
            ("insts", self.insts.to_string()),
            ("smoke", self.smoke.to_string()),
            ("jobs_requested", self.jobs_requested.to_string()),
            ("jobs_unique", self.jobs_unique.to_string()),
            ("cache_hits", self.cache_hits.to_string()),
            ("cache_hit_rate", json::number(self.cache_hit_rate)),
            ("jobs_failed", self.jobs_failed.to_string()),
            ("retries", self.retries.to_string()),
            ("quarantined", self.quarantined.to_string()),
            ("store_warm_hits", self.store_warm_hits.to_string()),
            ("store_enabled", self.store_enabled.to_string()),
            ("cache_conflicts", self.cache_conflicts.to_string()),
            ("dist_workers", self.dist_workers.to_string()),
            ("reclaimed_leases", self.reclaimed_leases.to_string()),
            ("stale_publishes", self.stale_publishes.to_string()),
            ("campaign_fingerprint", format!("\"{:016x}\"", self.campaign_fingerprint)),
            ("prepare_seconds", json::number(self.prepare.as_secs_f64())),
            ("sim_wall_seconds", json::number(self.sim_wall.as_secs_f64())),
            ("total_wall_seconds", json::number(self.total_wall.as_secs_f64())),
            ("cpu_seconds", json::number(self.cpu_time.as_secs_f64())),
            ("sims_per_sec", json::number(self.sims_per_sec())),
            ("simulated_cycles", self.simulated_cycles.to_string()),
            ("simulated_cycles_per_sec", json::number(self.cycles_per_sec())),
            ("per_workload", json::array(&per_workload)),
        ];
        if let Some(sampling) = &self.sampling {
            fields.push(("sampling", sampling.to_json()));
        }
        if self.emit_per_job {
            let per_job: Vec<String> = self
                .per_job
                .iter()
                .map(|t| {
                    let cpi: Vec<String> = t
                        .cpi
                        .components()
                        .iter()
                        .map(|(name, slots)| format!("\"{name}\": {slots}"))
                        .collect();
                    format!(
                        "{{\"point\": \"{}\", \"micros\": {}, \"cycles\": {}, \"cpi\": {{{}}}}}",
                        json::escape(&t.key.display()),
                        t.wall.as_micros(),
                        t.cycles,
                        cpi.join(", ")
                    )
                })
                .collect();
            fields.push(("per_job", json::array(&per_job)));
        }
        json::object(&fields)
    }

    /// Writes the record to `path`.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written (fatal setup error, as for
    /// results).
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.to_json()).expect("write telemetry file");
    }

    /// Resolves the output path: `$TVP_BENCH_TELEMETRY` or the
    /// default workspace-root file.
    #[must_use]
    pub fn default_path() -> String {
        std::env::var("TVP_BENCH_TELEMETRY").unwrap_or_else(|_| TELEMETRY_FILE.to_owned())
    }

    /// One-line human summary (stderr companion of the JSON record).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} unique sims ({} requested, {:.1}% cache hits) on {} worker(s): \
             {:.2}s wall, {:.1} sims/s, {:.2}M simulated cycles/s",
            self.jobs_unique,
            self.jobs_requested,
            self.cache_hit_rate * 100.0,
            self.workers,
            self.total_wall.as_secs_f64(),
            self.sims_per_sec(),
            self.cycles_per_sec() / 1e6,
        )
    }
}

#[allow(clippy::cast_precision_loss)]
fn per_second(count: f64, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        count / secs
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::ExpKey;
    use tvp_core::config::CoreConfig;

    fn sample(emit_per_job: bool) -> Telemetry {
        let key = ExpKey::new("k", 100, &CoreConfig::table2());
        Telemetry {
            schema: TELEMETRY_SCHEMA,
            workers: 4,
            insts: 100,
            smoke: true,
            jobs_requested: 10,
            jobs_unique: 6,
            cache_hits: 4,
            cache_hit_rate: 0.4,
            jobs_failed: 0,
            retries: 1,
            quarantined: 2,
            store_warm_hits: 3,
            store_enabled: true,
            cache_conflicts: 0,
            dist_workers: 2,
            reclaimed_leases: 1,
            stale_publishes: 1,
            campaign_fingerprint: 0x0123_4567_89AB_CDEF,
            prepare: Duration::from_millis(10),
            sim_wall: Duration::from_millis(500),
            total_wall: Duration::from_millis(600),
            cpu_time: Duration::from_millis(1_900),
            simulated_cycles: 1_000_000,
            per_job: vec![JobTiming {
                key,
                wall: Duration::from_millis(80),
                cycles: 123,
                cpi: {
                    let mut cpi = tvp_obs::cpi::CpiStack::default();
                    cpi.retire(7);
                    cpi.lose(tvp_obs::cpi::SlotClass::Memory, 1);
                    cpi
                },
            }],
            emit_per_job,
            sampling: None,
        }
    }

    #[test]
    fn telemetry_serialises_all_headline_fields() {
        let t = sample(false);
        let j = t.to_json();
        for field in [
            "\"sims_per_sec\"",
            "\"cache_hit_rate\"",
            "\"total_wall_seconds\"",
            "\"simulated_cycles_per_sec\"",
            "\"per_workload\"",
            "\"workload\": \"k\"",
            "\"jobs\": 1",
            "\"cycles\": 123",
            "\"p50_micros\": 80000",
            "\"p99_micros\": 80000",
            "\"max_micros\": 80000",
            "\"schema\": 6",
            "\"retries\": 1",
            "\"quarantined\": 2",
            "\"store_warm_hits\": 3",
            "\"store_enabled\": true",
            "\"cache_conflicts\": 0",
            "\"dist_workers\": 2",
            "\"reclaimed_leases\": 1",
            "\"stale_publishes\": 1",
            "\"campaign_fingerprint\": \"0123456789abcdef\"",
        ] {
            assert!(j.contains(field), "missing {field} in {j}");
        }
        assert!(!j.contains("\"per_job\""), "raw array is opt-in: {j}");
        assert!(!j.contains("\"sampling\""), "sampling section only for sampled runs: {j}");
        assert!((t.sims_per_sec() - 12.0).abs() < 1e-9);
        assert!(t.summary().contains("sims/s"));
    }

    #[test]
    fn sampling_section_is_emitted_for_sampled_runs() {
        let mut t = sample(false);
        t.sampling = Some(SamplingTelemetry {
            period: 1_000_000,
            warmup: 20_000,
            measured: 20_000,
            intervals: 100,
            resumed_intervals: 40,
            total_insts: 100_000_000,
            skipped_insts: 96_000_000,
            warmup_insts: 2_000_000,
            measured_insts: 2_000_000,
            detail_fraction: 0.04,
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
        });
        let j = t.to_json();
        for field in [
            "\"sampling\"",
            "\"period\": 1000000",
            "\"warmup\": 20000",
            "\"measured\": 20000",
            "\"intervals\": 100",
            "\"resumed_intervals\": 40",
            "\"skipped_insts\": 96000000",
            "\"detail_fraction\"",
            "\"fingerprint\": \"deadbeefcafef00d\"",
        ] {
            assert!(j.contains(field), "missing {field} in {j}");
        }
    }

    #[test]
    fn per_job_array_is_emitted_only_on_request() {
        let j = sample(true).to_json();
        for field in
            ["\"per_job\"", "\"cpi\": {", "\"base\": 7", "\"memory\": 1", "\"micros\": 80000"]
        {
            assert!(j.contains(field), "missing {field} in {j}");
        }
    }

    #[test]
    fn workload_aggregates_fold_configs_and_rank_percentiles() {
        let mk = |workload, millis, cycles| JobTiming {
            key: ExpKey::new(workload, 100, &CoreConfig::table2()),
            wall: Duration::from_millis(millis),
            cycles,
            cpi: tvp_obs::cpi::CpiStack::default(),
        };
        // 100 jobs for "a" (1ms..=100ms) across "configs", 1 for "b".
        let mut timings: Vec<JobTiming> = (1..=100).map(|i| mk("a", i, 10)).collect();
        timings.push(mk("b", 7, 42));
        let aggs = aggregate_per_workload(&timings);
        assert_eq!(aggs.len(), 2, "one entry per workload, not per job");
        let a = &aggs[0];
        assert_eq!((a.workload, a.jobs, a.cycles), ("a", 100, 1_000));
        assert_eq!(a.p50_micros, 50_000);
        assert_eq!(a.p95_micros, 95_000);
        assert_eq!(a.p99_micros, 99_000);
        assert_eq!(a.max_micros, 100_000);
        let b = &aggs[1];
        assert_eq!((b.jobs, b.p50_micros, b.max_micros), (1, 7_000, 7_000));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[10], 50), 10);
        assert_eq!(percentile(&[10, 20], 50), 10);
        assert_eq!(percentile(&[10, 20], 51), 20);
        assert_eq!(percentile(&[10, 20, 30], 100), 30);
    }
}
