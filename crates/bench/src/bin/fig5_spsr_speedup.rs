//! Fig. 5 — MVP/TVP ± SpSR speedup over the baseline.
//!
//! Thin driver over [`tvp_bench::experiments::fig5`]; accepts the
//! common engine CLI (`--jobs N`, `--smoke`, `--insts N`).

fn main() {
    tvp_bench::engine::run_main(&[Box::new(tvp_bench::experiments::fig5::Fig5)]);
}
