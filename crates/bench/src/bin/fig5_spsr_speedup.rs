//! Fig. 5 — Performance uplift of MVP/TVP with and without SpSR.
//!
//! Paper result (geomean): MVP +0.54% → MVP+SpSR +0.64%; TVP +1.11% →
//! TVP+SpSR +1.17%. SpSR's per-benchmark effect is small and
//! occasionally negative (stride-prefetcher interaction, §6.2).

use tvp_bench::{
    geomean_speedup, inst_budget, prepare_suite, run_vp, speedup_pct, write_results, StatsRow,
};
use tvp_core::config::VpMode;

fn main() {
    let insts = inst_budget();
    println!("=== Fig. 5: MVP/TVP ± SpSR speedup over baseline ({insts} insts) ===\n");
    let prepared = prepare_suite(insts);

    println!(
        "{:<16} {:>8} {:>10} {:>8} {:>10}",
        "workload", "MVP %", "MVP+SpSR %", "TVP %", "TVP+SpSR %"
    );
    let mut rows = Vec::new();
    let mut pairs = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    let configs = [
        (VpMode::Mvp, false, "mvp"),
        (VpMode::Mvp, true, "mvp+spsr"),
        (VpMode::Tvp, false, "tvp"),
        (VpMode::Tvp, true, "tvp+spsr"),
    ];
    for p in &prepared {
        let base = run_vp(p, VpMode::Off, false);
        let mut pcts = [0.0f64; 4];
        for (i, (vp, spsr, label)) in configs.iter().enumerate() {
            let s = run_vp(p, *vp, *spsr);
            pcts[i] = speedup_pct(&s, &base);
            rows.push(StatsRow::new(p.workload.name, *label, &s));
            pairs[i].push((s, base));
        }
        println!(
            "{:<16} {:>8.2} {:>10.2} {:>8.2} {:>10.2}",
            p.workload.name, pcts[0], pcts[1], pcts[2], pcts[3]
        );
    }
    println!();
    for (i, (_, _, label)) in configs.iter().enumerate() {
        let g = (geomean_speedup(&pairs[i]) - 1.0) * 100.0;
        println!("{label:<10} geomean {g:+.2}%");
    }
    println!();
    println!("paper: MVP +0.54 → +0.64 with SpSR; TVP +1.11 → +1.17 with SpSR.");
    write_results("fig5_spsr_speedup", &rows);
}
