//! Ablation (§3.4.1) — predictor silencing window after a value
//! misprediction.
//!
//! The paper finds 15 cycles sufficient in most cases but uses 250 to
//! curb a TVP/stride-prefetcher pathology in roms; a 0-cycle window
//! risks livelock (the refetched µop would immediately be re-predicted
//! with the same wrong value), which our flush-including-self recovery
//! makes observable as a flush storm.

use tvp_bench::{
    geomean_speedup, inst_budget, prepare_suite, run_cfg, run_vp, write_results, StatsRow,
};
use tvp_core::config::{CoreConfig, VpMode};

fn main() {
    let insts = inst_budget();
    println!("=== Ablation: VP silencing window (§3.4.1) ({insts} insts) ===\n");
    let prepared = prepare_suite(insts);
    let bases: Vec<_> = prepared.iter().map(|p| run_vp(p, VpMode::Off, false)).collect();

    println!(
        "{:<10} {:<10} {:>12} {:>14} {:>12}",
        "vp", "silence", "geomean %", "vp flushes", "squashed"
    );
    let mut rows = Vec::new();
    for vp in [VpMode::Tvp, VpMode::Gvp] {
        for (silence, adaptive) in [(15u64, false), (250, false), (1000, false), (250, true)] {
            let mut pairs = Vec::new();
            let mut flushes = 0u64;
            let mut squashed = 0u64;
            for (p, base) in prepared.iter().zip(&bases) {
                let mut cfg = CoreConfig::with_vp(vp);
                cfg.silence_cycles = silence;
                cfg.adaptive_silencing = adaptive;
                let s = run_cfg(p, cfg);
                flushes += s.flush.vp_flushes;
                squashed += s.flush.squashed_uops;
                let label = if adaptive {
                    format!("{vp:?}/adaptive{silence}")
                } else {
                    format!("{vp:?}/silence{silence}")
                };
                rows.push(StatsRow::new(p.workload.name, label, &s));
                pairs.push((s, *base));
            }
            let g = (geomean_speedup(&pairs) - 1.0) * 100.0;
            let label = if adaptive { format!("{silence}+adapt") } else { silence.to_string() };
            println!(
                "{:<10} {:<10} {:>12.2} {:>14} {:>12}",
                format!("{vp:?}"),
                label,
                g,
                flushes,
                squashed
            );
        }
    }
    println!();
    println!("paper: 15 cycles performs like 250 except for roms under TVP;");
    println!("250 is used everywhere as it costs nothing in MVP/GVP. The");
    println!("adaptive row is this reproduction's extension (§3.4.1 future");
    println!("work): geometric backoff on clustered mispredictions.");
    write_results("ablation_silencing", &rows);
}
