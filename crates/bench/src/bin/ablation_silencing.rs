//! Ablation — VP silencing window (§3.4.1).
//!
//! Thin driver over [`tvp_bench::experiments::ablation_silencing`];
//! accepts the common engine CLI (`--jobs N`, `--smoke`, `--insts N`).

fn main() {
    tvp_bench::engine::run_main(&[Box::new(
        tvp_bench::experiments::ablation_silencing::AblationSilencing,
    )]);
}
