//! Ablation — flush vs. replay recovery (§3.4).
//!
//! Thin driver over [`tvp_bench::experiments::ablation_recovery`];
//! accepts the common engine CLI (`--jobs N`, `--smoke`, `--insts N`).

fn main() {
    tvp_bench::engine::run_main(&[Box::new(
        tvp_bench::experiments::ablation_recovery::AblationRecovery,
    )]);
}
