//! Ablation (§2.2 / §3.4) — value-misprediction recovery: pipeline
//! flush (the paper's scheme) vs. selective consumer replay (the
//! alternative the paper describes for microarchitectures that already
//! implement replay, applicable to GVP wide predictions only).

use tvp_bench::{
    geomean_speedup, inst_budget, prepare_suite, run_cfg, run_vp, write_results, StatsRow,
};
use tvp_core::config::{CoreConfig, RecoveryPolicy, VpMode};

fn main() {
    let insts = inst_budget();
    println!("=== Ablation: flush vs. replay recovery (§3.4) ({insts} insts) ===\n");
    let prepared = prepare_suite(insts);
    let bases: Vec<_> = prepared.iter().map(|p| run_vp(p, VpMode::Off, false)).collect();

    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>10} {:>12}",
        "policy", "geomean %", "flushes", "replays", "squashed", "replayed"
    );
    let mut rows = Vec::new();
    for policy in [RecoveryPolicy::Flush, RecoveryPolicy::Replay] {
        let mut pairs = Vec::new();
        let (mut flushes, mut replays, mut squashed, mut replayed) = (0u64, 0u64, 0u64, 0u64);
        for (p, base) in prepared.iter().zip(&bases) {
            let mut cfg = CoreConfig::with_vp(VpMode::Gvp);
            cfg.recovery = policy;
            let s = run_cfg(p, cfg);
            flushes += s.flush.vp_flushes;
            replays += s.flush.vp_replays;
            squashed += s.flush.squashed_uops;
            replayed += s.flush.replayed_uops;
            rows.push(StatsRow::new(p.workload.name, format!("gvp/{policy:?}"), &s));
            pairs.push((s, *base));
        }
        let g = (geomean_speedup(&pairs) - 1.0) * 100.0;
        println!(
            "{:<10} {:>12.2} {:>10} {:>10} {:>10} {:>12}",
            format!("{policy:?}"),
            g,
            flushes,
            replays,
            squashed,
            replayed
        );
    }
    println!();
    println!("paper: flush is chosen for simplicity (§3.4); replay avoids the");
    println!("refetch but risks replay tornadoes [24] — silencing guards both.");
    write_results("ablation_recovery", &rows);
}
