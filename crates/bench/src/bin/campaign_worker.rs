//! Distributed campaign driver (DESIGN.md §16): coordinator, worker,
//! reaper and merge in one binary.
//!
//! ```text
//! # 1. coordinator: initialize the store and pin the campaign
//! campaign_worker manifest --store DIR [--insts N | --smoke]
//!
//! # 2. any number of workers, concurrently, on the same store
//! campaign_worker worker --store DIR --id w0 [--jobs N]
//!
//! # 3. after a worker dies: retire its leases so others re-run them
//! campaign_worker reap --store DIR --dead w0 [--dead w1 ...]
//! campaign_worker reap --store DIR --all     # no workers left alive
//!
//! # 4. assemble results/*.json (byte-identical to a serial run)
//! campaign_worker merge --store DIR [--results DIR] [--telemetry P] [--jobs N]
//! ```
//!
//! Workers and merge read the instruction budget from the manifest,
//! never from their own flags — a coordinator/worker budget mismatch
//! is impossible by construction. `$TVP_STORE_KILL_AFTER` arms the
//! same chaos knob as everywhere else: the worker process exits with
//! code 42 after N blob publications, mid-lease, which is exactly the
//! crash the reaper exists to clean up after.

use std::path::PathBuf;

use tvp_bench::distributed::{self, CampaignManifest};
use tvp_bench::engine::{self, RunOptions, SMOKE_INSTS};
use tvp_bench::experiments;
use tvp_bench::store::{manifest, ResultStore, StoreConfig};
use tvp_bench::DEFAULT_INSTS;

fn usage() -> ! {
    eprintln!(
        "usage: campaign_worker <mode> --store DIR ...\n\
         modes:\n  \
         manifest [--insts N | --smoke]          pin the campaign (coordinator)\n  \
         worker --id WID [--jobs N]              drain the manifest\n  \
         reap (--dead WID ... | --all)           retire dead workers' leases\n  \
         merge [--results DIR] [--telemetry P] [--jobs N]   assemble results"
    );
    std::process::exit(2);
}

fn parse_u64(flag: &str, v: Option<String>) -> u64 {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("error: {flag} needs an unsigned integer");
        std::process::exit(2);
    })
}

fn fatal(e: &std::io::Error) -> ! {
    eprintln!("FATAL: {e}");
    std::process::exit(1);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(mode) = args.next() else { usage() };
    match mode.as_str() {
        "manifest" => cmd_manifest(args),
        "worker" => cmd_worker(args),
        "reap" => cmd_reap(args),
        "merge" => cmd_merge(args),
        _ => usage(),
    }
}

fn need_store(store: Option<PathBuf>) -> PathBuf {
    store.unwrap_or_else(|| {
        eprintln!("error: --store DIR is required");
        std::process::exit(2);
    })
}

fn cmd_manifest(mut args: impl Iterator<Item = String>) {
    let mut store_dir: Option<PathBuf> = None;
    let mut insts: Option<u64> = None;
    let mut smoke = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--store" => store_dir = args.next().map(PathBuf::from),
            "--insts" => insts = Some(parse_u64("--insts", args.next())),
            "--smoke" => smoke = true,
            _ => usage(),
        }
    }
    let dir = need_store(store_dir);
    let insts = insts.unwrap_or(if smoke { SMOKE_INSTS } else { DEFAULT_INSTS });
    // Opening the store exclusively creates the layout and the
    // journal — the initialization workers' shared opens require.
    let store = ResultStore::open(StoreConfig::at(&dir)).unwrap_or_else(|e| fatal(&e));
    drop(store);
    let exps = experiments::all();
    let ctx =
        tvp_bench::experiments::ExpContext { insts, prepared: tvp_bench::prepare_suite(insts) };
    let mut cache = tvp_bench::cache::ResultCache::new();
    for exp in &exps {
        for job in &exp.jobs(&ctx) {
            cache.request(job);
        }
    }
    let schedule = cache.take_scheduled();
    let man = CampaignManifest::from_schedule(insts, &schedule);
    man.write(&dir).unwrap_or_else(|e| fatal(&e));
    println!(
        "campaign {:016x}: {} point(s) at {} insts, fingerprint {:016x}",
        man.id(),
        man.points.len(),
        man.insts,
        distributed::campaign_fingerprint(man.points.iter().map(|(d, _)| *d)),
    );
    println!("manifest written to {}", CampaignManifest::path(&dir).display());
}

fn cmd_worker(mut args: impl Iterator<Item = String>) {
    let mut store_dir: Option<PathBuf> = None;
    let mut id: Option<String> = None;
    let mut jobs: usize = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--store" => store_dir = args.next().map(PathBuf::from),
            "--id" => id = args.next(),
            "--jobs" => {
                jobs = usize::try_from(parse_u64("--jobs", args.next())).unwrap_or(1).max(1);
            }
            _ => usage(),
        }
    }
    let dir = need_store(store_dir);
    let Some(id) = id else {
        eprintln!("error: worker needs --id WID");
        std::process::exit(2);
    };
    let kill_after = tvp_bench::env_u64_or_exit("TVP_STORE_KILL_AFTER");
    let report = distributed::worker_loop(&experiments::all(), &dir, &id, jobs, kill_after)
        .unwrap_or_else(|e| fatal(&e));
    println!(
        "worker {id}: {} published, {} stale (fenced off), {} failed, {} round(s)",
        report.published, report.stale, report.failed, report.rounds
    );
    std::process::exit(i32::from(report.failed > 0));
}

fn cmd_reap(mut args: impl Iterator<Item = String>) {
    let mut store_dir: Option<PathBuf> = None;
    let mut dead: Vec<String> = Vec::new();
    let mut all = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--store" => store_dir = args.next().map(PathBuf::from),
            "--dead" => {
                let Some(w) = args.next() else { usage() };
                if !manifest::valid_worker_id(&w) {
                    eprintln!("error: invalid worker id {w:?}");
                    std::process::exit(2);
                }
                dead.push(w);
            }
            "--all" => all = true,
            _ => usage(),
        }
    }
    let dir = need_store(store_dir);
    if dead.is_empty() && !all {
        eprintln!("error: reap needs --dead WID (repeatable) or --all");
        std::process::exit(2);
    }
    let is_dead = |w: &str| all || dead.iter().any(|d| d == w);
    let report = distributed::reap(&dir, &is_dead).unwrap_or_else(|e| fatal(&e));
    println!(
        "reap: {} reclaimed, {} released (already done), {} torn, {} live lease(s) spared",
        report.reclaimed, report.released_done, report.torn, report.live
    );
}

fn cmd_merge(mut args: impl Iterator<Item = String>) {
    let mut store_dir: Option<PathBuf> = None;
    let mut results_dir: Option<String> = None;
    let mut telemetry_path: Option<String> = None;
    let mut workers: Option<usize> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--store" => store_dir = args.next().map(PathBuf::from),
            "--results" => results_dir = args.next(),
            "--telemetry" => telemetry_path = args.next(),
            "--jobs" => {
                workers = Some(usize::try_from(parse_u64("--jobs", args.next())).unwrap_or(1));
            }
            _ => usage(),
        }
    }
    let dir = need_store(store_dir);
    let man = CampaignManifest::load(&dir).unwrap_or_else(|e| fatal(&e));
    // The merge is the ordinary engine run against the campaign
    // store: published points load warm (fully re-verified), orphans
    // simulate locally, assembly is serial in fixed experiment order
    // — byte-identical to a serial run of the same campaign.
    let opts = RunOptions {
        workers,
        insts: man.insts,
        store_dir: Some(dir),
        store_kill_after: tvp_bench::env_u64_or_exit("TVP_STORE_KILL_AFTER"),
        results_dir,
        telemetry_path,
        ..RunOptions::default()
    };
    let report = engine::run(&experiments::all(), &opts);
    std::process::exit(engine::exit_code(&report));
}
