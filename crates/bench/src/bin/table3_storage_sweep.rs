//! Table 3 — geomean speedups for MVP/TVP/GVP at four predictor
//! storage budgets (same tables/history; only table sizes scale).
//!
//! Paper result:
//!
//! | budget        | MVP    | TVP    | GVP    |
//! |---------------|--------|--------|--------|
//! | ~4KB (½·MVP)  | +0.50% | +0.74% | +2.54% |
//! | ~8KB (MVP)    | +0.54% | +0.96% | +2.86% |
//! | ~14KB (TVP)   | +0.60% | +1.11% | +3.51% |
//! | ~55KB (GVP)   | +0.66% | +1.24% | +4.67% |

use tvp_bench::{
    geomean_speedup, inst_budget, prepare_suite, run_cfg, run_vp, write_results, StatsRow,
    VP_FLAVOURS,
};
use tvp_core::config::{CoreConfig, VpMode};
use tvp_predictors::vtage::VtageConfig;

fn main() {
    let insts = inst_budget();
    println!("=== Table 3: storage sweep ({insts} insts) ===\n");
    let prepared = prepare_suite(insts);

    // Each flavour's own paper budget in bits, used to derive the
    // scale factor that hits the row's target budget.
    let budgets: [(&str, f64); 4] = [
        ("0.5 x MVP (~4KB)", 0.5 * 65_152.0),
        ("MVP budget (~8KB)", 65_152.0),
        ("TVP budget (~14KB)", 114_304.0),
        ("GVP budget (~55KB)", 452_224.0),
    ];

    let bases: Vec<_> = prepared.iter().map(|p| run_vp(p, VpMode::Off, false)).collect();

    println!("{:<20} {:>10} {:>10} {:>10}", "budget", "MVP", "TVP", "GVP");
    let mut rows = Vec::new();
    for (label, target_bits) in budgets {
        let mut cells = Vec::new();
        for (vp, _) in VP_FLAVOURS {
            let mode = vp.pred_mode().expect("VP flavour");
            let own = VtageConfig::paper(mode);
            // Scale table sizes so the flavour's storage hits the row
            // budget (entry widths are fixed by the prediction width).
            let factor = target_bits / own.storage_bits() as f64;
            let scaled = own.scaled(factor);
            let kb = scaled.storage_kb();
            let mut pairs = Vec::new();
            for (p, base) in prepared.iter().zip(&bases) {
                let mut cfg = CoreConfig::with_vp(vp);
                cfg.vtage = Some(scaled.clone());
                let s = run_cfg(p, cfg);
                rows.push(StatsRow::new(p.workload.name, format!("{vp:?}@{kb:.1}KB"), &s));
                pairs.push((s, *base));
            }
            let g = (geomean_speedup(&pairs) - 1.0) * 100.0;
            cells.push(format!("{g:+.2}%"));
        }
        println!("{:<20} {:>10} {:>10} {:>10}", label, cells[0], cells[1], cells[2]);
    }
    println!();
    println!("paper: +0.50/+0.74/+2.54 | +0.54/+0.96/+2.86 | +0.60/+1.11/+3.51 |");
    println!("       +0.66/+1.24/+4.67 (rows: 4/8/14/55KB; columns MVP/TVP/GVP)");
    write_results("table3_storage_sweep", &rows);
}
