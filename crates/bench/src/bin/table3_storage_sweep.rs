//! Table 3 — predictor storage sweep.
//!
//! Thin driver over [`tvp_bench::experiments::table3`]; accepts the
//! common engine CLI (`--jobs N`, `--smoke`, `--insts N`).

fn main() {
    tvp_bench::engine::run_main(&[Box::new(tvp_bench::experiments::table3::Table3)]);
}
