//! Fig. 2 — Retired µops per architectural instruction (bars) and
//! baseline IPC (line).
//!
//! Paper result: expansion ratios between 1.0 and ~1.15 (mean ~1.05),
//! IPC between ~0.5 and ~5.5 (hmean ≈ 2).

use tvp_bench::{amean, hmean, inst_budget, prepare_suite, run_vp, write_results, StatsRow};
use tvp_core::config::VpMode;

fn main() {
    let insts = inst_budget();
    println!("=== Fig. 2: µops per arch. instruction + baseline IPC ({insts} insts) ===\n");
    let prepared = prepare_suite(insts);

    println!("{:<16} {:>12} {:>8}", "workload", "uops/inst", "IPC");
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    let mut ipcs = Vec::new();
    for p in &prepared {
        let stats = run_vp(p, VpMode::Off, false);
        let ratio = stats.expansion_ratio();
        println!("{:<16} {:>12.3} {:>8.2}", p.workload.name, ratio, stats.ipc());
        ratios.push(ratio);
        ipcs.push(stats.ipc());
        rows.push(StatsRow::new(p.workload.name, "baseline", &stats));
    }
    println!("{:<16} {:>12.3} {:>8.2}", "mean/hmean", amean(&ratios), hmean(&ipcs));
    println!();
    println!("paper: ratios 1.0–1.15 (amean ~1.05); IPC line spans ~0.5–5.5.");
    write_results("fig2_uops_ipc", &rows);
}
