//! Fig. 2 — µops per instruction and baseline IPC.
//!
//! Thin driver over [`tvp_bench::experiments::fig2`]; accepts the
//! common engine CLI (`--jobs N`, `--smoke`, `--insts N`).

fn main() {
    tvp_bench::engine::run_main(&[Box::new(tvp_bench::experiments::fig2::Fig2)]);
}
