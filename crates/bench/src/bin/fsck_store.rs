//! `fsck_store` — validate a durable result store offline.
//!
//! ```text
//! fsck_store <STORE_DIR> [--json FILE]
//! ```
//!
//! Walks `blobs/`, re-verifying every blob (magic, schema, lengths,
//! checksum, content address), replays the campaign journal, and
//! cross-checks the two (orphans, missing blobs, pending leases,
//! quarantines). Prints a human summary; `--json FILE` additionally
//! writes the machine-readable report (CI uploads it as the
//! resume-smoke artifact; `-` writes JSON to stdout).
//!
//! Exit codes: `0` the store is healthy, `1` problems were found
//! (corrupt blobs, missing blobs, or mid-journal corruption), `2`
//! usage or I/O error. Normally invoked as `cargo xtask fsck-store`.

use std::path::PathBuf;
use std::process::ExitCode;

use tvp_bench::store::fsck;

fn usage() -> ExitCode {
    eprintln!("usage: fsck_store <STORE_DIR> [--json FILE]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir: Option<PathBuf> = None;
    let mut json_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => match it.next() {
                Some(path) => json_out = Some(path.clone()),
                None => return usage(),
            },
            _ if dir.is_none() && !arg.starts_with('-') => dir = Some(PathBuf::from(arg)),
            _ => return usage(),
        }
    }
    let Some(dir) = dir else {
        return usage();
    };

    let report = match fsck::fsck(&dir) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("fsck-store: {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };

    println!("fsck {}: {}", dir.display(), report.summary());
    for bad in &report.corrupt {
        println!("  CORRUPT  blobs/{}: {}", bad.file, bad.error);
    }
    for file in &report.missing {
        println!("  MISSING  blobs/{file} (journal claims it was published)");
    }
    for file in &report.orphans {
        println!("  orphan   blobs/{file} (valid, no journal record — will warm the next run)");
    }
    if report.journal_torn_tail {
        println!("  note     journal has a torn tail (normal after a kill; next run repairs)");
    }
    if report.journal_skipped > 0 {
        println!("  CORRUPT  journal: {} unreadable mid-file line(s)", report.journal_skipped);
    }
    if report.journal_bad_header {
        println!("  CORRUPT  journal: missing or unrecognised header");
    }

    if let Some(path) = json_out {
        let json = report.to_json();
        if path == "-" {
            println!("{json}");
        } else if let Err(e) = std::fs::write(&path, json) {
            eprintln!("fsck-store: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if report.clean() {
        println!("store is clean");
        ExitCode::SUCCESS
    } else {
        println!("store has problems (see above)");
        ExitCode::from(1)
    }
}
