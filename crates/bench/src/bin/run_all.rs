//! Runs the full paper reproduction (Figs. 1–6, Table 3, ablations)
//! through the parallel deterministic experiment engine:
//!
//! ```text
//! cargo run --release -p tvp-bench --bin run_all -- --jobs 8
//! cargo run --release -p tvp-bench --bin run_all -- --jobs 1 --smoke
//! ```
//!
//! Every simulation point across all experiments is enumerated as a
//! keyed job, deduplicated through the result cache (shared baselines
//! simulate exactly once), and run on a work-stealing pool sized by
//! `--jobs` (default: available cores). `--jobs 1` and `--jobs N`
//! produce byte-identical `results/*.json`. A failed point never
//! aborts the sequence: the engine finishes everything else, reports
//! the failed jobs' keys, and exits non-zero. Telemetry (wall time,
//! sims/sec, simulated cycles/sec, cache hit rate, per-job timings)
//! lands in `BENCH_parallel_runner.json`.

fn main() {
    tvp_bench::engine::run_main(&tvp_bench::experiments::all());
}
