//! Runs every experiment binary in sequence (Figs. 1–6, Table 3,
//! ablations), producing the full paper reproduction in one command:
//!
//! ```text
//! cargo run --release -p tvp-bench --bin run_all
//! ```

use std::process::Command;

fn main() {
    let binaries = [
        "fig1_value_dist",
        "fig2_uops_ipc",
        "fig3_vp_speedup",
        "table3_storage_sweep",
        "fig4_rename_fractions",
        "fig5_spsr_speedup",
        "fig6_activity",
        "ablation_silencing",
        "ablation_prefetcher",
        "ablation_recovery",
        "ablation_dvtage",
    ];
    let exe = std::env::current_exe().expect("current executable path");
    let dir = exe.parent().expect("executable directory");
    for bin in binaries {
        println!("\n================================================================");
        println!("== {bin}");
        println!("================================================================\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
    println!("\nAll experiments complete; JSON results are under results/.");
}
