//! Ablation (§6.2) — SpSR × L1D stride prefetcher interaction.
//!
//! The paper traces the occasional SpSR slowdowns (perlbench, x264,
//! cam4) to the unthrottled stride prefetcher: with it disabled, SpSR's
//! geomean contribution improves from +0.06% to +0.11% on TVP.

use tvp_bench::{geomean_speedup, inst_budget, prepare_suite, run_cfg, write_results, StatsRow};
use tvp_core::config::{CoreConfig, VpMode};

fn main() {
    let insts = inst_budget();
    println!("=== Ablation: SpSR vs. the stride prefetcher (§6.2) ({insts} insts) ===\n");
    let prepared = prepare_suite(insts);

    println!("{:<22} {:>14} {:>14}", "config", "TVP geo %", "TVP+SpSR geo %");
    let mut rows = Vec::new();
    for stride_on in [true, false] {
        let mk = |vp: VpMode, spsr: bool| {
            let mut cfg = CoreConfig::with_vp(vp);
            cfg.spsr = spsr;
            cfg.mem.stride_prefetcher = stride_on;
            cfg
        };
        let mut tvp_pairs = Vec::new();
        let mut spsr_pairs = Vec::new();
        for p in &prepared {
            let base = run_cfg(p, mk(VpMode::Off, false));
            let tvp = run_cfg(p, mk(VpMode::Tvp, false));
            let tvps = run_cfg(p, mk(VpMode::Tvp, true));
            let tag = if stride_on { "stride-on" } else { "stride-off" };
            rows.push(StatsRow::new(p.workload.name, format!("tvp/{tag}"), &tvp));
            rows.push(StatsRow::new(p.workload.name, format!("tvp+spsr/{tag}"), &tvps));
            tvp_pairs.push((tvp, base));
            spsr_pairs.push((tvps, base));
        }
        println!(
            "{:<22} {:>14.2} {:>14.2}",
            if stride_on { "stride prefetcher ON" } else { "stride prefetcher OFF" },
            (geomean_speedup(&tvp_pairs) - 1.0) * 100.0,
            (geomean_speedup(&spsr_pairs) - 1.0) * 100.0,
        );
    }
    println!();
    println!("paper: without the stride prefetcher the SpSR slowdowns on");
    println!("perlbench_2/3, x264_2 and cam4 disappear (+0.06% → +0.11%).");
    write_results("ablation_prefetcher", &rows);
}
