//! Ablation — SpSR × stride prefetcher interaction (§6.2).
//!
//! Thin driver over [`tvp_bench::experiments::ablation_prefetcher`];
//! accepts the common engine CLI (`--jobs N`, `--smoke`, `--insts N`).

fn main() {
    tvp_bench::engine::run_main(&[Box::new(
        tvp_bench::experiments::ablation_prefetcher::AblationPrefetcher,
    )]);
}
