//! Fixed-seed chaos smoke campaign — the CI gate for PR-level fault
//! resilience.
//!
//! For every bundled workload, runs the full fault campaign (forced VP
//! mispredictions at ≥1%, predictor-table corruption, branch
//! inversion, cache delays, prefetch drops) under the GVP+SpSR
//! configuration with the golden-model commit oracle and the deadlock
//! watchdog armed, and requires the committed architectural state to be
//! identical to the functional machine's. Then proves the oracle has
//! teeth: the same campaign with recovery deliberately sabotaged
//! (squashes skip the trace-cursor rollback) must be caught, with the
//! replaying seed attached. Any failure exits non-zero.
//!
//! ```text
//! cargo run --release -p tvp-bench --features verif --bin chaos_smoke
//! ```

use tvp_chaos::{ChaosConfig, DivergenceKind};
use tvp_core::config::{CoreConfig, VpMode};
use tvp_core::pipeline::Core;

/// One fixed seed for the whole gate: failures reproduce exactly.
const SEED: u64 = 0x7C4A_5EED;
const INSTS: u64 = 8_000;

fn main() {
    let mut failures = 0u32;
    for w in tvp_workloads::suite() {
        let mut machine = w.machine();
        let init = machine.arch_snapshot();
        let trace = machine.run(INSTS);
        let golden = machine.arch_snapshot();

        let cfg =
            CoreConfig::with_vp(VpMode::Gvp).with_spsr().with_chaos(ChaosConfig::campaign(SEED));
        let mut core = Core::new(cfg);
        core.enable_oracle(&init);
        let stats = core.run(&trace);

        let mut verdict = "ok";
        if let Some(diag) = core.watchdog_diagnostic() {
            eprintln!("{}: watchdog tripped under campaign:\n{diag}", w.name);
            verdict = "WATCHDOG";
        } else if let Some(d) = core.oracle_final_check(&golden) {
            eprintln!("{}: {d}", w.name);
            verdict = "DIVERGED";
        }
        #[cfg(feature = "verif")]
        if let Some(summary) = core.audit_report().first_violation_summary() {
            eprintln!("{}: auditor violation: {summary}", w.name);
            verdict = "AUDIT";
        }
        if verdict != "ok" {
            failures += 1;
        }
        println!(
            "{:<18} {:>8} faults ({:>4} forced vp) {:>9} cycles  {}",
            w.name,
            stats.chaos.total(),
            stats.chaos.vp_forced_mispredicts,
            stats.cycles,
            verdict
        );
    }

    // Broken fixture: recovery sabotaged — the oracle must catch it on
    // a workload where the campaign provokes value-misprediction
    // flushes, and the divergence must carry the replaying seed.
    let w = tvp_workloads::suite::by_name("pointer_chase").expect("bundled workload");
    let mut machine = w.machine();
    let init = machine.arch_snapshot();
    let trace = machine.run(12_000);
    let cfg = CoreConfig::with_vp(VpMode::Gvp).with_chaos(ChaosConfig::sabotaged_campaign(SEED));
    let mut core = Core::new(cfg);
    core.enable_oracle(&init);
    let _stats = core.run(&trace);
    match core.oracle_divergence() {
        Some(d) if matches!(d.kind, DivergenceKind::Order { .. }) && d.chaos_seed == Some(SEED) => {
            println!("sabotaged recovery caught: {d}");
        }
        Some(d) => {
            eprintln!("sabotage caught but with the wrong shape: {d}");
            failures += 1;
        }
        None => {
            eprintln!("sabotaged recovery was NOT caught — the oracle has no teeth");
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("chaos smoke: {failures} failure(s) [seed {SEED:#x}]");
        std::process::exit(1);
    }
    println!(
        "chaos smoke: all workloads architecturally identical under campaign [seed {SEED:#x}]"
    );
}
