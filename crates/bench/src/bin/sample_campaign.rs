//! Sampled-simulation campaign driver: run the whole suite sampled in
//! parallel, validate sampled-vs-full error bounds, or benchmark the
//! sampling speedup on a long stream.
//!
//! ```text
//! sample_campaign run      [--insts N] [--spec P:W:M] [--jobs N] [--store DIR] [--telemetry FILE]
//! sample_campaign validate [--insts N] [--spec P:W:M] [--jobs N] [--report FILE]
//! sample_campaign bench    [--out FILE]
//! ```
//!
//! `run` executes every suite workload under interval sampling on a
//! worker pool and prints one weighted-reconstruction row per workload
//! plus the campaign fingerprint (byte-identical across `--jobs`
//! widths and across kill/resume). With `--store DIR` each interval is
//! checkpointed through the durable store (honouring
//! `$TVP_STORE_KILL_AFTER`) so a killed campaign resumes mid-trace.
//!
//! `validate` simulates each workload both ways — full detail and
//! sampled — and holds the headline stats (IPC, branch MPKI, VP MPKI,
//! SpSR coverage) to the declared error bounds, writing a
//! machine-readable report and exiting non-zero on any violation.
//!
//! `bench` measures the effective simulated-instructions/s of a
//! 100M-instruction sampled run against the full-detail baseline rate
//! and records peak-RSS flatness in `BENCH_sampling.json`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tvp_bench::json;
use tvp_bench::sampling::{
    campaign_fingerprint, run_sampled, run_suite_sampled, SampleRunOptions, SampleSpec, SampledRun,
    StatErrors, DEFAULT_BOUNDS,
};
use tvp_bench::store::{ResultStore, StoreConfig};
use tvp_bench::telemetry::{SamplingTelemetry, Telemetry, TELEMETRY_SCHEMA};
use tvp_core::config::{CoreConfig, VpMode};
use tvp_core::pipeline::Core;
use tvp_core::stats::SimStats;
use tvp_workloads::Workload;

fn usage() -> ! {
    eprintln!(
        "usage: sample_campaign run      [--insts N] [--spec P:W:M] [--jobs N] \
         [--store DIR] [--telemetry FILE]\n       \
         sample_campaign validate [--insts N] [--spec P:W:M] [--jobs N] [--report FILE]\n       \
         sample_campaign bench    [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_u64(flag: &str, v: Option<String>) -> u64 {
    v.and_then(|s| s.replace('_', "").parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs an unsigned integer");
        usage()
    })
}

fn parse_spec(v: Option<String>) -> SampleSpec {
    let s = v.unwrap_or_else(|| {
        eprintln!("--spec needs PERIOD:WARMUP:MEASURED");
        usage()
    });
    SampleSpec::parse(&s).unwrap_or_else(|e| {
        eprintln!("bad --spec: {e}");
        usage()
    })
}

fn parse_vp(v: Option<String>) -> VpMode {
    match v.as_deref() {
        Some("off") => VpMode::Off,
        Some("mvp") => VpMode::Mvp,
        Some("tvp") => VpMode::Tvp,
        Some("gvp") => VpMode::Gvp,
        _ => {
            eprintln!("--vp needs off|mvp|tvp|gvp");
            usage()
        }
    }
}

fn open_store(dir: &str) -> ResultStore {
    let kill_after = tvp_bench::env_u64_or_exit("TVP_STORE_KILL_AFTER");
    ResultStore::open(StoreConfig { dir: dir.into(), kill_after }).unwrap_or_else(|e| {
        eprintln!("FATAL: cannot open checkpoint store {dir}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(mode) = args.next() else { usage() };
    match mode.as_str() {
        "run" => cmd_run(args),
        "validate" => cmd_validate(args),
        "bench" => cmd_bench(args),
        _ => usage(),
    }
}

fn cmd_run(mut args: impl Iterator<Item = String>) {
    let mut insts: u64 = 1_000_000;
    let mut spec = SampleSpec::new(100_000, 10_000, 10_000).expect("default spec is valid");
    let mut jobs: usize = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut store_dir: Option<String> = None;
    let mut telemetry_path: Option<String> = None;
    let mut cfg = CoreConfig::default();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--insts" => insts = parse_u64("--insts", args.next()),
            "--spec" => spec = parse_spec(args.next()),
            "--jobs" => jobs = usize::try_from(parse_u64("--jobs", args.next())).unwrap_or(1),
            "--store" => store_dir = args.next(),
            "--telemetry" => telemetry_path = args.next(),
            "--vp" => {
                cfg.vp = parse_vp(args.next());
                cfg.nine_bit_idiom = cfg.vp.uses_inlining();
            }
            "--spsr" => cfg.spsr = true,
            _ => usage(),
        }
    }
    let workloads = tvp_workloads::suite::suite();
    let store = store_dir.as_deref().map(|d| Mutex::new(open_store(d)));
    eprintln!(
        "sampled campaign: {} workloads, {insts} arch insts each, spec {}, {} job(s)",
        workloads.len(),
        spec.display(),
        jobs
    );

    let t0 = Instant::now();
    let runs = run_suite_sampled(&workloads, &cfg, insts, spec, jobs, store.as_ref());
    let wall = t0.elapsed();

    println!(
        "{:<16} {:>9} {:>7} {:>8} {:>12} {:>8} {:>8} {:>8}  fp",
        "workload", "intervals", "resumed", "ipc", "cycles", "br_mpki", "vp_mpki", "spsr"
    );
    for (w, run) in workloads.iter().zip(&runs) {
        let est = run.estimate();
        println!(
            "{:<16} {:>9} {:>7} {:>8.4} {:>12.0} {:>8.3} {:>8.3} {:>8.4}  {:016x}",
            w.name,
            run.intervals.len(),
            run.resumed_intervals,
            est.ipc(),
            est.cycles,
            est.branch_mpki(),
            est.vp_mpki(),
            est.spsr_coverage(),
            run.fingerprint()
        );
    }
    let fp = campaign_fingerprint(&runs);
    println!("campaign fingerprint   {fp:016x}");

    let agg = |f: fn(&SampledRun) -> u64| runs.iter().map(f).sum::<u64>();
    let total_insts = agg(|r| r.total_insts);
    let detailed = agg(|r| r.warmup_insts) + agg(|r| r.measured_insts);
    #[allow(clippy::cast_precision_loss)]
    let detail_fraction = if total_insts == 0 { 0.0 } else { detailed as f64 / total_insts as f64 };
    let telemetry = Telemetry {
        schema: TELEMETRY_SCHEMA,
        workers: jobs,
        insts,
        smoke: false,
        jobs_requested: workloads.len() as u64,
        jobs_unique: workloads.len() as u64,
        cache_hits: 0,
        cache_hit_rate: 0.0,
        jobs_failed: 0,
        retries: 0,
        quarantined: 0,
        store_warm_hits: runs.iter().filter(|r| r.resumed_intervals > 0).count() as u64,
        store_enabled: store.is_some(),
        cache_conflicts: 0,
        dist_workers: 0,
        reclaimed_leases: 0,
        stale_publishes: 0,
        campaign_fingerprint: fp,
        prepare: std::time::Duration::ZERO,
        sim_wall: wall,
        total_wall: wall,
        cpu_time: wall,
        simulated_cycles: runs
            .iter()
            .flat_map(|r| r.intervals.iter())
            .map(|i| i.stats.cycles)
            .sum(),
        per_job: Vec::new(),
        emit_per_job: false,
        sampling: Some(SamplingTelemetry {
            period: spec.period,
            warmup: spec.warmup,
            measured: spec.measured,
            intervals: runs.iter().map(|r| r.intervals.len() as u64).sum(),
            resumed_intervals: agg(|r| u64::from(r.resumed_intervals)),
            total_insts,
            skipped_insts: agg(|r| r.skipped_insts),
            warmup_insts: agg(|r| r.warmup_insts),
            measured_insts: agg(|r| r.measured_insts),
            detail_fraction,
            fingerprint: fp,
        }),
    };
    if let Some(path) = telemetry_path {
        telemetry.write(&path);
        eprintln!("telemetry written: {path}");
    }
    eprintln!("[campaign] {:.2}s wall, detail fraction {:.4}", wall.as_secs_f64(), detail_fraction);
    if let Some(s) = &store {
        eprintln!("[store] {}", s.lock().expect("store lock poisoned").summary());
    }
}

/// Simulates `workload` in full detail (no sampling) and returns the
/// stats — the reference the sampled reconstruction is held against.
fn full_reference(workload: &Workload, cfg: &CoreConfig, insts: u64) -> SimStats {
    let trace = workload.machine().run(insts);
    let mut core = Core::new(cfg.clone());
    core.run(&trace)
}

fn cmd_validate(mut args: impl Iterator<Item = String>) {
    let mut insts: u64 = 60_000;
    // The spec DEFAULT_BOUNDS was calibrated at — changing one without
    // re-deriving the other turns the bounds into fiction.
    let mut spec = SampleSpec::new(20_000, 8_000, 2_000).expect("default spec is valid");
    let mut jobs: usize = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut report_path = "sampling_error_report.json".to_owned();
    // Validation runs the paper's headline configuration (TVP + SpSR)
    // so the VP-MPKI and SpSR-coverage bounds are exercised for real.
    let mut cfg = CoreConfig::with_vp(VpMode::Tvp).with_spsr();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--insts" => insts = parse_u64("--insts", args.next()),
            "--spec" => spec = parse_spec(args.next()),
            "--jobs" => jobs = usize::try_from(parse_u64("--jobs", args.next())).unwrap_or(1),
            "--report" => report_path = args.next().unwrap_or_else(|| usage()),
            "--vp" => {
                cfg.vp = parse_vp(args.next());
                cfg.nine_bit_idiom = cfg.vp.uses_inlining();
            }
            "--spsr" => cfg.spsr = true,
            _ => usage(),
        }
    }
    let workloads = tvp_workloads::suite::suite();
    eprintln!(
        "validating sampled accuracy: {} workloads, {insts} arch insts, spec {}, {} job(s)",
        workloads.len(),
        spec.display(),
        jobs
    );

    // Full and sampled runs of every workload on a shared worker pool;
    // results land in per-workload slots so the report order (and the
    // exit code) is independent of scheduling.
    let jobs = jobs.max(1).min(workloads.len().max(1));
    let slots: Vec<Mutex<Option<StatErrors>>> =
        workloads.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(w) = workloads.get(i) else { break };
                let full = full_reference(w, &cfg, insts);
                let run = run_sampled(w, &cfg, insts, spec, SampleRunOptions::default());
                let errors = StatErrors::compare(w.name, &full, &run.estimate());
                *slots[i].lock().expect("slot lock poisoned") = Some(errors);
            });
        }
    });
    let results: Vec<StatErrors> = slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot lock poisoned").expect("worker filled every slot"))
        .collect();

    let mut failures = 0u32;
    for e in &results {
        let violations = e.violations(&DEFAULT_BOUNDS);
        if violations.is_empty() {
            println!(
                "PASS {:<16} ipc {:.4} vs {:.4} (rel err {:.4})",
                e.workload,
                e.sampled.ipc(),
                e.full.ipc(),
                e.ipc_rel_err
            );
        } else {
            failures += 1;
            println!("FAIL {:<16} {}", e.workload, violations.join("; "));
        }
    }

    let rows: Vec<String> = results.iter().map(|e| e.to_json(&DEFAULT_BOUNDS)).collect();
    let report = json::object(&[
        ("insts", insts.to_string()),
        ("spec", format!("\"{}\"", spec.display())),
        ("bounds_ipc_rel", json::number(DEFAULT_BOUNDS.ipc_rel)),
        ("bounds_branch_mpki_abs", json::number(DEFAULT_BOUNDS.branch_mpki_abs)),
        ("bounds_vp_mpki_abs", json::number(DEFAULT_BOUNDS.vp_mpki_abs)),
        ("bounds_spsr_coverage_abs", json::number(DEFAULT_BOUNDS.spsr_coverage_abs)),
        ("failures", failures.to_string()),
        ("workloads", json::array(&rows)),
    ]);
    if let Err(e) = std::fs::write(&report_path, report) {
        eprintln!("FATAL: cannot write error report {report_path}: {e}");
        std::process::exit(2);
    }
    eprintln!("error report written: {report_path}");
    if failures > 0 {
        eprintln!("{failures} workload(s) out of bounds");
        std::process::exit(1);
    }
    eprintln!("all {} workloads within bounds", results.len());
}

/// Peak resident-set size (`VmHWM`) of this process, in kilobytes.
/// Returns 0 on platforms without `/proc` (the RSS check degrades to a
/// no-op rather than failing the benchmark).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn cmd_bench(mut args: impl Iterator<Item = String>) {
    let mut out = "BENCH_sampling.json".to_owned();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }
    let cfg = CoreConfig::default();
    // stream_triad iterates over fixed arrays, so its architectural
    // footprint is independent of trace length — exactly the property
    // the RSS-flatness check needs to isolate the streaming decoder.
    let workload = tvp_workloads::suite::by_name("stream_triad").expect("suite workload");

    const FULL_INSTS: u64 = 2_000_000;
    const SHORT_INSTS: u64 = 10_000_000;
    const LONG_INSTS: u64 = 100_000_000;
    let spec = SampleSpec::new(1_000_000, 20_000, 20_000).expect("bench spec is valid");

    eprintln!("full-detail reference: {} ({FULL_INSTS} insts)...", workload.name);
    let t0 = Instant::now();
    let _ = full_reference(&workload, &cfg, FULL_INSTS);
    let full_wall = t0.elapsed();
    #[allow(clippy::cast_precision_loss)]
    let full_rate = FULL_INSTS as f64 / full_wall.as_secs_f64();

    eprintln!("sampled warm-up run: {SHORT_INSTS} insts, spec {}...", spec.display());
    let t0 = Instant::now();
    let short = run_sampled(&workload, &cfg, SHORT_INSTS, spec, SampleRunOptions::default());
    let short_wall = t0.elapsed();
    let rss_short_kb = peak_rss_kb();

    eprintln!("sampled long run: {LONG_INSTS} insts, spec {}...", spec.display());
    let t0 = Instant::now();
    let long = run_sampled(&workload, &cfg, LONG_INSTS, spec, SampleRunOptions::default());
    let long_wall = t0.elapsed();
    let rss_long_kb = peak_rss_kb();

    #[allow(clippy::cast_precision_loss)]
    let sampled_rate = LONG_INSTS as f64 / long_wall.as_secs_f64();
    let speedup = sampled_rate / full_rate;
    // Peak RSS after the 10x-longer stream, relative to the short run.
    // `VmHWM` is monotonic, so flat decoding shows up as a ratio near
    // 1.0; a decoder that buffered the whole trace would scale ~10x.
    #[allow(clippy::cast_precision_loss)]
    let rss_ratio = if rss_short_kb == 0 { 1.0 } else { rss_long_kb as f64 / rss_short_kb as f64 };

    let est = long.estimate();
    let report = json::object(&[
        ("workload", format!("\"{}\"", json::escape(workload.name))),
        ("spec", format!("\"{}\"", spec.display())),
        ("full_insts", FULL_INSTS.to_string()),
        ("full_wall_seconds", json::number(full_wall.as_secs_f64())),
        ("full_insts_per_sec", json::number(full_rate)),
        ("sampled_insts", LONG_INSTS.to_string()),
        ("sampled_wall_seconds", json::number(long_wall.as_secs_f64())),
        ("sampled_effective_insts_per_sec", json::number(sampled_rate)),
        ("speedup", json::number(speedup)),
        ("speedup_target", json::number(10.0)),
        ("speedup_pass", (speedup >= 10.0).to_string()),
        ("short_insts", SHORT_INSTS.to_string()),
        ("short_wall_seconds", json::number(short_wall.as_secs_f64())),
        ("short_intervals", short.intervals.len().to_string()),
        ("long_intervals", long.intervals.len().to_string()),
        ("peak_rss_short_kb", rss_short_kb.to_string()),
        ("peak_rss_long_kb", rss_long_kb.to_string()),
        ("peak_rss_ratio", json::number(rss_ratio)),
        ("rss_flat_pass", (rss_ratio <= 1.5).to_string()),
        ("sampled_ipc", json::number(est.ipc())),
        ("run_fingerprint", format!("\"{:016x}\"", long.fingerprint())),
    ]);
    if let Err(e) = std::fs::write(&out, &report) {
        eprintln!("FATAL: cannot write benchmark record {out}: {e}");
        std::process::exit(2);
    }
    println!("{report}");
    eprintln!(
        "[bench] full {:.2}M insts/s, sampled effective {:.2}M insts/s, speedup {speedup:.1}x, \
         peak RSS {rss_short_kb} kB -> {rss_long_kb} kB (ratio {rss_ratio:.2})",
        full_rate / 1e6,
        sampled_rate / 1e6,
    );
    if speedup < 10.0 || rss_ratio > 1.5 {
        eprintln!("benchmark targets missed");
        std::process::exit(1);
    }
    eprintln!("benchmark targets met: {out}");
}
