//! Scheduler hot-loop micro-benchmark (`cargo xtask perf`).
//!
//! Times the simulator on the stock workloads with min-of-K std-only
//! wall timers and writes the schema-versioned `BENCH_scheduler.json`
//! record. See `tvp_bench::schedbench` for options and the record
//! format, and DESIGN.md §12 for the methodology.

fn main() {
    tvp_bench::schedbench::run_main(std::env::args().skip(1));
}
