//! Fig. 3 — MVP/TVP/GVP speedup over the DSR baseline.
//!
//! Thin driver over [`tvp_bench::experiments::fig3`]; accepts the
//! common engine CLI (`--jobs N`, `--smoke`, `--insts N`).

fn main() {
    tvp_bench::engine::run_main(&[Box::new(tvp_bench::experiments::fig3::Fig3)]);
}
