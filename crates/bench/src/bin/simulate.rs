//! Interactive simulator driver: run any workload under any
//! configuration and print a gem5-style statistics report.
//!
//! ```text
//! cargo run --release -p tvp-bench --bin simulate -- --list
//! cargo run --release -p tvp-bench --bin simulate -- pointer_chase --vp gvp --insts 200000
//! cargo run --release -p tvp-bench --bin simulate -- mc_playout --vp mvp --spsr --no-stride-prefetch
//! ```

use tvp_core::config::{CoreConfig, VpMode};
use tvp_core::pipeline::simulate;

fn usage() -> ! {
    eprintln!(
        "usage: simulate <workload> [--vp off|mvp|tvp|gvp] [--spsr] \
         [--insts N] [--silence N] [--adaptive-silencing] \
         [--no-stride-prefetch] [--no-ampm] [--baseline-too]\n       \
         simulate --list"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "--list" {
        println!("{:<18} {:<20} {:>6}", "workload", "proxy", "insts");
        for w in tvp_workloads::suite() {
            println!("{:<18} {:<20} {:>6}", w.name, w.proxy, w.code_size());
        }
        return;
    }

    let name = args[0].clone();
    let mut cfg = CoreConfig::table2();
    let mut insts: u64 = 300_000;
    let mut baseline_too = false;
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--vp" => {
                let mode = it.next().unwrap_or_else(|| usage());
                cfg.vp = match mode.as_str() {
                    "off" => VpMode::Off,
                    "mvp" => VpMode::Mvp,
                    "tvp" => VpMode::Tvp,
                    "gvp" => VpMode::Gvp,
                    _ => usage(),
                };
                cfg.nine_bit_idiom = cfg.vp.uses_inlining();
            }
            "--spsr" => cfg.spsr = true,
            "--insts" => {
                insts = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--silence" => {
                cfg.silence_cycles =
                    it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--adaptive-silencing" => cfg.adaptive_silencing = true,
            "--no-stride-prefetch" => cfg.mem.stride_prefetcher = false,
            "--no-ampm" => cfg.mem.ampm_prefetcher = false,
            "--baseline-too" => baseline_too = true,
            _ => usage(),
        }
    }

    let Some(workload) = tvp_workloads::suite::by_name(&name) else {
        eprintln!("unknown workload `{name}` (try --list)");
        std::process::exit(1);
    };
    eprintln!("generating trace: {name} ({insts} arch insts)...");
    let trace = workload.trace(insts);
    eprintln!("simulating...");
    let s = simulate(cfg.clone(), &trace);

    println!("---------- {} ({}) ----------", workload.name, workload.proxy);
    println!(
        "config                 vp={:?} spsr={} silence={}{}",
        cfg.vp,
        cfg.spsr,
        cfg.silence_cycles,
        if cfg.adaptive_silencing { "+adaptive" } else { "" }
    );
    println!("cycles                 {:>12}", s.cycles);
    println!("insts retired          {:>12}", s.insts_retired);
    println!("uops retired           {:>12}", s.uops_retired);
    println!("IPC                    {:>12.4}", s.ipc());
    println!("uops per inst          {:>12.4}", s.expansion_ratio());
    println!("-- front end");
    println!("branch mispredicts     {:>12}", s.flush.branch_mispredicts);
    println!("-- value prediction");
    println!("vp eligible            {:>12}", s.vp.eligible);
    println!("vp used                {:>12}", s.vp.used);
    println!("vp coverage            {:>12.4}", s.vp.coverage());
    println!("vp accuracy            {:>12.4}", s.vp.accuracy());
    println!("vp flushes             {:>12}", s.flush.vp_flushes);
    println!("mem-order flushes      {:>12}", s.flush.mem_order_flushes);
    println!("squashed uops          {:>12}", s.flush.squashed_uops);
    println!("-- rename eliminations");
    println!("zero idiom             {:>12}", s.rename.zero_idiom);
    println!("one idiom              {:>12}", s.rename.one_idiom);
    println!("move elimination       {:>12}", s.rename.move_elim);
    println!("9-bit idiom            {:>12}", s.rename.nine_bit_idiom);
    println!("SpSR                   {:>12}", s.rename.spsr);
    println!("non-ME moves           {:>12}", s.rename.non_me_move);
    println!("-- activity");
    println!("INT PRF reads          {:>12}", s.activity.int_prf_reads);
    println!("INT PRF writes         {:>12}", s.activity.int_prf_writes);
    println!("IQ dispatched          {:>12}", s.activity.iq_dispatched);
    println!("IQ issued              {:>12}", s.activity.iq_issued);

    if baseline_too {
        let mut base_cfg = CoreConfig::table2();
        base_cfg.mem = cfg.mem.clone();
        let base = simulate(base_cfg, &trace);
        println!("-- vs. baseline");
        println!("baseline cycles        {:>12}", base.cycles);
        println!("speedup                {:>11.2}%", (s.speedup_over(&base) - 1.0) * 100.0);
    }
}
