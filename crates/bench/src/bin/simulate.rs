//! Interactive simulator driver: run any workload under any
//! configuration and print a gem5-style statistics report.
//!
//! ```text
//! cargo run --release -p tvp-bench --bin simulate -- --list
//! cargo run --release -p tvp-bench --bin simulate -- pointer_chase --vp gvp --insts 200000
//! cargo run --release -p tvp-bench --bin simulate -- mc_playout --vp mvp --spsr --no-stride-prefetch
//! cargo run --release -p tvp-bench --bin simulate -- pointer_chase --vp gvp --chaos-seed 7 --oracle
//! cargo run --release -p tvp-bench --bin simulate -- pixel_encode --vp tvp --trace trace.json
//! ```
//!
//! Verification exit codes (all print the reproducing chaos seed when a
//! campaign is armed):
//!
//! * `3` — the golden-model commit oracle found a divergence;
//! * `4` — the deadlock watchdog tripped (no commit progress);
//! * `5` — an invariant auditor reported a violation (`verif` builds).

use tvp_chaos::ChaosConfig;
use tvp_core::config::{CoreConfig, VpMode};
use tvp_core::pipeline::Core;

fn usage() -> ! {
    eprintln!(
        "usage: simulate <workload> [--vp off|mvp|tvp|gvp] [--spsr] \
         [--insts N] [--silence N] [--adaptive-silencing] \
         [--no-stride-prefetch] [--no-ampm] [--baseline-too] \
         [--trace FILE]\n       \
         chaos: [--chaos-seed N] [--chaos-vp-permille N] \
         [--chaos-branch-permille N] [--chaos-cache-permille N] \
         [--sabotage] [--oracle] [--watchdog CYCLES]\n       \
         degradation: [--vp-kill-switch] [--spsr-kill-switch] \
         [--auto-throttle]\n       \
         sampling: [--sample PERIOD:WARMUP:MEASURED] [--checkpoint DIR]\n       \
         simulate --list"
    );
    std::process::exit(2);
}

/// Sampled-simulation mode (`--sample P:W:M`): fast-forward between
/// intervals, simulate warmup + measured windows in detail, print the
/// weighted whole-trace reconstruction. With `--checkpoint DIR`, the
/// machine state and finished intervals are published through the
/// durable store after every interval (honouring
/// `$TVP_STORE_KILL_AFTER`), and a later invocation resumes mid-trace.
fn run_sampled_mode(
    workload: &tvp_workloads::Workload,
    cfg: &CoreConfig,
    insts: u64,
    spec: tvp_bench::sampling::SampleSpec,
    checkpoint_dir: Option<&str>,
) {
    use tvp_bench::sampling::{run_sampled, SampleRunOptions};
    use tvp_bench::store::{ResultStore, StoreConfig};

    let store = checkpoint_dir.map(|dir| {
        let kill_after = tvp_bench::env_u64_or_exit("TVP_STORE_KILL_AFTER");
        let s =
            ResultStore::open(StoreConfig { dir: dir.into(), kill_after }).unwrap_or_else(|e| {
                eprintln!("FATAL: cannot open checkpoint store {dir}: {e}");
                std::process::exit(2);
            });
        std::sync::Mutex::new(s)
    });
    eprintln!(
        "sampled simulation: {} ({insts} arch insts, spec {}, {:.2}% detail)...",
        workload.name,
        spec.display(),
        spec.detail_fraction() * 100.0
    );
    let opts = SampleRunOptions { store: store.as_ref(), stop_after_intervals: None };
    let run = run_sampled(workload, cfg, insts, spec, opts);
    let est = run.estimate();

    println!("---------- {} ({}) [sampled] ----------", workload.name, workload.proxy);
    println!("sample spec            {:>12}", spec.display());
    println!("intervals              {:>12}", run.intervals.len());
    println!("resumed intervals      {:>12}", run.resumed_intervals);
    println!("insts consumed         {:>12}", run.total_insts);
    println!("insts fast-forwarded   {:>12}", run.skipped_insts);
    println!("insts warmed up        {:>12}", run.warmup_insts);
    println!("insts measured         {:>12}", run.measured_insts);
    println!("halted early           {:>12}", run.halted);
    println!("run fingerprint        {:>12}", format!("{:016x}", run.fingerprint()));
    println!("-- reconstructed whole-trace estimates");
    println!("est. cycles            {:>12.0}", est.cycles);
    println!("est. IPC               {:>12.4}", est.ipc());
    println!("est. branch MPKI       {:>12.4}", est.branch_mpki());
    println!("est. VP MPKI           {:>12.4}", est.vp_mpki());
    println!("est. SpSR coverage     {:>12.4}", est.spsr_coverage());
    if let Some(s) = &store {
        eprintln!("[store] {}", s.lock().expect("store lock poisoned").summary());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "--list" {
        println!("{:<18} {:<20} {:>6}", "workload", "proxy", "insts");
        for w in tvp_workloads::suite() {
            println!("{:<18} {:<20} {:>6}", w.name, w.proxy, w.code_size());
        }
        return;
    }

    let name = args[0].clone();
    let mut cfg = CoreConfig::table2();
    let mut insts: u64 = 300_000;
    let mut baseline_too = false;
    let mut chaos: Option<ChaosConfig> = None;
    let mut sabotage = false;
    let mut oracle = false;
    let mut trace_out: Option<String> = None;
    let mut sample: Option<tvp_bench::sampling::SampleSpec> = None;
    let mut checkpoint_dir: Option<String> = None;
    let mut it = args.iter().skip(1);
    let parse_num =
        |s: Option<&String>| -> u64 { s.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()) };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--vp" => {
                let mode = it.next().unwrap_or_else(|| usage());
                cfg.vp = match mode.as_str() {
                    "off" => VpMode::Off,
                    "mvp" => VpMode::Mvp,
                    "tvp" => VpMode::Tvp,
                    "gvp" => VpMode::Gvp,
                    _ => usage(),
                };
                cfg.nine_bit_idiom = cfg.vp.uses_inlining();
            }
            "--spsr" => cfg.spsr = true,
            "--insts" => insts = parse_num(it.next()),
            "--silence" => cfg.silence_cycles = parse_num(it.next()),
            "--adaptive-silencing" => cfg.adaptive_silencing = true,
            "--no-stride-prefetch" => cfg.mem.stride_prefetcher = false,
            "--no-ampm" => cfg.mem.ampm_prefetcher = false,
            "--baseline-too" => baseline_too = true,
            "--chaos-seed" => chaos = Some(ChaosConfig::campaign(parse_num(it.next()))),
            "--chaos-vp-permille" => {
                let rate = parse_num(it.next()).min(1000) as u32;
                chaos
                    .get_or_insert_with(|| ChaosConfig::campaign(1))
                    .vp_force_mispredict_permille = rate;
            }
            "--chaos-branch-permille" => {
                let rate = parse_num(it.next()).min(1000) as u32;
                chaos.get_or_insert_with(|| ChaosConfig::campaign(1)).branch_invert_permille = rate;
            }
            "--chaos-cache-permille" => {
                let rate = parse_num(it.next()).min(1000) as u32;
                chaos.get_or_insert_with(|| ChaosConfig::campaign(1)).cache_delay_permille = rate;
            }
            "--sabotage" => sabotage = true,
            "--oracle" => oracle = true,
            "--trace" => trace_out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--sample" => {
                let spec = it.next().unwrap_or_else(|| usage());
                sample = Some(tvp_bench::sampling::SampleSpec::parse(spec).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                }));
            }
            "--checkpoint" => checkpoint_dir = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--watchdog" => cfg.watchdog_cycles = parse_num(it.next()),
            "--vp-kill-switch" => cfg.vp_kill_switch = true,
            "--spsr-kill-switch" => cfg.spsr_kill_switch = true,
            "--auto-throttle" => cfg.auto_throttle = true,
            _ => usage(),
        }
    }
    if sabotage {
        chaos.get_or_insert_with(|| ChaosConfig::campaign(1)).sabotage =
            Some(tvp_chaos::Sabotage::SkipCursorRollback);
    }
    cfg.chaos = chaos;

    let Some(workload) = tvp_workloads::suite::by_name(&name) else {
        eprintln!("unknown workload `{name}` (try --list)");
        std::process::exit(1);
    };

    if let Some(spec) = sample {
        run_sampled_mode(&workload, &cfg, insts, spec, checkpoint_dir.as_deref());
        return;
    }

    eprintln!("generating trace: {name} ({insts} arch insts)...");
    let mut machine = workload.machine();
    let init = machine.arch_snapshot();
    let trace = machine.run(insts);
    let golden = machine.arch_snapshot();
    eprintln!("simulating...");
    let mut core = Core::new(cfg.clone());
    if oracle {
        core.enable_oracle(&init);
    }
    if trace_out.is_some() {
        core.enable_tracing(tvp_core::pipeline::DEFAULT_TRACE_CAPACITY);
    }
    let s = core.run(&trace);

    // Export the event trace *before* the verification gates below so a
    // divergence (exit 3) or watchdog fire (exit 4) still ships its
    // flight-recorder history to disk.
    if let Some(path) = &trace_out {
        let json = tvp_obs::export::chrome_trace(
            &core.trace_events(),
            core.trace_dropped(),
            &core.export_registry(),
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("FATAL: cannot write trace file {path}: {e}");
            std::process::exit(2);
        }
        eprintln!(
            "trace written: {path} ({} events, {} dropped)",
            core.trace_events().len(),
            core.trace_dropped()
        );
    }

    println!("---------- {} ({}) ----------", workload.name, workload.proxy);
    println!(
        "config                 vp={:?} spsr={} silence={}{}",
        cfg.vp,
        cfg.spsr,
        cfg.silence_cycles,
        if cfg.adaptive_silencing { "+adaptive" } else { "" }
    );
    println!("cycles                 {:>12}", s.cycles);
    println!("insts retired          {:>12}", s.insts_retired);
    println!("uops retired           {:>12}", s.uops_retired);
    println!("IPC                    {:>12.4}", s.ipc());
    println!("uops per inst          {:>12.4}", s.expansion_ratio());
    println!("-- front end");
    println!("branch mispredicts     {:>12}", s.flush.branch_mispredicts);
    println!("-- value prediction");
    println!("vp eligible            {:>12}", s.vp.eligible);
    println!("vp used                {:>12}", s.vp.used);
    println!("vp coverage            {:>12.4}", s.vp.coverage());
    println!("vp accuracy            {:>12.4}", s.vp.accuracy());
    println!("vp flushes             {:>12}", s.flush.vp_flushes);
    println!("mem-order flushes      {:>12}", s.flush.mem_order_flushes);
    println!("squashed uops          {:>12}", s.flush.squashed_uops);
    println!("-- rename eliminations");
    println!("zero idiom             {:>12}", s.rename.zero_idiom);
    println!("one idiom              {:>12}", s.rename.one_idiom);
    println!("move elimination       {:>12}", s.rename.move_elim);
    println!("9-bit idiom            {:>12}", s.rename.nine_bit_idiom);
    println!("SpSR                   {:>12}", s.rename.spsr);
    println!("non-ME moves           {:>12}", s.rename.non_me_move);
    println!("-- activity");
    println!("INT PRF reads          {:>12}", s.activity.int_prf_reads);
    println!("INT PRF writes         {:>12}", s.activity.int_prf_writes);
    println!("IQ dispatched          {:>12}", s.activity.iq_dispatched);
    println!("IQ issued              {:>12}", s.activity.iq_issued);
    if core.chaos_seed().is_some() {
        println!("-- chaos campaign (seed {:#x})", core.chaos_seed().unwrap_or(0));
        println!("faults injected        {:>12}", s.chaos.total());
        println!("forced vp mispredicts  {:>12}", s.chaos.vp_forced_mispredicts);
        println!("table corruptions      {:>12}", {
            s.chaos.vtage_corruptions
                + s.chaos.tage_corruptions
                + s.chaos.btb_corruptions
                + s.chaos.storeset_corruptions
        });
        println!("branch inversions      {:>12}", s.chaos.branch_inversions);
        println!("cache delays           {:>12}", s.chaos.cache_delays);
        println!("prefetch drop cycles   {:>12}", s.chaos.prefetch_drop_cycles);
    }
    if cfg.vp_kill_switch || cfg.spsr_kill_switch || cfg.auto_throttle {
        println!("-- graceful degradation");
        println!("throttle engagements   {:>12}", s.degrade.throttle_engagements);
        println!("throttled cycles       {:>12}", s.degrade.throttled_cycles);
        println!("killswitch suppressed  {:>12}", s.degrade.killswitch_suppressed);
        println!("throttle suppressed    {:>12}", s.degrade.throttle_suppressed);
    }
    if s.overflow_events > 0 {
        println!("counter saturations    {:>12}", s.overflow_events);
    }
    let cpi = core.cpi_stack();
    println!("-- cycle attribution (CPI stack, retire-slot counts)");
    for (name, slots) in cpi.components() {
        println!("{name:<22} {slots:>12} ({:>6.2}%)", cpi.fraction(slots) * 100.0);
    }
    println!("attributed slots       {:>12} (= cycles x width: {})", cpi.total(), {
        if cpi.total() == s.cycles.saturating_mul(cfg.commit_width as u64) {
            "ok"
        } else {
            "MISMATCH"
        }
    });

    if baseline_too {
        let mut base_cfg = CoreConfig::table2();
        base_cfg.mem = cfg.mem.clone();
        let base = tvp_core::pipeline::simulate(base_cfg, &trace);
        println!("-- vs. baseline");
        println!("baseline cycles        {:>12}", base.cycles);
        println!("speedup                {:>11.2}%", (s.speedup_over(&base) - 1.0) * 100.0);
    }

    // Verification gates, most root-cause first. Each prints the
    // reproducing chaos seed (the Divergence embeds it; the others
    // print it explicitly).
    let seed_note = |core: &Core| match core.chaos_seed() {
        Some(seed) => format!(" [chaos seed {seed:#x}]"),
        None => String::new(),
    };
    let divergence = core.oracle_divergence().cloned().or_else(|| {
        if oracle {
            core.oracle_final_check(&golden)
        } else {
            None
        }
    });
    if let Some(d) = divergence {
        eprintln!("FATAL: {d}");
        std::process::exit(3);
    }
    if let Some(diag) = core.watchdog_diagnostic() {
        eprintln!("FATAL: {diag}{}", seed_note(&core));
        std::process::exit(4);
    }
    #[cfg(feature = "verif")]
    if let Some(summary) = core.audit_report().first_violation_summary() {
        eprintln!("FATAL: invariant auditor violation: {summary}{}", seed_note(&core));
        std::process::exit(5);
    }
}
