//! Ablation — VTAGE vs. D-VTAGE coverage (§2.1/§3.3).
//!
//! Thin driver over [`tvp_bench::experiments::ablation_dvtage`];
//! accepts the common engine CLI (`--jobs N`, `--smoke`, `--insts N`).

fn main() {
    tvp_bench::engine::run_main(&[Box::new(
        tvp_bench::experiments::ablation_dvtage::AblationDvtage,
    )]);
}
