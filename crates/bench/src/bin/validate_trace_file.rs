//! Offline validator (and encoder) for streamed `DynInst` trace files
//! — the trace-file counterpart of `fsck_store`.
//!
//! ```text
//! validate_trace_file <file.trace>
//! validate_trace_file --encode <workload> <insts> <file.trace>
//! ```
//!
//! Validation walks the whole container: file header magic/schema,
//! every chunk's frame and FNV-1a checksum, record decode, strictly
//! monotonic sequence numbers, the terminator frame, the declared
//! totals, and the absence of trailing bytes. Exit code 0 means every
//! byte of the file is accounted for; 1 means corruption (the first
//! error is printed); 2 means usage or I/O setup failure.
//!
//! `--encode` streams a suite workload's dynamic trace into the file
//! first (flat memory: one chunk in flight), then validates what was
//! written — the encode half of the CI sampling-smoke round-trip.

use std::path::Path;

use tvp_workloads::stream::{stream_machine_trace, validate_file};

fn usage() -> ! {
    eprintln!(
        "usage: validate_trace_file <file.trace>\n       \
         validate_trace_file --encode <workload> <insts> <file.trace>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = match args.as_slice() {
        [path] => path.clone(),
        [flag, workload, insts, path] if flag == "--encode" => {
            let Some(w) = tvp_workloads::suite::by_name(workload) else {
                eprintln!("unknown workload `{workload}`");
                std::process::exit(2);
            };
            let insts: u64 = match insts.replace('_', "").parse() {
                Ok(n) => n,
                Err(_) => usage(),
            };
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {path}: {e}");
                    std::process::exit(2);
                }
            };
            let mut machine = w.machine();
            match stream_machine_trace(&mut machine, insts, std::io::BufWriter::new(file)) {
                Ok(totals) => eprintln!(
                    "encoded {path}: {} arch insts, {} records, {} chunks",
                    totals.arch_insts, totals.records, totals.chunks
                ),
                Err(e) => {
                    eprintln!("cannot encode {path}: {e}");
                    std::process::exit(2);
                }
            }
            path.clone()
        }
        _ => usage(),
    };

    match validate_file(Path::new(&path)) {
        Ok(totals) => {
            println!(
                "validate_trace_file: {path} ok ({} arch insts, {} records, {} chunks)",
                totals.arch_insts, totals.records, totals.chunks
            );
        }
        Err(e) => {
            eprintln!("validate_trace_file: {path}: {e}");
            std::process::exit(1);
        }
    }
}
