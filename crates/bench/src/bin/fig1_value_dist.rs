//! Fig. 1 — dynamic GPR value distribution.
//!
//! Thin driver over [`tvp_bench::experiments::fig1`]; accepts the
//! common engine CLI (`--jobs N`, `--smoke`, `--insts N`).

fn main() {
    tvp_bench::engine::run_main(&[Box::new(tvp_bench::experiments::fig1::Fig1)]);
}
