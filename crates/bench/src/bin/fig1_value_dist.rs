//! Fig. 1 — Distribution of values produced by instructions writing
//! general purpose registers.
//!
//! Paper result: `0x0` tops the distribution (~5%), `0x1` is third,
//! and the top-20 is dominated by narrow values, motivating MVP/TVP.

use tvp_bench::{inst_budget, prepare_suite, write_results, StatsRow};
use tvp_workloads::value_dist::ValueDistribution;

fn main() {
    let insts = inst_budget();
    println!("=== Fig. 1: dynamic GPR value distribution ({insts} insts/workload) ===\n");
    let prepared = prepare_suite(insts);
    let mut dist = ValueDistribution::new();
    for p in &prepared {
        dist.add_trace(&p.trace);
    }

    println!("{:>20}  {:>8}", "value", "share %");
    for (value, share) in dist.top(20) {
        println!("{value:>20x}  {:>8.3}", share * 100.0);
    }
    println!();
    println!("total GPR value productions : {}", dist.total());
    println!("share of 0x0                : {:.2}%", dist.share(0) * 100.0);
    println!("share of 0x1                : {:.2}%", dist.share(1) * 100.0);
    println!("share of 0x0 + 0x1 (MVP)    : {:.2}%", dist.zero_one_share() * 100.0);
    println!("share of 9-bit signed (TVP) : {:.2}%", dist.narrow9_share() * 100.0);
    println!();
    println!("paper: 0x0 is the most produced value (~5%), 0x1 third; narrow");
    println!("values dominate — the motivation for Minimal and Targeted VP.");

    // Also record the per-workload totals for reproducibility.
    let rows: Vec<StatsRow> = Vec::new();
    write_results("fig1_value_dist", &rows);
    let entries: Vec<String> = dist
        .top(20)
        .into_iter()
        .map(|(v, s)| format!("[\"{v:#x}\", {}]", tvp_bench::json::number(s)))
        .collect();
    std::fs::write("results/fig1_top_values.json", tvp_bench::json::array(&entries))
        .expect("write fig1 values");
}
