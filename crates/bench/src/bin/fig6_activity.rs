//! Fig. 6 — PRF/IQ activity normalized to the baseline.
//!
//! Thin driver over [`tvp_bench::experiments::fig6`]; accepts the
//! common engine CLI (`--jobs N`, `--smoke`, `--insts N`).

fn main() {
    tvp_bench::engine::run_main(&[Box::new(tvp_bench::experiments::fig6::Fig6)]);
}
