//! Fig. 4 — dynamic instructions eliminated at rename.
//!
//! Thin driver over [`tvp_bench::experiments::fig4`]; accepts the
//! common engine CLI (`--jobs N`, `--smoke`, `--insts N`).

fn main() {
    tvp_bench::engine::run_main(&[Box::new(tvp_bench::experiments::fig4::Fig4)]);
}
