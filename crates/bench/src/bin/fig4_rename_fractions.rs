//! Fig. 4 — Fraction of dynamic (architectural) instructions optimized
//! away at rename, for MVP+SpSR (a) and TVP+SpSR (b).
//!
//! Paper result (averages): 0-idiom 0.72%, 1-idiom 0.39%, move ~4%,
//! SpSR 1.73% (MVP) / 1.70% (TVP), 9-bit idiom 0.48% (TVP only),
//! non-ME moves 0.44% / 0.34%.

use tvp_bench::{amean, inst_budget, prepare_suite, run_vp, write_results, StatsRow};
use tvp_core::config::VpMode;
use tvp_core::stats::SimStats;

fn report(label: &str, prepared: &[tvp_bench::PreparedWorkload], vp: VpMode) -> Vec<StatsRow> {
    println!("--- Fig. 4{label}: rename-eliminated fractions under {vp:?} + SpSR ---\n");
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "workload", "0-idm %", "1-idm %", "move %", "9bit %", "SpSR %", "nonME %"
    );
    let mut rows = Vec::new();
    let mut sums = [Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for p in prepared {
        let s: SimStats = run_vp(p, vp, true);
        let r = s.rename;
        let f = |c: u64| r.fraction(c) * 100.0;
        let cols = [
            f(r.zero_idiom),
            f(r.one_idiom),
            f(r.move_elim),
            f(r.nine_bit_idiom),
            f(r.spsr),
            f(r.non_me_move),
        ];
        println!(
            "{:<16} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            p.workload.name, cols[0], cols[1], cols[2], cols[3], cols[4], cols[5]
        );
        for (acc, v) in sums.iter_mut().zip(cols) {
            acc.push(v);
        }
        rows.push(StatsRow::new(p.workload.name, format!("{vp:?}+spsr"), &s));
    }
    println!(
        "{:<16} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}\n",
        "amean",
        amean(&sums[0]),
        amean(&sums[1]),
        amean(&sums[2]),
        amean(&sums[3]),
        amean(&sums[4]),
        amean(&sums[5]),
    );
    rows
}

fn main() {
    let insts = inst_budget();
    println!("=== Fig. 4: dynamic instructions eliminated at rename ({insts} insts) ===\n");
    let prepared = prepare_suite(insts);
    let mut rows = report("a", &prepared, VpMode::Mvp);
    rows.extend(report("b", &prepared, VpMode::Tvp));
    println!("paper (amean): (a) MVP: 0-idiom 0.72, 1-idiom 0.39, move 3.96,");
    println!("SpSR 1.73, non-ME 0.44; (b) TVP: move 4.06, 9-bit 0.48, SpSR 1.70.");
    write_results("fig4_rename_fractions", &rows);
}
