//! Quick diagnostic table: per-workload pipeline statistics across the
//! VP modes, for eyeballing a configuration before a full experiment.

use tvp_core::{simulate_vp, VpMode};

fn main() {
    let n: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(100_000);
    println!(
        "{:<16} {:>6} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7} {:>7} {:>6} {:>6}",
        "kernel", "ipc", "mvp%", "tvp%", "gvp%", "mvpS%", "tvpS%", "covM", "covT", "covG", "bmiss%"
    );
    for w in tvp_workloads::suite() {
        let trace = w.trace(n);
        let base = simulate_vp(VpMode::Off, false, &trace);
        let mvp = simulate_vp(VpMode::Mvp, false, &trace);
        let tvp = simulate_vp(VpMode::Tvp, false, &trace);
        let gvp = simulate_vp(VpMode::Gvp, false, &trace);
        let mvps = simulate_vp(VpMode::Mvp, true, &trace);
        let tvps = simulate_vp(VpMode::Tvp, true, &trace);
        let pct = |s: &tvp_core::SimStats| (s.speedup_over(&base) - 1.0) * 100.0;
        println!("{:<16} {:>6.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>7.2} {:>7.3} {:>7.3} {:>6.3} {:>6.2}",
            w.name, base.ipc(), pct(&mvp), pct(&tvp), pct(&gvp), pct(&mvps), pct(&tvps),
            mvp.vp.coverage(), tvp.vp.coverage(), gvp.vp.coverage(),
            100.0 * base.flush.branch_mispredicts as f64 / base.insts_retired as f64);
    }
}
