//! Ablation (§2.1 / §3.3) — does stride-based value prediction
//! (D-VTAGE) still matter once the predictable value set is narrowed?
//!
//! The paper argues MVP/TVP make stride predictors "mostly irrelevant"
//! (§3.3): a strided sequence leaves the 1-bit/9-bit admissible range
//! after a handful of instances, while the speculative in-flight window
//! stride predictors require (§2.1) keeps costing hardware. This
//! harness feeds identical value streams — the real VP-eligible µop
//! streams of the workload suite, plus a synthetic strided stream — to
//! VTAGE and D-VTAGE at each width and compares confident-correct
//! coverage.
//!
//! Predictor-model analysis only — enumerates no pipeline jobs. The
//! value streams are capped at 150k instructions per workload (the
//! predictor loop is O(samples) and the comparison is insensitive to
//! longer streams).

use tvp_predictors::dvtage::{Dvtage, DvtageConfig};
use tvp_predictors::vtage::{PredMode, Vtage, VtageConfig};

use super::{ExpContext, Experiment, ResultFile, ResultSet};
use crate::jobs::Job;
use crate::prepare_suite;

/// VTAGE vs. D-VTAGE coverage ablation.
pub struct AblationDvtage;

/// Per-workload cap on the analysed stream.
const MAX_INSTS: u64 = 150_000;

struct Sample {
    pc: u64,
    value: u64,
    branch: Option<bool>,
}

#[allow(clippy::cast_precision_loss)]
fn coverage(samples: &[Sample], mode: PredMode, stride: bool) -> (f64, f64) {
    let mut vtage = (!stride).then(|| Vtage::new(VtageConfig::paper(mode)));
    let mut dvtage = stride.then(|| Dvtage::new(DvtageConfig::paper(mode)));
    let mut eligible = 0u64;
    let mut covered = 0u64;
    let mut seq = 0u64;
    for s in samples {
        if let Some(taken) = s.branch {
            if let Some(v) = vtage.as_mut() {
                v.push_history(taken);
            }
            if let Some(d) = dvtage.as_mut() {
                d.push_history(taken);
            }
            continue;
        }
        eligible += 1;
        if let Some(v) = vtage.as_mut() {
            let p = v.predict(s.pc);
            if p.confident && mode.admits(p.value) && p.value == s.value {
                covered += 1;
            }
            v.update(&p, s.value);
        }
        if let Some(d) = dvtage.as_mut() {
            let p = d.predict(s.pc);
            if p.confident && mode.admits(p.value) {
                d.note_inflight(&p, seq);
                if p.value == s.value {
                    covered += 1;
                }
            }
            d.update(&p, s.value, seq);
        }
        seq += 1;
    }
    let kb = if stride {
        DvtageConfig::paper(mode).storage_kb()
    } else {
        VtageConfig::paper(mode).storage_kb()
    };
    (covered as f64 / eligible.max(1) as f64, kb)
}

fn samples_of(trace: &tvp_workloads::Trace) -> Vec<Sample> {
    trace
        .uops
        .iter()
        .filter_map(|u| {
            if let Some(b) = u.branch {
                u.uop
                    .op
                    .branch_kind()
                    .filter(|k| *k == tvp_isa::op::BranchKind::CondDirect)
                    .map(|_| Sample { pc: u.pc, value: 0, branch: Some(b.taken) })
            } else if u.vp_eligible() {
                u.result.map(|value| Sample { pc: u.pc, value, branch: None })
            } else {
                None
            }
        })
        .collect()
}

impl Experiment for AblationDvtage {
    fn name(&self) -> &'static str {
        "ablation_dvtage"
    }

    fn jobs(&self, _ctx: &ExpContext) -> Vec<Job> {
        Vec::new()
    }

    fn assemble(&self, ctx: &ExpContext, _results: &ResultSet<'_>) -> Vec<ResultFile> {
        let insts = ctx.insts.min(MAX_INSTS);
        println!("=== Ablation: VTAGE vs. D-VTAGE coverage (§2.1/§3.3) ({insts} insts) ===\n");

        // Reuse the shared traces when they fit the cap; regenerate a
        // capped suite otherwise (trace generation is cheap next to a
        // single pipeline simulation).
        let capped;
        let prepared = if ctx.insts <= MAX_INSTS {
            &ctx.prepared
        } else {
            capped = prepare_suite(insts);
            &capped
        };

        // Real workload value streams, pooled.
        let mut pooled: Vec<Sample> = Vec::new();
        for p in prepared {
            pooled.extend(samples_of(&p.trace));
        }
        // Plus a perfectly strided synthetic stream (array address/index
        // production — D-VTAGE's home turf).
        let mut v = 0x10_0000u64;
        for i in 0..60_000u64 {
            pooled.push(Sample { pc: 0xFFFF_0000 + (i % 4) * 4, value: v, branch: None });
            v += 8;
        }

        println!(
            "{:<10} {:>14} {:>14} {:>12} {:>12}",
            "mode", "VTAGE cov %", "D-VTAGE cov %", "VTAGE KB", "D-VTAGE KB"
        );
        for mode in [PredMode::ZeroOne, PredMode::Narrow9, PredMode::Full64] {
            let (cv, kv) = coverage(&pooled, mode, false);
            let (cd, kd) = coverage(&pooled, mode, true);
            println!(
                "{:<10} {:>14.2} {:>14.2} {:>12.1} {:>12.1}",
                format!("{mode:?}"),
                cv * 100.0,
                cd * 100.0,
                kv,
                kd
            );
        }
        println!();
        println!("paper (§3.3): narrowing the value set makes stride algorithms");
        println!("mostly irrelevant — the D-VTAGE column should only pull ahead");
        println!("at Full64 width (the strided synthetic stream), while costing");
        println!("extra storage and the §2.1 speculative window at every width.");
        Vec::new()
    }
}
