//! Ablation (§2.2 / §3.4) — value-misprediction recovery: pipeline
//! flush (the paper's scheme) vs. selective consumer replay (the
//! alternative the paper describes for microarchitectures that already
//! implement replay, applicable to GVP wide predictions only).

use tvp_core::config::{CoreConfig, RecoveryPolicy, VpMode};

use super::{baseline_cfg, ExpContext, Experiment, ResultFile, ResultSet};
use crate::jobs::Job;
use crate::{geomean_speedup, StatsRow};

/// Recovery-policy ablation.
pub struct AblationRecovery;

const POLICIES: [RecoveryPolicy; 2] = [RecoveryPolicy::Flush, RecoveryPolicy::Replay];

fn policy_cfg(policy: RecoveryPolicy) -> CoreConfig {
    let mut cfg = CoreConfig::with_vp(VpMode::Gvp);
    cfg.recovery = policy;
    cfg
}

impl Experiment for AblationRecovery {
    fn name(&self) -> &'static str {
        "ablation_recovery"
    }

    fn jobs(&self, ctx: &ExpContext) -> Vec<Job> {
        let mut jobs = Vec::new();
        for p in &ctx.prepared {
            jobs.push(Job::new(p.workload.name, ctx.insts, baseline_cfg()));
            for policy in POLICIES {
                jobs.push(Job::new(p.workload.name, ctx.insts, policy_cfg(policy)));
            }
        }
        jobs
    }

    fn assemble(&self, ctx: &ExpContext, results: &ResultSet<'_>) -> Vec<ResultFile> {
        println!("=== Ablation: flush vs. replay recovery (§3.4) ({} insts) ===\n", ctx.insts);
        println!(
            "{:<10} {:>12} {:>10} {:>10} {:>10} {:>12}",
            "policy", "geomean %", "flushes", "replays", "squashed", "replayed"
        );
        let bases: Vec<_> =
            ctx.prepared.iter().map(|p| results.of(ctx, p, &baseline_cfg())).collect();
        let mut rows = Vec::new();
        for policy in POLICIES {
            let mut pairs = Vec::new();
            let (mut flushes, mut replays, mut squashed, mut replayed) = (0u64, 0u64, 0u64, 0u64);
            for (p, base) in ctx.prepared.iter().zip(&bases) {
                let s = results.of(ctx, p, &policy_cfg(policy));
                flushes += s.flush.vp_flushes;
                replays += s.flush.vp_replays;
                squashed += s.flush.squashed_uops;
                replayed += s.flush.replayed_uops;
                rows.push(StatsRow::new(p.workload.name, format!("gvp/{policy:?}"), &s));
                pairs.push((s, *base));
            }
            let g = (geomean_speedup(&pairs) - 1.0) * 100.0;
            println!(
                "{:<10} {:>12.2} {:>10} {:>10} {:>10} {:>12}",
                format!("{policy:?}"),
                g,
                flushes,
                replays,
                squashed,
                replayed
            );
        }
        println!();
        println!("paper: flush is chosen for simplicity (§3.4); replay avoids the");
        println!("refetch but risks replay tornadoes [24] — silencing guards both.");
        vec![ResultFile::rows("ablation_recovery", &rows)]
    }
}
