//! Experiment definitions: every figure/table/ablation as a job
//! enumerator plus an assembler.
//!
//! An [`Experiment`] no longer simulates anything itself. It
//! *enumerates* the simulation points it needs as keyed [`Job`]s, the
//! engine runs the deduplicated union of all experiments' jobs on the
//! thread pool, and then each experiment *assembles* its stdout tables
//! and JSON files from the cached [`SimPoint`](crate::jobs::SimPoint)
//! results. Enumeration and assembly are pure and single-threaded;
//! only the keyed simulations run concurrently — which is why serial
//! and parallel runs of the same grid emit byte-identical JSON.

use tvp_core::config::{CoreConfig, VpMode};
use tvp_core::stats::SimStats;

use crate::cache::ResultCache;
use crate::jobs::{ExpKey, Job};
use crate::{PreparedWorkload, StatsRow};

pub mod ablation_dvtage;
pub mod ablation_prefetcher;
pub mod ablation_recovery;
pub mod ablation_silencing;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod table3;

/// Shared inputs every experiment sees: the instruction budget and the
/// pre-generated trace suite.
pub struct ExpContext {
    /// Architectural instructions per workload.
    pub insts: u64,
    /// The bundled suite with traces generated once at `insts`.
    pub prepared: Vec<PreparedWorkload>,
}

/// One JSON artefact an experiment produces; the engine writes it to
/// `<results-dir>/<name>.json`.
pub struct ResultFile {
    /// File stem under the results directory.
    pub name: String,
    /// Rendered JSON document.
    pub json: String,
}

impl ResultFile {
    /// Renders experiment rows as the standard results array.
    #[must_use]
    pub fn rows(name: &str, rows: &[StatsRow]) -> Self {
        let rendered: Vec<String> = rows.iter().map(StatsRow::to_json).collect();
        ResultFile { name: name.to_owned(), json: crate::json::array(&rendered) }
    }
}

/// Read-only view of the simulated points, for assembly.
pub struct ResultSet<'a> {
    cache: &'a ResultCache,
}

impl<'a> ResultSet<'a> {
    /// Wraps a populated cache.
    #[must_use]
    pub fn new(cache: &'a ResultCache) -> Self {
        ResultSet { cache }
    }

    /// Stats for an explicit key.
    ///
    /// # Panics
    ///
    /// Panics if the point was never simulated — the engine only runs
    /// an experiment's assembly once every one of its enumerated jobs
    /// succeeded, so a miss here is an enumerate/assemble mismatch
    /// inside the experiment.
    pub fn stats(&self, key: &ExpKey) -> SimStats {
        self.cache
            .get(key)
            .unwrap_or_else(|| {
                panic!(
                    "missing simulation point {} — assemble asked for a key its \
                     jobs() never enumerated",
                    key.display()
                )
            })
            .stats
    }

    /// Stats for (workload, config) under the context's budget.
    pub fn of(&self, ctx: &ExpContext, p: &PreparedWorkload, cfg: &CoreConfig) -> SimStats {
        self.stats(&ExpKey::new(p.workload.name, ctx.insts, cfg))
    }
}

/// One figure/table/ablation of the paper.
pub trait Experiment: Sync {
    /// Binary-style name (also the legacy `run_all` banner label).
    fn name(&self) -> &'static str;
    /// Enumerates every simulation point this experiment needs.
    fn jobs(&self, ctx: &ExpContext) -> Vec<Job>;
    /// Prints the experiment's tables and returns its JSON artefacts,
    /// reading every simulated point from `results`.
    fn assemble(&self, ctx: &ExpContext, results: &ResultSet<'_>) -> Vec<ResultFile>;
}

/// The paper configuration shorthand shared by the experiments
/// (identical to what the pre-engine binaries simulated).
#[must_use]
pub fn vp_cfg(vp: VpMode, spsr: bool) -> CoreConfig {
    let mut cfg = CoreConfig::with_vp(vp);
    cfg.spsr = spsr;
    cfg
}

/// The DSR baseline every speedup is reported against.
#[must_use]
pub fn baseline_cfg() -> CoreConfig {
    vp_cfg(VpMode::Off, false)
}

/// Enumerates one job per workload for a fixed configuration.
#[must_use]
pub fn per_workload_jobs(ctx: &ExpContext, cfg: &CoreConfig) -> Vec<Job> {
    ctx.prepared.iter().map(|p| Job::new(p.workload.name, ctx.insts, cfg.clone())).collect()
}

/// All eleven experiments, in the canonical `run_all` order.
#[must_use]
pub fn all() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(fig1::Fig1),
        Box::new(fig2::Fig2),
        Box::new(fig3::Fig3),
        Box::new(table3::Table3),
        Box::new(fig4::Fig4),
        Box::new(fig5::Fig5),
        Box::new(fig6::Fig6),
        Box::new(ablation_silencing::AblationSilencing),
        Box::new(ablation_prefetcher::AblationPrefetcher),
        Box::new(ablation_recovery::AblationRecovery),
        Box::new(ablation_dvtage::AblationDvtage),
    ]
}
