//! Ablation (§3.4.1) — predictor silencing window after a value
//! misprediction.
//!
//! The paper finds 15 cycles sufficient in most cases but uses 250 to
//! curb a TVP/stride-prefetcher pathology in roms; a 0-cycle window
//! risks livelock (the refetched µop would immediately be re-predicted
//! with the same wrong value), which our flush-including-self recovery
//! makes observable as a flush storm.

use tvp_core::config::{CoreConfig, VpMode};

use super::{baseline_cfg, ExpContext, Experiment, ResultFile, ResultSet};
use crate::jobs::Job;
use crate::{geomean_speedup, StatsRow};

/// Silencing-window ablation.
pub struct AblationSilencing;

const FLAVOURS: [VpMode; 2] = [VpMode::Tvp, VpMode::Gvp];
const WINDOWS: [(u64, bool); 4] = [(15, false), (250, false), (1_000, false), (250, true)];

fn window_cfg(vp: VpMode, silence: u64, adaptive: bool) -> CoreConfig {
    let mut cfg = CoreConfig::with_vp(vp);
    cfg.silence_cycles = silence;
    cfg.adaptive_silencing = adaptive;
    cfg
}

impl Experiment for AblationSilencing {
    fn name(&self) -> &'static str {
        "ablation_silencing"
    }

    fn jobs(&self, ctx: &ExpContext) -> Vec<Job> {
        let mut jobs = Vec::new();
        for p in &ctx.prepared {
            jobs.push(Job::new(p.workload.name, ctx.insts, baseline_cfg()));
            for vp in FLAVOURS {
                for (silence, adaptive) in WINDOWS {
                    jobs.push(Job::new(
                        p.workload.name,
                        ctx.insts,
                        window_cfg(vp, silence, adaptive),
                    ));
                }
            }
        }
        jobs
    }

    fn assemble(&self, ctx: &ExpContext, results: &ResultSet<'_>) -> Vec<ResultFile> {
        println!("=== Ablation: VP silencing window (§3.4.1) ({} insts) ===\n", ctx.insts);
        println!(
            "{:<10} {:<10} {:>12} {:>14} {:>12}",
            "vp", "silence", "geomean %", "vp flushes", "squashed"
        );
        let bases: Vec<_> =
            ctx.prepared.iter().map(|p| results.of(ctx, p, &baseline_cfg())).collect();
        let mut rows = Vec::new();
        for vp in FLAVOURS {
            for (silence, adaptive) in WINDOWS {
                let mut pairs = Vec::new();
                let mut flushes = 0u64;
                let mut squashed = 0u64;
                for (p, base) in ctx.prepared.iter().zip(&bases) {
                    let s = results.of(ctx, p, &window_cfg(vp, silence, adaptive));
                    flushes += s.flush.vp_flushes;
                    squashed += s.flush.squashed_uops;
                    let label = if adaptive {
                        format!("{vp:?}/adaptive{silence}")
                    } else {
                        format!("{vp:?}/silence{silence}")
                    };
                    rows.push(StatsRow::new(p.workload.name, label, &s));
                    pairs.push((s, *base));
                }
                let g = (geomean_speedup(&pairs) - 1.0) * 100.0;
                let label = if adaptive { format!("{silence}+adapt") } else { silence.to_string() };
                println!(
                    "{:<10} {:<10} {:>12.2} {:>14} {:>12}",
                    format!("{vp:?}"),
                    label,
                    g,
                    flushes,
                    squashed
                );
            }
        }
        println!();
        println!("paper: 15 cycles performs like 250 except for roms under TVP;");
        println!("250 is used everywhere as it costs nothing in MVP/GVP. The");
        println!("adaptive row is this reproduction's extension (§3.4.1 future");
        println!("work): geometric backoff on clustered mispredictions.");
        vec![ResultFile::rows("ablation_silencing", &rows)]
    }
}
