//! Fig. 6 — Average INT PRF reads/writes and IQ dispatched/issued
//! µops, normalized to the baseline.
//!
//! Paper result: MVP −2.41% reads / −4.17% writes; TVP −9.51% / −11.32%;
//! GVP *increases* writes (explicit prediction writes); SpSR cuts IQ
//! dispatches by ~1.6–2.7% and issues by ~1.5–2.0%.

use tvp_core::config::VpMode;

use super::{baseline_cfg, vp_cfg, ExpContext, Experiment, ResultFile, ResultSet};
use crate::jobs::Job;
use crate::{amean, StatsRow};

/// Fig. 6 experiment.
pub struct Fig6;

const CONFIGS: [(VpMode, bool, &str); 6] = [
    (VpMode::Mvp, false, "Min. VP"),
    (VpMode::Mvp, true, "Min. VP + SpSR"),
    (VpMode::Tvp, false, "Tar. VP"),
    (VpMode::Tvp, true, "Tar. VP + SpSR"),
    (VpMode::Gvp, false, "Gen. VP"),
    (VpMode::Gvp, true, "Gen. VP + SpSR"),
];

impl Experiment for Fig6 {
    fn name(&self) -> &'static str {
        "fig6_activity"
    }

    fn jobs(&self, ctx: &ExpContext) -> Vec<Job> {
        let mut jobs = Vec::new();
        for p in &ctx.prepared {
            jobs.push(Job::new(p.workload.name, ctx.insts, baseline_cfg()));
            for (vp, spsr, _) in CONFIGS {
                jobs.push(Job::new(p.workload.name, ctx.insts, vp_cfg(vp, spsr)));
            }
        }
        jobs
    }

    fn assemble(&self, ctx: &ExpContext, results: &ResultSet<'_>) -> Vec<ResultFile> {
        println!("=== Fig. 6: activity normalized to baseline ({} insts) ===\n", ctx.insts);
        let bases: Vec<_> =
            ctx.prepared.iter().map(|p| results.of(ctx, p, &baseline_cfg())).collect();
        let mut rows: Vec<StatsRow> = ctx
            .prepared
            .iter()
            .zip(&bases)
            .map(|(p, s)| StatsRow::new(p.workload.name, "baseline", s))
            .collect();

        println!(
            "{:<16} {:>10} {:>10} {:>12} {:>10}",
            "config", "PRF rd %", "PRF wr %", "IQ disp %", "IQ iss %"
        );
        for (vp, spsr, label) in CONFIGS {
            let mut rd = Vec::new();
            let mut wr = Vec::new();
            let mut disp = Vec::new();
            let mut iss = Vec::new();
            for (p, base) in ctx.prepared.iter().zip(&bases) {
                let s = results.of(ctx, p, &vp_cfg(vp, spsr));
                #[allow(clippy::cast_precision_loss)]
                let pct = |a: u64, b: u64| if b == 0 { 100.0 } else { a as f64 / b as f64 * 100.0 };
                rd.push(pct(s.activity.int_prf_reads, base.activity.int_prf_reads));
                wr.push(pct(s.activity.int_prf_writes, base.activity.int_prf_writes));
                disp.push(pct(s.activity.iq_dispatched, base.activity.iq_dispatched));
                iss.push(pct(s.activity.iq_issued, base.activity.iq_issued));
                rows.push(StatsRow::new(p.workload.name, label, &s));
            }
            println!(
                "{:<16} {:>10.2} {:>10.2} {:>12.2} {:>10.2}",
                label,
                amean(&rd),
                amean(&wr),
                amean(&disp),
                amean(&iss)
            );
        }
        println!();
        println!("paper: MVP 97.6/95.8 rd/wr; TVP 90.5/88.7; GVP writes > 100%;");
        println!("SpSR: −1.6%/−1.5% (MVP) and −2.4%/−2.0% (TVP) IQ disp/issue.");
        vec![ResultFile::rows("fig6_activity", &rows)]
    }
}
