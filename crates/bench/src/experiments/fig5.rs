//! Fig. 5 — Performance uplift of MVP/TVP with and without SpSR.
//!
//! Paper result (geomean): MVP +0.54% → MVP+SpSR +0.64%; TVP +1.11% →
//! TVP+SpSR +1.17%. SpSR's per-benchmark effect is small and
//! occasionally negative (stride-prefetcher interaction, §6.2).

use tvp_core::config::VpMode;

use super::{baseline_cfg, vp_cfg, ExpContext, Experiment, ResultFile, ResultSet};
use crate::jobs::Job;
use crate::{geomean_speedup, speedup_pct, StatsRow};

/// Fig. 5 experiment.
pub struct Fig5;

const CONFIGS: [(VpMode, bool, &str); 4] = [
    (VpMode::Mvp, false, "mvp"),
    (VpMode::Mvp, true, "mvp+spsr"),
    (VpMode::Tvp, false, "tvp"),
    (VpMode::Tvp, true, "tvp+spsr"),
];

impl Experiment for Fig5 {
    fn name(&self) -> &'static str {
        "fig5_spsr_speedup"
    }

    fn jobs(&self, ctx: &ExpContext) -> Vec<Job> {
        let mut jobs = Vec::new();
        for p in &ctx.prepared {
            jobs.push(Job::new(p.workload.name, ctx.insts, baseline_cfg()));
            for (vp, spsr, _) in CONFIGS {
                jobs.push(Job::new(p.workload.name, ctx.insts, vp_cfg(vp, spsr)));
            }
        }
        jobs
    }

    fn assemble(&self, ctx: &ExpContext, results: &ResultSet<'_>) -> Vec<ResultFile> {
        println!("=== Fig. 5: MVP/TVP ± SpSR speedup over baseline ({} insts) ===\n", ctx.insts);
        println!(
            "{:<16} {:>8} {:>10} {:>8} {:>10}",
            "workload", "MVP %", "MVP+SpSR %", "TVP %", "TVP+SpSR %"
        );
        let mut rows = Vec::new();
        let mut pairs = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for p in &ctx.prepared {
            let base = results.of(ctx, p, &baseline_cfg());
            let mut pcts = [0.0f64; 4];
            for (i, (vp, spsr, label)) in CONFIGS.iter().enumerate() {
                let s = results.of(ctx, p, &vp_cfg(*vp, *spsr));
                pcts[i] = speedup_pct(&s, &base);
                rows.push(StatsRow::new(p.workload.name, *label, &s));
                pairs[i].push((s, base));
            }
            println!(
                "{:<16} {:>8.2} {:>10.2} {:>8.2} {:>10.2}",
                p.workload.name, pcts[0], pcts[1], pcts[2], pcts[3]
            );
        }
        println!();
        for (i, (_, _, label)) in CONFIGS.iter().enumerate() {
            let g = (geomean_speedup(&pairs[i]) - 1.0) * 100.0;
            println!("{label:<10} geomean {g:+.2}%");
        }
        println!();
        println!("paper: MVP +0.54 → +0.64 with SpSR; TVP +1.11 → +1.17 with SpSR.");
        vec![ResultFile::rows("fig5_spsr_speedup", &rows)]
    }
}
