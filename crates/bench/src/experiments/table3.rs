//! Table 3 — geomean speedups for MVP/TVP/GVP at four predictor
//! storage budgets (same tables/history; only table sizes scale).
//!
//! Paper result:
//!
//! | budget        | MVP    | TVP    | GVP    |
//! |---------------|--------|--------|--------|
//! | ~4KB (½·MVP)  | +0.50% | +0.74% | +2.54% |
//! | ~8KB (MVP)    | +0.54% | +0.96% | +2.86% |
//! | ~14KB (TVP)   | +0.60% | +1.11% | +3.51% |
//! | ~55KB (GVP)   | +0.66% | +1.24% | +4.67% |

use tvp_core::config::{CoreConfig, VpMode};
use tvp_predictors::vtage::VtageConfig;

use super::{baseline_cfg, ExpContext, Experiment, ResultFile, ResultSet};
use crate::jobs::Job;
use crate::{geomean_speedup, StatsRow, VP_FLAVOURS};

/// Table 3 experiment.
pub struct Table3;

/// Each flavour's own paper budget in bits, used to derive the scale
/// factor that hits the row's target budget.
const BUDGETS: [(&str, f64); 4] = [
    ("0.5 x MVP (~4KB)", 0.5 * 65_152.0),
    ("MVP budget (~8KB)", 65_152.0),
    ("TVP budget (~14KB)", 114_304.0),
    ("GVP budget (~55KB)", 452_224.0),
];

/// The scaled configuration for one (budget row, flavour) cell.
fn cell_cfg(vp: VpMode, target_bits: f64) -> (CoreConfig, f64) {
    let mode = vp.pred_mode().expect("VP flavour");
    let own = VtageConfig::paper(mode);
    // Scale table sizes so the flavour's storage hits the row budget
    // (entry widths are fixed by the prediction width).
    #[allow(clippy::cast_precision_loss)]
    let factor = target_bits / own.storage_bits() as f64;
    let scaled = own.scaled(factor);
    let kb = scaled.storage_kb();
    let mut cfg = CoreConfig::with_vp(vp);
    cfg.vtage = Some(scaled);
    (cfg, kb)
}

impl Experiment for Table3 {
    fn name(&self) -> &'static str {
        "table3_storage_sweep"
    }

    fn jobs(&self, ctx: &ExpContext) -> Vec<Job> {
        let mut jobs = Vec::new();
        for p in &ctx.prepared {
            jobs.push(Job::new(p.workload.name, ctx.insts, baseline_cfg()));
        }
        for (_, target_bits) in BUDGETS {
            for (vp, _) in VP_FLAVOURS {
                let (cfg, _) = cell_cfg(vp, target_bits);
                for p in &ctx.prepared {
                    jobs.push(Job::new(p.workload.name, ctx.insts, cfg.clone()));
                }
            }
        }
        jobs
    }

    fn assemble(&self, ctx: &ExpContext, results: &ResultSet<'_>) -> Vec<ResultFile> {
        println!("=== Table 3: storage sweep ({} insts) ===\n", ctx.insts);
        let bases: Vec<_> =
            ctx.prepared.iter().map(|p| results.of(ctx, p, &baseline_cfg())).collect();

        println!("{:<20} {:>10} {:>10} {:>10}", "budget", "MVP", "TVP", "GVP");
        let mut rows = Vec::new();
        for (label, target_bits) in BUDGETS {
            let mut cells = Vec::new();
            for (vp, _) in VP_FLAVOURS {
                let (cfg, kb) = cell_cfg(vp, target_bits);
                let mut pairs = Vec::new();
                for (p, base) in ctx.prepared.iter().zip(&bases) {
                    let s = results.of(ctx, p, &cfg);
                    rows.push(StatsRow::new(p.workload.name, format!("{vp:?}@{kb:.1}KB"), &s));
                    pairs.push((s, *base));
                }
                let g = (geomean_speedup(&pairs) - 1.0) * 100.0;
                cells.push(format!("{g:+.2}%"));
            }
            println!("{:<20} {:>10} {:>10} {:>10}", label, cells[0], cells[1], cells[2]);
        }
        println!();
        println!("paper: +0.50/+0.74/+2.54 | +0.54/+0.96/+2.86 | +0.60/+1.11/+3.51 |");
        println!("       +0.66/+1.24/+4.67 (rows: 4/8/14/55KB; columns MVP/TVP/GVP)");
        vec![ResultFile::rows("table3_storage_sweep", &rows)]
    }
}
