//! Fig. 1 — Distribution of values produced by instructions writing
//! general purpose registers.
//!
//! Paper result: `0x0` tops the distribution (~5%), `0x1` is third,
//! and the top-20 is dominated by narrow values, motivating MVP/TVP.
//!
//! Pure trace analysis — enumerates no simulation jobs.

use tvp_workloads::value_dist::ValueDistribution;

use super::{ExpContext, Experiment, ResultFile, ResultSet};
use crate::jobs::Job;
use crate::json;

/// Fig. 1 experiment.
pub struct Fig1;

impl Experiment for Fig1 {
    fn name(&self) -> &'static str {
        "fig1_value_dist"
    }

    fn jobs(&self, _ctx: &ExpContext) -> Vec<Job> {
        Vec::new()
    }

    fn assemble(&self, ctx: &ExpContext, _results: &ResultSet<'_>) -> Vec<ResultFile> {
        println!("=== Fig. 1: dynamic GPR value distribution ({} insts/workload) ===\n", ctx.insts);
        let mut dist = ValueDistribution::new();
        for p in &ctx.prepared {
            dist.add_trace(&p.trace);
        }

        println!("{:>20}  {:>8}", "value", "share %");
        for (value, share) in dist.top(20) {
            println!("{value:>20x}  {:>8.3}", share * 100.0);
        }
        println!();
        println!("total GPR value productions : {}", dist.total());
        println!("share of 0x0                : {:.2}%", dist.share(0) * 100.0);
        println!("share of 0x1                : {:.2}%", dist.share(1) * 100.0);
        println!("share of 0x0 + 0x1 (MVP)    : {:.2}%", dist.zero_one_share() * 100.0);
        println!("share of 9-bit signed (TVP) : {:.2}%", dist.narrow9_share() * 100.0);
        println!();
        println!("paper: 0x0 is the most produced value (~5%), 0x1 third; narrow");
        println!("values dominate — the motivation for Minimal and Targeted VP.");

        let entries: Vec<String> = dist
            .top(20)
            .into_iter()
            .map(|(v, s)| format!("[\"{v:#x}\", {}]", json::number(s)))
            .collect();
        vec![
            ResultFile::rows("fig1_value_dist", &[]),
            ResultFile { name: "fig1_top_values".to_owned(), json: json::array(&entries) },
        ]
    }
}
