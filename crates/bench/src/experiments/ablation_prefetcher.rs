//! Ablation (§6.2) — SpSR × L1D stride prefetcher interaction.
//!
//! The paper traces the occasional SpSR slowdowns (perlbench, x264,
//! cam4) to the unthrottled stride prefetcher: with it disabled, SpSR's
//! geomean contribution improves from +0.06% to +0.11% on TVP.

use tvp_core::config::{CoreConfig, VpMode};

use super::{ExpContext, Experiment, ResultFile, ResultSet};
use crate::jobs::Job;
use crate::{geomean_speedup, StatsRow};

/// Stride-prefetcher ablation.
pub struct AblationPrefetcher;

fn mk(vp: VpMode, spsr: bool, stride_on: bool) -> CoreConfig {
    let mut cfg = CoreConfig::with_vp(vp);
    cfg.spsr = spsr;
    cfg.mem.stride_prefetcher = stride_on;
    cfg
}

impl Experiment for AblationPrefetcher {
    fn name(&self) -> &'static str {
        "ablation_prefetcher"
    }

    fn jobs(&self, ctx: &ExpContext) -> Vec<Job> {
        let mut jobs = Vec::new();
        for stride_on in [true, false] {
            for p in &ctx.prepared {
                for (vp, spsr) in [(VpMode::Off, false), (VpMode::Tvp, false), (VpMode::Tvp, true)]
                {
                    jobs.push(Job::new(p.workload.name, ctx.insts, mk(vp, spsr, stride_on)));
                }
            }
        }
        jobs
    }

    fn assemble(&self, ctx: &ExpContext, results: &ResultSet<'_>) -> Vec<ResultFile> {
        println!("=== Ablation: SpSR vs. the stride prefetcher (§6.2) ({} insts) ===\n", ctx.insts);
        println!("{:<22} {:>14} {:>14}", "config", "TVP geo %", "TVP+SpSR geo %");
        let mut rows = Vec::new();
        for stride_on in [true, false] {
            let mut tvp_pairs = Vec::new();
            let mut spsr_pairs = Vec::new();
            for p in &ctx.prepared {
                let base = results.of(ctx, p, &mk(VpMode::Off, false, stride_on));
                let tvp = results.of(ctx, p, &mk(VpMode::Tvp, false, stride_on));
                let tvps = results.of(ctx, p, &mk(VpMode::Tvp, true, stride_on));
                let tag = if stride_on { "stride-on" } else { "stride-off" };
                rows.push(StatsRow::new(p.workload.name, format!("tvp/{tag}"), &tvp));
                rows.push(StatsRow::new(p.workload.name, format!("tvp+spsr/{tag}"), &tvps));
                tvp_pairs.push((tvp, base));
                spsr_pairs.push((tvps, base));
            }
            println!(
                "{:<22} {:>14.2} {:>14.2}",
                if stride_on { "stride prefetcher ON" } else { "stride prefetcher OFF" },
                (geomean_speedup(&tvp_pairs) - 1.0) * 100.0,
                (geomean_speedup(&spsr_pairs) - 1.0) * 100.0,
            );
        }
        println!();
        println!("paper: without the stride prefetcher the SpSR slowdowns on");
        println!("perlbench_2/3, x264_2 and cam4 disappear (+0.06% → +0.11%).");
        vec![ResultFile::rows("ablation_prefetcher", &rows)]
    }
}
