//! Fig. 4 — Fraction of dynamic (architectural) instructions optimized
//! away at rename, for MVP+SpSR (a) and TVP+SpSR (b).
//!
//! Paper result (averages): 0-idiom 0.72%, 1-idiom 0.39%, move ~4%,
//! SpSR 1.73% (MVP) / 1.70% (TVP), 9-bit idiom 0.48% (TVP only),
//! non-ME moves 0.44% / 0.34%.

use tvp_core::config::VpMode;

use super::{per_workload_jobs, vp_cfg, ExpContext, Experiment, ResultFile, ResultSet};
use crate::jobs::Job;
use crate::{amean, StatsRow};

/// Fig. 4 experiment.
pub struct Fig4;

const PANELS: [(&str, VpMode); 2] = [("a", VpMode::Mvp), ("b", VpMode::Tvp)];

impl Experiment for Fig4 {
    fn name(&self) -> &'static str {
        "fig4_rename_fractions"
    }

    fn jobs(&self, ctx: &ExpContext) -> Vec<Job> {
        PANELS.iter().flat_map(|(_, vp)| per_workload_jobs(ctx, &vp_cfg(*vp, true))).collect()
    }

    fn assemble(&self, ctx: &ExpContext, results: &ResultSet<'_>) -> Vec<ResultFile> {
        println!(
            "=== Fig. 4: dynamic instructions eliminated at rename ({} insts) ===\n",
            ctx.insts
        );
        let mut rows = Vec::new();
        for (panel, vp) in PANELS {
            rows.extend(report(panel, vp, ctx, results));
        }
        println!("paper (amean): (a) MVP: 0-idiom 0.72, 1-idiom 0.39, move 3.96,");
        println!("SpSR 1.73, non-ME 0.44; (b) TVP: move 4.06, 9-bit 0.48, SpSR 1.70.");
        vec![ResultFile::rows("fig4_rename_fractions", &rows)]
    }
}

fn report(panel: &str, vp: VpMode, ctx: &ExpContext, results: &ResultSet<'_>) -> Vec<StatsRow> {
    println!("--- Fig. 4{panel}: rename-eliminated fractions under {vp:?} + SpSR ---\n");
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "workload", "0-idm %", "1-idm %", "move %", "9bit %", "SpSR %", "nonME %"
    );
    let cfg = vp_cfg(vp, true);
    let mut rows = Vec::new();
    let mut sums = [Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for p in &ctx.prepared {
        let s = results.of(ctx, p, &cfg);
        let r = s.rename;
        let f = |c: u64| r.fraction(c) * 100.0;
        let cols = [
            f(r.zero_idiom),
            f(r.one_idiom),
            f(r.move_elim),
            f(r.nine_bit_idiom),
            f(r.spsr),
            f(r.non_me_move),
        ];
        println!(
            "{:<16} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            p.workload.name, cols[0], cols[1], cols[2], cols[3], cols[4], cols[5]
        );
        for (acc, v) in sums.iter_mut().zip(cols) {
            acc.push(v);
        }
        rows.push(StatsRow::new(p.workload.name, format!("{vp:?}+spsr"), &s));
    }
    println!(
        "{:<16} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}\n",
        "amean",
        amean(&sums[0]),
        amean(&sums[1]),
        amean(&sums[2]),
        amean(&sums[3]),
        amean(&sums[4]),
        amean(&sums[5]),
    );
    rows
}
