//! Fig. 3 — Performance uplift of MVP/TVP/GVP over the DSR baseline,
//! plus the §6.1 coverage/accuracy numbers.
//!
//! Paper result (geomean): MVP +0.54%, TVP +1.11%, GVP +4.67%;
//! xalancbmk is the outlier at GVP +52.65%. Coverage 5.3% / 12.6% /
//! 32.7%; accuracy > 99.9% everywhere.

use super::{baseline_cfg, vp_cfg, ExpContext, Experiment, ResultFile, ResultSet};
use crate::jobs::Job;
use crate::{geomean_speedup, speedup_pct, StatsRow, VP_FLAVOURS};

/// Fig. 3 experiment.
pub struct Fig3;

impl Experiment for Fig3 {
    fn name(&self) -> &'static str {
        "fig3_vp_speedup"
    }

    fn jobs(&self, ctx: &ExpContext) -> Vec<Job> {
        let mut jobs = Vec::new();
        for p in &ctx.prepared {
            jobs.push(Job::new(p.workload.name, ctx.insts, baseline_cfg()));
            for (vp, _) in VP_FLAVOURS {
                jobs.push(Job::new(p.workload.name, ctx.insts, vp_cfg(vp, false)));
            }
        }
        jobs
    }

    fn assemble(&self, ctx: &ExpContext, results: &ResultSet<'_>) -> Vec<ResultFile> {
        println!("=== Fig. 3: MVP/TVP/GVP speedup over baseline ({} insts) ===\n", ctx.insts);
        println!(
            "{:<16} {:>8} {:>8} {:>8}   {:>7} {:>7} {:>7}",
            "workload", "MVP %", "TVP %", "GVP %", "covM", "covT", "covG"
        );
        let mut rows = Vec::new();
        let mut pairs: [Vec<_>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut coverage_sums = [0.0f64; 3];
        let mut accuracy_min = [1.0f64; 3];
        for p in &ctx.prepared {
            let base = results.of(ctx, p, &baseline_cfg());
            rows.push(StatsRow::new(p.workload.name, "baseline", &base));
            let mut pcts = [0.0f64; 3];
            let mut covs = [0.0f64; 3];
            for (i, (vp, label)) in VP_FLAVOURS.iter().enumerate() {
                let s = results.of(ctx, p, &vp_cfg(*vp, false));
                pcts[i] = speedup_pct(&s, &base);
                covs[i] = s.vp.coverage();
                coverage_sums[i] += s.vp.coverage();
                accuracy_min[i] = accuracy_min[i].min(s.vp.accuracy());
                rows.push(StatsRow::new(p.workload.name, label.to_lowercase(), &s));
                pairs[i].push((s, base));
            }
            println!(
                "{:<16} {:>8.2} {:>8.2} {:>8.2}   {:>7.3} {:>7.3} {:>7.3}",
                p.workload.name, pcts[0], pcts[1], pcts[2], covs[0], covs[1], covs[2]
            );
        }

        println!();
        #[allow(clippy::cast_precision_loss)]
        let n = ctx.prepared.len() as f64;
        for (i, (_, label)) in VP_FLAVOURS.iter().enumerate() {
            let g = (geomean_speedup(&pairs[i]) - 1.0) * 100.0;
            println!(
                "{label}: geomean {g:+.2}%   avg coverage {:.1}%   min accuracy {:.4}",
                coverage_sums[i] / n * 100.0,
                accuracy_min[i]
            );
        }
        println!();
        println!("paper: MVP +0.54% (cov 5.3%), TVP +1.11% (cov 12.6%), GVP +4.67%");
        println!("(cov 32.7%); accuracy > 99.9%; xalancbmk outlier GVP +52.65%.");
        vec![ResultFile::rows("fig3_vp_speedup", &rows)]
    }
}
