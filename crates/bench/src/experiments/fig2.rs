//! Fig. 2 — Retired µops per architectural instruction (bars) and
//! baseline IPC (line).
//!
//! Paper result: expansion ratios between 1.0 and ~1.15 (mean ~1.05),
//! IPC between ~0.5 and ~5.5 (hmean ≈ 2).

use super::{baseline_cfg, per_workload_jobs, ExpContext, Experiment, ResultFile, ResultSet};
use crate::jobs::Job;
use crate::{amean, hmean, StatsRow};

/// Fig. 2 experiment.
pub struct Fig2;

impl Experiment for Fig2 {
    fn name(&self) -> &'static str {
        "fig2_uops_ipc"
    }

    fn jobs(&self, ctx: &ExpContext) -> Vec<Job> {
        per_workload_jobs(ctx, &baseline_cfg())
    }

    fn assemble(&self, ctx: &ExpContext, results: &ResultSet<'_>) -> Vec<ResultFile> {
        println!(
            "=== Fig. 2: µops per arch. instruction + baseline IPC ({} insts) ===\n",
            ctx.insts
        );
        println!("{:<16} {:>12} {:>8}", "workload", "uops/inst", "IPC");
        let base = baseline_cfg();
        let mut rows = Vec::new();
        let mut ratios = Vec::new();
        let mut ipcs = Vec::new();
        for p in &ctx.prepared {
            let stats = results.of(ctx, p, &base);
            let ratio = stats.expansion_ratio();
            println!("{:<16} {:>12.3} {:>8.2}", p.workload.name, ratio, stats.ipc());
            ratios.push(ratio);
            ipcs.push(stats.ipc());
            rows.push(StatsRow::new(p.workload.name, "baseline", &stats));
        }
        println!("{:<16} {:>12.3} {:>8.2}", "mean/hmean", amean(&ratios), hmean(&ipcs));
        println!();
        println!("paper: ratios 1.0–1.15 (amean ~1.05); IPC line spans ~0.5–5.5.");
        vec![ResultFile::rows("fig2_uops_ipc", &rows)]
    }
}
