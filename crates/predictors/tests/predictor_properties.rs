//! Property-based tests of the prediction structures.

use proptest::prelude::*;
use tvp_predictors::fpc::Fpc;
use tvp_predictors::history::{BranchHistory, FoldedSpec};
use tvp_predictors::util::XorShift64;
use tvp_predictors::vtage::{PredMode, Vtage, VtageConfig};

proptest! {
    #[test]
    fn folded_history_depends_only_on_window(
        prefix_a in proptest::collection::vec(any::<bool>(), 0..100),
        prefix_b in proptest::collection::vec(any::<bool>(), 0..100),
        window in proptest::collection::vec(any::<bool>(), 32..64),
        hist_len in 4u32..32,
        width in 2u32..16,
    ) {
        let spec = FoldedSpec { hist_len, width };
        let fold = |prefix: &[bool]| {
            let mut h = BranchHistory::new(&[spec]);
            for &b in prefix.iter().chain(&window) {
                h.push(b);
            }
            h.folded(0)
        };
        // `window` is longer than `hist_len`, so both folds see the
        // same effective history regardless of prefix.
        prop_assert_eq!(fold(&prefix_a), fold(&prefix_b));
    }

    #[test]
    fn folded_history_stays_in_range(
        bits in proptest::collection::vec(any::<bool>(), 1..200),
        width in 1u32..20,
    ) {
        let spec = FoldedSpec { hist_len: 16, width };
        let mut h = BranchHistory::new(&[spec]);
        for b in bits {
            h.push(b);
            prop_assert!(h.folded(0) < (1u64 << width));
        }
    }

    #[test]
    fn fpc_level_is_monotone_and_bounded(
        outcomes in proptest::collection::vec(any::<bool>(), 1..500),
        seed: u64,
    ) {
        let mut rng = XorShift64::new(seed);
        let mut c = Fpc::new(3, 4);
        for correct in outcomes {
            let before = c.level();
            if correct {
                c.on_correct(&mut rng);
                prop_assert!(c.level() >= before);
                prop_assert!(c.level() <= before + 1);
            } else {
                c.reset();
                prop_assert_eq!(c.level(), 0);
            }
            prop_assert!(c.level() <= 7);
        }
    }

    #[test]
    fn vtage_never_predicts_inadmissible_values_confidently(
        values in proptest::collection::vec(0u64..1024, 50..200),
    ) {
        // Train an MVP-width predictor on arbitrary small values; any
        // confident prediction it ever makes must be 0 or 1.
        let mut vp = Vtage::new(VtageConfig::paper(PredMode::ZeroOne));
        for (i, &v) in values.iter().cycle().take(3_000).enumerate() {
            let p = vp.predict(0x1000 + (i as u64 % 8) * 4);
            if p.confident {
                prop_assert!(p.value <= 1, "confident about {}", p.value);
            }
            vp.update(&p, v);
        }
    }

    #[test]
    fn vtage_storage_scales_monotonically(f1 in 0.1f64..4.0, f2 in 0.1f64..4.0) {
        let base = VtageConfig::paper(PredMode::Narrow9);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let s_lo = base.clone().scaled(lo).storage_bits();
        let s_hi = base.clone().scaled(hi).storage_bits();
        prop_assert!(s_lo <= s_hi, "{lo} → {s_lo}, {hi} → {s_hi}");
    }

    #[test]
    fn vtage_checkpoint_restore_is_lossless(
        outcomes in proptest::collection::vec(any::<bool>(), 1..100),
        extra in proptest::collection::vec(any::<bool>(), 1..50),
    ) {
        let mut vp = Vtage::new(VtageConfig::paper(PredMode::Full64));
        for &t in &outcomes {
            vp.push_history(t);
        }
        let ckpt = vp.history_checkpoint();
        let before = vp.predict(0xBEEF0);
        for &t in &extra {
            vp.push_history(t);
        }
        vp.restore_history(ckpt);
        let after = vp.predict(0xBEEF0);
        prop_assert_eq!(before.hit, after.hit);
        prop_assert_eq!(before.value, after.value);
    }
}

#[test]
fn tage_beats_bimodal_on_history_patterns() {
    // Not strictly a property test, but a randomized comparison: on
    // period-k patterns TAGE must outperform a pure bimodal table.
    use tvp_predictors::tage::{Tage, TageConfig};
    for period in [3u64, 5, 7] {
        let mut tage = Tage::new(TageConfig {
            num_tables: 6,
            min_hist: 4,
            max_hist: 64,
            base_log2: 8,
            tagged_log2: 8,
            tag_bits: vec![8, 9, 9, 10, 10, 11],
            u_reset_period: 1 << 20,
            seed: 3,
        });
        let mut correct = 0u64;
        let total = 30_000u64;
        for i in 0..total {
            let taken = i % period == 0;
            let token = tage.predict(0x1234);
            tage.push_history(taken);
            if token.taken == taken {
                correct += 1;
            }
            tage.update(&token, taken);
        }
        let acc = correct as f64 / total as f64;
        let bimodal_bound = (period - 1) as f64 / period as f64;
        assert!(
            acc > bimodal_bound + 0.02,
            "period {period}: TAGE {acc} vs bimodal bound {bimodal_bound}"
        );
    }
}
