//! VTAGE value predictor [Perais & Seznec, HPCA 2014] with the paper's
//! Minimal / Targeted / Generic prediction-width modes.
//!
//! VTAGE associates a predicted *value* with (PC, global branch history),
//! using the same geometric tagged-table structure as TAGE. The paper's
//! key storage insight (§3.3) is that restricting the set of predictable
//! values shrinks each entry's prediction field:
//!
//! * **GVP** (generic) — 64-bit predictions, 55.2 KB;
//! * **TVP** (targeted) — 9-bit signed predictions, 13.9 KB;
//! * **MVP** (minimal) — only `0x0`/`0x1` (1 bit), 7.9 KB.
//!
//! A prediction is *used* by the pipeline only once its Forward
//! Probabilistic Counter saturates (accuracy > 99.9% in the paper).

use crate::fpc::Fpc;
use crate::history::{BranchHistory, FoldedSpec};
use crate::util::{pc_hash, XorShift64};

/// Maximum number of tagged tables supported by the fixed-size token.
pub const MAX_VTAGE_TABLES: usize = 8;

/// Which values the predictor is allowed to learn and predict — the
/// MVP/TVP/GVP axis of the paper.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum PredMode {
    /// Minimal VP: only `0x0` and `0x1` (1-bit prediction field).
    ZeroOne,
    /// Targeted VP: 9-bit signed values, matching the widened physical
    /// register names used for register inlining.
    Narrow9,
    /// Generic VP: arbitrary 64-bit values.
    Full64,
}

impl PredMode {
    /// Returns `true` if `value` can be represented by this mode.
    #[must_use]
    pub fn admits(self, value: u64) -> bool {
        match self {
            PredMode::ZeroOne => value <= 1,
            PredMode::Narrow9 => {
                let v = value as i64;
                (-256..=255).contains(&v)
            }
            PredMode::Full64 => true,
        }
    }

    /// Width of the stored prediction field in bits.
    #[must_use]
    pub fn prediction_bits(self) -> u64 {
        match self {
            PredMode::ZeroOne => 1,
            PredMode::Narrow9 => 9,
            PredMode::Full64 => 64,
        }
    }
}

/// VTAGE geometry. The default is the paper's Table 2 predictor.
#[derive(Clone, Debug)]
pub struct VtageConfig {
    /// Prediction width mode (MVP / TVP / GVP).
    pub mode: PredMode,
    /// Shortest history length.
    pub min_hist: u32,
    /// Longest history length.
    pub max_hist: u32,
    /// Entry counts: `entries[0]` is the base table, the rest are the
    /// tagged tables. Not required to be powers of two (Table 3 scales
    /// them fractionally).
    pub entries: Vec<u32>,
    /// Tag widths, aligned with `entries` (`tag_bits[0]` is the base
    /// table's short tag).
    pub tag_bits: Vec<u32>,
    /// FPC confidence counter width.
    pub conf_bits: u8,
    /// FPC increment probability denominator (paper: 16).
    pub conf_inv_prob: u32,
    /// Usefulness field width on tagged tables.
    pub useful_bits: u32,
    /// PRNG seed.
    pub seed: u64,
}

impl VtageConfig {
    /// The paper's 1+7-table VTAGE (Table 2): log2 sizes
    /// 12,9,9,8,8,8,7,7; tags 4,9,9,10,10,11,11,12; history 2–128.
    #[must_use]
    pub fn paper(mode: PredMode) -> Self {
        VtageConfig {
            mode,
            min_hist: 2,
            max_hist: 128,
            entries: [12u32, 9, 9, 8, 8, 8, 7, 7].iter().map(|&l| 1 << l).collect(), // audited(no-alloc-in-hot-path): constructor
            tag_bits: vec![4, 9, 9, 10, 10, 11, 11, 12], // audited(no-alloc-in-hot-path): constructor
            conf_bits: 3,
            conf_inv_prob: 16,
            useful_bits: 2,
            seed: 0x57A6_E5EE,
        }
    }

    /// Scales every table's entry count by `factor` (Table 3's storage
    /// sweep: "same number of tables/history bits, only table size is
    /// modified"). Entry counts are floored at 16.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        for e in &mut self.entries {
            *e = ((f64::from(*e) * factor).round() as u32).max(16);
        }
        self
    }

    /// Number of tagged tables.
    #[must_use]
    pub fn num_tagged(&self) -> usize {
        self.entries.len() - 1
    }

    /// Geometric history length of tagged table `i` (0 = shortest).
    #[must_use]
    pub fn history_length(&self, i: usize) -> u32 {
        let n = self.num_tagged();
        if n == 1 {
            return self.min_hist;
        }
        let ratio = f64::from(self.max_hist) / f64::from(self.min_hist);
        let exp = i as f64 / (n - 1) as f64;
        (f64::from(self.min_hist) * ratio.powf(exp)).round() as u32
    }

    /// Total predictor state in bits.
    ///
    /// Base entries hold `prediction + confidence + tag`; tagged entries
    /// additionally hold the usefulness field. With the paper's
    /// geometry this reproduces 55.2 / 13.9 / 7.9 KB exactly.
    #[must_use]
    pub fn storage_bits(&self) -> u64 {
        let pred = self.mode.prediction_bits();
        let conf = u64::from(self.conf_bits);
        let mut bits = u64::from(self.entries[0]) * (pred + conf + u64::from(self.tag_bits[0]));
        for i in 1..self.entries.len() {
            bits += u64::from(self.entries[i])
                * (pred + conf + u64::from(self.useful_bits) + u64::from(self.tag_bits[i]));
        }
        bits
    }

    /// Total predictor state in kilobytes.
    #[must_use]
    pub fn storage_kb(&self) -> f64 {
        self.storage_bits() as f64 / 8.0 / 1024.0
    }
}

#[derive(Clone, Debug)]
struct VtageEntry {
    valid: bool,
    tag: u16,
    value: u64,
    conf: Fpc,
    useful: u8,
}

/// Prediction result plus the bookkeeping the in-order updater needs.
#[derive(Clone, Copy, Debug)]
pub struct VtagePred {
    /// The predicted value (meaningful only when `hit`).
    pub value: u64,
    /// A matching entry was found.
    pub hit: bool,
    /// The entry's confidence is saturated — the pipeline may *use*
    /// the prediction.
    pub confident: bool,
    base_index: u32,
    base_tag: u16,
    indices: [u32; MAX_VTAGE_TABLES],
    tags: [u16; MAX_VTAGE_TABLES],
    /// Provider table: 0 = base, 1..=N = tagged table index + 1.
    provider: u8,
}

/// Aggregate statistics (kept by the predictor; the pipeline keeps its
/// own use/coverage accounting).
#[derive(Clone, Copy, Debug, Default)]
pub struct VtageStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that hit a (not necessarily confident) entry.
    pub hits: u64,
    /// Updates where a hit entry's value matched the outcome.
    pub correct: u64,
    /// Updates where a hit entry's value mismatched the outcome.
    pub incorrect: u64,
    /// Counter increments lost to saturation (should stay 0).
    pub overflow_events: u64,
}

/// The VTAGE value predictor.
pub struct Vtage {
    cfg: VtageConfig,
    base: Vec<VtageEntry>,
    tables: Vec<Vec<VtageEntry>>,
    history: BranchHistory,
    rng: XorShift64,
    stats: VtageStats,
}

impl Vtage {
    /// Builds a predictor.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (mismatched `entries` /
    /// `tag_bits` lengths, or more than [`MAX_VTAGE_TABLES`] tagged
    /// tables).
    #[must_use]
    pub fn new(cfg: VtageConfig) -> Self {
        assert_eq!(cfg.entries.len(), cfg.tag_bits.len(), "entries/tag_bits mismatch");
        assert!(cfg.num_tagged() <= MAX_VTAGE_TABLES, "too many tagged tables");
        assert!(!cfg.entries.is_empty());
        let empty = VtageEntry {
            valid: false,
            tag: 0,
            value: 0,
            conf: Fpc::new(cfg.conf_bits, cfg.conf_inv_prob),
            useful: 0,
        };
        let mut specs = Vec::new(); // audited(no-alloc-in-hot-path): constructor
        for i in 0..cfg.num_tagged() {
            let len = cfg.history_length(i);
            // Fold history to ~log2(entries) bits for the index and to
            // the tag width for the tag.
            let idx_width = 32 - cfg.entries[i + 1].leading_zeros().min(31);
            specs.push(FoldedSpec { hist_len: len, width: idx_width.max(1) });
            specs.push(FoldedSpec { hist_len: len, width: cfg.tag_bits[i + 1] });
            specs.push(FoldedSpec { hist_len: len, width: (cfg.tag_bits[i + 1] - 1).max(1) });
        }
        Vtage {
            base: vec![empty.clone(); cfg.entries[0] as usize], // audited(no-alloc-in-hot-path): constructor
            tables: (1..cfg.entries.len())
                .map(|i| vec![empty.clone(); cfg.entries[i] as usize]) // audited(no-alloc-in-hot-path): constructor
                .collect(), // audited(no-alloc-in-hot-path): constructor
            history: BranchHistory::new(&specs),
            rng: XorShift64::new(cfg.seed),
            stats: VtageStats::default(),
            cfg,
        }
    }

    fn base_index(&self, pc: u64) -> u32 {
        (pc_hash(pc) % u64::from(self.cfg.entries[0])) as u32
    }

    fn base_tag(&self, pc: u64) -> u16 {
        (((pc >> 2) ^ (pc >> 13)) & ((1 << self.cfg.tag_bits[0]) - 1)) as u16
    }

    fn index(&self, pc: u64, table: usize) -> u32 {
        let h = self.history.folded(table * 3);
        ((pc_hash(pc) ^ h ^ (pc >> 9)) % u64::from(self.cfg.entries[table + 1])) as u32
    }

    fn tag(&self, pc: u64, table: usize) -> u16 {
        let h1 = self.history.folded(table * 3 + 1);
        let h2 = self.history.folded(table * 3 + 2);
        (((pc >> 2) ^ h1 ^ (h2 << 1)) & ((1 << self.cfg.tag_bits[table + 1]) - 1)) as u16
    }

    /// Looks up a prediction for the (VP-eligible) instruction at `pc`
    /// using the current speculative branch history.
    pub fn predict(&mut self, pc: u64) -> VtagePred {
        tvp_obs::counters::sat_inc(&mut self.stats.lookups, &mut self.stats.overflow_events);
        let mut pred = VtagePred {
            value: 0,
            hit: false,
            confident: false,
            base_index: self.base_index(pc),
            base_tag: self.base_tag(pc),
            indices: [0; MAX_VTAGE_TABLES],
            tags: [0; MAX_VTAGE_TABLES],
            provider: 0,
        };
        for t in 0..self.cfg.num_tagged() {
            pred.indices[t] = self.index(pc, t);
            pred.tags[t] = self.tag(pc, t);
        }
        for t in (0..self.cfg.num_tagged()).rev() {
            let e = &self.tables[t][pred.indices[t] as usize];
            if e.valid && e.tag == pred.tags[t] {
                pred.hit = true;
                pred.value = e.value;
                pred.confident = e.conf.is_saturated();
                pred.provider = t as u8 + 1;
                break;
            }
        }
        if !pred.hit {
            let e = &self.base[pred.base_index as usize];
            if e.valid && e.tag == pred.base_tag {
                pred.hit = true;
                pred.value = e.value;
                pred.confident = e.conf.is_saturated();
                pred.provider = 0;
            }
        }
        if pred.hit {
            tvp_obs::counters::sat_inc(&mut self.stats.hits, &mut self.stats.overflow_events);
        }
        pred
    }

    /// Pushes a conditional-branch outcome into the value predictor's
    /// history (speculatively, at prediction time).
    pub fn push_history(&mut self, taken: bool) {
        self.history.push(taken);
    }

    /// Checkpoints the speculative history.
    #[must_use]
    pub fn history_checkpoint(&self) -> BranchHistory {
        self.history.clone()
    }

    /// Restores a history checkpoint after a squash.
    pub fn restore_history(&mut self, h: BranchHistory) {
        self.history = h;
    }

    /// Trains the predictor with the retired instruction's actual
    /// result. Call in retirement order with the token from
    /// [`Vtage::predict`].
    pub fn update(&mut self, pred: &VtagePred, actual: u64) {
        let admissible = self.cfg.mode.admits(actual);
        let mut provider_correct = false;
        if pred.hit {
            if pred.value == actual {
                tvp_obs::counters::sat_inc(
                    &mut self.stats.correct,
                    &mut self.stats.overflow_events,
                );
                provider_correct = true;
            } else {
                tvp_obs::counters::sat_inc(
                    &mut self.stats.incorrect,
                    &mut self.stats.overflow_events,
                );
            }
            let entry = if pred.provider == 0 {
                &mut self.base[pred.base_index as usize]
            } else {
                let t = pred.provider as usize - 1;
                &mut self.tables[t][pred.indices[t] as usize]
            };
            // The entry may have been replaced between prediction and
            // retirement; only train it if it still holds our value.
            if entry.valid && entry.value == pred.value {
                if provider_correct {
                    entry.conf.on_correct(&mut self.rng);
                    if pred.provider != 0 {
                        entry.useful = (entry.useful + 1).min((1 << self.cfg.useful_bits) - 1);
                    }
                } else {
                    if entry.conf.level() == 0 {
                        if admissible {
                            entry.value = actual;
                        } else {
                            entry.valid = false;
                        }
                    }
                    entry.conf.reset();
                    if pred.provider != 0 {
                        entry.useful = entry.useful.saturating_sub(1);
                    }
                }
            }
        }

        // Allocate on a miss or an incorrect provider, in a table with
        // longer history, TAGE-style.
        if !provider_correct && admissible {
            let first = pred.provider as usize; // tagged table index to start from
            if first < self.cfg.num_tagged() {
                let is_candidate = |tables: &[Vec<VtageEntry>], t: usize| {
                    let e = &tables[t][pred.indices[t] as usize];
                    !e.valid || e.useful == 0
                };
                let candidates = (first..self.cfg.num_tagged())
                    .filter(|&t| is_candidate(&self.tables, t))
                    .count();
                if candidates == 0 {
                    for t in first..self.cfg.num_tagged() {
                        let e = &mut self.tables[t][pred.indices[t] as usize];
                        e.useful = e.useful.saturating_sub(1);
                    }
                } else {
                    let pick = if candidates > 1 && !self.rng.one_in(3) {
                        0
                    } else {
                        self.rng.below(candidates as u32) as usize
                    };
                    let t = (first..self.cfg.num_tagged())
                        .filter(|&t| is_candidate(&self.tables, t))
                        .nth(pick)
                        .expect("pick < candidate count: below() is exclusive");
                    let conf = Fpc::new(self.cfg.conf_bits, self.cfg.conf_inv_prob);
                    self.tables[t][pred.indices[t] as usize] = VtageEntry {
                        valid: true,
                        tag: pred.tags[t],
                        value: actual,
                        conf,
                        useful: 0,
                    };
                }
            }
            // Also install into the base table if it is empty or cold.
            let b = &mut self.base[pred.base_index as usize];
            if !b.valid
                || (b.tag != pred.base_tag && b.conf.level() == 0)
                || (b.tag == pred.base_tag && b.value != actual && b.conf.level() == 0)
            {
                let conf = Fpc::new(self.cfg.conf_bits, self.cfg.conf_inv_prob);
                *b = VtageEntry { valid: true, tag: pred.base_tag, value: actual, conf, useful: 0 };
            } else if b.tag != pred.base_tag {
                b.conf.reset();
            }
        }
    }

    /// Fault-injection hook: corrupts one valid entry chosen by the
    /// raw entropy `r` — flips the low bit of its stored value and
    /// force-saturates its confidence so the poisoned prediction gets
    /// *used* (the worst case for the recovery path). The low-bit flip
    /// keeps the value admissible in every [`PredMode`]. Returns `true`
    /// if a valid entry was found and corrupted.
    pub fn inject_fault(&mut self, r: u64) -> bool {
        let num_tables = self.tables.len() + 1;
        let t = (r % num_tables as u64) as usize;
        let table = if t == 0 { &mut self.base } else { &mut self.tables[t - 1] };
        let len = table.len();
        let start = ((r >> 8) % len as u64) as usize;
        for i in 0..len {
            let e = &mut table[(start + i) % len];
            if e.valid {
                e.value ^= 1;
                e.conf.saturate();
                return true;
            }
        }
        false
    }

    /// Predictor-level statistics.
    #[must_use]
    pub fn stats(&self) -> VtageStats {
        self.stats
    }

    /// The configuration this predictor was built with.
    #[must_use]
    pub fn config(&self) -> &VtageConfig {
        &self.cfg
    }
}

impl std::fmt::Debug for Vtage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vtage")
            .field("mode", &self.cfg.mode)
            .field("storage_kb", &self.cfg.storage_kb())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl tvp_verif::StorageBudget for Vtage {
    fn storage_name(&self) -> &'static str {
        match self.cfg.mode {
            PredMode::ZeroOne => "vtage.mvp",
            PredMode::Narrow9 => "vtage.tvp",
            PredMode::Full64 => "vtage.gvp",
        }
    }

    fn storage_bits(&self) -> u64 {
        self.cfg.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_storage_budgets_are_bit_exact() {
        // §3.3 / Table 2: 55.2 KB (GVP), 13.9 KB (TVP), 7.9 KB (MVP).
        let gvp = VtageConfig::paper(PredMode::Full64);
        assert_eq!(gvp.storage_bits(), 452_224);
        assert!((gvp.storage_kb() - 55.2).abs() < 0.05, "GVP = {}", gvp.storage_kb());

        let tvp = VtageConfig::paper(PredMode::Narrow9);
        assert_eq!(tvp.storage_bits(), 114_304);
        assert!((tvp.storage_kb() - 13.95).abs() < 0.06, "TVP = {}", tvp.storage_kb());

        let mvp = VtageConfig::paper(PredMode::ZeroOne);
        assert_eq!(mvp.storage_bits(), 65_152);
        assert!((mvp.storage_kb() - 7.95).abs() < 0.06, "MVP = {}", mvp.storage_kb());
    }

    #[test]
    fn mode_admissibility() {
        assert!(PredMode::ZeroOne.admits(0));
        assert!(PredMode::ZeroOne.admits(1));
        assert!(!PredMode::ZeroOne.admits(2));
        assert!(PredMode::Narrow9.admits(255));
        assert!(PredMode::Narrow9.admits((-256i64) as u64));
        assert!(!PredMode::Narrow9.admits(256));
        assert!(!PredMode::Narrow9.admits(0xFFFF_FFFF)); // zero-extended w-negative
        assert!(PredMode::Full64.admits(u64::MAX));
    }

    #[test]
    fn history_lengths_are_geometric_2_to_128() {
        let cfg = VtageConfig::paper(PredMode::Full64);
        assert_eq!(cfg.num_tagged(), 7);
        assert_eq!(cfg.history_length(0), 2);
        assert_eq!(cfg.history_length(6), 128);
        for i in 1..7 {
            assert!(cfg.history_length(i) > cfg.history_length(i - 1));
        }
    }

    fn train(v: &mut Vtage, pc: u64, value: u64, n: usize) {
        for _ in 0..n {
            let p = v.predict(pc);
            v.update(&p, value);
        }
    }

    #[test]
    fn constant_value_becomes_confident() {
        let mut v = Vtage::new(VtageConfig::paper(PredMode::Full64));
        train(&mut v, 0x1000, 0xDEAD_BEEF, 3000);
        let p = v.predict(0x1000);
        assert!(p.hit && p.confident);
        assert_eq!(p.value, 0xDEAD_BEEF);
    }

    #[test]
    fn inadmissible_values_never_become_confident_in_mvp() {
        let mut v = Vtage::new(VtageConfig::paper(PredMode::ZeroOne));
        train(&mut v, 0x2000, 42, 3000);
        let p = v.predict(0x2000);
        assert!(!p.confident, "MVP must not confidently predict 42");
        // But 0/1 works.
        train(&mut v, 0x3000, 1, 3000);
        let p = v.predict(0x3000);
        assert!(p.confident);
        assert_eq!(p.value, 1);
    }

    #[test]
    fn narrow9_boundaries() {
        let mut v = Vtage::new(VtageConfig::paper(PredMode::Narrow9));
        train(&mut v, 0x4000, 255, 3000);
        assert!(v.predict(0x4000).confident);
        train(&mut v, 0x5000, 256, 3000);
        assert!(!v.predict(0x5000).confident);
    }

    #[test]
    fn value_change_collapses_confidence() {
        let mut v = Vtage::new(VtageConfig::paper(PredMode::Full64));
        train(&mut v, 0x6000, 7, 3000);
        assert!(v.predict(0x6000).confident);
        let p = v.predict(0x6000);
        v.update(&p, 9); // outcome changed
        let p = v.predict(0x6000);
        assert!(!p.confident, "one mispredict must clear saturation");
    }

    #[test]
    fn history_correlated_values_use_tagged_tables() {
        // Value alternates with a branch direction pattern: with the
        // branch outcome in history, tagged tables disambiguate.
        let mut v = Vtage::new(VtageConfig::paper(PredMode::Full64));
        for round in 0..6000 {
            let taken = round % 2 == 0;
            v.push_history(taken);
            let value = u64::from(taken) * 100;
            let p = v.predict(0x7000);
            v.update(&p, value);
        }
        // Warmed up: check it now predicts following the pattern.
        let mut correct = 0;
        for round in 0..200 {
            let taken = round % 2 == 0;
            v.push_history(taken);
            let value = u64::from(taken) * 100;
            let p = v.predict(0x7000);
            if p.confident && p.value == value {
                correct += 1;
            }
            v.update(&p, value);
        }
        assert!(correct > 150, "history-correlated coverage = {correct}/200");
    }

    #[test]
    fn scaled_config_changes_storage() {
        let cfg = VtageConfig::paper(PredMode::Full64);
        let half = cfg.clone().scaled(0.5);
        let ratio = half.storage_bits() as f64 / cfg.storage_bits() as f64;
        assert!((0.4..0.6).contains(&ratio), "ratio = {ratio}");
        // Scaled predictor still functions.
        let mut v = Vtage::new(half);
        train(&mut v, 0x1000, 5, 3000);
        assert!(v.predict(0x1000).confident);
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let mut v = Vtage::new(VtageConfig::paper(PredMode::Full64));
        for i in 0..50 {
            v.push_history(i % 3 == 0);
        }
        let ckpt = v.history_checkpoint();
        let before = v.predict(0x8000);
        v.push_history(true);
        v.push_history(false);
        v.restore_history(ckpt);
        let after = v.predict(0x8000);
        assert_eq!(before.indices, after.indices);
        assert_eq!(before.tags, after.tags);
    }

    #[test]
    fn injected_fault_corrupts_a_used_prediction() {
        let mut v = Vtage::new(VtageConfig::paper(PredMode::Full64));
        train(&mut v, 0xA000, 8, 3000);
        let before = v.predict(0xA000);
        assert!(before.confident && before.value == 8);
        // Corrupt until the trained entry is hit (deterministic walk
        // finds *a* valid entry each call).
        let mut changed = false;
        for r in 0..64u64 {
            assert!(v.inject_fault(r.wrapping_mul(0x9E37_79B9)), "a valid entry exists");
            let p = v.predict(0xA000);
            if p.confident && p.value == 9 {
                changed = true;
                break;
            }
        }
        assert!(changed, "low-bit flip must eventually reach the trained entry");
    }

    #[test]
    fn inject_fault_on_empty_predictor_is_a_noop() {
        let mut v = Vtage::new(VtageConfig::paper(PredMode::ZeroOne));
        assert!(!v.inject_fault(12345));
    }

    #[test]
    fn stats_accumulate() {
        let mut v = Vtage::new(VtageConfig::paper(PredMode::Full64));
        train(&mut v, 0x9000, 3, 100);
        let s = v.stats();
        assert_eq!(s.lookups, 100);
        assert!(s.hits > 0);
        assert!(s.correct > 0);
    }
}
