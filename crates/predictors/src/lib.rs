//! # tvp-predictors — branch and value prediction structures
//!
//! Implements every prediction structure of the paper's front-end
//! (Table 2):
//!
//! * [`tage`] — 32 KB, 1+15-table TAGE conditional branch predictor;
//! * [`btb`] — 8192-entry branch target buffer;
//! * [`ras`] — 32-entry return address stack;
//! * [`indirect`] — 1k-entry indirect branch target cache;
//! * [`vtage`] — 1+7-table VTAGE value predictor with the paper's
//!   MVP / TVP / GVP prediction-width modes and FPC confidence
//!   ([`fpc`]);
//! * [`dvtage`] — the stride-based D-VTAGE variant with a faithful
//!   speculative in-flight window, quantifying the §2.1 complexity
//!   that MVP/TVP eliminate;
//! * [`storage`] — bit-exact storage accounting (55.2 / 13.9 / 7.9 KB).
//!
//! All structures are deterministic: probabilistic behaviour draws from
//! a seeded [`util::XorShift64`], so a simulation is reproducible from
//! its configuration alone.
//!
//! # Examples
//!
//! ```
//! use tvp_predictors::vtage::{PredMode, Vtage, VtageConfig};
//!
//! let mut vp = Vtage::new(VtageConfig::paper(PredMode::Narrow9));
//! // Train: the instruction at 0x1000 keeps producing 7.
//! for _ in 0..3000 {
//!     let p = vp.predict(0x1000);
//!     vp.update(&p, 7);
//! }
//! let p = vp.predict(0x1000);
//! assert!(p.confident && p.value == 7);
//! ```

pub mod btb;
pub mod dvtage;
pub mod fpc;
pub mod history;
pub mod indirect;
pub mod ras;
pub mod storage;
pub mod tage;
pub mod util;
pub mod vtage;

pub use btb::{Btb, BtbHit};
pub use dvtage::{Dvtage, DvtageConfig, DvtagePred};
pub use indirect::IndirectTargetCache;
pub use ras::Ras;
pub use tage::{Tage, TageConfig, TageToken};
pub use vtage::{PredMode, Vtage, VtageConfig, VtagePred};
