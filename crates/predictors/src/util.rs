//! Small deterministic utilities shared by the predictor implementations.

/// A tiny deterministic xorshift64* PRNG.
///
/// Predictors need randomness for probabilistic counter updates (FPC) and
/// allocation tie-breaking, but simulation results must be reproducible,
/// so each predictor owns one of these seeded generators instead of using
/// a global source of entropy.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a non-zero seed (zero is mapped to a
    /// fixed constant, since xorshift has a zero fixed point).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        XorShift64 { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns `true` with probability `1/denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero.
    pub fn one_in(&mut self, denominator: u32) -> bool {
        assert!(denominator > 0, "denominator must be non-zero");
        self.next_u64().is_multiple_of(u64::from(denominator))
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be non-zero");
        (self.next_u64() % u64::from(bound)) as u32
    }
}

/// Mixes a program counter into a table index; spreads the (4-byte
/// aligned) PC bits across the index space.
#[must_use]
pub fn pc_hash(pc: u64) -> u64 {
    let pc = pc >> 2;
    pc ^ (pc >> 17) ^ (pc >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_does_not_stick() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn one_in_roughly_matches_probability() {
        let mut r = XorShift64::new(7);
        let hits = (0..160_000).filter(|_| r.one_in(16)).count();
        // Expected 10000; accept a generous window.
        assert!((8_000..12_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift64::new(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn pc_hash_distinguishes_nearby_pcs() {
        assert_ne!(pc_hash(0x1000), pc_hash(0x1004));
        assert_ne!(pc_hash(0x1000), pc_hash(0x2000));
    }
}
