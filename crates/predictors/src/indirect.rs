//! Indirect Branch Target Cache.
//!
//! A 1k-entry, history-hashed target cache for `br`/`blr` (Table 2).
//! The paper notes (§2) that indirect target prediction is "in spirit"
//! value prediction: a full 64-bit target is predicted, compared against
//! the computed value, and the predictor is trained — exactly the VP
//! lifecycle.

use crate::util::pc_hash;

#[derive(Clone, Copy, Debug, Default)]
struct ItcEntry {
    valid: bool,
    tag: u16,
    target: u64,
    conf: u8, // 2-bit replacement hysteresis
}

/// History-hashed indirect branch target cache.
#[derive(Debug)]
pub struct IndirectTargetCache {
    entries: Vec<ItcEntry>,
    index_mask: u64,
    tag_bits: u32,
    history_bits: u32,
    path_history: u64,
}

impl IndirectTargetCache {
    /// Creates a cache with `entries` (power of two) entries hashing
    /// `history_bits` of recent path history into the index.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two(), "ITC entries must be a power of two");
        IndirectTargetCache {
            entries: vec![ItcEntry::default(); entries], // audited(no-alloc-in-hot-path): constructor
            index_mask: entries as u64 - 1,
            tag_bits: 9,
            history_bits,
            path_history: 0,
        }
    }

    fn index_with(&self, pc: u64, path: u64) -> usize {
        let hist = path & ((1 << self.history_bits) - 1);
        ((pc_hash(pc) ^ hist) & self.index_mask) as usize
    }

    fn tag_with(&self, pc: u64, path: u64) -> u16 {
        let hist = path & ((1 << self.history_bits) - 1);
        (((pc >> 2) ^ (hist >> 3)) & ((1 << self.tag_bits) - 1)) as u16
    }

    fn index(&self, pc: u64) -> usize {
        self.index_with(pc, self.path_history)
    }

    fn tag(&self, pc: u64) -> u16 {
        self.tag_with(pc, self.path_history)
    }

    /// Predicts the target of the indirect branch at `pc`.
    #[must_use]
    pub fn predict(&self, pc: u64) -> Option<u64> {
        let e = &self.entries[self.index(pc)];
        (e.valid && e.tag == self.tag(pc)).then_some(e.target)
    }

    /// Trains the cache with the resolved target using the *current*
    /// path history. Only correct when training happens with the same
    /// history the prediction saw; out-of-order pipelines should use
    /// [`IndirectTargetCache::update_with_path`] with the checkpointed
    /// prediction-time path instead.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.update_with_path(pc, target, self.path_history);
    }

    /// Trains the cache with the resolved target, indexing with the
    /// path history that was current when the prediction was made
    /// (checkpointed by the pipeline) so training hits the same entry
    /// the next prediction will read.
    pub fn update_with_path(&mut self, pc: u64, target: u64, path: u64) {
        let (idx, tag) = (self.index_with(pc, path), self.tag_with(pc, path));
        let e = &mut self.entries[idx];
        if e.valid && e.tag == tag {
            if e.target == target {
                e.conf = (e.conf + 1).min(3);
            } else if e.conf > 0 {
                e.conf -= 1;
            } else {
                e.target = target;
            }
        } else if !e.valid || e.conf == 0 {
            *e = ItcEntry { valid: true, tag, target, conf: 1 };
        } else {
            e.conf -= 1;
        }
    }

    /// Pushes a taken-branch target into the path history (call for
    /// every taken branch, speculatively at prediction time).
    pub fn push_path(&mut self, target: u64) {
        self.path_history = (self.path_history << 3) ^ (target >> 2);
    }

    /// Checkpoints the path history.
    #[must_use]
    pub fn path_checkpoint(&self) -> u64 {
        self.path_history
    }

    /// Restores a path history checkpoint after a squash.
    pub fn restore_path(&mut self, checkpoint: u64) {
        self.path_history = checkpoint;
    }
}

impl tvp_verif::StorageBudget for IndirectTargetCache {
    fn storage_name(&self) -> &'static str {
        "ibtc"
    }

    fn storage_bits(&self) -> u64 {
        // Per entry: tag + 48-bit target + 2-bit hysteresis (valid is
        // folded into the confidence encoding).
        self.entries.len() as u64 * (u64::from(self.tag_bits) + 48 + 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomorphic_target_learned() {
        let mut itc = IndirectTargetCache::new(256, 8);
        for _ in 0..4 {
            itc.update(0x1000, 0xBEEF_0000);
        }
        assert_eq!(itc.predict(0x1000), Some(0xBEEF_0000));
    }

    #[test]
    fn polymorphic_targets_separated_by_path() {
        let mut itc = IndirectTargetCache::new(1024, 12);
        // The same indirect branch goes to different targets depending
        // on the preceding taken branch.
        for _ in 0..50 {
            itc.restore_path(0);
            itc.push_path(0xAAA0);
            itc.update(0x2000, 0x1111_0000);
            itc.restore_path(0);
            itc.push_path(0xBBB0);
            itc.update(0x2000, 0x2222_0000);
        }
        itc.restore_path(0);
        itc.push_path(0xAAA0);
        assert_eq!(itc.predict(0x2000), Some(0x1111_0000));
        itc.restore_path(0);
        itc.push_path(0xBBB0);
        assert_eq!(itc.predict(0x2000), Some(0x2222_0000));
    }

    #[test]
    fn hysteresis_resists_single_flip() {
        let mut itc = IndirectTargetCache::new(64, 0);
        for _ in 0..4 {
            itc.update(0x3000, 0xAAAA);
        }
        itc.update(0x3000, 0xBBBB); // one-off change
        assert_eq!(itc.predict(0x3000), Some(0xAAAA), "hysteresis keeps stable target");
        for _ in 0..8 {
            itc.update(0x3000, 0xBBBB);
        }
        assert_eq!(itc.predict(0x3000), Some(0xBBBB));
    }

    #[test]
    fn path_checkpoint_roundtrip() {
        let mut itc = IndirectTargetCache::new(64, 8);
        itc.push_path(0x40);
        let ckpt = itc.path_checkpoint();
        itc.push_path(0x80);
        itc.restore_path(ckpt);
        assert_eq!(itc.path_checkpoint(), ckpt);
    }
}
