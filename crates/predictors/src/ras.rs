//! Return Address Stack.
//!
//! A 32-entry circular RAS (Table 2). Calls push the return address at
//! prediction time, returns pop speculatively; the pipeline checkpoints
//! the whole (small) stack alongside branch history and restores it on
//! a squash, which sidesteps the classic corrupted-RAS problem.

/// A fixed-capacity circular return address stack.
///
/// # Examples
///
/// ```
/// use tvp_predictors::ras::Ras;
///
/// let mut ras = Ras::new(32);
/// ras.push(0x1004);
/// ras.push(0x2008);
/// assert_eq!(ras.pop(), Some(0x2008));
/// assert_eq!(ras.pop(), Some(0x1004));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct Ras {
    entries: Vec<u64>,
    top: usize,
    depth: usize,
}

impl Ras {
    /// Creates a RAS with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be non-zero");
        Ras { entries: vec![0; capacity], top: 0, depth: 0 } // audited(no-alloc-in-hot-path): constructor
    }

    /// Pushes a return address (on a predicted call). Overflow wraps,
    /// silently overwriting the oldest entry, as real hardware does.
    pub fn push(&mut self, return_addr: u64) {
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = return_addr;
        self.depth = (self.depth + 1).min(self.entries.len());
    }

    /// Pops the predicted return address (on a predicted return), or
    /// `None` if the stack is empty.
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        let addr = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.depth -= 1;
        Some(addr)
    }

    /// Current number of live entries.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl tvp_verif::StorageBudget for Ras {
    fn storage_name(&self) -> &'static str {
        "ras"
    }

    fn storage_bits(&self) -> u64 {
        // 48-bit virtual return addresses per slot.
        self.entries.len() as u64 * 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = Ras::new(8);
        for i in 0..5u64 {
            ras.push(i);
        }
        for i in (0..5u64).rev() {
            assert_eq!(ras.pop(), Some(i));
        }
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_wraps_and_keeps_recent() {
        let mut ras = Ras::new(4);
        for i in 0..6u64 {
            ras.push(i);
        }
        assert_eq!(ras.depth(), 4);
        assert_eq!(ras.pop(), Some(5));
        assert_eq!(ras.pop(), Some(4));
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None, "entries 0 and 1 were overwritten");
    }

    #[test]
    fn clone_checkpoints_state() {
        let mut ras = Ras::new(8);
        ras.push(0xAAAA);
        let ckpt = ras.clone();
        ras.push(0xBBBB);
        let _ = ras.pop();
        let _ = ras.pop();
        let mut restored = ckpt;
        assert_eq!(restored.pop(), Some(0xAAAA));
    }
}
