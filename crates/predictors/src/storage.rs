//! Storage accounting across predictor structures.
//!
//! The paper's cost argument hinges on predictor footprints: §3.3 shows
//! that narrowing the prediction field shrinks the VTAGE predictor from
//! 55.2 KB (GVP) to 13.9 KB (TVP) and 7.9 KB (MVP). This module
//! aggregates the bit-exact budgets of every predictor in the front-end
//! so experiments can report them alongside speedups (Table 3).

use crate::tage::TageConfig;
use crate::vtage::{PredMode, VtageConfig};

/// Bit budget of one named structure.
#[derive(Clone, Debug, PartialEq)]
pub struct StorageItem {
    /// Structure name (e.g. `"vtage"`).
    pub name: &'static str,
    /// Size in bits.
    pub bits: u64,
}

impl StorageItem {
    /// Size in kilobytes.
    #[must_use]
    pub fn kb(&self) -> f64 {
        self.bits as f64 / 8.0 / 1024.0
    }
}

/// Storage report for a front-end configuration.
#[derive(Clone, Debug, Default)]
pub struct StorageReport {
    /// Per-structure budgets.
    pub items: Vec<StorageItem>,
}

impl StorageReport {
    /// Total bits across all structures.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.items.iter().map(|i| i.bits).sum()
    }

    /// Total kilobytes.
    #[must_use]
    pub fn total_kb(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }
}

/// Builds a report for the paper's front-end: TAGE + BTB + RAS + IBTC,
/// plus the value predictor when one is configured.
#[must_use]
pub fn frontend_report(tage: &TageConfig, vtage: Option<&VtageConfig>) -> StorageReport {
    let mut items = vec![
        StorageItem { name: "tage", bits: tage.storage_bits() },
        // 8192-entry BTB: ~(tag 16 + target 32 compressed + kind 3) per entry.
        StorageItem { name: "btb", bits: 8192 * 51 },
        // 32-entry RAS of 48-bit virtual addresses.
        StorageItem { name: "ras", bits: 32 * 48 },
        // 1k-entry indirect target cache: tag 9 + target 48 + conf 2.
        StorageItem { name: "ibtc", bits: 1024 * 59 },
    ];
    if let Some(v) = vtage {
        items.push(StorageItem { name: "vtage", bits: v.storage_bits() });
    }
    StorageReport { items }
}

/// Convenience: the paper's three headline VTAGE budgets, in KB.
#[must_use]
pub fn paper_vtage_budgets() -> [(PredMode, f64); 3] {
    [
        (PredMode::ZeroOne, VtageConfig::paper(PredMode::ZeroOne).storage_kb()),
        (PredMode::Narrow9, VtageConfig::paper(PredMode::Narrow9).storage_kb()),
        (PredMode::Full64, VtageConfig::paper(PredMode::Full64).storage_kb()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_budgets_match_paper() {
        let [(_, mvp), (_, tvp), (_, gvp)] = paper_vtage_budgets();
        assert!((mvp - 7.95).abs() < 0.06, "MVP {mvp}");
        assert!((tvp - 13.95).abs() < 0.06, "TVP {tvp}");
        assert!((gvp - 55.2).abs() < 0.05, "GVP {gvp}");
        // Paper §6.1: MVP uses 14.4% of GVP storage, TVP 25.1%.
        assert!((mvp / gvp - 0.144).abs() < 0.01, "MVP/GVP = {}", mvp / gvp);
        assert!((tvp / gvp - 0.251).abs() < 0.015, "TVP/GVP = {}", tvp / gvp);
    }

    #[test]
    fn frontend_report_totals() {
        let tage = TageConfig::default();
        let vt = VtageConfig::paper(PredMode::Narrow9);
        let report = frontend_report(&tage, Some(&vt));
        assert_eq!(report.items.len(), 5);
        assert_eq!(report.total_bits(), report.items.iter().map(|i| i.bits).sum::<u64>());
        // Sanity: branch direction predictor ≈ 32 KB dwarfs the RAS.
        let tage_kb = report.items[0].kb();
        assert!(tage_kb > 25.0 && tage_kb < 40.0);
    }

    #[test]
    fn report_without_value_predictor() {
        let report = frontend_report(&TageConfig::default(), None);
        assert!(report.items.iter().all(|i| i.name != "vtage"));
    }
}
