//! Branch Target Buffer: set-associative cache of branch targets.
//!
//! The paper's front-end uses an 8192-entry BTB (Table 2). The decode
//! stage detects BTB misses ("mistarget detection") and redirects fetch,
//! which the pipeline models as a small bubble.

use tvp_isa::op::BranchKind;

#[derive(Clone, Copy, Debug, Default)]
struct BtbEntry {
    valid: bool,
    tag: u64,
    target: u64,
    kind: Option<BranchKind>,
    lru: u64,
}

/// A set-associative branch target buffer.
///
/// # Examples
///
/// ```
/// use tvp_predictors::btb::Btb;
/// use tvp_isa::op::BranchKind;
///
/// let mut btb = Btb::new(1024, 4);
/// assert!(btb.lookup(0x4000).is_none());
/// btb.insert(0x4000, 0x5000, BranchKind::UncondDirect);
/// let hit = btb.lookup(0x4000).unwrap();
/// assert_eq!(hit.target, 0x5000);
/// ```
#[derive(Debug)]
pub struct Btb {
    sets: Vec<Vec<BtbEntry>>,
    set_mask: u64,
    clock: u64,
    stats: BtbStats,
}

/// Lookup statistics (exported through the counter registry).
#[derive(Clone, Copy, Debug, Default)]
pub struct BtbStats {
    /// Lookups that found a valid entry for the PC.
    pub hits: u64,
    /// Lookups that missed (decode takes the mistarget bubble).
    pub misses: u64,
    /// Counter increments lost to saturation (should stay 0).
    pub overflow_events: u64,
}

/// A BTB hit: the stored target and the kind of branch that installed it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BtbHit {
    /// Predicted target address.
    pub target: u64,
    /// Branch kind recorded at installation.
    pub kind: BranchKind,
}

impl Btb {
    /// Creates a BTB with `entries` total entries and the given
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two divisible by `ways`.
    #[must_use]
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(entries.is_power_of_two(), "BTB entries must be a power of two");
        assert!(ways > 0 && entries.is_multiple_of(ways), "entries must divide into ways");
        let num_sets = entries / ways;
        assert!(num_sets.is_power_of_two(), "BTB set count must be a power of two");
        Btb {
            // audited(no-alloc-in-hot-path): constructor
            sets: vec![vec![BtbEntry::default(); ways]; num_sets],
            set_mask: num_sets as u64 - 1,
            clock: 0,
            stats: BtbStats::default(),
        }
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) & self.set_mask) as usize
    }

    fn tag_of(&self, pc: u64) -> u64 {
        (pc >> 2) >> self.set_mask.count_ones()
    }

    /// Looks up the branch at `pc`, updating LRU state on a hit.
    pub fn lookup(&mut self, pc: u64) -> Option<BtbHit> {
        self.clock += 1;
        let (set, tag) = (self.set_of(pc), self.tag_of(pc));
        let clock = self.clock;
        for e in &mut self.sets[set] {
            if e.valid && e.tag == tag {
                e.lru = clock;
                tvp_obs::counters::sat_inc(&mut self.stats.hits, &mut self.stats.overflow_events);
                return e.kind.map(|kind| BtbHit { target: e.target, kind });
            }
        }
        tvp_obs::counters::sat_inc(&mut self.stats.misses, &mut self.stats.overflow_events);
        None
    }

    /// Installs or updates the target for the branch at `pc`.
    pub fn insert(&mut self, pc: u64, target: u64, kind: BranchKind) {
        self.clock += 1;
        let (set, tag) = (self.set_of(pc), self.tag_of(pc));
        let clock = self.clock;
        let ways = &mut self.sets[set];
        if let Some(e) = ways.iter_mut().find(|e| e.valid && e.tag == tag) {
            e.target = target;
            e.kind = Some(kind);
            e.lru = clock;
            return;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("associativity is non-zero");
        *victim = BtbEntry { valid: true, tag, target, kind: Some(kind), lru: clock };
    }

    /// Lookup counters.
    #[must_use]
    pub fn stats(&self) -> BtbStats {
        self.stats
    }

    /// Fault-injection hook: invalidates one valid entry chosen by the
    /// raw entropy `r` (models a dropped/parity-scrubbed target).
    /// Subsequent fetches of that branch take the BTB-miss bubble and
    /// re-insert at retirement — timing-only damage. Returns `true` if
    /// an entry was dropped.
    pub fn inject_fault(&mut self, r: u64) -> bool {
        let num_sets = self.sets.len() as u64;
        let start_set = (r % num_sets) as usize;
        let way = ((r >> 32) % self.sets[start_set].len().max(1) as u64) as usize;
        for i in 0..self.sets.len() {
            let set = &mut self.sets[(start_set + i) % num_sets as usize];
            let way = way % set.len().max(1);
            if set[way].valid {
                set[way].valid = false;
                return true;
            }
        }
        false
    }
}

impl tvp_verif::StorageBudget for Btb {
    fn storage_name(&self) -> &'static str {
        "btb"
    }

    fn storage_bits(&self) -> u64 {
        // Per entry: tag 16 + compressed target 32 + kind 3 (valid is
        // folded into the kind encoding), matching Table 2's costing.
        let entries = self.sets.len() as u64 * self.sets.first().map_or(0, Vec::len) as u64;
        entries * 51
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::new(64, 4);
        assert!(btb.lookup(0x1000).is_none());
        btb.insert(0x1000, 0x2000, BranchKind::CondDirect);
        let hit = btb.lookup(0x1000).unwrap();
        assert_eq!(hit.target, 0x2000);
        assert_eq!(hit.kind, BranchKind::CondDirect);
    }

    #[test]
    fn injected_fault_drops_a_valid_entry() {
        let mut btb = Btb::new(64, 4);
        assert!(!btb.inject_fault(7), "empty BTB has nothing to drop");
        btb.insert(0x1000, 0x2000, BranchKind::CondDirect);
        assert!(btb.inject_fault(7));
        assert!(btb.lookup(0x1000).is_none(), "the only entry was invalidated");
    }

    #[test]
    fn update_in_place() {
        let mut btb = Btb::new(64, 2);
        btb.insert(0x1000, 0x2000, BranchKind::Indirect);
        btb.insert(0x1000, 0x3000, BranchKind::Indirect);
        assert_eq!(btb.lookup(0x1000).unwrap().target, 0x3000);
    }

    #[test]
    fn lru_evicts_coldest() {
        let mut btb = Btb::new(4, 2); // 2 sets × 2 ways
                                      // Three PCs mapping to the same set (stride = 2 sets × 4 bytes).
        let pcs = [0x1000u64, 0x1008, 0x1010];
        btb.insert(pcs[0], 0xA, BranchKind::UncondDirect);
        btb.insert(pcs[1], 0xB, BranchKind::UncondDirect);
        let _ = btb.lookup(pcs[0]); // warm pcs[0]
        btb.insert(pcs[2], 0xC, BranchKind::UncondDirect); // evicts pcs[1]
        assert!(btb.lookup(pcs[0]).is_some());
        assert!(btb.lookup(pcs[1]).is_none());
        assert!(btb.lookup(pcs[2]).is_some());
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut btb = Btb::new(8, 1);
        for i in 0..8u64 {
            btb.insert(0x2000 + i * 4, i, BranchKind::UncondDirect);
        }
        for i in 0..8u64 {
            assert_eq!(btb.lookup(0x2000 + i * 4).unwrap().target, i);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Btb::new(100, 4);
    }
}
