//! Global branch history with incrementally-folded views.
//!
//! TAGE-family predictors index their tables with a hash of the program
//! counter and a *folded* global branch history: the most recent `L`
//! history bits compressed into `W` bits by a circular-shift-register
//! XOR fold. Folding incrementally (one XOR per inserted bit) instead of
//! re-hashing the full history on every lookup is what makes geometric
//! history lengths of several hundred bits practical — both in hardware
//! and in this simulator.
//!
//! A [`BranchHistory`] owns the raw bit buffer *and* every folded
//! register its predictor needs, so checkpointing speculative history
//! across a pipeline flush is a plain [`Clone`].

/// Maximum supported history length in bits.
pub const MAX_HISTORY_BITS: usize = 1024;

const WORDS: usize = MAX_HISTORY_BITS / 64;

/// Specification of one folded view: fold the most recent `hist_len`
/// bits down to `width` bits.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FoldedSpec {
    /// Number of history bits folded.
    pub hist_len: u32,
    /// Output width in bits (1–63).
    pub width: u32,
}

#[derive(Clone, Debug)]
struct Folded {
    spec: FoldedSpec,
    comp: u64,
    out_point: u32,
}

impl Folded {
    fn new(spec: FoldedSpec) -> Self {
        assert!(spec.width >= 1 && spec.width < 64, "folded width out of range");
        assert!(spec.hist_len as usize <= MAX_HISTORY_BITS);
        Folded { spec, comp: 0, out_point: spec.hist_len % spec.width }
    }

    fn update(&mut self, inserted: bool, evicted: bool) {
        let mask = (1u64 << self.spec.width) - 1;
        self.comp = (self.comp << 1) | u64::from(inserted);
        self.comp ^= u64::from(evicted) << self.out_point;
        self.comp ^= self.comp >> self.spec.width;
        self.comp &= mask;
    }
}

/// Global branch history register with folded views.
///
/// # Examples
///
/// ```
/// use tvp_predictors::history::{BranchHistory, FoldedSpec};
///
/// let mut h = BranchHistory::new(&[FoldedSpec { hist_len: 8, width: 4 }]);
/// h.push(true);
/// h.push(false);
/// assert_eq!(h.bit(0), false); // most recent
/// assert_eq!(h.bit(1), true);
/// let checkpoint = h.clone();
/// h.push(true);
/// let _ = h.folded(0);
/// // Restoring after a squash is plain assignment:
/// h = checkpoint;
/// assert_eq!(h.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct BranchHistory {
    bits: [u64; WORDS],
    pushed: u64,
    folded: Vec<Folded>,
}

impl BranchHistory {
    /// Creates a history register with the given folded views. The view
    /// order is preserved: `folded(i)` corresponds to `specs[i]`.
    #[must_use]
    pub fn new(specs: &[FoldedSpec]) -> Self {
        BranchHistory {
            bits: [0; WORDS],
            pushed: 0,
            folded: specs.iter().copied().map(Folded::new).collect(), // audited(no-alloc-in-hot-path): constructor
        }
    }

    /// Number of bits pushed so far (saturating view; the buffer itself
    /// is circular).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.pushed
    }

    /// Returns `true` if no bits have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// The `age`-th most recent bit (0 = latest). Bits older than the
    /// buffer (or never pushed) read as `false`.
    #[must_use]
    pub fn bit(&self, age: u64) -> bool {
        if age >= self.pushed || age as usize >= MAX_HISTORY_BITS {
            return false;
        }
        let pos = (self.pushed - 1 - age) as usize % MAX_HISTORY_BITS;
        self.bits[pos / 64] >> (pos % 64) & 1 == 1
    }

    /// Pushes one branch outcome, updating every folded view.
    pub fn push(&mut self, taken: bool) {
        for i in 0..self.folded.len() {
            let evicted = self.bit(u64::from(self.folded[i].spec.hist_len) - 1);
            self.folded[i].update(taken, evicted);
        }
        let pos = self.pushed as usize % MAX_HISTORY_BITS;
        let (w, b) = (pos / 64, pos % 64);
        self.bits[w] = (self.bits[w] & !(1 << b)) | (u64::from(taken) << b);
        self.pushed += 1;
    }

    /// The current value of folded view `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn folded(&self, idx: usize) -> u64 {
        self.folded[idx].comp
    }

    /// Number of folded views.
    #[must_use]
    pub fn num_folded(&self) -> usize {
        self.folded.len()
    }
}

impl tvp_verif::StorageBudget for BranchHistory {
    fn storage_name(&self) -> &'static str {
        "branch-history"
    }

    fn storage_bits(&self) -> u64 {
        // The raw circular buffer plus one shift register per folded
        // view.
        MAX_HISTORY_BITS as u64 + self.folded.iter().map(|f| u64::from(f.spec.width)).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_is_sensitive_to_single_window_bits() {
        // Flipping any single bit inside the folded window must change
        // the folded value: the fold is linear over GF(2), so a one-bit
        // change toggles a fixed non-zero pattern.
        let spec = FoldedSpec { hist_len: 13, width: 5 };
        let base: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let fold_of = |bits: &[bool]| {
            let mut h = BranchHistory::new(&[spec]);
            for &b in bits {
                h.push(b);
            }
            h.folded(0)
        };
        let reference = fold_of(&base);
        for flip_age in 0..spec.hist_len as usize {
            let mut bits = base.clone();
            let idx = bits.len() - 1 - flip_age;
            bits[idx] = !bits[idx];
            assert_ne!(
                fold_of(&bits),
                reference,
                "flipping window bit at age {flip_age} left the fold unchanged"
            );
        }
        // Flipping a bit *outside* the window must not change the fold.
        let mut bits = base.clone();
        let idx = bits.len() - 1 - spec.hist_len as usize;
        bits[idx] = !bits[idx];
        assert_eq!(fold_of(&bits), reference);
    }

    #[test]
    fn fold_depends_only_on_recent_window() {
        // Two histories that agree on the last `hist_len` bits must fold
        // identically once enough bits are pushed.
        let spec = FoldedSpec { hist_len: 8, width: 4 };
        let pattern = [true, false, true, true, false, false, true, false];
        let mut a = BranchHistory::new(&[spec]);
        let mut b = BranchHistory::new(&[spec]);
        // Different prefixes.
        for i in 0..40 {
            a.push(i % 3 == 0);
        }
        for i in 0..52 {
            b.push(i % 5 == 0);
        }
        for &t in &pattern {
            a.push(t);
            b.push(t);
        }
        assert_eq!(a.folded(0), b.folded(0));
    }

    #[test]
    fn bit_accessor_orders_most_recent_first() {
        let mut h = BranchHistory::new(&[]);
        h.push(true);
        h.push(false);
        h.push(true);
        assert!(h.bit(0));
        assert!(!h.bit(1));
        assert!(h.bit(2));
        assert!(!h.bit(3), "unpushed history reads as false");
    }

    #[test]
    fn clone_checkpoints_folded_state() {
        let spec = FoldedSpec { hist_len: 16, width: 7 };
        let mut h = BranchHistory::new(&[spec]);
        for i in 0..100 {
            h.push(i % 7 < 3);
        }
        let ckpt = h.clone();
        let folded_at_ckpt = h.folded(0);
        for i in 0..20 {
            h.push(i % 2 == 0);
        }
        let restored = ckpt;
        assert_eq!(restored.folded(0), folded_at_ckpt);
        assert_eq!(restored.len(), 100);
        // The restored copy evolves identically to the original's past.
        let mut replay = restored;
        for i in 0..20 {
            replay.push(i % 2 == 0);
        }
        assert_eq!(replay.folded(0), h.folded(0));
    }

    #[test]
    fn buffer_wraps_beyond_capacity() {
        let mut h = BranchHistory::new(&[]);
        for i in 0..(MAX_HISTORY_BITS as u64 + 10) {
            h.push(i % 2 == 0);
        }
        // Most recent bit was pushed with i = MAX+9 (odd index → false).
        assert!(!h.bit(0));
        assert!(h.bit(1));
    }

    #[test]
    #[should_panic(expected = "folded width out of range")]
    fn zero_width_fold_rejected() {
        let _ = BranchHistory::new(&[FoldedSpec { hist_len: 8, width: 0 }]);
    }
}
