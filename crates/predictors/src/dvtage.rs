//! D-VTAGE: a stride-based VTAGE variant [Perais & Seznec, HPCA 2015],
//! built to quantify the paper's §2.1/§3.3 argument.
//!
//! Stride predictors compute instance `n`'s value from instance
//! `n−1`'s — but in a deep pipeline many instances of the same
//! instruction are in flight, so the predictor must track *speculative*
//! state: how many unresolved instances exist per entry, and what value
//! the newest one was predicted to have. This module implements that
//! speculative window faithfully (including squash repair), which is
//! precisely the complexity the paper's MVP/TVP eliminate: with only
//! `0x0`/`0x1` or 9-bit values predictable, "specific algorithms such
//! as stride-based prediction become mostly irrelevant" (§3.3) — a
//! strided sequence leaves the admissible range after a handful of
//! instances.
//!
//! The entry layout also shows the storage cost: `last value + stride`
//! per entry instead of a single value field.

use crate::fpc::Fpc;
use crate::history::{BranchHistory, FoldedSpec};
use crate::util::{pc_hash, XorShift64};
use crate::vtage::{PredMode, VtageConfig};

/// Maximum tagged tables (mirrors VTAGE).
pub const MAX_DVTAGE_TABLES: usize = 8;

/// D-VTAGE geometry: VTAGE geometry plus the stride field width and
/// the speculative window capacity.
#[derive(Clone, Debug)]
pub struct DvtageConfig {
    /// The underlying table geometry (entry counts, tags, confidence).
    pub base: VtageConfig,
    /// Stride field width in bits (storage accounting).
    pub stride_bits: u32,
    /// Capacity of the speculative in-flight window (the paper cites a
    /// fully-associative, priority-encoded structure whose overhead
    /// grows with the instruction window, §2.1).
    pub spec_window: usize,
}

impl DvtageConfig {
    /// The paper-geometry D-VTAGE at a given prediction mode.
    #[must_use]
    pub fn paper(mode: PredMode) -> Self {
        DvtageConfig { base: VtageConfig::paper(mode), stride_bits: 16, spec_window: 64 }
    }

    /// Total predictor state in bits: the VTAGE layout plus a stride
    /// per entry plus the speculative window (key + value per slot).
    #[must_use]
    pub fn storage_bits(&self) -> u64 {
        let entries: u64 = self.base.entries.iter().map(|&e| u64::from(e)).sum();
        let window_slot = 16 + self.base.mode.prediction_bits(); // key + spec value
        self.base.storage_bits()
            + entries * u64::from(self.stride_bits)
            + self.spec_window as u64 * window_slot
    }

    /// Kilobytes.
    #[must_use]
    pub fn storage_kb(&self) -> f64 {
        self.storage_bits() as f64 / 8.0 / 1024.0
    }
}

#[derive(Clone, Debug)]
struct Entry {
    valid: bool,
    tag: u16,
    last_value: u64,
    stride: i64,
    conf: Fpc,
    useful: u8,
}

/// A speculative in-flight instance.
#[derive(Clone, Copy, Debug)]
struct SpecSlot {
    key: (u8, u32), // (table id: 0 = base, 1.. = tagged; index)
    seq: u64,
    value: u64,
}

/// Prediction token (indices/tags captured at prediction time).
#[derive(Clone, Copy, Debug)]
pub struct DvtagePred {
    /// Predicted value (`last committed + stride × (inflight + 1)`).
    pub value: u64,
    /// A matching entry was found.
    pub hit: bool,
    /// Confidence is saturated — usable by a pipeline.
    pub confident: bool,
    base_index: u32,
    base_tag: u16,
    indices: [u32; MAX_DVTAGE_TABLES],
    tags: [u16; MAX_DVTAGE_TABLES],
    provider: u8,
}

/// The D-VTAGE predictor.
pub struct Dvtage {
    cfg: DvtageConfig,
    base: Vec<Entry>,
    tables: Vec<Vec<Entry>>,
    history: BranchHistory,
    window: Vec<SpecSlot>,
    rng: XorShift64,
}

impl Dvtage {
    /// Builds a predictor.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (as [`crate::vtage::Vtage`]).
    #[must_use]
    pub fn new(cfg: DvtageConfig) -> Self {
        let b = &cfg.base;
        assert_eq!(b.entries.len(), b.tag_bits.len());
        assert!(b.num_tagged() <= MAX_DVTAGE_TABLES);
        let empty = Entry {
            valid: false,
            tag: 0,
            last_value: 0,
            stride: 0,
            conf: Fpc::new(b.conf_bits, b.conf_inv_prob),
            useful: 0,
        };
        let mut specs = Vec::new();
        for i in 0..b.num_tagged() {
            let len = b.history_length(i);
            let idx_width = 32 - b.entries[i + 1].leading_zeros().min(31);
            specs.push(FoldedSpec { hist_len: len, width: idx_width.max(1) });
            specs.push(FoldedSpec { hist_len: len, width: b.tag_bits[i + 1] });
            specs.push(FoldedSpec { hist_len: len, width: (b.tag_bits[i + 1] - 1).max(1) });
        }
        Dvtage {
            base: vec![empty.clone(); b.entries[0] as usize],
            tables: (1..b.entries.len())
                .map(|i| vec![empty.clone(); b.entries[i] as usize])
                .collect(),
            history: BranchHistory::new(&specs),
            window: Vec::new(),
            rng: XorShift64::new(b.seed ^ 0xD57A),
            cfg,
        }
    }

    fn base_index(&self, pc: u64) -> u32 {
        (pc_hash(pc) % u64::from(self.cfg.base.entries[0])) as u32
    }

    fn base_tag(&self, pc: u64) -> u16 {
        (((pc >> 2) ^ (pc >> 13)) & ((1 << self.cfg.base.tag_bits[0]) - 1)) as u16
    }

    fn index(&self, pc: u64, t: usize) -> u32 {
        let h = self.history.folded(t * 3);
        ((pc_hash(pc) ^ h ^ (pc >> 9)) % u64::from(self.cfg.base.entries[t + 1])) as u32
    }

    fn tag(&self, pc: u64, t: usize) -> u16 {
        let h1 = self.history.folded(t * 3 + 1);
        let h2 = self.history.folded(t * 3 + 2);
        (((pc >> 2) ^ h1 ^ (h2 << 1)) & ((1 << self.cfg.base.tag_bits[t + 1]) - 1)) as u16
    }

    fn entry(&self, provider: u8, pred: &DvtagePred) -> &Entry {
        if provider == 0 {
            &self.base[pred.base_index as usize]
        } else {
            &self.tables[provider as usize - 1][pred.indices[provider as usize - 1] as usize]
        }
    }

    /// Looks up a prediction. `seq` identifies the in-flight instance
    /// for speculative-window tracking (pipeline µop sequence number);
    /// when the prediction is *used*, call [`Dvtage::note_inflight`].
    pub fn predict(&mut self, pc: u64) -> DvtagePred {
        let mut pred = DvtagePred {
            value: 0,
            hit: false,
            confident: false,
            base_index: self.base_index(pc),
            base_tag: self.base_tag(pc),
            indices: [0; MAX_DVTAGE_TABLES],
            tags: [0; MAX_DVTAGE_TABLES],
            provider: 0,
        };
        for t in 0..self.cfg.base.num_tagged() {
            pred.indices[t] = self.index(pc, t);
            pred.tags[t] = self.tag(pc, t);
        }
        for t in (0..self.cfg.base.num_tagged()).rev() {
            let e = &self.tables[t][pred.indices[t] as usize];
            if e.valid && e.tag == pred.tags[t] {
                pred.hit = true;
                pred.provider = t as u8 + 1;
                break;
            }
        }
        if !pred.hit {
            let e = &self.base[pred.base_index as usize];
            if e.valid && e.tag == pred.base_tag {
                pred.hit = true;
                pred.provider = 0;
            }
        }
        if pred.hit {
            let key = self.key_of(&pred);
            let e = self.entry(pred.provider, &pred);
            // The stride chains from the *newest speculative instance*
            // of this entry, or the committed value when none is in
            // flight — the §2.1 speculative-state requirement.
            let newest_spec = self.window.iter().rev().find(|s| s.key == key).map(|s| s.value);
            let chain_base = newest_spec.unwrap_or(e.last_value);
            pred.value = chain_base.wrapping_add(e.stride as u64);
            pred.confident = e.conf.is_saturated();
        }
        pred
    }

    fn key_of(&self, pred: &DvtagePred) -> (u8, u32) {
        if pred.provider == 0 {
            (0, pred.base_index)
        } else {
            (pred.provider, pred.indices[pred.provider as usize - 1])
        }
    }

    /// Registers a *used* prediction in the speculative window so later
    /// instances chain from it. Oldest slots spill when the window is
    /// full (their chains then mispredict — the structural hazard the
    /// paper notes grows with instruction-window size).
    pub fn note_inflight(&mut self, pred: &DvtagePred, seq: u64) {
        if !pred.hit {
            return;
        }
        if self.window.len() >= self.cfg.spec_window {
            self.window.remove(0);
        }
        self.window.push(SpecSlot { key: self.key_of(pred), seq, value: pred.value });
    }

    /// Squashes speculative window state at or after `seq` (pipeline
    /// flush repair).
    pub fn squash(&mut self, seq: u64) {
        self.window.retain(|s| s.seq < seq);
    }

    /// Trains with the committed value; also retires the instance from
    /// the speculative window.
    pub fn update(&mut self, pred: &DvtagePred, actual: u64, seq: u64) {
        self.window.retain(|s| s.seq != seq);
        let admissible = self.cfg.base.mode.admits(actual);
        let mut correct = false;
        if pred.hit {
            let predicted = pred.value;
            let e = if pred.provider == 0 {
                &mut self.base[pred.base_index as usize]
            } else {
                let t = pred.provider as usize - 1;
                &mut self.tables[t][pred.indices[t] as usize]
            };
            if e.valid {
                let new_stride = actual.wrapping_sub(e.last_value) as i64;
                correct = predicted == actual;
                if correct {
                    e.conf.on_correct(&mut self.rng);
                    e.useful = (e.useful + 1).min((1 << self.cfg.base.useful_bits) - 1);
                } else {
                    e.conf.reset();
                    e.useful = e.useful.saturating_sub(1);
                }
                // Stride fields are bounded; out-of-range strides learn 0.
                let max = 1i64 << (self.cfg.stride_bits - 1);
                e.stride = if (-max..max).contains(&new_stride) { new_stride } else { 0 };
                e.last_value = if admissible { actual } else { e.last_value };
                if !admissible {
                    e.valid = false;
                }
            }
        }
        if !correct && admissible {
            let first = pred.provider as usize;
            if first < self.cfg.base.num_tagged() {
                let candidates: Vec<usize> = (first..self.cfg.base.num_tagged())
                    .filter(|&t| {
                        let e = &self.tables[t][pred.indices[t] as usize];
                        !e.valid || e.useful == 0
                    })
                    .collect();
                if let Some(&t) = candidates.first() {
                    let pick = if candidates.len() > 1 && !self.rng.one_in(3) {
                        t
                    } else {
                        candidates[self.rng.below(candidates.len() as u32) as usize]
                    };
                    self.tables[pick][pred.indices[pick] as usize] = Entry {
                        valid: true,
                        tag: pred.tags[pick],
                        last_value: actual,
                        stride: 0,
                        conf: Fpc::new(self.cfg.base.conf_bits, self.cfg.base.conf_inv_prob),
                        useful: 0,
                    };
                }
            }
            let b = &mut self.base[pred.base_index as usize];
            if !b.valid || b.conf.level() == 0 {
                *b = Entry {
                    valid: true,
                    tag: pred.base_tag,
                    last_value: actual,
                    stride: 0,
                    conf: Fpc::new(self.cfg.base.conf_bits, self.cfg.base.conf_inv_prob),
                    useful: 0,
                };
            }
        }
    }

    /// Pushes a branch outcome into the predictor's history.
    pub fn push_history(&mut self, taken: bool) {
        self.history.push(taken);
    }

    /// Current speculative window occupancy (tests/diagnostics).
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.window.len()
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &DvtageConfig {
        &self.cfg
    }
}

impl std::fmt::Debug for Dvtage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dvtage")
            .field("mode", &self.cfg.base.mode)
            .field("storage_kb", &self.cfg.storage_kb())
            .field("inflight", &self.window.len())
            .finish_non_exhaustive()
    }
}

impl tvp_verif::StorageBudget for Dvtage {
    fn storage_name(&self) -> &'static str {
        "dvtage"
    }

    fn storage_bits(&self) -> u64 {
        self.cfg.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_seq(vp: &mut Dvtage, pc: u64, values: &[u64], reps: usize) {
        let mut seq = 0u64;
        for _ in 0..reps {
            for &v in values {
                let p = vp.predict(pc);
                vp.update(&p, v, seq);
                seq += 1;
            }
        }
    }

    #[test]
    fn learns_constant_values_like_vtage() {
        let mut vp = Dvtage::new(DvtageConfig::paper(PredMode::Full64));
        train_seq(&mut vp, 0x1000, &[42], 3000);
        let p = vp.predict(0x1000);
        assert!(p.confident);
        assert_eq!(p.value, 42, "stride 0 chains to the same value");
    }

    #[test]
    fn learns_strided_sequences_vtage_cannot() {
        let mut vp = Dvtage::new(DvtageConfig::paper(PredMode::Full64));
        // value = 1000 + 8·n: every instance differs, so plain VTAGE
        // never gains confidence, but the stride is perfectly stable.
        let mut v = 1000u64;
        let mut confident_correct = 0;
        for seq in 0..5000u64 {
            let p = vp.predict(0x2000);
            if p.confident && p.value == v {
                confident_correct += 1;
            }
            vp.update(&p, v, seq);
            v += 8;
        }
        assert!(confident_correct > 2000, "stride coverage = {confident_correct}/5000");
    }

    #[test]
    fn speculative_window_chains_inflight_instances() {
        let mut vp = Dvtage::new(DvtageConfig::paper(PredMode::Full64));
        // Warm up the stride (committed state): 100, 108, 116, ...
        let mut v = 100u64;
        for seq in 0..4000u64 {
            let p = vp.predict(0x3000);
            vp.update(&p, v, seq);
            v += 8;
        }
        // Now issue three predictions back-to-back without retiring:
        // they must chain v+8, v+16, v+24 — not all v+8.
        let p1 = vp.predict(0x3000);
        vp.note_inflight(&p1, 10_000);
        let p2 = vp.predict(0x3000);
        vp.note_inflight(&p2, 10_001);
        let p3 = vp.predict(0x3000);
        assert_eq!(p2.value, p1.value.wrapping_add(8), "second instance chains");
        assert_eq!(p3.value, p2.value.wrapping_add(8), "third instance chains");
        assert_eq!(vp.inflight(), 2);
    }

    #[test]
    fn squash_repairs_the_window() {
        let mut vp = Dvtage::new(DvtageConfig::paper(PredMode::Full64));
        let mut v = 0u64;
        for seq in 0..4000u64 {
            let p = vp.predict(0x4000);
            vp.update(&p, v, seq);
            v += 4;
        }
        let p1 = vp.predict(0x4000);
        vp.note_inflight(&p1, 20_000);
        let p2 = vp.predict(0x4000);
        vp.note_inflight(&p2, 20_001);
        assert_eq!(vp.inflight(), 2);
        vp.squash(20_000); // pipeline flush: both instances die
        assert_eq!(vp.inflight(), 0);
        let p_again = vp.predict(0x4000);
        assert_eq!(p_again.value, p1.value, "chain restarts from committed state");
    }

    #[test]
    fn narrow_modes_make_strides_useless() {
        // The paper's §3.3 point: under MVP/TVP admissibility, a strided
        // sequence exits the representable range almost immediately, so
        // stride machinery adds nothing.
        for mode in [PredMode::ZeroOne, PredMode::Narrow9] {
            let mut vp = Dvtage::new(DvtageConfig::paper(mode));
            let mut v = 0u64;
            let mut confident_used = 0u64;
            for seq in 0..4000u64 {
                let p = vp.predict(0x5000);
                if p.confident && vp.config().base.mode.admits(p.value) {
                    confident_used += 1;
                }
                vp.update(&p, v, seq);
                v += 8; // leaves the 9-bit range after 32 instances
            }
            assert!(
                confident_used < 200,
                "{mode:?}: stride coverage should collapse, got {confident_used}"
            );
        }
    }

    #[test]
    fn storage_exceeds_vtage_at_the_same_geometry() {
        for mode in [PredMode::ZeroOne, PredMode::Narrow9, PredMode::Full64] {
            let d = DvtageConfig::paper(mode);
            assert!(
                d.storage_bits() > d.base.storage_bits(),
                "{mode:?}: stride fields must cost storage"
            );
        }
        // The paper's §2.1 note: speculative-window overhead exists and
        // grows with capacity.
        let small = DvtageConfig { spec_window: 16, ..DvtageConfig::paper(PredMode::Full64) };
        let big = DvtageConfig { spec_window: 512, ..DvtageConfig::paper(PredMode::Full64) };
        assert!(big.storage_bits() > small.storage_bits());
    }

    #[test]
    fn window_capacity_limits_chaining() {
        let mut vp =
            Dvtage::new(DvtageConfig { spec_window: 2, ..DvtageConfig::paper(PredMode::Full64) });
        let mut v = 0u64;
        for seq in 0..4000u64 {
            let p = vp.predict(0x6000);
            vp.update(&p, v, seq);
            v += 4;
        }
        for i in 0..5u64 {
            let p = vp.predict(0x6000);
            vp.note_inflight(&p, 30_000 + i);
        }
        assert_eq!(vp.inflight(), 2, "window spills oldest instances");
    }
}
