//! Forward Probabilistic Counters (FPC) for prediction confidence.
//!
//! Value predictions are only *used* by the pipeline once their
//! confidence counter saturates. To make the cost of a misprediction
//! (a full pipeline flush in MVP/TVP) worth the gain of a correct
//! prediction, VTAGE uses probabilistic counters [Riley & Zilles 2006;
//! Perais & Seznec 2014]: a 3-bit counter that increments only with
//! probability `1/16` on a correct outcome, emulating a much deeper
//! counter. A predicted value therefore needs on the order of
//! `7 × 16 ≈ 112` consecutive correct outcomes before it is trusted,
//! which yields the > 99.9% accuracy the paper reports.

use crate::util::XorShift64;

/// A forward probabilistic confidence counter.
///
/// # Examples
///
/// ```
/// use tvp_predictors::fpc::Fpc;
/// use tvp_predictors::util::XorShift64;
///
/// let mut rng = XorShift64::new(1);
/// let mut c = Fpc::new(3, 16);
/// assert!(!c.is_saturated());
/// for _ in 0..2000 {
///     c.on_correct(&mut rng);
/// }
/// assert!(c.is_saturated());
/// c.reset();
/// assert_eq!(c.level(), 0);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Fpc {
    level: u8,
    max: u8,
    inv_prob: u32,
}

impl Fpc {
    /// Creates a counter with `bits` bits (saturating at `2^bits - 1`)
    /// that increments with probability `1/inv_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 7, or if `inv_prob` is 0.
    #[must_use]
    pub fn new(bits: u8, inv_prob: u32) -> Self {
        assert!((1..=7).contains(&bits), "FPC width out of range");
        assert!(inv_prob > 0, "FPC probability denominator must be non-zero");
        Fpc { level: 0, max: (1 << bits) - 1, inv_prob }
    }

    /// Current confidence level.
    #[must_use]
    pub fn level(self) -> u8 {
        self.level
    }

    /// Returns `true` once the counter has saturated — the "use this
    /// prediction" threshold.
    #[must_use]
    pub fn is_saturated(self) -> bool {
        self.level == self.max
    }

    /// Registers a correct outcome; increments with probability
    /// `1/inv_prob`.
    pub fn on_correct(&mut self, rng: &mut XorShift64) {
        if self.level < self.max && rng.one_in(self.inv_prob) {
            self.level += 1;
        }
    }

    /// Registers an incorrect outcome; confidence collapses to zero.
    pub fn reset(&mut self) {
        self.level = 0;
    }

    /// Forces the counter to saturation, bypassing the probabilistic
    /// walk. Used by fault injection to make a corrupted prediction
    /// immediately trusted; never called on the normal training path.
    pub fn saturate(&mut self) {
        self.level = self.max;
    }
}

impl tvp_verif::StorageBudget for Fpc {
    fn storage_name(&self) -> &'static str {
        "fpc"
    }

    fn storage_bits(&self) -> u64 {
        // `max` is 2^bits - 1, so the counter width is log2(max + 1).
        u64::from((u32::from(self.max) + 1).trailing_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_takes_many_correct_outcomes() {
        let mut rng = XorShift64::new(99);
        let mut trials = Vec::new();
        for _ in 0..50 {
            let mut c = Fpc::new(3, 16);
            let mut n = 0u32;
            while !c.is_saturated() {
                c.on_correct(&mut rng);
                n += 1;
            }
            trials.push(n);
        }
        let mean = trials.iter().sum::<u32>() as f64 / trials.len() as f64;
        // Expected ~ 7 * 16 = 112 increment events on average.
        assert!((60.0..200.0).contains(&mean), "mean outcomes to saturate = {mean}");
    }

    #[test]
    fn reset_collapses_confidence() {
        let mut rng = XorShift64::new(5);
        let mut c = Fpc::new(3, 1); // deterministic increments
        for _ in 0..7 {
            c.on_correct(&mut rng);
        }
        assert!(c.is_saturated());
        c.reset();
        assert_eq!(c.level(), 0);
        assert!(!c.is_saturated());
    }

    #[test]
    fn deterministic_probability_one() {
        let mut rng = XorShift64::new(5);
        let mut c = Fpc::new(2, 1);
        c.on_correct(&mut rng);
        assert_eq!(c.level(), 1);
        for _ in 0..10 {
            c.on_correct(&mut rng);
        }
        assert_eq!(c.level(), 3, "saturates at 2^2 - 1");
    }

    #[test]
    #[should_panic(expected = "width out of range")]
    fn zero_width_rejected() {
        let _ = Fpc::new(0, 16);
    }

    #[test]
    fn saturate_forces_full_confidence() {
        let mut c = Fpc::new(3, 16);
        assert!(!c.is_saturated());
        c.saturate();
        assert!(c.is_saturated());
        assert_eq!(c.level(), 7);
        c.reset();
        assert_eq!(c.level(), 0);
    }
}
