//! TAGE conditional branch predictor [Seznec 2011].
//!
//! The paper's baseline front-end uses a 32KB, 1+15-table TAGE with
//! geometric history lengths between 5 and 640 bits (Table 2). TAGE is
//! also the structural template for the VTAGE value predictor, which
//! reuses the same folded-history indexing (see [`crate::vtage`]).
//!
//! History is updated *speculatively* at prediction time; the pipeline
//! checkpoints it (cheap [`BranchHistory::clone`]) and restores it on a
//! squash. Table update happens in retirement order using the indices
//! and tags captured in the [`TageToken`] at prediction time, so the
//! updater never needs to reconstruct stale history.

use crate::history::{BranchHistory, FoldedSpec};
use crate::util::{pc_hash, XorShift64};

/// Maximum number of tagged tables supported by the fixed-size token.
pub const MAX_TAGGED_TABLES: usize = 15;

/// TAGE geometry and behaviour parameters.
#[derive(Clone, Debug)]
pub struct TageConfig {
    /// Number of tagged tables (≤ [`MAX_TAGGED_TABLES`]).
    pub num_tables: usize,
    /// Shortest history length (bits).
    pub min_hist: u32,
    /// Longest history length (bits).
    pub max_hist: u32,
    /// log2 of base (bimodal) table entries.
    pub base_log2: u32,
    /// log2 of each tagged table's entries.
    pub tagged_log2: u32,
    /// Tag width per tagged table.
    pub tag_bits: Vec<u32>,
    /// Updates between graceful usefulness decays.
    pub u_reset_period: u64,
    /// PRNG seed for allocation tie-breaking.
    pub seed: u64,
}

impl Default for TageConfig {
    /// The paper's Table 2 configuration: 1+15 tables, history 5–640,
    /// ≈32KB of state.
    fn default() -> Self {
        TageConfig {
            num_tables: 15,
            min_hist: 5,
            max_hist: 640,
            base_log2: 13,
            tagged_log2: 10,
            tag_bits: (0..15).map(|i| 8 + (i as u32) / 2).collect(), // audited(no-alloc-in-hot-path): constructor
            u_reset_period: 256 * 1024,
            seed: 0x7A6E_5EED,
        }
    }
}

impl TageConfig {
    /// Geometric history length of tagged table `i` (0 = shortest).
    #[must_use]
    pub fn history_length(&self, i: usize) -> u32 {
        if self.num_tables == 1 {
            return self.min_hist;
        }
        let ratio = f64::from(self.max_hist) / f64::from(self.min_hist);
        let exp = i as f64 / (self.num_tables - 1) as f64;
        (f64::from(self.min_hist) * ratio.powf(exp)).round() as u32
    }

    /// Total predictor state in bits (base counters + tagged entries).
    #[must_use]
    pub fn storage_bits(&self) -> u64 {
        let base = (1u64 << self.base_log2) * 2;
        let tagged: u64 = (0..self.num_tables)
            .map(|i| (1u64 << self.tagged_log2) * (3 + 2 + u64::from(self.tag_bits[i])))
            .sum();
        base + tagged
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct TaggedEntry {
    tag: u16,
    ctr: i8, // 3-bit signed: -4..=3
    u: u8,   // 2-bit usefulness
}

/// Everything the in-order updater needs about one prediction: indices
/// and tags computed with fetch-time history, plus the provider chain.
#[derive(Clone, Copy, Debug)]
pub struct TageToken {
    base_index: u32,
    indices: [u32; MAX_TAGGED_TABLES],
    tags: [u16; MAX_TAGGED_TABLES],
    provider: Option<u8>,
    alt: Option<u8>,
    provider_pred: bool,
    alt_pred: bool,
    used_alt: bool,
    provider_new: bool,
    /// The final predicted direction.
    pub taken: bool,
}

/// Aggregate prediction statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct TageStats {
    /// Number of conditional branch predictions made.
    pub predictions: u64,
    /// Number of updates whose prediction was wrong.
    pub mispredictions: u64,
    /// Counter increments lost to saturation (should stay 0).
    pub overflow_events: u64,
}

impl TageStats {
    /// Mispredictions per kilo-update.
    #[must_use]
    pub fn mpki_per_branch(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

/// The TAGE predictor.
pub struct Tage {
    cfg: TageConfig,
    base: Vec<u8>, // 2-bit counters
    tables: Vec<Vec<TaggedEntry>>,
    history: BranchHistory,
    use_alt_on_na: i8, // 4-bit signed
    rng: XorShift64,
    tick: u64,
    stats: TageStats,
}

impl Tage {
    /// Builds a predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests more than
    /// [`MAX_TAGGED_TABLES`] tables or mismatched tag widths.
    #[must_use]
    pub fn new(cfg: TageConfig) -> Self {
        assert!(cfg.num_tables <= MAX_TAGGED_TABLES, "too many tagged tables");
        assert_eq!(cfg.tag_bits.len(), cfg.num_tables, "tag_bits length mismatch");
        let mut specs = Vec::new(); // audited(no-alloc-in-hot-path): constructor
        for i in 0..cfg.num_tables {
            let len = cfg.history_length(i);
            specs.push(FoldedSpec { hist_len: len, width: cfg.tagged_log2 });
            specs.push(FoldedSpec { hist_len: len, width: cfg.tag_bits[i] });
            specs.push(FoldedSpec { hist_len: len, width: cfg.tag_bits[i] - 1 });
        }
        let history = BranchHistory::new(&specs);
        Tage {
            base: vec![1; 1 << cfg.base_log2], // weakly not-taken // audited(no-alloc-in-hot-path): constructor
            tables: (0..cfg.num_tables)
                .map(|_| vec![TaggedEntry::default(); 1 << cfg.tagged_log2]) // audited(no-alloc-in-hot-path): constructor
                .collect(), // audited(no-alloc-in-hot-path): constructor
            history,
            use_alt_on_na: 0,
            rng: XorShift64::new(cfg.seed),
            tick: 0,
            stats: TageStats::default(),
            cfg,
        }
    }

    fn index(&self, pc: u64, table: usize) -> u32 {
        let mask = (1u64 << self.cfg.tagged_log2) - 1;
        ((pc_hash(pc) ^ self.history.folded(table * 3) ^ (pc >> self.cfg.tagged_log2)) & mask)
            as u32
    }

    fn tag(&self, pc: u64, table: usize) -> u16 {
        let mask = (1u64 << self.cfg.tag_bits[table]) - 1;
        (((pc >> 2)
            ^ self.history.folded(table * 3 + 1)
            ^ (self.history.folded(table * 3 + 2) << 1))
            & mask) as u16
    }

    fn base_index(&self, pc: u64) -> u32 {
        ((pc >> 2) & ((1u64 << self.cfg.base_log2) - 1)) as u32
    }

    /// Predicts the direction of the conditional branch at `pc` using
    /// the current (speculative) history. The returned token must be
    /// passed back to [`Tage::update`] at retirement.
    pub fn predict(&mut self, pc: u64) -> TageToken {
        let mut token = TageToken {
            base_index: self.base_index(pc),
            indices: [0; MAX_TAGGED_TABLES],
            tags: [0; MAX_TAGGED_TABLES],
            provider: None,
            alt: None,
            provider_pred: false,
            alt_pred: false,
            used_alt: false,
            provider_new: false,
            taken: false,
        };
        for t in 0..self.cfg.num_tables {
            token.indices[t] = self.index(pc, t);
            token.tags[t] = self.tag(pc, t);
        }
        // Find provider (longest history match) and alternate.
        for t in (0..self.cfg.num_tables).rev() {
            if self.tables[t][token.indices[t] as usize].tag == token.tags[t] {
                if token.provider.is_none() {
                    token.provider = Some(t as u8);
                } else {
                    token.alt = Some(t as u8);
                    break;
                }
            }
        }
        let base_taken = self.base[token.base_index as usize] >= 2;
        token.alt_pred = match token.alt {
            Some(t) => self.tables[t as usize][token.indices[t as usize] as usize].ctr >= 0,
            None => base_taken,
        };
        match token.provider {
            Some(t) => {
                let e = &self.tables[t as usize][token.indices[t as usize] as usize];
                token.provider_pred = e.ctr >= 0;
                token.provider_new = e.u == 0 && (e.ctr == 0 || e.ctr == -1);
                token.used_alt = token.provider_new && self.use_alt_on_na >= 0;
                token.taken = if token.used_alt { token.alt_pred } else { token.provider_pred };
            }
            None => {
                token.provider_pred = base_taken;
                token.alt_pred = base_taken;
                token.taken = base_taken;
            }
        }
        tvp_obs::counters::sat_inc(&mut self.stats.predictions, &mut self.stats.overflow_events);
        token
    }

    /// Pushes the (speculative) outcome of a conditional branch into
    /// the global history. Call once per predicted conditional branch,
    /// right after [`Tage::predict`].
    pub fn push_history(&mut self, taken: bool) {
        self.history.push(taken);
    }

    /// Checkpoints the speculative history (attach to the in-flight
    /// branch; restore on squash).
    #[must_use]
    pub fn history_checkpoint(&self) -> BranchHistory {
        self.history.clone()
    }

    /// Restores a previously checkpointed history after a squash.
    pub fn restore_history(&mut self, h: BranchHistory) {
        self.history = h;
    }

    /// Trains the predictor with the architectural outcome. Call in
    /// retirement order.
    pub fn update(&mut self, token: &TageToken, taken: bool) {
        if token.taken != taken {
            tvp_obs::counters::sat_inc(
                &mut self.stats.mispredictions,
                &mut self.stats.overflow_events,
            );
        }

        // use_alt_on_na bookkeeping: when the provider was freshly
        // allocated, learn whether trusting it would have been better.
        if token.provider.is_some() && token.provider_new && token.provider_pred != token.alt_pred {
            let delta = if token.provider_pred == taken { -1 } else { 1 };
            self.use_alt_on_na = (self.use_alt_on_na + delta).clamp(-8, 7);
        }

        // Update provider counter (or base).
        match token.provider {
            Some(t) => {
                let e = &mut self.tables[t as usize][token.indices[t as usize] as usize];
                e.ctr = if taken { (e.ctr + 1).min(3) } else { (e.ctr - 1).max(-4) };
                if token.provider_pred != token.alt_pred {
                    if token.provider_pred == taken {
                        e.u = (e.u + 1).min(3);
                    } else {
                        e.u = e.u.saturating_sub(1);
                    }
                }
                // Keep the base predictor warm when it served as altpred.
                if token.alt.is_none() {
                    Self::update_base(&mut self.base, token.base_index, taken);
                }
            }
            None => Self::update_base(&mut self.base, token.base_index, taken),
        }

        // Allocate on a misprediction, in a table with longer history.
        let final_wrong = token.taken != taken;
        let first_candidate = token.provider.map_or(0, |p| p as usize + 1);
        if final_wrong && first_candidate < self.cfg.num_tables {
            let is_free =
                |tables: &[Vec<TaggedEntry>], t: usize| tables[t][token.indices[t] as usize].u == 0;
            let free_count = (first_candidate..self.cfg.num_tables)
                .filter(|&t| is_free(&self.tables, t))
                .count();
            if free_count == 0 {
                for t in first_candidate..self.cfg.num_tables {
                    let e = &mut self.tables[t][token.indices[t] as usize];
                    e.u = e.u.saturating_sub(1);
                }
            } else {
                // Favor shorter-history tables 2:1, as in the reference
                // TAGE implementation.
                let pick = if free_count > 1 && !self.rng.one_in(3) {
                    0
                } else {
                    self.rng.below(free_count as u32) as usize
                };
                let t = (first_candidate..self.cfg.num_tables)
                    .filter(|&t| is_free(&self.tables, t))
                    .nth(pick)
                    .expect("pick < free_count: below() is exclusive");
                let e = &mut self.tables[t][token.indices[t] as usize];
                e.tag = token.tags[t];
                e.ctr = if taken { 0 } else { -1 };
                e.u = 0;
            }
        }

        // Graceful usefulness decay.
        self.tick += 1;
        if self.tick.is_multiple_of(self.cfg.u_reset_period) {
            for table in &mut self.tables {
                for e in table {
                    e.u >>= 1;
                }
            }
        }
    }

    fn update_base(base: &mut [u8], index: u32, taken: bool) {
        let c = &mut base[index as usize];
        *c = if taken { (*c + 1).min(3) } else { c.saturating_sub(1) };
    }

    /// Fault-injection hook: corrupts one direction counter chosen by
    /// the raw entropy `r` — inverts a bimodal counter and, on a valid
    /// tagged entry, inverts its signed counter (bit-flip of the 3-bit
    /// two's-complement encoding). Direction predictions are
    /// micro-architectural, so this perturbs timing only.
    pub fn inject_fault(&mut self, r: u64) {
        let bi = (r % self.base.len() as u64) as usize;
        self.base[bi] = 3 - self.base[bi];
        let t = ((r >> 16) % self.tables.len() as u64) as usize;
        let i = ((r >> 32) % self.tables[t].len() as u64) as usize;
        let e = &mut self.tables[t][i];
        e.ctr = -1 - e.ctr;
    }

    /// Prediction statistics so far.
    #[must_use]
    pub fn stats(&self) -> TageStats {
        self.stats
    }

    /// The configuration this predictor was built with.
    #[must_use]
    pub fn config(&self) -> &TageConfig {
        &self.cfg
    }
}

impl std::fmt::Debug for Tage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tage")
            .field("tables", &self.cfg.num_tables)
            .field("storage_bits", &self.cfg.storage_bits())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl tvp_verif::StorageBudget for Tage {
    fn storage_name(&self) -> &'static str {
        "tage"
    }

    fn storage_bits(&self) -> u64 {
        self.cfg.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tage() -> Tage {
        Tage::new(TageConfig {
            num_tables: 4,
            min_hist: 4,
            max_hist: 64,
            base_log2: 8,
            tagged_log2: 7,
            tag_bits: vec![8, 9, 10, 11],
            u_reset_period: 1 << 20,
            seed: 1,
        })
    }

    /// Helper: run predict/update over a branch outcome stream and
    /// return final accuracy.
    fn accuracy(tage: &mut Tage, stream: impl Iterator<Item = (u64, bool)>) -> f64 {
        let mut correct = 0u64;
        let mut total = 0u64;
        for (pc, taken) in stream {
            let token = tage.predict(pc);
            tage.push_history(taken);
            if token.taken == taken {
                correct += 1;
            }
            total += 1;
            tage.update(&token, taken);
        }
        correct as f64 / total as f64
    }

    #[test]
    fn learns_biased_branches() {
        let mut tage = small_tage();
        let acc = accuracy(&mut tage, (0..20_000).map(|i| (0x1000 + (i % 16) * 4, true)));
        assert!(acc > 0.99, "always-taken accuracy = {acc}");
    }

    #[test]
    fn learns_short_periodic_patterns_via_history() {
        // Period-3 pattern needs history correlation; bimodal alone
        // cannot exceed 2/3.
        let mut tage = small_tage();
        let acc = accuracy(&mut tage, (0..60_000).map(|i| (0x2000, i % 3 == 0)));
        assert!(acc > 0.95, "period-3 accuracy = {acc}");
    }

    #[test]
    fn learns_correlated_branches() {
        // Second branch mirrors the first; with history the second is
        // fully predictable even though it is random in isolation.
        let mut tage = small_tage();
        let mut lcg = 7u64;
        let mut correct = 0;
        let total = 40_000;
        for _ in 0..total {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = lcg >> 62 & 1 == 1;
            let t1 = tage.predict(0x4000);
            tage.push_history(r);
            tage.update(&t1, r);
            let t2 = tage.predict(0x4010);
            tage.push_history(r);
            if t2.taken == r {
                correct += 1;
            }
            tage.update(&t2, r);
        }
        let acc = f64::from(correct) / f64::from(total);
        assert!(acc > 0.90, "correlated accuracy = {acc}");
    }

    #[test]
    fn history_checkpoint_restore_roundtrip() {
        let mut tage = small_tage();
        for i in 0..100 {
            let t = tage.predict(0x100 + i * 4);
            tage.push_history(i % 2 == 0);
            tage.update(&t, i % 2 == 0);
        }
        let ckpt = tage.history_checkpoint();
        let before = tage.predict(0x9000).taken;
        for _ in 0..10 {
            tage.push_history(true);
        }
        tage.restore_history(ckpt);
        assert_eq!(tage.predict(0x9000).taken, before);
    }

    #[test]
    fn default_config_matches_table2() {
        let cfg = TageConfig::default();
        assert_eq!(cfg.num_tables, 15);
        assert_eq!(cfg.history_length(0), 5);
        assert_eq!(cfg.history_length(14), 640);
        // Geometric lengths strictly increase.
        for i in 1..15 {
            assert!(cfg.history_length(i) > cfg.history_length(i - 1));
        }
        // ~32KB budget (Table 2).
        let kb = cfg.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((28.0..36.0).contains(&kb), "TAGE storage = {kb} KB");
    }

    #[test]
    fn stats_track_mispredictions() {
        let mut tage = small_tage();
        let _ = accuracy(&mut tage, (0..1000).map(|i| (0x100, i % 2 == 0)));
        let s = tage.stats();
        assert_eq!(s.predictions, 1000);
        assert!(s.mispredictions > 0);
        assert!(s.mispredictions < 1000);
    }

    #[test]
    fn injected_fault_flips_counters_but_keeps_predicting() {
        let mut tage = small_tage();
        // Train a strongly-taken branch, then corrupt heavily: the
        // predictor must keep functioning (accuracy recovers through
        // normal training) and never index out of bounds.
        let a1 = accuracy(&mut tage, (0..2000).map(|_| (0x200, true)));
        assert!(a1 > 0.95);
        for r in 0..256u64 {
            tage.inject_fault(r.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        let a2 = accuracy(&mut tage, (0..2000).map(|_| (0x200, true)));
        assert!(a2 > 0.80, "post-corruption retraining accuracy = {a2}");
    }
}
