//! Event-driven wakeup/select bookkeeping for the issue stage.
//!
//! The issue loop used to re-scan the whole ROB every cycle and
//! re-poll every candidate's operand `ready_at` — the polling-wakeup
//! anti-pattern. This module holds the three event structures that
//! replace it (see DESIGN.md §12 for the equivalence argument):
//!
//! - a **ready set** (`BTreeSet` keyed by sequence number, i.e. age)
//!   of µops believed issuable — the select stage walks it oldest
//!   first and re-verifies the full issue predicate, so the set only
//!   ever has to be a *superset* of the truly issuable µops;
//! - a **dispatch FIFO** of `(due_cycle, seq)` events that evaluate a
//!   µop for wakeup when its rename→dispatch latency elapses (due
//!   cycles are pushed in rename order with a constant offset, so the
//!   queue is naturally sorted);
//! - a **writeback wake heap** of `(cycle, class, preg)` events fired
//!   when a register's value becomes available, waking the register's
//!   **consumer list** (inline-first [`SpillVec`]s, one per physical
//!   register — no per-cycle allocation).
//!
//! Every structure is deliberately tolerant of stale events: squashes
//! reuse sequence numbers and replays un-produce registers, so an
//! event proves nothing by itself. The pipeline re-evaluates current
//! truth on every wakeup and every select, which makes duplicate or
//! stale events harmless no-ops instead of correctness hazards.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

use crate::inline_vec::SpillVec;
use crate::rename::RegClass;

/// Inline consumer-list capacity per physical register. Two covers
/// the common fan-out (a value feeding an op and a compare) without
/// heap traffic; wider fan-out spills.
const INLINE_CONSUMERS: usize = 2;

fn class_index(class: RegClass) -> usize {
    match class {
        RegClass::Int => 0,
        RegClass::Fp => 1,
    }
}

/// The issue stage's event state. Owned by the core; all policy
/// (what a wakeup means, when events are stale) lives in the
/// pipeline — this type is pure mechanism.
pub struct Scheduler {
    ready: BTreeSet<u64>,
    dispatch: VecDeque<(u64, u64)>,
    wake_heap: BinaryHeap<Reverse<(u64, u8, u16)>>,
    consumers: [Vec<SpillVec<u64, INLINE_CONSUMERS>>; 2],
}

impl Scheduler {
    /// Builds the scheduler for physical register files of the given
    /// sizes (consumer lists are per physical register).
    #[must_use]
    pub fn new(int_regs: usize, fp_regs: usize) -> Self {
        Scheduler {
            ready: BTreeSet::new(),
            dispatch: VecDeque::new(),
            wake_heap: BinaryHeap::new(),
            consumers: [
                vec![SpillVec::new(); int_regs], // audited(no-alloc-in-hot-path): constructor
                vec![SpillVec::new(); fp_regs],  // audited(no-alloc-in-hot-path): constructor
            ],
        }
    }

    // ---------------------------------------------------------------
    // ready set (select)
    // ---------------------------------------------------------------

    /// Marks `seq` as an issue candidate. Idempotent.
    pub fn insert_ready(&mut self, seq: u64) {
        self.ready.insert(seq);
    }

    /// Drops `seq` as a candidate (issued, squashed, or failed
    /// re-verification). Idempotent.
    pub fn remove_ready(&mut self, seq: u64) {
        self.ready.remove(&seq);
    }

    /// The oldest candidate with sequence number ≥ `seq` — the select
    /// stage's age-ordered iteration primitive.
    #[must_use]
    pub fn first_ready_at_or_after(&self, seq: u64) -> Option<u64> {
        self.ready.range(seq..).next().copied()
    }

    /// Current candidates, oldest first (verification snapshots).
    #[must_use]
    pub fn ready_seqs(&self) -> Vec<u64> {
        self.ready.iter().copied().collect() // audited(no-alloc-in-hot-path): verif snapshot, off the per-cycle loop
    }

    // ---------------------------------------------------------------
    // dispatch FIFO
    // ---------------------------------------------------------------

    /// Enqueues a dispatch-latency event: evaluate `seq` for wakeup at
    /// `due`. Callers push in rename order with a constant latency, so
    /// `due` is non-decreasing and a FIFO stays sorted.
    pub fn push_dispatch(&mut self, due: u64, seq: u64) {
        debug_assert!(self.dispatch.back().is_none_or(|&(d, _)| d <= due));
        self.dispatch.push_back((due, seq));
    }

    /// Pops the next dispatch event due at or before `now`, if any.
    pub fn pop_due_dispatch(&mut self, now: u64) -> Option<u64> {
        if self.dispatch.front().is_some_and(|&(due, _)| due <= now) {
            self.dispatch.pop_front().map(|(_, seq)| seq)
        } else {
            None
        }
    }

    // ---------------------------------------------------------------
    // writeback wake events + consumer lists
    // ---------------------------------------------------------------

    /// Schedules a wake of `(class, p)`'s consumers at cycle `at`
    /// (a register writeback completing in the future).
    pub fn schedule_wake(&mut self, at: u64, class: RegClass, p: u16) {
        self.wake_heap.push(Reverse((at, class_index(class) as u8, p)));
    }

    /// Pops the next wake event due at or before `now`, returning the
    /// cycle it was scheduled for (the pipeline validates the event
    /// against the register's current `ready_at` — a mismatch means
    /// the writeback was superseded and the event is stale).
    pub fn pop_due_wake(&mut self, now: u64) -> Option<(u64, RegClass, u16)> {
        let &Reverse((at, class, p)) = self.wake_heap.peek()?;
        if at > now {
            return None;
        }
        self.wake_heap.pop();
        Some((at, if class == 0 { RegClass::Int } else { RegClass::Fp }, p))
    }

    /// Subscribes `seq` to the next wake of `(class, p)` — called when
    /// a wakeup evaluation finds `p` to be the µop's first not-ready
    /// operand. A µop subscribes to at most one register at a time,
    /// which bounds total list growth to one entry per evaluation.
    pub fn subscribe(&mut self, class: RegClass, p: u16, seq: u64) {
        self.consumers[class_index(class)][usize::from(p)].push(seq);
    }

    /// Moves `(class, p)`'s waiting consumers into `out` (a reusable
    /// scratch buffer) and empties the list.
    pub fn drain_consumers(&mut self, class: RegClass, p: u16, out: &mut Vec<u64>) {
        self.consumers[class_index(class)][usize::from(p)].drain_into(out);
    }

    /// Empties `(class, p)`'s consumer list without waking anyone —
    /// called when `p` is (re)allocated, so subscriptions from a
    /// squashed previous lifetime cannot accumulate.
    pub fn clear_consumers(&mut self, class: RegClass, p: u16) {
        self.consumers[class_index(class)][usize::from(p)].clear();
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("ready", &self.ready.len())
            .field("dispatch", &self.dispatch.len())
            .field("wake_heap", &self.wake_heap.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_set_iterates_in_age_order() {
        let mut s = Scheduler::new(4, 4);
        for seq in [9, 3, 7] {
            s.insert_ready(seq);
        }
        s.insert_ready(7); // idempotent
        assert_eq!(s.first_ready_at_or_after(0), Some(3));
        assert_eq!(s.first_ready_at_or_after(4), Some(7));
        s.remove_ready(7);
        assert_eq!(s.first_ready_at_or_after(4), Some(9));
        assert_eq!(s.first_ready_at_or_after(10), None);
        assert_eq!(s.ready_seqs(), [3, 9]);
    }

    #[test]
    fn dispatch_fifo_releases_in_due_order() {
        let mut s = Scheduler::new(1, 1);
        s.push_dispatch(5, 100);
        s.push_dispatch(5, 101);
        s.push_dispatch(8, 102);
        assert_eq!(s.pop_due_dispatch(4), None);
        assert_eq!(s.pop_due_dispatch(5), Some(100));
        assert_eq!(s.pop_due_dispatch(5), Some(101));
        assert_eq!(s.pop_due_dispatch(5), None);
        assert_eq!(s.pop_due_dispatch(9), Some(102));
        assert_eq!(s.pop_due_dispatch(9), None);
    }

    #[test]
    fn wake_heap_orders_by_cycle_and_reports_the_scheduled_cycle() {
        let mut s = Scheduler::new(8, 8);
        s.schedule_wake(7, RegClass::Int, 3);
        s.schedule_wake(4, RegClass::Fp, 5);
        s.schedule_wake(4, RegClass::Int, 2);
        assert_eq!(s.pop_due_wake(3), None);
        // Same-cycle events drain in (class, preg) order.
        assert_eq!(s.pop_due_wake(4), Some((4, RegClass::Int, 2)));
        assert_eq!(s.pop_due_wake(4), Some((4, RegClass::Fp, 5)));
        assert_eq!(s.pop_due_wake(6), None);
        assert_eq!(s.pop_due_wake(7), Some((7, RegClass::Int, 3)));
    }

    #[test]
    fn consumer_lists_drain_and_clear() {
        let mut s = Scheduler::new(4, 4);
        s.subscribe(RegClass::Int, 2, 10);
        s.subscribe(RegClass::Int, 2, 11);
        s.subscribe(RegClass::Int, 2, 12); // spills past the inline pair
        s.subscribe(RegClass::Fp, 2, 99);
        let mut out = Vec::new();
        s.drain_consumers(RegClass::Int, 2, &mut out);
        assert_eq!(out, [10, 11, 12]);
        out.clear();
        s.drain_consumers(RegClass::Int, 2, &mut out);
        assert!(out.is_empty(), "drained list stays empty");
        s.clear_consumers(RegClass::Fp, 2);
        s.drain_consumers(RegClass::Fp, 2, &mut out);
        assert!(out.is_empty(), "cleared list wakes no one");
    }
}
