//! Store Sets memory dependence prediction [Chrysos & Emer 1998].
//!
//! Table 2: 2k-entry SSIT (store set ID table, indexed by PC) and
//! 2k-entry LFST (last fetched store table, indexed by store set ID).
//! A load that has previously conflicted with a store is placed in the
//! same *store set*; at dispatch it looks up the set's last in-flight
//! store and waits for it instead of speculating past it.

/// A store set identifier.
pub type SetId = u16;

/// The Store Sets predictor.
#[derive(Debug)]
pub struct StoreSets {
    ssit: Vec<Option<SetId>>,
    lfst: Vec<Option<u64>>, // last fetched store sequence number per set
    next_set: SetId,
    ssit_mask: usize,
}

impl StoreSets {
    /// Creates a predictor with `ssit_entries` SSIT entries and
    /// `lfst_entries` store sets.
    ///
    /// # Panics
    ///
    /// Panics unless both sizes are powers of two.
    #[must_use]
    pub fn new(ssit_entries: usize, lfst_entries: usize) -> Self {
        assert!(ssit_entries.is_power_of_two() && lfst_entries.is_power_of_two());
        StoreSets {
            ssit: vec![None; ssit_entries], // audited(no-alloc-in-hot-path): constructor
            lfst: vec![None; lfst_entries], // audited(no-alloc-in-hot-path): constructor
            next_set: 0,
            ssit_mask: ssit_entries - 1,
        }
    }

    fn ssit_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.ssit_mask
    }

    fn set_of(&self, pc: u64) -> Option<SetId> {
        self.ssit[self.ssit_index(pc)]
    }

    /// Called when a store dispatches: registers it as its set's last
    /// fetched store and returns the store it must itself wait for
    /// (in-order store execution within a set).
    pub fn store_dispatched(&mut self, pc: u64, seq: u64) -> Option<u64> {
        let set = self.set_of(pc)?;
        let idx = usize::from(set) % self.lfst.len();
        self.lfst[idx].replace(seq)
    }

    /// Called when a load dispatches: returns the sequence number of
    /// the store it is predicted to depend on, if any.
    #[must_use]
    pub fn load_dependency(&self, pc: u64) -> Option<u64> {
        let set = self.set_of(pc)?;
        self.lfst[usize::from(set) % self.lfst.len()]
    }

    /// Called when a store executes (or is squashed): clears its LFST
    /// entry if it is still the set's youngest.
    pub fn store_completed(&mut self, pc: u64, seq: u64) {
        if let Some(set) = self.set_of(pc) {
            let idx = usize::from(set) % self.lfst.len();
            if self.lfst[idx] == Some(seq) {
                self.lfst[idx] = None;
            }
        }
    }

    /// Fault-injection hook: scribbles one SSIT mapping and one LFST
    /// slot chosen by the raw entropy `r`. A bogus SSIT set makes
    /// unrelated memory ops serialize (timing damage); a bogus LFST
    /// sequence number points at a store that is not in the store
    /// queue, which dispatch treats as already-completed — either way
    /// the commit stream stays architecturally correct.
    pub fn inject_fault(&mut self, r: u64) {
        let si = (r as usize) % self.ssit.len();
        let set = (r >> 16) as SetId % self.lfst.len() as SetId;
        self.ssit[si] = Some(set);
        let li = usize::from(set) % self.lfst.len();
        self.lfst[li] = Some(r >> 40);
    }

    /// Trains the predictor after a memory-ordering violation between
    /// `load_pc` and `store_pc`: both are assigned to a common set
    /// (merging by the lower set ID, as in the original proposal).
    pub fn violation(&mut self, load_pc: u64, store_pc: u64) {
        let (li, si) = (self.ssit_index(load_pc), self.ssit_index(store_pc));
        match (self.ssit[li], self.ssit[si]) {
            (None, None) => {
                let set = self.next_set;
                self.next_set = (self.next_set + 1) % self.lfst.len() as SetId;
                self.ssit[li] = Some(set);
                self.ssit[si] = Some(set);
            }
            (Some(s), None) => self.ssit[si] = Some(s),
            (None, Some(s)) => self.ssit[li] = Some(s),
            (Some(a), Some(b)) => {
                let winner = a.min(b);
                self.ssit[li] = Some(winner);
                self.ssit[si] = Some(winner);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_pcs_predict_independence() {
        let mut ss = StoreSets::new(64, 64);
        assert_eq!(ss.load_dependency(0x1000), None);
        assert_eq!(ss.store_dispatched(0x2000, 5), None);
    }

    #[test]
    fn violation_creates_dependency() {
        let mut ss = StoreSets::new(64, 64);
        ss.violation(0x1000, 0x2000);
        // Store dispatches, then the load sees the dependency.
        assert_eq!(ss.store_dispatched(0x2000, 7), None);
        assert_eq!(ss.load_dependency(0x1000), Some(7));
        // Store completes → dependency clears.
        ss.store_completed(0x2000, 7);
        assert_eq!(ss.load_dependency(0x1000), None);
    }

    #[test]
    fn stores_in_one_set_serialize() {
        let mut ss = StoreSets::new(64, 64);
        ss.violation(0x1000, 0x2000);
        ss.violation(0x1000, 0x3000); // second store joins the set
        assert_eq!(ss.store_dispatched(0x2000, 10), None);
        // The second store must wait for the first.
        assert_eq!(ss.store_dispatched(0x3000, 11), Some(10));
        assert_eq!(ss.load_dependency(0x1000), Some(11));
    }

    #[test]
    fn set_merging_keeps_lower_id() {
        let mut ss = StoreSets::new(64, 64);
        ss.violation(0x1000, 0x2000); // set 0
        ss.violation(0x3000, 0x4000); // set 1
        ss.violation(0x1000, 0x4000); // merge → set 0
        ss.store_dispatched(0x4000, 20);
        assert_eq!(ss.load_dependency(0x1000), Some(20));
    }

    #[test]
    fn injected_fault_scribbles_tables_without_breaking_api() {
        let mut ss = StoreSets::new(64, 64);
        ss.inject_fault(0xDEAD_BEEF_CAFE_F00D);
        // Some PC now maps to a poisoned set with a bogus LFST seq; the
        // predictor API still answers every query without panicking.
        let poisoned =
            (0..64u64).map(|i| ss.load_dependency(i * 4)).filter(Option::is_some).count();
        assert!(poisoned > 0, "fault must land in at least one SSIT slot");
    }

    #[test]
    fn completion_of_stale_store_is_ignored() {
        let mut ss = StoreSets::new(64, 64);
        ss.violation(0x1000, 0x2000);
        ss.store_dispatched(0x2000, 1);
        ss.store_dispatched(0x2000, 2); // newer instance
        ss.store_completed(0x2000, 1); // stale completion
        assert_eq!(ss.load_dependency(0x1000), Some(2), "newest store still tracked");
    }
}
