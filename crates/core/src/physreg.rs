//! Physical register names, with the paper's value-inlining extension.
//!
//! §3.2: physical register names are widened by one bit so a "name" can
//! be either a real physical register or a small (9-bit signed) value.
//! [`PhysName`] models exactly that, plus the baseline's hardwired
//! zero/one registers (used by 0/1-idiom elimination and MVP) and the
//! hardwired condition-flags registers SpSR assumes (§4.2, footnote 4).
//!
//! [`RegFile`] tracks free physical registers with *unlimited reference
//! counting* (the paper's move-elimination assumption, §5), readiness
//! cycles for the scheduler, and per-register 32-bit-ness for the
//! 64→32-bit move-elimination width restriction.

use std::collections::VecDeque;

use tvp_isa::flags::Nzcv;

/// Physical register id of the hardwired zero register.
pub const PHYS_ZERO: u16 = 0;
/// Physical register id of the hardwired one register.
pub const PHYS_ONE: u16 = 1;

/// A (widened) physical register name.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum PhysName {
    /// A real physical register. In the integer class, ids 0 and 1 are
    /// hardwired to `0x0` and `0x1`.
    Reg(u16),
    /// An inlined 9-bit signed value (TVP/GVP widened names and 9-bit
    /// idiom elimination). Never references PRF storage.
    Inline(i16),
    /// A hardwired condition-flags value (SpSR frontend NZCV).
    KnownFlags(u8),
}

/// The hardwired zero register — the identity element of the name
/// space, used as the inline fill value of undo/new-name records.
impl Default for PhysName {
    fn default() -> Self {
        PhysName::Reg(PHYS_ZERO)
    }
}

impl PhysName {
    /// The 64-bit value this *integer-class* name represents, if it is
    /// known without reading the PRF: hardwired registers and inlined
    /// values. Must not be called for FP-class names.
    #[must_use]
    pub fn known_value(self) -> Option<u64> {
        match self {
            PhysName::Reg(PHYS_ZERO) => Some(0),
            PhysName::Reg(PHYS_ONE) => Some(1),
            PhysName::Reg(_) => None,
            PhysName::Inline(v) => Some(v as i64 as u64),
            PhysName::KnownFlags(_) => None,
        }
    }

    /// The flags value this name represents, if hardwired.
    #[must_use]
    pub fn known_flags(self) -> Option<Nzcv> {
        match self {
            PhysName::KnownFlags(bits) => Some(Nzcv::unpack(bits)),
            _ => None,
        }
    }

    /// Returns `true` if reading this name requires a PRF port
    /// (a real, non-hardwired register).
    #[must_use]
    pub fn needs_prf_read(self) -> bool {
        matches!(self, PhysName::Reg(p) if p > PHYS_ONE)
    }

    /// Returns the real register id, if any.
    #[must_use]
    pub fn reg(self) -> Option<u16> {
        match self {
            PhysName::Reg(p) => Some(p),
            _ => None,
        }
    }

    /// Builds an inline name for a value, if it fits 9 bits signed.
    #[must_use]
    pub fn inline_for(value: u64) -> Option<PhysName> {
        let v = value as i64;
        if (-256..=255).contains(&v) {
            Some(PhysName::Inline(v as i16))
        } else {
            None
        }
    }
}

/// One class (integer or FP) of the physical register file.
#[derive(Debug)]
pub struct RegFile {
    free: VecDeque<u16>,
    ref_count: Vec<u32>,
    ready_at: Vec<u64>,
    is32: Vec<bool>,
    hardwired: u16,
}

impl RegFile {
    /// Creates a register file with `total` registers, the lowest
    /// `hardwired` of which are never allocated or freed.
    ///
    /// # Panics
    ///
    /// Panics if `hardwired` exceeds `total`.
    #[must_use]
    pub fn new(total: usize, hardwired: u16) -> Self {
        assert!(usize::from(hardwired) <= total);
        RegFile {
            free: (hardwired..total as u16).collect(), // audited(no-alloc-in-hot-path): constructor
            ref_count: vec![0; total],                 // audited(no-alloc-in-hot-path): constructor
            ready_at: vec![0; total],                  // audited(no-alloc-in-hot-path): constructor
            is32: vec![false; total],                  // audited(no-alloc-in-hot-path): constructor
            hardwired,
        }
    }

    /// Allocates a register with reference count 1, or `None` when the
    /// free list is empty (rename must stall).
    pub fn alloc(&mut self) -> Option<u16> {
        let p = self.free.pop_front()?;
        self.ref_count[usize::from(p)] = 1;
        self.ready_at[usize::from(p)] = u64::MAX; // not yet produced
        self.is32[usize::from(p)] = false;
        Some(p)
    }

    /// Adds a reference (move elimination maps another architectural
    /// register to `p`). Hardwired registers are unmanaged.
    pub fn add_ref(&mut self, p: u16) {
        if p >= self.hardwired {
            self.ref_count[usize::from(p)] += 1;
        }
    }

    /// Drops a reference; the register returns to the free list when
    /// the count reaches zero.
    ///
    /// # Panics
    ///
    /// Panics on a double release (reference count underflow).
    pub fn release(&mut self, p: u16) {
        if p < self.hardwired {
            return;
        }
        let rc = &mut self.ref_count[usize::from(p)];
        assert!(*rc > 0, "release of free register p{p}");
        *rc -= 1;
        if *rc == 0 {
            self.free.push_back(p);
        }
    }

    /// Marks the cycle at which `p`'s value becomes available to
    /// consumers (via bypass).
    pub fn set_ready(&mut self, p: u16, cycle: u64) {
        if p >= self.hardwired {
            self.ready_at[usize::from(p)] = cycle;
        }
    }

    /// The cycle `p` becomes readable; hardwired registers are always
    /// ready.
    #[must_use]
    pub fn ready_at(&self, p: u16) -> u64 {
        if p < self.hardwired {
            0
        } else {
            self.ready_at[usize::from(p)]
        }
    }

    /// Records whether `p` was produced by a 32-bit operation
    /// (upper half known zero).
    pub fn set_is32(&mut self, p: u16, is32: bool) {
        if p >= self.hardwired {
            self.is32[usize::from(p)] = is32;
        }
    }

    /// Whether `p` holds a zero-extended 32-bit value. Hardwired 0/1
    /// trivially qualify.
    #[must_use]
    pub fn is32(&self, p: u16) -> bool {
        if p < self.hardwired {
            true
        } else {
            self.is32[usize::from(p)]
        }
    }

    /// Number of registers currently available for allocation.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Current reference count (diagnostics/tests).
    #[must_use]
    pub fn ref_count(&self, p: u16) -> u32 {
        self.ref_count[usize::from(p)]
    }

    /// Total number of physical registers in this class.
    #[must_use]
    pub fn total(&self) -> u16 {
        self.ref_count.len() as u16
    }

    /// Number of hardwired (never allocated or freed) registers.
    #[must_use]
    pub fn hardwired(&self) -> u16 {
        self.hardwired
    }

    /// The current free-list contents, in allocation order
    /// (diagnostics: the invariant auditor cross-checks this against
    /// the rename maps).
    #[must_use]
    pub fn free_regs(&self) -> Vec<u16> {
        self.free.iter().copied().collect() // audited(no-alloc-in-hot-path): diagnostics, off the per-cycle loop
    }

    /// All reference counts, indexed by physical register id
    /// (diagnostics).
    #[must_use]
    pub fn ref_counts(&self) -> Vec<u32> {
        self.ref_count.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(PhysName::Reg(PHYS_ZERO).known_value(), Some(0));
        assert_eq!(PhysName::Reg(PHYS_ONE).known_value(), Some(1));
        assert_eq!(PhysName::Reg(7).known_value(), None);
        assert_eq!(PhysName::Inline(-3).known_value(), Some((-3i64) as u64));
        assert_eq!(PhysName::Inline(255).known_value(), Some(255));
    }

    #[test]
    fn inline_for_respects_9_bit_range() {
        assert_eq!(PhysName::inline_for(0), Some(PhysName::Inline(0)));
        assert_eq!(PhysName::inline_for(255), Some(PhysName::Inline(255)));
        assert_eq!(PhysName::inline_for((-256i64) as u64), Some(PhysName::Inline(-256)));
        assert_eq!(PhysName::inline_for(256), None);
        assert_eq!(PhysName::inline_for(0xFFFF_FFFF), None, "w-negative is not inlinable");
    }

    #[test]
    fn prf_read_accounting_skips_hardwired_and_inline() {
        assert!(!PhysName::Reg(PHYS_ZERO).needs_prf_read());
        assert!(!PhysName::Reg(PHYS_ONE).needs_prf_read());
        assert!(PhysName::Reg(2).needs_prf_read());
        assert!(!PhysName::Inline(42).needs_prf_read());
        assert!(!PhysName::KnownFlags(0b0100).needs_prf_read());
    }

    #[test]
    fn known_flags_roundtrip() {
        let f = PhysName::KnownFlags(Nzcv::ZERO_RESULT.pack());
        assert_eq!(f.known_flags(), Some(Nzcv::ZERO_RESULT));
        assert_eq!(PhysName::Reg(3).known_flags(), None);
    }

    #[test]
    fn alloc_release_cycle() {
        let mut rf = RegFile::new(6, 2);
        assert_eq!(rf.free_count(), 4);
        let p = rf.alloc().unwrap();
        assert_eq!(rf.ref_count(p), 1);
        assert_eq!(rf.free_count(), 3);
        rf.release(p);
        assert_eq!(rf.free_count(), 4);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut rf = RegFile::new(4, 2);
        assert!(rf.alloc().is_some());
        assert!(rf.alloc().is_some());
        assert!(rf.alloc().is_none(), "free list exhausted");
    }

    #[test]
    fn move_elimination_reference_counting() {
        let mut rf = RegFile::new(8, 2);
        let p = rf.alloc().unwrap();
        rf.add_ref(p); // eliminated move shares p
        rf.release(p); // first unmap
        assert_eq!(rf.free_count(), 5, "still referenced");
        rf.release(p); // second unmap
        assert_eq!(rf.free_count(), 6, "now free");
    }

    #[test]
    #[should_panic(expected = "release of free register")]
    fn double_release_panics() {
        let mut rf = RegFile::new(4, 2);
        let p = rf.alloc().unwrap();
        rf.release(p);
        rf.release(p);
    }

    #[test]
    fn hardwired_registers_are_unmanaged_and_ready() {
        let mut rf = RegFile::new(4, 2);
        rf.add_ref(PHYS_ZERO);
        rf.release(PHYS_ZERO);
        rf.release(PHYS_ZERO); // no panic, no effect
        assert_eq!(rf.ready_at(PHYS_ZERO), 0);
        assert!(rf.is32(PHYS_ONE));
    }

    #[test]
    fn readiness_tracking() {
        let mut rf = RegFile::new(8, 2);
        let p = rf.alloc().unwrap();
        assert_eq!(rf.ready_at(p), u64::MAX, "unproduced register is not ready");
        rf.set_ready(p, 42);
        assert_eq!(rf.ready_at(p), 42);
    }

    #[test]
    fn width_bits() {
        let mut rf = RegFile::new(8, 2);
        let p = rf.alloc().unwrap();
        assert!(!rf.is32(p));
        rf.set_is32(p, true);
        assert!(rf.is32(p));
        // Reallocation clears the bit.
        rf.release(p);
        let q = rf.alloc().unwrap();
        if q == p {
            assert!(!rf.is32(q));
        }
    }
}
